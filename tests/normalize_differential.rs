//! Differential suite for term canonicalization: for every corpus kernel
//! pair and for fuzzed `KernelGen` kernels, checking with normalization
//! enabled (`CheckOptions::default()`: AC canonicalization + fact
//! propagation before fingerprinting and bit-blasting) must return the
//! same verdict — and the same per-query outcome *class* — as the raw
//! path (`CheckOptions::no_normalize()`), on both the incremental and
//! one-shot backends, and under a failpoint-aborted normalization pass.
//!
//! Outcomes are compared by class, not string: canonicalization may turn
//! a `valid` row into `valid (rewrite)` (discharged with zero SAT calls)
//! or shift which rows are `valid (cached)`, but it must never move a row
//! across the valid / counterexample / timeout boundary, reorder queries,
//! or change the verdict.

use pug_ir::GpuConfig;
use pug_smt::failpoints::{self, Fault};
use pug_testutil::KernelGen;
use pugpara::equiv::{check_equivalence_param, CheckOptions, Report};
use pugpara::runner::{run_resilient, RunnerOptions};
use pugpara::{KernelUnit, Verdict};
use std::sync::Mutex;
use std::time::Duration;

/// Serializes the failpoint test against the tests that assert rewrite
/// discharges actually happen (failpoints are process-global: an armed
/// `smt::normalize` site would silently disable discharges elsewhere).
static NORMALIZE_FAULT_LOCK: Mutex<()> = Mutex::new(());

fn load(src: &str) -> KernelUnit {
    KernelUnit::load(src).unwrap()
}

fn opts() -> CheckOptions {
    CheckOptions::with_timeout(Duration::from_secs(120))
}

/// Fold the performance-detail suffixes away: `valid`, `valid (cached)`
/// and `valid (rewrite)` all answer the obligation the same way.
fn outcome_class(outcome: &str) -> &'static str {
    match outcome {
        "valid" | "valid (cached)" | "valid (rewrite)" => "valid",
        "counterexample" => "counterexample",
        _ => "timeout",
    }
}

/// Verdicts must match up to the bug witness (models may differ — both
/// configurations are free to pick any countermodel; validity of each is
/// debug-asserted inside the SMT layer).
fn same_verdict(a: &Verdict, b: &Verdict) -> bool {
    match (a, b) {
        (Verdict::Verified(x), Verdict::Verified(y)) => x == y,
        (Verdict::Bug(x), Verdict::Bug(y)) => x.kind == y.kind,
        (Verdict::Timeout, Verdict::Timeout) => true,
        _ => false,
    }
}

fn assert_reports_agree(label: &str, on: &Report, off: &Report) {
    assert!(
        same_verdict(&on.verdict, &off.verdict),
        "{label}: normalize-on verdict {} != normalize-off verdict {}",
        on.verdict,
        off.verdict
    );
    // Canonicalization changes how obligations are discharged, never which
    // obligations exist or how they answer.
    assert_eq!(on.queries.len(), off.queries.len(), "{label}: query counts diverge");
    for (qa, qb) in on.queries.iter().zip(off.queries.iter()) {
        assert_eq!(qa.label, qb.label, "{label}: query order diverges");
        assert_eq!(
            outcome_class(&qa.outcome),
            outcome_class(&qb.outcome),
            "{label}: query `{}` class diverges ({} vs {})",
            qa.label,
            qa.outcome,
            qb.outcome
        );
    }
}

/// Rows the canonicalizer + fact propagation proved without any SAT call.
fn rewrite_discharges(r: &Report) -> usize {
    r.queries.iter().filter(|q| q.outcome == "valid (rewrite)").count()
}

fn differential(label: &str, src: &KernelUnit, tgt: &KernelUnit, cfg: &GpuConfig) -> usize {
    // Incremental backend: normalize on vs off.
    let on = check_equivalence_param(src, tgt, cfg, &opts()).unwrap();
    let off = check_equivalence_param(src, tgt, cfg, &opts().no_normalize()).unwrap();
    assert_reports_agree(&format!("{label} (incremental)"), &on, &off);
    assert_eq!(rewrite_discharges(&off), 0, "{label}: no_normalize must never discharge");
    // One-shot backend: normalize on vs off (isolates canonicalization
    // from session/assumption interactions).
    let on1 = check_equivalence_param(src, tgt, cfg, &opts().one_shot()).unwrap();
    let off1 = check_equivalence_param(src, tgt, cfg, &opts().one_shot().no_normalize()).unwrap();
    assert_reports_agree(&format!("{label} (one-shot)"), &on1, &off1);
    // And across backends with normalization enabled everywhere.
    assert_reports_agree(&format!("{label} (cross-backend)"), &on, &on1);
    rewrite_discharges(&on)
}

#[test]
fn corpus_pairs_agree() {
    let _guard = NORMALIZE_FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cases: &[(&str, &str, &str, GpuConfig)] = &[
        (
            "transpose ok",
            pug_kernels::transpose::NAIVE,
            pug_kernels::transpose::OPTIMIZED,
            GpuConfig::symbolic(8),
        ),
        (
            "transpose buggy addr",
            pug_kernels::transpose::NAIVE,
            pug_kernels::transpose::BUGGY_ADDR,
            GpuConfig::symbolic(8),
        ),
        (
            "transpose unconstrained",
            pug_kernels::transpose::NAIVE,
            pug_kernels::transpose::OPTIMIZED_UNCONSTRAINED,
            GpuConfig::symbolic(8),
        ),
        (
            "vector_add self",
            pug_kernels::vector_add::KERNEL,
            pug_kernels::vector_add::KERNEL,
            GpuConfig::symbolic_1d(8),
        ),
        (
            "vector_add buggy",
            pug_kernels::vector_add::KERNEL,
            pug_kernels::vector_add::BUGGY,
            GpuConfig::symbolic_1d(8),
        ),
    ];
    let mut discharged = 0;
    for (label, src, tgt, cfg) in cases {
        discharged += differential(label, &load(src), &load(tgt), cfg);
    }
    // The acceptance floor: canonicalization + fact propagation discharge
    // at least one obligation on the corpus with zero SAT calls.
    assert!(discharged >= 1, "expected at least one rewrite-discharged obligation on the corpus");
}

#[test]
fn reduction_pair_agrees_concretized() {
    let _guard = NORMALIZE_FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let v0 = load(pug_kernels::reduction::V0);
    let v1 = load(pug_kernels::reduction::V1);
    let cfg = GpuConfig::symbolic_1d(8);
    let o = opts().concretized("n", 8);
    let on = check_equivalence_param(&v0, &v1, &cfg, &o).unwrap();
    let off = check_equivalence_param(&v0, &v1, &cfg, &o.clone().no_normalize()).unwrap();
    assert_reports_agree("reduction v0/v1 +C", &on, &off);
}

#[test]
fn fuzzed_kernels_agree_without_normalization() {
    // Self-equivalence of generated kernels: multiplier-heavy address
    // arithmetic with reassociation-prone chains — the profile the AC
    // rules target.
    for seed in 0..12u64 {
        let src = KernelGen::extended(seed).kernel();
        let unit = match KernelUnit::load(&src) {
            Ok(u) => u,
            Err(_) => continue, // generator stays in-subset; be lenient anyway
        };
        let cfg = GpuConfig::symbolic_1d(8);
        let on = match check_equivalence_param(&unit, &unit, &cfg, &opts()) {
            Ok(r) => r,
            Err(_) => continue, // alignment limits apply to both paths equally
        };
        let off = check_equivalence_param(&unit, &unit, &cfg, &opts().no_normalize()).unwrap();
        assert_reports_agree(&format!("fuzz seed {seed}\n{src}"), &on, &off);
    }
}

#[test]
fn fuzzed_basic_profile_agrees() {
    for seed in 100..108u64 {
        let src = KernelGen::basic(seed).kernel();
        let Ok(unit) = KernelUnit::load(&src) else { continue };
        let cfg = GpuConfig::symbolic_1d(8);
        let Ok(on) = check_equivalence_param(&unit, &unit, &cfg, &opts()) else { continue };
        let off = check_equivalence_param(&unit, &unit, &cfg, &opts().no_normalize()).unwrap();
        assert_reports_agree(&format!("fuzz basic seed {seed}\n{src}"), &on, &off);
    }
}

#[test]
fn aborted_normalization_is_sound_and_agrees() {
    // Failpoint-injected abort inside `smt::normalize`: the session must
    // degrade to the raw (un-canonicalized) terms — sound either way, the
    // two are equivalence-preserving rewrites of each other — without
    // poisoning the session or changing any verdict.
    let _guard = NORMALIZE_FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let naive = load(pug_kernels::transpose::NAIVE);
    let buggy = load(pug_kernels::transpose::BUGGY_ADDR);
    let cfg = GpuConfig::symbolic(8);

    failpoints::arm("smt::normalize", Fault::BudgetExhausted);
    let faulted = check_equivalence_param(&naive, &buggy, &cfg, &opts());
    let off = check_equivalence_param(&naive, &buggy, &cfg, &opts().no_normalize());
    failpoints::reset();

    let faulted = faulted.unwrap();
    let off = off.unwrap();
    assert!(faulted.verdict.is_bug(), "aborted normalization hid the bug: {}", faulted.verdict);
    // Degraded ≡ disabled: with every normalize call aborted, the session
    // runs the raw terms — exactly the no_normalize configuration.
    assert_reports_agree("faulted normalization (transpose bug)", &faulted, &off);
    assert_eq!(
        rewrite_discharges(&faulted),
        0,
        "aborted normalization must not claim rewrite discharges"
    );

    // Clean registry: the same check discharges normally again.
    let clean = check_equivalence_param(&naive, &buggy, &cfg, &opts()).unwrap();
    assert!(same_verdict(&clean.verdict, &faulted.verdict));
}

#[test]
fn resilient_runner_provenance_agrees() {
    // The full degradation ladder with normalization on vs off: same
    // verdict, same answering rung, same rung outcomes, same obligations
    // in the same order — only the outcome performance class may differ.
    let _guard = NORMALIZE_FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let naive = load(pug_kernels::transpose::NAIVE);
    let buggy = load(pug_kernels::transpose::BUGGY_ADDR);
    let cfg = GpuConfig::symbolic_2d(8);

    let on = run_resilient(&naive, &buggy, &cfg, &RunnerOptions::default());
    let raw = RunnerOptions { normalize: false, ..RunnerOptions::default() };
    let off = run_resilient(&naive, &buggy, &cfg, &raw);

    assert!(same_verdict(&on.verdict, &off.verdict), "{} vs {}", on.verdict, off.verdict);
    assert_eq!(on.provenance.answered_by, off.provenance.answered_by);
    assert_eq!(on.provenance.rungs.len(), off.provenance.rungs.len());
    for (ra, rb) in on.provenance.rungs.iter().zip(off.provenance.rungs.iter()) {
        assert_eq!(ra.rung, rb.rung);
        assert_eq!(
            std::mem::discriminant(&ra.outcome),
            std::mem::discriminant(&rb.outcome),
            "rung {} outcome kind diverges: {} vs {}",
            ra.rung,
            ra.outcome,
            rb.outcome
        );
        assert_eq!(ra.stats.len(), rb.stats.len(), "rung {} query counts diverge", ra.rung);
        for (qa, qb) in ra.stats.iter().zip(rb.stats.iter()) {
            assert_eq!(qa.label, qb.label, "rung {} query order diverges", ra.rung);
            assert_eq!(
                outcome_class(&qa.outcome),
                outcome_class(&qb.outcome),
                "rung {} query `{}` class diverges",
                ra.rung,
                qa.label
            );
        }
    }
}
