//! Portfolio-racing determinism: the property the whole parallel runner
//! stands on. Racing-mode verdicts must be (a) identical across repeated
//! runs — scheduling and completion order must never leak into the
//! verdict — and (b) equal, verdict and soundness level both, to the
//! sequential degradation ladder, on the real kernel corpus and on fuzzed
//! kernels, including under deterministic fault injection.
//!
//! Failpoints are process-global and racing tests are CPU-heavy, so every
//! test in this binary serializes on one lock and resets the registry on
//! exit (even on assertion failure).

use pugpara::failpoints::{self, Fault};
use pugpara::portfolio::{run_portfolio, PortfolioOptions};
use pugpara::runner::{run_resilient, ResilientReport, Rung, RungOutcome, RunnerOptions};
use pugpara::{KernelUnit, Soundness, Verdict};
use pug_ir::GpuConfig;
use pug_testutil::KernelGen;
use std::sync::{Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

struct Scope(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Scope {
    fn armed(sites: &[(&str, Fault)]) -> Scope {
        let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        failpoints::reset();
        for &(site, fault) in sites {
            failpoints::arm(site, fault);
        }
        Scope(guard)
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        failpoints::reset();
    }
}

/// Canonical fingerprint of a report: everything the determinism property
/// quantifies over — verdict kind, soundness level, bug class, and the
/// rung that answered.
fn fingerprint(r: &ResilientReport) -> String {
    let verdict = match &r.verdict {
        Verdict::Verified(Soundness::Sound) => "verified/sound".to_string(),
        Verdict::Verified(Soundness::UnderApprox) => "verified/under-approx".to_string(),
        Verdict::Bug(b) => format!("bug/{:?}", b.kind),
        Verdict::Timeout => "timeout".to_string(),
    };
    match r.provenance.answered_by {
        Some(rung) => format!("{verdict} by {rung}"),
        None => format!("{verdict} by nobody"),
    }
}

/// The corpus pairs the racing ladder is compared on: every headline
/// `crates/kernels` equivalence pair, verified and buggy alike, each with
/// the ladder policy it is checked under.
fn corpus_pairs() -> Vec<(&'static str, KernelUnit, KernelUnit, GpuConfig, RunnerOptions)> {
    let load = |s: &str| KernelUnit::load(s).unwrap();
    // The fully symbolic transpose Param rung needs ~19 s; a 2 s per-rung
    // deadline makes it time out deterministically (10x margin) and the
    // "+C." rung answer instead — so this pair exercises the deadline and
    // concretization paths of the race without dominating the suite.
    let transpose_opts = RunnerOptions::with_rung_timeout(std::time::Duration::from_secs(2))
        .concretized("width", 8)
        .concretized("height", 8);
    vec![
        (
            "transpose naive/opt",
            load(pug_kernels::transpose::NAIVE),
            load(pug_kernels::transpose::OPTIMIZED),
            GpuConfig::symbolic_2d(8),
            transpose_opts,
        ),
        (
            "transpose naive/buggy-addr",
            load(pug_kernels::transpose::NAIVE),
            load(pug_kernels::transpose::BUGGY_ADDR),
            GpuConfig::symbolic_2d(8),
            RunnerOptions::default(),
        ),
        (
            "reduction v0/v1",
            load(pug_kernels::reduction::V0),
            load(pug_kernels::reduction::V1),
            GpuConfig::symbolic_1d(8),
            RunnerOptions::default(),
        ),
        (
            "reduction v0/buggy-index",
            load(pug_kernels::reduction::V0),
            load(pug_kernels::reduction::BUGGY_INDEX),
            GpuConfig::symbolic_1d(8),
            RunnerOptions::default(),
        ),
        (
            "vector-add ok/buggy",
            load(pug_kernels::vector_add::KERNEL),
            load(pug_kernels::vector_add::BUGGY),
            GpuConfig::symbolic_1d(8),
            RunnerOptions::default(),
        ),
    ]
}

/// Racing is verdict-identical to the sequential ladder and stable across
/// 10 repeated runs on every corpus pair.
#[test]
fn racing_matches_sequential_on_corpus_pairs() {
    let _scope = Scope::armed(&[]);
    for (name, src, tgt, cfg, ropts) in corpus_pairs() {
        let seq = run_resilient(&src, &tgt, &cfg, &ropts);
        let want = fingerprint(&seq);
        let opts = PortfolioOptions::with_runner(ropts);
        for run in 0..10 {
            let race = run_portfolio(&src, &tgt, &cfg, &opts);
            let got = fingerprint(&race);
            assert_eq!(
                got, want,
                "{name}, run {run}: racing diverged from sequential\nsequential:\n{}\nracing:\n{}",
                seq.provenance.render(),
                race.provenance.render()
            );
        }
    }
}

/// The same property on the fuzzed extended corpus (barriers, shared
/// arrays, guarded writes). No race-free filter here, deliberately:
/// determinism must hold on *any* input — racy fuzz kernels included —
/// because the sequential ladder is deterministic on all of them and
/// racing must reproduce whatever it says (bug verdicts too).
#[test]
fn racing_matches_sequential_on_fuzzed_corpus() {
    let _scope = Scope::armed(&[]);
    let opts = PortfolioOptions::default();
    for seed in 0..3u64 {
        let src_text = KernelGen::extended(seed * 71 + 9).kernel();
        let unit = KernelUnit::load(&src_text).unwrap();
        // Single symbolic-width block, as in the differential suite: the
        // generator indexes by tid.x only.
        let cfg = GpuConfig {
            bits: 8,
            bdim: [pug_ir::Extent::Sym, pug_ir::Extent::Const(1), pug_ir::Extent::Const(1)],
            gdim: [pug_ir::Extent::Const(1), pug_ir::Extent::Const(1)],
        };
        let seq = run_resilient(&unit, &unit, &cfg, &RunnerOptions::default());
        let want = fingerprint(&seq);
        for run in 0..10 {
            let race = run_portfolio(&unit, &unit, &cfg, &opts);
            assert_eq!(
                fingerprint(&race),
                want,
                "fuzz seed {seed}, run {run} diverged\n{src_text}\nsequential:\n{}\nracing:\n{}",
                seq.provenance.render(),
                race.provenance.render()
            );
        }
    }
}

/// Determinism holds under fault injection too: with the Param rung
/// deterministically exhausted, racing answers on the same fallback rung
/// as the sequential ladder, 10 runs out of 10.
#[test]
fn racing_deterministic_under_fault_injection() {
    let _scope = Scope::armed(&[("runner::param", Fault::BudgetExhausted)]);
    let naive = KernelUnit::load(pug_kernels::transpose::NAIVE).unwrap();
    let cfg = GpuConfig::symbolic_2d(8);
    let seq = run_resilient(&naive, &naive, &cfg, &RunnerOptions::default());
    let want = fingerprint(&seq);
    assert_eq!(seq.provenance.answered_by, Some(Rung::NonParam { n: 4 }));
    for run in 0..10 {
        let race = run_portfolio(&naive, &naive, &cfg, &PortfolioOptions::default());
        assert_eq!(
            fingerprint(&race),
            want,
            "run {run} diverged under fault injection:\n{}",
            race.provenance.render()
        );
        assert!(matches!(
            race.verdict,
            Verdict::Verified(Soundness::UnderApprox)
        ));
    }
}

/// Regression (budget splitting): injected budget exhaustion on one
/// racing rung must never cancel a sibling. The Param rung exhausts; the
/// NonParam sibling must still *answer* — not time out, not be abandoned —
/// and the verdict must be its honestly-downgraded one.
#[test]
fn exhausted_rung_budget_never_cancels_sibling() {
    let _scope = Scope::armed(&[("runner::param", Fault::BudgetExhausted)]);
    let naive = KernelUnit::load(pug_kernels::transpose::NAIVE).unwrap();
    let report = run_portfolio(
        &naive,
        &naive,
        &GpuConfig::symbolic_2d(8),
        &PortfolioOptions::default(),
    );
    let outcome_of = |rung: Rung| {
        &report
            .provenance
            .rungs
            .iter()
            .find(|r| r.rung == rung)
            .unwrap_or_else(|| panic!("no record for {rung}"))
            .outcome
    };
    // The faulted rung reports its own exhaustion...
    assert!(
        matches!(outcome_of(Rung::Param), RungOutcome::Timeout),
        "{}",
        report.provenance.render()
    );
    // ...while the sibling fallback still answers on its own budget.
    assert!(
        matches!(outcome_of(Rung::NonParam { n: 4 }), RungOutcome::Answered),
        "sibling was taken down with the exhausted rung: {}",
        report.provenance.render()
    );
    assert_eq!(report.provenance.answered_by, Some(Rung::NonParam { n: 4 }));
    assert!(matches!(report.verdict, Verdict::Verified(Soundness::UnderApprox)));
}
