//! Metrics self-consistency: the counters, histograms, trace, and
//! provenance are four views of the same run and must agree exactly.
//!
//! For each of 50 KernelGen-fuzzed verification runs (SplitMix64 seeds,
//! basic and extended grammars) with a recording sink and a live registry:
//!
//! * the trace validates structurally — every opened span closed exactly
//!   once, sequence numbers strictly increasing;
//! * `queries.total` == number of `query:` spans in the trace
//!   == the `query_us` histogram's count
//!   == the sum of per-rung (and per-pass) `QueryStat` records;
//! * `queries.valid + queries.counterexample + queries.timeout` ==
//!   `queries.total` (a cache hit counts as valid), and
//!   `queries.cached <= queries.valid`;
//! * the per-lookup cache counters close the loop in-process:
//!   `cache.lookup_hits == queries.cached` and every non-discharged query
//!   performs exactly one lookup —
//!   `cache.lookup_hits + cache.lookup_misses ==
//!    queries.total − queries.discharged_by_rewrite`;
//! * rung-outcome counters sum to the number of rung records;
//! * race classification partitions: `races.provable + races.potential ==
//!   races.reported`;
//! * qelim counters: with the generalized elimination on (the default) no
//!   residual formula is ever dropped (`qelim.residual_dropped == 0`), and
//!   the drop/generalize counters only move when the ladder actually ran.

use pug_obs::{validate, EventKind, MetricsRegistry, TraceSink};
use pugpara::runner::{run_resilient, RunnerOptions};
use pugpara::KernelUnit;
use pug_ir::GpuConfig;
use pug_testutil::KernelGen;

fn fuzz_cfg() -> GpuConfig {
    GpuConfig {
        bits: 8,
        bdim: [pug_ir::Extent::Sym, pug_ir::Extent::Const(1), pug_ir::Extent::Const(1)],
        gdim: [pug_ir::Extent::Const(1), pug_ir::Extent::Const(1)],
    }
}

#[test]
fn metrics_agree_with_trace_and_provenance_on_fuzzed_runs() {
    metrics_fuzz(0);
}

#[test]
fn metrics_agree_on_fuzzed_runs_with_obligation_parallelism() {
    // Same four-view agreement over the pooled obligation screen: workers
    // run with private registries whose snapshots are merged back in array
    // index order, and the master emits one synthetic `query:` span per
    // merged query — so every invariant below must survive unchanged.
    // Multi-output kernels (2–4 arrays) so the pool actually fans out;
    // grammar kernels write a single `out` and would cap the width at 1.
    metrics_fuzz(4);
}

fn metrics_fuzz(obligation_parallelism: usize) {
    for i in 0..50u64 {
        // Split the budget over both grammars; odd runs turn the auxiliary
        // passes on so their queries are covered by the invariant too.
        let arrays = if obligation_parallelism > 0 { 2 + (i as usize % 3) } else { 1 };
        let (name, text) = if i < 25 {
            let mut g = KernelGen::basic(i * 13 + 1);
            let text = if arrays > 1 { g.multi_output_kernel(arrays) } else { g.kernel() };
            (format!("basic seed {i} ({arrays} arrays)"), text)
        } else {
            let mut g = KernelGen::extended(i * 71 + 9);
            let text = if arrays > 1 { g.multi_output_kernel(arrays) } else { g.kernel() };
            (format!("extended seed {i} ({arrays} arrays)"), text)
        };
        let unit = KernelUnit::load(&text).unwrap();
        let sink = TraceSink::recording();
        let metrics = MetricsRegistry::new();
        let mut opts = RunnerOptions::default()
            .with_trace(sink.clone())
            .with_metrics(metrics.clone())
            .with_obligation_parallelism(obligation_parallelism);
        if i % 2 == 1 {
            opts = opts.with_aux_passes();
        }
        let report = run_resilient(&unit, &unit, &fuzz_cfg(), &opts);

        // Structural validity: spans balanced, seq strictly increasing.
        let events = sink.events();
        let summary = validate(&events)
            .unwrap_or_else(|e| panic!("{name}: broken trace: {e}\n{text}"));
        assert!(summary.spans > 0, "{name}: no spans recorded");

        let snap = metrics.snapshot();
        let total = snap.counter("queries.total");

        // View 1: trace — one query span per query.
        let query_spans = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Open) && e.name.starts_with("query:"))
            .count() as u64;
        assert_eq!(
            total, query_spans,
            "{name}: queries.total != query spans in trace\n{text}"
        );

        // View 2: histogram — one observation per query.
        let hist = snap
            .histogram("query_us")
            .unwrap_or_else(|| panic!("{name}: no query_us histogram"));
        assert_eq!(total, hist.count, "{name}: histogram count != queries.total");

        // View 3: provenance — every query ends up in some record. (Rungs
        // that crash lose their stats vector; fuzzed self-pairs never
        // crash, so equality is exact here.)
        let in_rungs: usize = report.provenance.rungs.iter().map(|r| r.stats.len()).sum();
        let in_passes: usize = report.provenance.passes.iter().map(|p| p.stats.len()).sum();
        assert_eq!(
            total as usize,
            in_rungs + in_passes,
            "{name}: provenance lost queries\n{}",
            report.provenance.render()
        );

        // Outcome counters partition the total; cache hits count as valid.
        let valid = snap.counter("queries.valid");
        let cex = snap.counter("queries.counterexample");
        let timeout = snap.counter("queries.timeout");
        let cached = snap.counter("queries.cached");
        assert_eq!(total, valid + cex + timeout, "{name}: outcome counters do not partition");
        assert!(cached <= valid, "{name}: cached > valid");

        // Per-lookup cache counters (the runner shares one QueryCache with
        // every rung and aux pass, so these are wired for the whole run):
        // a hit is exactly a `valid (cached)` outcome, and every query
        // that was not discharged by rewriting does exactly one lookup.
        let hits = snap.counter("cache.lookup_hits");
        let misses = snap.counter("cache.lookup_misses");
        let discharged = snap.counter("queries.discharged_by_rewrite");
        assert_eq!(hits, cached, "{name}: cache.lookup_hits != queries.cached");
        assert!(discharged <= valid, "{name}: discharged > valid");
        assert_eq!(
            hits + misses,
            total - discharged,
            "{name}: lookups do not cover the non-discharged queries\n{text}"
        );

        // Rung-outcome counters cover every ladder record.
        let rung_total: u64 = [
            "runner.rung.answered",
            "runner.rung.timeout",
            "runner.rung.crashed",
            "runner.rung.failed",
            "runner.rung.skipped",
            "runner.rung.abandoned",
        ]
        .iter()
        .map(|k| snap.counter(k))
        .sum();
        assert_eq!(
            rung_total as usize,
            report.provenance.rungs.len(),
            "{name}: rung counters != ladder records\n{}",
            report.provenance.render()
        );

        // Race classification partitions the reported races (the aux race
        // pass classifies every Sat race as provable or potential).
        let reported = snap.counter("races.reported");
        let provable = snap.counter("races.provable");
        let potential = snap.counter("races.potential");
        assert_eq!(
            reported,
            provable + potential,
            "{name}: race classes do not partition races.reported"
        );
        if report.provenance.passes.is_empty() {
            assert_eq!(reported, 0, "{name}: races reported without an aux pass");
        }

        // Qelim counters: the generalized elimination is on by default, so
        // the legacy residual-drop path must never fire.
        assert_eq!(
            snap.counter("qelim.residual_dropped"),
            0,
            "{name}: residual dropped while the generalized elimination is enabled"
        );
    }
}
