//! Workspace-level differential testing: the §III symbolic encoding against
//! the concrete reference interpreter on randomly generated kernels.
//!
//! For each random kernel, concrete configuration and concrete inputs:
//! interpret the kernel natively, then evaluate the symbolically encoded
//! final arrays under the same inputs — the results must agree cell by
//! cell. This exercises the whole stack: parser → type checker → symbolic
//! executor (Γ translation, branch merging, loop unrolling) → store-chain
//! memory → term evaluation.

use pug_ir::{ConcreteInputs, GpuConfig};
use pug_smt::{Env, Value};
use pug_testutil::TestRng;
use pugpara::KernelUnit;
use std::collections::HashMap;

/// A tiny random kernel generator over the supported subset.
struct Gen {
    rng: TestRng,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen { rng: TestRng::seed_from_u64(seed) }
    }

    /// Integer expressions over tid.x, the scalar `p`, reads of `in`, and
    /// small constants.
    fn expr(&mut self, depth: usize) -> String {
        if depth == 0 {
            return match self.rng.gen_range(0..4) {
                0 => "tid.x".into(),
                1 => "p".into(),
                2 => format!("{}", self.rng.gen_range(0..8)),
                _ => format!("in[{}]", self.idx(0)),
            };
        }
        let a = self.expr(depth - 1);
        let b = self.expr(depth - 1);
        let op = ["+", "-", "*", "&", "|", "^", "%", "/"][self.rng.gen_range(0..8usize)];
        format!("({a} {op} {b})")
    }

    /// Small index expressions (kept in range by masking).
    fn idx(&mut self, depth: usize) -> String {
        if depth == 0 {
            return match self.rng.gen_range(0..3) {
                0 => "tid.x".into(),
                1 => format!("{}", self.rng.gen_range(0..8)),
                _ => "(tid.x + 1)".into(),
            };
        }
        format!("(({}) & 7)", self.expr(depth - 1))
    }

    fn cond(&mut self) -> String {
        let a = self.expr(1);
        let b = self.expr(1);
        let op = ["<", "<=", "==", "!=", ">", ">="][self.rng.gen_range(0..6usize)];
        format!("({a}) {op} ({b})")
    }

    fn stmt(&mut self, depth: usize) -> String {
        match self.rng.gen_range(0..6usize) {
            0 => format!("out[{}] = {};", self.idx(1), self.expr(2)),
            1 => format!("int l{} = {};", self.rng.gen_range(0..3), self.expr(2)),
            2 if depth > 0 => {
                format!(
                    "if ({}) {{ {} }} else {{ {} }}",
                    self.cond(),
                    self.stmt(depth - 1),
                    self.stmt(depth - 1)
                )
            }
            3 => format!("out[{}] += {};", self.idx(1), self.expr(1)),
            4 => {
                let v = self.rng.gen_range(0..3);
                format!("int l{v} = {}; out[{}] = l{v};", self.expr(1), self.idx(1))
            }
            _ => format!("out[{}] = in[{}];", self.idx(1), self.idx(1)),
        }
    }

    fn kernel(&mut self) -> String {
        let n = self.rng.gen_range(1..5);
        let body: Vec<String> = (0..n).map(|_| self.stmt(2)).collect();
        let barrier = if self.rng.gen_bool(0.4) {
            // a second round reading what the first wrote
            format!(
                "__syncthreads();\nout[{}] = out[{}] + 1;",
                self.idx(0),
                self.idx(0)
            )
        } else {
            String::new()
        };
        format!("void k(int *out, int *in, int p) {{\n{}\n{barrier}\n}}", body.join("\n"))
    }
}

#[test]
fn symbolic_encoding_matches_interpreter() {
    let bits = 8;
    let mut failures = Vec::new();
    for seed in 0..60u64 {
        let mut g = Gen::new(seed * 31 + 7);
        let src = g.kernel();
        let unit = match KernelUnit::load(&src) {
            Ok(u) => u,
            Err(e) => panic!("generated kernel must parse: {e}\n{src}"),
        };
        let n = g.rng.gen_range(1..5);
        let cfg = GpuConfig::concrete_1d(bits, n);

        // Concrete inputs.
        let mut inputs = ConcreteInputs::default();
        inputs.scalars.insert("p".into(), g.rng.gen_range(0..256));
        let in_map: HashMap<u64, u64> =
            (0..16).map(|i| (i, g.rng.gen_range(0..256))).collect();
        inputs.arrays.insert("in".into(), in_map.clone());

        // Ground truth.
        let truth = pug_ir::run_concrete(&unit.kernel, &unit.types, &cfg, &inputs).unwrap();

        // Symbolic encoding evaluated under the same inputs.
        let mut ctx = pug_smt::Ctx::new();
        let enc = pugpara::nonparam::encode(&mut ctx, &unit, &cfg, "s").unwrap();
        let mut env = Env::new();
        let arr_val = |m: &HashMap<u64, u64>| Value::Array {
            entries: m.clone(),
            default: 0,
            index_width: bits,
            elem_width: bits,
        };
        env.insert(enc.base_arrays["in"], arr_val(&in_map));
        env.insert(enc.base_arrays["out"], arr_val(&HashMap::new()));
        let p = ctx.mk_var("p", pug_smt::Sort::BitVec(bits));
        env.insert(p, Value::Bv(inputs.scalars["p"], bits));

        let final_out = enc.final_arrays["out"];
        for cell in 0..16u64 {
            let idx = ctx.mk_bv_const(cell, bits);
            let sel = ctx.mk_select(final_out, idx);
            let got = pug_smt::eval::eval(&ctx, sel, &env).as_bv();
            let want = truth.read("out", cell);
            if got != want {
                failures.push(format!(
                    "seed {seed}, n={n}, out[{cell}]: symbolic {got} != concrete {want}\n{src}"
                ));
            }
        }
    }
    assert!(failures.is_empty(), "{} mismatches:\n{}", failures.len(), failures.join("\n---\n"));
}

#[test]
fn param_self_equivalence_on_random_race_free_kernels() {
    // A *race-free* kernel is trivially equivalent to itself and the
    // parameterized checker must never report a bug on the pair (k, k).
    // Race freedom is the method's stated precondition (§III "we assume
    // that no data races occur"; §IV "since there exists no conflict, at
    // most one thread will satisfy p"): on racy kernels the canonical
    // serialization is one of several outcomes and independent writer
    // instantiations may legitimately disagree. The paper's workflow runs
    // the race checker first — so does this property.
    use pugpara::equiv::{check_equivalence_param, CheckOptions};
    use std::time::Duration;
    let opts = CheckOptions::with_timeout(Duration::from_secs(60));
    let mut race_free_seen = 0;
    // The generator mostly emits racy kernels; scan seeds until enough
    // race-free ones have been exercised (deterministic, bounded).
    for seed in 0..96u64 {
        if race_free_seen >= 4 {
            break;
        }
        let mut g = Gen::new(seed * 131 + 3);
        let src = g.kernel();
        let unit = KernelUnit::load(&src).unwrap();
        // Single (symbolic-width) block: the generator indexes by tid.x, so
        // a symbolic grid would alias the same cells across blocks.
        let cfg = GpuConfig {
            bits: 8,
            bdim: [pug_ir::Extent::Sym, pug_ir::Extent::Const(1), pug_ir::Extent::Const(1)],
            gdim: [pug_ir::Extent::Const(1), pug_ir::Extent::Const(1)],
        };
        let races = pugpara::check_races(&unit, &cfg, &opts).expect("race check runs");
        if !races.verdict.is_verified() {
            continue; // racy generator output: outside the method's domain
        }
        race_free_seen += 1;
        match check_equivalence_param(&unit, &unit, &cfg, &opts) {
            Ok(r) => assert!(
                !r.verdict.is_bug(),
                "self-equivalence of a race-free kernel must not be a bug (seed {seed}):\n{src}\n{}",
                r.verdict
            ),
            Err(e) => panic!("checker error on seed {seed}: {e}\n{src}"),
        }
    }
    assert!(race_free_seen >= 2, "generator must produce race-free kernels ({race_free_seen})");
}
