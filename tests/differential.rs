//! Workspace-level differential testing: the §III symbolic encoding against
//! the concrete reference interpreter on randomly generated kernels.
//!
//! For each random kernel, concrete configuration and concrete inputs:
//! interpret the kernel natively, then evaluate the symbolically encoded
//! final arrays under the same inputs — the results must agree cell by
//! cell. This exercises the whole stack: parser → type checker → symbolic
//! executor (Γ translation, branch merging, loop unrolling) → store-chain
//! memory → term evaluation.

use pug_ir::{ConcreteInputs, GpuConfig};
use pug_smt::{Env, Value};
use pug_testutil::KernelGen;
use pugpara::KernelUnit;
use std::collections::HashMap;

#[test]
fn symbolic_encoding_matches_interpreter() {
    let bits = 8;
    let mut failures = Vec::new();
    for seed in 0..60u64 {
        let mut g = KernelGen::basic(seed * 31 + 7);
        let src = g.kernel();
        let unit = match KernelUnit::load(&src) {
            Ok(u) => u,
            Err(e) => panic!("generated kernel must parse: {e}\n{src}"),
        };
        let n = g.rng_mut().gen_range(1..5);
        let cfg = GpuConfig::concrete_1d(bits, n);

        // Concrete inputs.
        let mut inputs = ConcreteInputs::default();
        inputs.scalars.insert("p".into(), g.rng_mut().gen_range(0..256));
        let in_map: HashMap<u64, u64> =
            (0..16).map(|i| (i, g.rng_mut().gen_range(0..256))).collect();
        inputs.arrays.insert("in".into(), in_map.clone());

        // Ground truth.
        let truth = pug_ir::run_concrete(&unit.kernel, &unit.types, &cfg, &inputs).unwrap();

        // Symbolic encoding evaluated under the same inputs.
        let mut ctx = pug_smt::Ctx::new();
        let enc = pugpara::nonparam::encode(&mut ctx, &unit, &cfg, "s").unwrap();
        let mut env = Env::new();
        let arr_val = |m: &HashMap<u64, u64>| Value::Array {
            entries: m.clone(),
            default: 0,
            index_width: bits,
            elem_width: bits,
        };
        env.insert(enc.base_arrays["in"], arr_val(&in_map));
        env.insert(enc.base_arrays["out"], arr_val(&HashMap::new()));
        let p = ctx.mk_var("p", pug_smt::Sort::BitVec(bits));
        env.insert(p, Value::Bv(inputs.scalars["p"], bits));

        let final_out = enc.final_arrays["out"];
        for cell in 0..16u64 {
            let idx = ctx.mk_bv_const(cell, bits);
            let sel = ctx.mk_select(final_out, idx);
            let got = pug_smt::eval::eval(&ctx, sel, &env).as_bv();
            let want = truth.read("out", cell);
            if got != want {
                failures.push(format!(
                    "seed {seed}, n={n}, out[{cell}]: symbolic {got} != concrete {want}\n{src}"
                ));
            }
        }
    }
    assert!(failures.is_empty(), "{} mismatches:\n{}", failures.len(), failures.join("\n---\n"));
}

/// Every extended-profile kernel (barriers, shared arrays, guarded
/// writes) stays inside the supported CUDA subset: parse + type-check
/// must succeed, and shared arrays must be classified as such.
#[test]
fn extended_corpus_loads_and_classifies() {
    let mut with_shared = 0;
    for seed in 0..80u64 {
        let src = KernelGen::extended(seed * 17 + 5).kernel();
        let unit = KernelUnit::load(&src)
            .unwrap_or_else(|e| panic!("extended kernel must load: {e}\n{src}"));
        if src.contains("__shared__") {
            with_shared += 1;
            assert_eq!(unit.shared_arrays(), vec!["s"], "seed {seed}:\n{src}");
        }
    }
    assert!(with_shared > 20, "only {with_shared}/80 extended kernels used shared memory");
}

/// The §III symbolic encoding also agrees with the interpreter on the
/// *extended* corpus — barrier intervals, shared-array traffic and
/// guarded writes included — at small concrete configurations.
#[test]
fn extended_symbolic_encoding_matches_interpreter() {
    let bits = 8;
    let mut failures = Vec::new();
    for seed in 0..40u64 {
        let mut g = KernelGen::extended(seed * 53 + 11);
        let src = g.kernel();
        let unit = match KernelUnit::load(&src) {
            Ok(u) => u,
            Err(e) => panic!("extended kernel must parse: {e}\n{src}"),
        };
        let n = g.rng_mut().gen_range(1..5);
        let cfg = GpuConfig::concrete_1d(bits, n);

        let mut inputs = ConcreteInputs::default();
        inputs.scalars.insert("p".into(), g.rng_mut().gen_range(0..256));
        let in_map: HashMap<u64, u64> =
            (0..16).map(|i| (i, g.rng_mut().gen_range(0..256))).collect();
        inputs.arrays.insert("in".into(), in_map.clone());

        let truth = pug_ir::run_concrete(&unit.kernel, &unit.types, &cfg, &inputs).unwrap();

        let mut ctx = pug_smt::Ctx::new();
        let enc = pugpara::nonparam::encode(&mut ctx, &unit, &cfg, "s").unwrap();
        let mut env = Env::new();
        let arr_val = |m: &HashMap<u64, u64>| Value::Array {
            entries: m.clone(),
            default: 0,
            index_width: bits,
            elem_width: bits,
        };
        env.insert(enc.base_arrays["in"], arr_val(&in_map));
        env.insert(enc.base_arrays["out"], arr_val(&HashMap::new()));
        let p = ctx.mk_var("p", pug_smt::Sort::BitVec(bits));
        env.insert(p, Value::Bv(inputs.scalars["p"], bits));

        let final_out = enc.final_arrays["out"];
        for cell in 0..16u64 {
            let idx = ctx.mk_bv_const(cell, bits);
            let sel = ctx.mk_select(final_out, idx);
            let got = pug_smt::eval::eval(&ctx, sel, &env).as_bv();
            let want = truth.read("out", cell);
            if got != want {
                failures.push(format!(
                    "seed {seed}, n={n}, out[{cell}]: symbolic {got} != concrete {want}\n{src}"
                ));
            }
        }
    }
    assert!(failures.is_empty(), "{} mismatches:\n{}", failures.len(), failures.join("\n---\n"));
}

#[test]
fn param_self_equivalence_on_random_race_free_kernels() {
    // A *race-free* kernel is trivially equivalent to itself and the
    // parameterized checker must never report a bug on the pair (k, k).
    // Race freedom is the method's stated precondition (§III "we assume
    // that no data races occur"; §IV "since there exists no conflict, at
    // most one thread will satisfy p"): on racy kernels the canonical
    // serialization is one of several outcomes and independent writer
    // instantiations may legitimately disagree. The paper's workflow runs
    // the race checker first — so does this property.
    use pugpara::equiv::{check_equivalence_param, CheckOptions};
    use std::time::Duration;
    let opts = CheckOptions::with_timeout(Duration::from_secs(60));
    let mut race_free_seen = 0;
    // The generator mostly emits racy kernels; scan seeds until enough
    // race-free ones have been exercised (deterministic, bounded).
    for seed in 0..96u64 {
        if race_free_seen >= 4 {
            break;
        }
        let mut g = KernelGen::basic(seed * 131 + 3);
        let src = g.kernel();
        let unit = KernelUnit::load(&src).unwrap();
        // Single (symbolic-width) block: the generator indexes by tid.x, so
        // a symbolic grid would alias the same cells across blocks.
        let cfg = GpuConfig {
            bits: 8,
            bdim: [pug_ir::Extent::Sym, pug_ir::Extent::Const(1), pug_ir::Extent::Const(1)],
            gdim: [pug_ir::Extent::Const(1), pug_ir::Extent::Const(1)],
        };
        let races = pugpara::check_races(&unit, &cfg, &opts).expect("race check runs");
        if !races.verdict.is_verified() {
            continue; // racy generator output: outside the method's domain
        }
        race_free_seen += 1;
        match check_equivalence_param(&unit, &unit, &cfg, &opts) {
            Ok(r) => assert!(
                !r.verdict.is_bug(),
                "self-equivalence of a race-free kernel must not be a bug (seed {seed}):\n{src}\n{}",
                r.verdict
            ),
            Err(e) => panic!("checker error on seed {seed}: {e}\n{src}"),
        }
    }
    assert!(race_free_seen >= 2, "generator must produce race-free kernels ({race_free_seen})");
}
