//! Fault-injection integration suite: the resilient runner must survive
//! solver panics, injected budget exhaustion, and spurious Unknowns —
//! descending the degradation ladder, carrying provenance, and never
//! aborting or hanging past the watchdog.
//!
//! Failpoints are process-global, so every test takes `FAULT_LOCK` and
//! resets the registry on drop (even on assertion failure).

use pugpara::failpoints::{self, Fault};
use pugpara::runner::{run_resilient, Rung, RungOutcome, RunnerOptions};
use pugpara::KernelUnit;
use pug_ir::GpuConfig;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Serializes fault tests and guarantees `failpoints::reset()` on exit.
struct FaultScope(#[allow(dead_code)] MutexGuard<'static, ()>);

impl FaultScope {
    fn armed(sites: &[(&str, Fault)]) -> FaultScope {
        let guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        failpoints::reset();
        for &(site, fault) in sites {
            failpoints::arm(site, fault);
        }
        FaultScope(guard)
    }
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        failpoints::reset();
    }
}

fn transpose_pair() -> (KernelUnit, KernelUnit) {
    let naive = KernelUnit::load(pug_kernels::transpose::NAIVE).unwrap();
    let buggy = KernelUnit::load(pug_kernels::transpose::BUGGY_ADDR).unwrap();
    (naive, buggy)
}

fn outcome_of(report: &pugpara::ResilientReport, rung: Rung) -> &RungOutcome {
    &report
        .provenance
        .rungs
        .iter()
        .find(|r| r.rung == rung)
        .unwrap_or_else(|| panic!("no record for rung {rung}"))
        .outcome
}

/// A panicking Param rung is caught, recorded, and the ladder answers on a
/// lower rung with the soundness downgrade attached.
#[test]
fn ladder_survives_param_rung_panic() {
    let _scope = FaultScope::armed(&[("runner::param", Fault::Panic)]);
    let (naive, _) = transpose_pair();
    let report =
        run_resilient(&naive, &naive, &GpuConfig::symbolic_2d(8), &RunnerOptions::default());

    assert!(
        matches!(outcome_of(&report, Rung::Param), RungOutcome::Crashed(_)),
        "Param must be recorded as crashed: {}",
        report.provenance.render()
    );
    assert!(report.verdict.is_verified(), "{}", report.provenance.render());
    assert_eq!(report.provenance.answered_by, Some(Rung::NonParam { n: 4 }));
    assert!(
        report.provenance.soundness_note.is_some(),
        "a NonParam answer must carry a downgrade note"
    );
    assert!(matches!(
        report.verdict,
        pugpara::Verdict::Verified(pugpara::Soundness::UnderApprox)
    ));
}

/// Injected budget exhaustion at a rung behaves exactly like a timeout.
#[test]
fn injected_exhaustion_is_a_rung_timeout() {
    let _scope = FaultScope::armed(&[("runner::param", Fault::BudgetExhausted)]);
    let (naive, _) = transpose_pair();
    let report =
        run_resilient(&naive, &naive, &GpuConfig::symbolic_2d(8), &RunnerOptions::default());

    assert!(matches!(outcome_of(&report, Rung::Param), RungOutcome::Timeout));
    assert!(report.verdict.is_verified(), "{}", report.provenance.render());
    assert_eq!(report.provenance.answered_by, Some(Rung::NonParam { n: 4 }));
}

/// A panic *inside the SAT solver* (not at a runner site) is still caught
/// at the rung boundary and the ladder keeps descending. Rungs whose
/// queries the rewriter discharges without the SAT solver may still answer
/// (that is the degradation ladder working); the hard guarantees are that
/// every solver-reaching rung records a crash, nothing aborts the process,
/// and any adopted verdict is honestly downgraded.
#[test]
fn solver_panic_poisons_every_rung_but_never_aborts() {
    let _scope = FaultScope::armed(&[("sat::solve", Fault::Panic)]);
    let naive = KernelUnit::load(pug_kernels::transpose::NAIVE).unwrap();
    let opt = KernelUnit::load(pug_kernels::transpose::OPTIMIZED).unwrap();
    let report =
        run_resilient(&naive, &opt, &GpuConfig::symbolic_2d(8), &RunnerOptions::default());

    // The fully parameterized proof needs the solver, so rung one crashes.
    assert!(
        matches!(outcome_of(&report, Rung::Param), RungOutcome::Crashed(_)),
        "{}",
        report.provenance.render()
    );
    match report.provenance.answered_by {
        // A weaker rung got through without SAT: verdict must be downgraded.
        Some(rung) => {
            assert_ne!(rung, Rung::Param, "{}", report.provenance.render());
            assert!(report.provenance.soundness_note.is_some());
            assert!(!report.verdict.is_bug(), "no bug exists in this pair");
        }
        // Or every rung needed the solver: full history, Timeout verdict.
        None => {
            assert!(report.verdict.is_timeout(), "{}", report.provenance.render());
            for r in &report.provenance.rungs {
                assert!(
                    matches!(
                        r.outcome,
                        RungOutcome::Crashed(_) | RungOutcome::Timeout | RungOutcome::Skipped(_)
                    ),
                    "rung {} escaped the fault: {}",
                    r.rung,
                    r.outcome
                );
            }
        }
    }
}

/// Spurious Unknowns from the SMT layer look like timeouts on every rung;
/// disarming restores normal operation in the same process (sticky faults
/// do not leak).
#[test]
fn spurious_unknown_descends_then_recovers() {
    let (naive, _) = transpose_pair();
    let cfg = GpuConfig::symbolic_2d(8);
    {
        let _scope = FaultScope::armed(&[("smt::check", Fault::SpuriousUnknown)]);
        let report = run_resilient(&naive, &naive, &cfg, &RunnerOptions::default());
        assert!(report.verdict.is_timeout(), "{}", report.provenance.render());
        for r in &report.provenance.rungs {
            assert!(
                matches!(r.outcome, RungOutcome::Timeout | RungOutcome::Skipped(_)),
                "rung {}: {}",
                r.rung,
                r.outcome
            );
        }
    }
    // Registry is clean again: the very same check now proves on rung one.
    let _scope = FaultScope::armed(&[]);
    let report = run_resilient(&naive, &naive, &cfg, &RunnerOptions::default());
    assert_eq!(report.provenance.answered_by, Some(Rung::Param));
    assert!(report.verdict.is_verified());
    assert!(report.provenance.soundness_note.is_none());
}

/// Bugs found on a fallback rung are reported as bugs — a crash above must
/// not mask a real non-equivalence below.
#[test]
fn bug_survives_faulted_upper_rungs() {
    let _scope = FaultScope::armed(&[("runner::param", Fault::Panic)]);
    let (naive, buggy) = transpose_pair();
    let report =
        run_resilient(&naive, &buggy, &GpuConfig::symbolic_2d(8), &RunnerOptions::default());

    assert!(report.verdict.is_bug(), "{}", report.provenance.render());
    assert!(matches!(report.provenance.answered_by, Some(Rung::NonParam { .. })));
}

/// The Param+C rung is exercised when concretizations are configured: with
/// Param faulted, the pinned-parameter rung answers and the verdict is
/// downgraded accordingly.
#[test]
fn concretized_rung_catches_param_fault() {
    let _scope = FaultScope::armed(&[("runner::param", Fault::BudgetExhausted)]);
    let (naive, _) = transpose_pair();
    let opts = RunnerOptions::default().concretized("width", 8).concretized("height", 8);
    let report = run_resilient(&naive, &naive, &GpuConfig::symbolic_2d(8), &opts);

    assert_eq!(
        report.provenance.answered_by,
        Some(Rung::ParamConcretized),
        "{}",
        report.provenance.render()
    );
    assert!(matches!(
        report.verdict,
        pugpara::Verdict::Verified(pugpara::Soundness::UnderApprox)
    ));
    assert!(report.provenance.soundness_note.as_deref().unwrap_or("").contains("pinned"));
}

/// A degradation fault inside SAT preprocessing (`sat::simplify`) aborts
/// the pass but never the answer: skipping BVE/subsumption/vivification is
/// always sound, so the Param rung still proves the pair — preprocessing
/// can stall neither the verdict nor the watchdog.
#[test]
fn aborted_preprocessing_still_answers_on_param() {
    let _scope = FaultScope::armed(&[("sat::simplify", Fault::BudgetExhausted)]);
    let (naive, _) = transpose_pair();
    let report =
        run_resilient(&naive, &naive, &GpuConfig::symbolic_2d(8), &RunnerOptions::default());

    assert_eq!(
        report.provenance.answered_by,
        Some(Rung::Param),
        "{}",
        report.provenance.render()
    );
    assert!(report.verdict.is_verified(), "{}", report.provenance.render());
    assert!(report.provenance.soundness_note.is_none());
}

/// A panic inside the preprocessing passes is caught at the rung boundary
/// exactly like a solver panic: the rung records a crash, the process never
/// aborts, and any adopted fallback verdict is honestly downgraded.
#[test]
fn simplify_panic_is_contained_at_the_rung_boundary() {
    let _scope = FaultScope::armed(&[("sat::simplify", Fault::Panic)]);
    let (naive, _) = transpose_pair();
    let report =
        run_resilient(&naive, &naive, &GpuConfig::symbolic_2d(8), &RunnerOptions::default());

    assert!(
        matches!(outcome_of(&report, Rung::Param), RungOutcome::Crashed(_)),
        "{}",
        report.provenance.render()
    );
    match report.provenance.answered_by {
        Some(rung) => {
            assert_ne!(rung, Rung::Param, "{}", report.provenance.render());
            assert!(report.provenance.soundness_note.is_some());
            assert!(!report.verdict.is_bug(), "no bug exists in this pair");
        }
        None => {
            assert!(report.verdict.is_timeout(), "{}", report.provenance.render());
        }
    }
}

/// Ladder runs are bounded in wall-clock even when every rung times out:
/// per-rung watchdog deadlines keep the whole descent under
/// rungs × (timeout + grace).
#[test]
fn faulted_ladder_finishes_promptly() {
    let _scope = FaultScope::armed(&[("smt::check", Fault::SpuriousUnknown)]);
    let (naive, _) = transpose_pair();
    let opts = RunnerOptions {
        rung_timeout: Some(Duration::from_secs(5)),
        ..RunnerOptions::default()
    };
    let started = std::time::Instant::now();
    let report = run_resilient(&naive, &naive, &GpuConfig::symbolic_2d(8), &opts);
    assert!(report.verdict.is_timeout());
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "faulted ladder took {:?}",
        started.elapsed()
    );
}
