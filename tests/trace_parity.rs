//! Trace parity: observability must be read-only.
//!
//! Attaching a recording [`TraceSink`] and a live [`MetricsRegistry`] to a
//! verification run must change *nothing* observable about the result —
//! not the verdict, not the soundness level, not which rung answered, not
//! the rung-by-rung outcomes, and not the query sequence of the answering
//! rung. The property is checked on the real kernel corpus, on fuzzed
//! kernels (basic and extended grammar), and under deterministic fault
//! injection — and every recorded trace must also validate structurally
//! (balanced spans, strictly increasing sequence), even when rungs panic.
//!
//! Failpoints are process-global, so every test serializes on one lock.

use pug_obs::{validate, MetricsRegistry, TraceSink};
use pugpara::failpoints::{self, Fault};
use pugpara::runner::{run_resilient, ResilientReport, RungOutcome, RunnerOptions};
use pugpara::{KernelUnit, Soundness, Verdict};
use pug_ir::GpuConfig;
use pug_testutil::KernelGen;
use std::sync::{Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

struct Scope(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Scope {
    fn armed(sites: &[(&str, Fault)]) -> Scope {
        let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        failpoints::reset();
        for &(site, fault) in sites {
            failpoints::arm(site, fault);
        }
        Scope(guard)
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        failpoints::reset();
    }
}

/// Everything the parity property quantifies over. Per-rung query counts
/// are compared only for *answered* rungs: a budget-limited rung's
/// progress depends on wall clock, traced or not.
fn fingerprint(r: &ResilientReport) -> String {
    let verdict = match &r.verdict {
        Verdict::Verified(Soundness::Sound) => "verified/sound".to_string(),
        Verdict::Verified(Soundness::UnderApprox) => "verified/under-approx".to_string(),
        Verdict::Bug(b) => format!("bug/{:?}", b.kind),
        Verdict::Timeout => "timeout".to_string(),
    };
    let answered = match r.provenance.answered_by {
        Some(rung) => rung.to_string(),
        None => "nobody".to_string(),
    };
    let mut out = format!("{verdict} by {answered}\n");
    for rung in &r.provenance.rungs {
        let outcome = match &rung.outcome {
            RungOutcome::Answered => "answered".to_string(),
            o => o.to_string(),
        };
        out.push_str(&format!("{} -> {outcome}", rung.rung));
        if matches!(rung.outcome, RungOutcome::Answered) {
            // The query sequence of an answered rung is deterministic:
            // same labels, same outcomes, in the same order.
            for q in &rung.stats {
                out.push_str(&format!("\n  {} = {}", q.label, q.outcome));
            }
        }
        out.push('\n');
    }
    out
}

/// Run a pair twice — sink disabled, then recording — and demand equal
/// fingerprints. Returns the recorded sink for structural validation.
fn assert_parity(
    name: &str,
    src: &KernelUnit,
    tgt: &KernelUnit,
    cfg: &GpuConfig,
    opts: &RunnerOptions,
) -> TraceSink {
    let plain = run_resilient(src, tgt, cfg, opts);
    let sink = TraceSink::recording();
    let traced_opts = opts
        .clone()
        .with_trace(sink.clone())
        .with_metrics(MetricsRegistry::new());
    let traced = run_resilient(src, tgt, cfg, &traced_opts);
    assert_eq!(
        fingerprint(&plain),
        fingerprint(&traced),
        "{name}: tracing changed the result\nuntraced:\n{}\ntraced:\n{}",
        plain.provenance.render(),
        traced.provenance.render()
    );
    let summary = validate(&sink.events())
        .unwrap_or_else(|e| panic!("{name}: recorded trace is structurally broken: {e}"));
    assert!(summary.spans > 0, "{name}: traced run recorded no spans");
    sink
}

/// The corpus pairs (the determinism suite's grid): every headline
/// equivalence pair, verified and buggy alike.
fn corpus_pairs() -> Vec<(&'static str, KernelUnit, KernelUnit, GpuConfig, RunnerOptions)> {
    let load = |s: &str| KernelUnit::load(s).unwrap();
    // 2 s deadline + concretization: the fully symbolic Param rung times
    // out deterministically (~19 s needed, 10x margin) and "+C." answers,
    // so the deadline path is exercised without dominating the suite.
    let transpose_opts = RunnerOptions::with_rung_timeout(std::time::Duration::from_secs(2))
        .concretized("width", 8)
        .concretized("height", 8);
    vec![
        (
            "transpose naive/opt",
            load(pug_kernels::transpose::NAIVE),
            load(pug_kernels::transpose::OPTIMIZED),
            GpuConfig::symbolic_2d(8),
            transpose_opts,
        ),
        (
            "transpose naive/buggy-addr",
            load(pug_kernels::transpose::NAIVE),
            load(pug_kernels::transpose::BUGGY_ADDR),
            GpuConfig::symbolic_2d(8),
            RunnerOptions::default(),
        ),
        (
            "reduction v0/v1",
            load(pug_kernels::reduction::V0),
            load(pug_kernels::reduction::V1),
            GpuConfig::symbolic_1d(8),
            RunnerOptions::default(),
        ),
        (
            "reduction v0/buggy-index",
            load(pug_kernels::reduction::V0),
            load(pug_kernels::reduction::BUGGY_INDEX),
            GpuConfig::symbolic_1d(8),
            RunnerOptions::default(),
        ),
        (
            "vector-add ok/buggy",
            load(pug_kernels::vector_add::KERNEL),
            load(pug_kernels::vector_add::BUGGY),
            GpuConfig::symbolic_1d(8),
            RunnerOptions::default(),
        ),
    ]
}

/// Single-block symbolic-width configuration for fuzzed kernels (the
/// generator indexes by `tid.x` only).
fn fuzz_cfg() -> GpuConfig {
    GpuConfig {
        bits: 8,
        bdim: [pug_ir::Extent::Sym, pug_ir::Extent::Const(1), pug_ir::Extent::Const(1)],
        gdim: [pug_ir::Extent::Const(1), pug_ir::Extent::Const(1)],
    }
}

#[test]
fn tracing_is_verdict_neutral_on_corpus_pairs() {
    let _scope = Scope::armed(&[]);
    for (name, src, tgt, cfg, opts) in corpus_pairs() {
        assert_parity(name, &src, &tgt, &cfg, &opts);
    }
}

#[test]
fn tracing_is_verdict_neutral_on_fuzzed_kernels() {
    let _scope = Scope::armed(&[]);
    for seed in 0..4u64 {
        let basic = KernelGen::basic(seed * 13 + 1).kernel();
        let unit = KernelUnit::load(&basic).unwrap();
        assert_parity(
            &format!("basic fuzz seed {seed}"),
            &unit,
            &unit,
            &fuzz_cfg(),
            &RunnerOptions::default(),
        );
        let extended = KernelGen::extended(seed * 71 + 9).kernel();
        let unit = KernelUnit::load(&extended).unwrap();
        assert_parity(
            &format!("extended fuzz seed {seed}"),
            &unit,
            &unit,
            &fuzz_cfg(),
            &RunnerOptions::default(),
        );
    }
}

/// Parity holds when rungs fail: with the Param rung deterministically
/// exhausted, the traced and untraced ladders must still agree — and the
/// trace must stay balanced even though a rung was cut short.
#[test]
fn tracing_is_verdict_neutral_under_budget_faults() {
    let _scope = Scope::armed(&[("runner::param", Fault::BudgetExhausted)]);
    let naive = KernelUnit::load(pug_kernels::transpose::NAIVE).unwrap();
    let sink = assert_parity(
        "param exhausted",
        &naive,
        &naive,
        &GpuConfig::symbolic_2d(8),
        &RunnerOptions::default(),
    );
    // The faulted rung still opened and closed its span.
    let names: Vec<String> =
        sink.events().iter().map(|e| e.name.clone()).collect();
    assert!(names.iter().any(|n| n == "rung:Param"), "faulted rung missing from trace");
}

/// Spans stay balanced across panic unwinds: a panicking solver rips
/// through query/rung scopes, and the guards must close them on the way
/// out (the runner's catch_unwind turns the panic into a Crashed rung).
#[test]
fn traces_stay_balanced_when_rungs_panic() {
    let _scope = Scope::armed(&[("sat::solve", Fault::Panic)]);
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // injected panics are expected
    let naive = KernelUnit::load(pug_kernels::transpose::NAIVE).unwrap();
    let sink = TraceSink::recording();
    let opts = RunnerOptions::default().with_trace(sink.clone());
    let report = run_resilient(&naive, &naive, &GpuConfig::symbolic_2d(8), &opts);
    std::panic::set_hook(prev);
    let crashed = report
        .provenance
        .rungs
        .iter()
        .filter(|r| matches!(r.outcome, RungOutcome::Crashed(_)))
        .count();
    assert!(crashed > 0, "panic fault did not reach any rung:\n{}", report.provenance.render());
    let summary = validate(&sink.events())
        .unwrap_or_else(|e| panic!("trace unbalanced after panics: {e}"));
    assert!(summary.spans > 0);
}
