//! Differential suite for intra-rung obligation parallelism: for every
//! corpus kernel pair and for fuzzed `KernelGen` kernels, checking with a
//! pooled obligation screen (`CheckOptions::with_obligation_parallelism(n)`
//! for n ∈ {2, 8}) must return the same verdict — rendered bit-identically,
//! including bug witnesses — as the plain sequential loop
//! (`CheckOptions::sequential()`), on both the incremental and one-shot
//! backends.
//!
//! Why the contract is this strong: the pooled path only *screens* the
//! per-array obligations concurrently. All-clean screens merge worker
//! effects in array index order; any decisive outcome (bug, timeout,
//! error, worker panic) discards the screen and re-runs the sequential
//! loop on untouched master state — so decisive answers literally *are*
//! sequential answers. The one permitted divergence is the performance
//! class of clean obligations (`valid` vs `valid (cached)`): workers
//! freeze the shared cache for the screen, so a row the sequential loop
//! answers from a same-run cache entry may be re-solved in a pool (and
//! vice versa). Classes are folded accordingly when comparing pooled
//! against sequential; *across pool sizes* even the exact outcome strings
//! must agree, because each array's outcome depends only on the frozen
//! shared state and the array itself, never on scheduling.
//!
//! Failpoints are process-global and this binary's tests run concurrently,
//! so every test takes `FAULT_LOCK` (armed or not).

use pug_ir::GpuConfig;
use pug_obs::MetricsRegistry;
use pug_testutil::KernelGen;
use pugpara::equiv::{check_equivalence_param, CheckOptions, Report};
use pugpara::failpoints::{self, Fault};
use pugpara::runner::{run_resilient, RunnerOptions};
use pugpara::{KernelUnit, Verdict};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Four independent output arrays — the corpus kernels write a single
/// global each, so only multi-output kernels actually fan the per-array
/// obligations across the pool (the single-array cases degenerate to the
/// sequential loop by the `pool_width` cap).
const MULTI_SRC: &str = r#"
__global__ void multi(int *a, int *b, int *c, int *d, int *in, int n) {
    requires(n > 0);
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        a[i] = in[i] * 3;
        b[i] = in[i] + in[i];
        c[i] = in[i] * in[i];
        d[i] = (in[i] + n) * 2;
    }
}
"#;

/// Equivalent rewrite of every array (reassociated / strength-reduced).
const MULTI_EQUIV: &str = r#"
__global__ void multi(int *a, int *b, int *c, int *d, int *in, int n) {
    requires(n > 0);
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        a[i] = in[i] + in[i] + in[i];
        b[i] = in[i] * 2;
        c[i] = in[i] * in[i];
        d[i] = in[i] * 2 + n * 2;
    }
}
"#;

/// Array `c` differs — one pooled obligation turns decisive while its
/// siblings are clean, forcing the discard-and-rerun fallback.
const MULTI_BUGGY: &str = r#"
__global__ void multi(int *a, int *b, int *c, int *d, int *in, int n) {
    requires(n > 0);
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        a[i] = in[i] * 3;
        b[i] = in[i] + in[i];
        c[i] = in[i] * in[i] + 1;
        d[i] = (in[i] + n) * 2;
    }
}
"#;

static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Serializes tests (failpoints are process-global) and guarantees
/// `failpoints::reset()` on exit.
struct FaultScope(#[allow(dead_code)] MutexGuard<'static, ()>);

impl FaultScope {
    fn armed(sites: &[(&str, Fault)]) -> FaultScope {
        let guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        failpoints::reset();
        for &(site, fault) in sites {
            failpoints::arm(site, fault);
        }
        FaultScope(guard)
    }

    fn clean() -> FaultScope {
        FaultScope::armed(&[])
    }
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        failpoints::reset();
    }
}

fn load(src: &str) -> KernelUnit {
    KernelUnit::load(src).unwrap()
}

fn opts() -> CheckOptions {
    CheckOptions::with_timeout(Duration::from_secs(120))
}

/// Fold the cache-visibility suffix away: pooled workers freeze the shared
/// cache during a screen, so `valid` vs `valid (cached)` may flip against
/// the sequential loop. `valid (rewrite)` is term-level and deterministic,
/// but folds into the same answer class anyway.
fn outcome_class(outcome: &str) -> &'static str {
    match outcome {
        "valid" | "valid (cached)" | "valid (rewrite)" => "valid",
        "counterexample" => "counterexample",
        _ => "timeout",
    }
}

/// Verdicts must match *rendered*, witness bytes included: decisive pooled
/// answers come from a sequential re-run on identical state, so even the
/// countermodel must agree.
fn assert_same_verdict(label: &str, a: &Verdict, b: &Verdict) {
    assert_eq!(
        format!("{a}"),
        format!("{b}"),
        "{label}: pooled and sequential verdicts (incl. witnesses) diverge"
    );
}

fn assert_reports_agree(label: &str, pooled: &Report, sequential: &Report, exact: bool) {
    assert_same_verdict(label, &pooled.verdict, &sequential.verdict);
    assert_eq!(
        pooled.queries.len(),
        sequential.queries.len(),
        "{label}: query counts diverge"
    );
    for (qa, qb) in pooled.queries.iter().zip(sequential.queries.iter()) {
        assert_eq!(qa.label, qb.label, "{label}: query order diverges");
        if exact {
            assert_eq!(
                qa.outcome, qb.outcome,
                "{label}: query `{}` outcome diverges exactly",
                qa.label
            );
        } else {
            assert_eq!(
                outcome_class(&qa.outcome),
                outcome_class(&qb.outcome),
                "{label}: query `{}` class diverges ({} vs {})",
                qa.label,
                qa.outcome,
                qb.outcome
            );
        }
    }
}

fn corpus() -> Vec<(&'static str, KernelUnit, KernelUnit, GpuConfig)> {
    vec![
        (
            "multi-output equivalent",
            load(MULTI_SRC),
            load(MULTI_EQUIV),
            GpuConfig::symbolic_1d(8),
        ),
        (
            "multi-output buggy",
            load(MULTI_SRC),
            load(MULTI_BUGGY),
            GpuConfig::symbolic_1d(8),
        ),
        (
            "transpose ok",
            load(pug_kernels::transpose::NAIVE),
            load(pug_kernels::transpose::OPTIMIZED),
            GpuConfig::symbolic(8),
        ),
        (
            "transpose buggy addr",
            load(pug_kernels::transpose::NAIVE),
            load(pug_kernels::transpose::BUGGY_ADDR),
            GpuConfig::symbolic(8),
        ),
        (
            "transpose unconstrained",
            load(pug_kernels::transpose::NAIVE),
            load(pug_kernels::transpose::OPTIMIZED_UNCONSTRAINED),
            GpuConfig::symbolic(8),
        ),
        (
            "vector_add self",
            load(pug_kernels::vector_add::KERNEL),
            load(pug_kernels::vector_add::KERNEL),
            GpuConfig::symbolic_1d(8),
        ),
        (
            "vector_add buggy",
            load(pug_kernels::vector_add::KERNEL),
            load(pug_kernels::vector_add::BUGGY),
            GpuConfig::symbolic_1d(8),
        ),
    ]
}

#[test]
fn pooled_matches_sequential_on_corpus() {
    let _scope = FaultScope::clean();
    for (label, src, tgt, cfg) in corpus() {
        let seq = check_equivalence_param(&src, &tgt, &cfg, &opts().sequential()).unwrap();
        let seq1 =
            check_equivalence_param(&src, &tgt, &cfg, &opts().sequential().one_shot()).unwrap();
        for pool in [2usize, 8] {
            let p = check_equivalence_param(
                &src,
                &tgt,
                &cfg,
                &opts().with_obligation_parallelism(pool),
            )
            .unwrap();
            assert_reports_agree(&format!("{label} (incremental, pool={pool})"), &p, &seq, false);
            let p1 = check_equivalence_param(
                &src,
                &tgt,
                &cfg,
                &opts().with_obligation_parallelism(pool).one_shot(),
            )
            .unwrap();
            assert_reports_agree(&format!("{label} (one-shot, pool={pool})"), &p1, &seq1, false);
        }
    }
}

#[test]
fn pooled_outcomes_identical_across_pool_sizes() {
    // Stronger than class equality: an array's outcome strings depend only
    // on the frozen shared state and the array itself, so pool widths 2
    // and 8 must agree exactly — including which rows are cached — run
    // after run.
    let _scope = FaultScope::clean();
    for (label, src, tgt, cfg) in corpus() {
        let p2 =
            check_equivalence_param(&src, &tgt, &cfg, &opts().with_obligation_parallelism(2))
                .unwrap();
        let p8 =
            check_equivalence_param(&src, &tgt, &cfg, &opts().with_obligation_parallelism(8))
                .unwrap();
        assert_reports_agree(&format!("{label} (pool 2 vs 8)"), &p2, &p8, true);
        // And the pooled path is self-deterministic across repeated runs.
        let p2b =
            check_equivalence_param(&src, &tgt, &cfg, &opts().with_obligation_parallelism(2))
                .unwrap();
        assert_reports_agree(&format!("{label} (pool 2 repeat)"), &p2, &p2b, true);
    }
}

#[test]
fn pooled_matches_sequential_without_learnt_exchange() {
    // The learnt-clause ring only changes solver-internal effort; switching
    // it off must not move any verdict or outcome class.
    let _scope = FaultScope::clean();
    for (label, src, tgt, cfg) in corpus() {
        let with = check_equivalence_param(&src, &tgt, &cfg, &opts().with_obligation_parallelism(4))
            .unwrap();
        let without = check_equivalence_param(
            &src,
            &tgt,
            &cfg,
            &opts().with_obligation_parallelism(4).without_learnt_exchange(),
        )
        .unwrap();
        assert_reports_agree(&format!("{label} (exchange on/off)"), &with, &without, true);
    }
}

#[test]
fn pooled_screen_engages_and_merges_deterministically() {
    // Guard against vacuous passes: assert via the metrics registry that
    // the clean multi-output pair actually ran through the pool (sessions
    // forked, arrays screened in parallel, no fallback) and that the buggy
    // pair took the decisive fallback — with verdicts identical to
    // sequential either way.
    let _scope = FaultScope::clean();
    let cfg = GpuConfig::symbolic_1d(8);

    let clean_src = load(MULTI_SRC);
    let clean_tgt = load(MULTI_EQUIV);
    let seq = check_equivalence_param(&clean_src, &clean_tgt, &cfg, &opts().sequential()).unwrap();
    let metrics = MetricsRegistry::new();
    let pooled = check_equivalence_param(
        &clean_src,
        &clean_tgt,
        &cfg,
        &opts().with_obligation_parallelism(4).with_metrics(metrics.clone()),
    )
    .unwrap();
    let snap = metrics.snapshot();
    assert_eq!(snap.gauge("pool.sessions"), Some(4), "pool never forked");
    assert_eq!(snap.counter("obligations.parallel"), 4, "arrays not screened in parallel");
    assert_eq!(snap.counter("obligations.fallback"), 0, "clean screen fell back");
    assert!(pooled.verdict.is_verified(), "{}", pooled.verdict);
    assert_reports_agree("multi-output clean engagement", &pooled, &seq, false);

    let buggy_tgt = load(MULTI_BUGGY);
    let seq_bug =
        check_equivalence_param(&clean_src, &buggy_tgt, &cfg, &opts().sequential()).unwrap();
    let bug_metrics = MetricsRegistry::new();
    let pooled_bug = check_equivalence_param(
        &clean_src,
        &buggy_tgt,
        &cfg,
        &opts().with_obligation_parallelism(4).with_metrics(bug_metrics.clone()),
    )
    .unwrap();
    assert_eq!(
        bug_metrics.snapshot().counter("obligations.fallback"),
        1,
        "decisive screen must discard and re-run sequentially"
    );
    assert!(matches!(pooled_bug.verdict, Verdict::Bug(_)), "{}", pooled_bug.verdict);
    // Decisive answers come from the sequential re-run, so the comparison
    // is exact — witness bytes and cached-vs-solved classes included.
    assert_reports_agree("multi-output buggy fallback", &pooled_bug, &seq_bug, true);
}

#[test]
fn pooled_matches_sequential_on_fuzzed_kernels() {
    let _scope = FaultScope::clean();
    let cfg = GpuConfig::symbolic_1d(8);
    let mut gens: Vec<(String, String)> = Vec::new();
    for seed in 0..8u64 {
        gens.push((format!("extended seed {seed}"), KernelGen::extended(seed).kernel()));
    }
    for seed in 100..106u64 {
        gens.push((format!("basic seed {seed}"), KernelGen::basic(seed).kernel()));
    }
    // Multi-output fuzz: 2–5 independent arrays per kernel, so the pool
    // genuinely fans out (single-`out` grammar kernels cap the width at 1).
    for seed in 200..212u64 {
        let arrays = 2 + (seed as usize % 4);
        gens.push((
            format!("multi extended seed {seed} ({arrays} arrays)"),
            KernelGen::extended(seed).multi_output_kernel(arrays),
        ));
        gens.push((
            format!("multi basic seed {seed} ({arrays} arrays)"),
            KernelGen::basic(seed).multi_output_kernel(arrays),
        ));
    }
    for (label, src) in gens {
        let Ok(unit) = KernelUnit::load(&src) else { continue };
        let Ok(seq) = check_equivalence_param(&unit, &unit, &cfg, &opts().sequential()) else {
            continue; // alignment limits apply to both paths equally
        };
        let pooled =
            check_equivalence_param(&unit, &unit, &cfg, &opts().with_obligation_parallelism(2))
                .unwrap();
        assert_reports_agree(&format!("fuzz {label}\n{src}"), &pooled, &seq, false);
        let wide =
            check_equivalence_param(&unit, &unit, &cfg, &opts().with_obligation_parallelism(8))
                .unwrap();
        assert_reports_agree(&format!("fuzz pool 2 vs 8 {label}\n{src}"), &wide, &pooled, true);
    }
}

#[test]
fn pooled_reduction_concretized_agrees() {
    let _scope = FaultScope::clean();
    let v0 = load(pug_kernels::reduction::V0);
    let v1 = load(pug_kernels::reduction::V1);
    let cfg = GpuConfig::symbolic_1d(8);
    let o = opts().concretized("n", 8);
    let seq = check_equivalence_param(&v0, &v1, &cfg, &o.clone().sequential()).unwrap();
    let pooled =
        check_equivalence_param(&v0, &v1, &cfg, &o.with_obligation_parallelism(4)).unwrap();
    assert_reports_agree("reduction v0/v1 +C", &pooled, &seq, false);
}

#[test]
fn pooled_budget_exhaustion_falls_back_to_sequential_answer() {
    // An injected budget exhaustion inside `smt::check` makes every query
    // answer Unknown. In a pool that is a decisive (timeout) screen, so the
    // master discards it and re-runs sequentially — where the sticky fault
    // reproduces identically. Both paths must report the same timeout at
    // the same first query.
    let _scope = FaultScope::armed(&[("smt::check", Fault::BudgetExhausted)]);
    let (src, tgt) = (load(MULTI_SRC), load(MULTI_EQUIV));
    let cfg = GpuConfig::symbolic_1d(8);
    let seq = check_equivalence_param(&src, &tgt, &cfg, &opts().sequential()).unwrap();
    let metrics = MetricsRegistry::new();
    let pooled = check_equivalence_param(
        &src,
        &tgt,
        &cfg,
        &opts().with_obligation_parallelism(4).with_metrics(metrics.clone()),
    )
    .unwrap();
    assert!(matches!(seq.verdict, Verdict::Timeout), "fault must surface as timeout");
    assert_eq!(
        metrics.snapshot().counter("obligations.fallback"),
        1,
        "exhausted pooled screen must fall back"
    );
    assert_reports_agree("injected budget exhaustion", &pooled, &seq, true);
}

#[test]
fn pooled_worker_panic_rung_still_answers_with_provenance() {
    // A panic inside a pooled obligation unwinds the worker; the screen is
    // decisive, the sequential fallback re-panics identically (failpoints
    // are sticky), and the rung boundary records the crash — exactly the
    // sequential ladder's provenance, rung for rung.
    let _scope = FaultScope::armed(&[("smt::check", Fault::Panic)]);
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let (src, tgt) = (load(MULTI_SRC), load(MULTI_EQUIV));
    let cfg = GpuConfig::symbolic_1d(8);
    let seq = run_resilient(
        &src,
        &tgt,
        &cfg,
        &RunnerOptions::default().with_obligation_parallelism(1),
    );
    let pooled = run_resilient(
        &src,
        &tgt,
        &cfg,
        &RunnerOptions::default().with_obligation_parallelism(4),
    );
    std::panic::set_hook(hook);
    assert_eq!(format!("{}", pooled.verdict), format!("{}", seq.verdict));
    assert_eq!(pooled.provenance.answered_by, seq.provenance.answered_by);
    assert_eq!(pooled.provenance.rungs.len(), seq.provenance.rungs.len());
    for (ra, rb) in pooled.provenance.rungs.iter().zip(seq.provenance.rungs.iter()) {
        assert_eq!(ra.rung, rb.rung);
        assert_eq!(
            std::mem::discriminant(&ra.outcome),
            std::mem::discriminant(&rb.outcome),
            "rung {} outcome kind diverges: {} vs {}",
            ra.rung,
            ra.outcome,
            rb.outcome
        );
    }
}

#[test]
fn pooled_resilient_runner_provenance_agrees() {
    // The full degradation ladder, pooled vs sequential: same verdict,
    // same answering rung, same rung outcomes, same obligations in the
    // same order.
    let _scope = FaultScope::clean();
    let naive = load(pug_kernels::transpose::NAIVE);
    let buggy = load(pug_kernels::transpose::BUGGY_ADDR);
    let cfg = GpuConfig::symbolic_2d(8);

    let seq = run_resilient(
        &naive,
        &buggy,
        &cfg,
        &RunnerOptions::default().with_obligation_parallelism(1),
    );
    let pooled = run_resilient(
        &naive,
        &buggy,
        &cfg,
        &RunnerOptions::default().with_obligation_parallelism(8),
    );

    assert_eq!(format!("{}", pooled.verdict), format!("{}", seq.verdict));
    assert_eq!(pooled.provenance.answered_by, seq.provenance.answered_by);
    assert_eq!(pooled.provenance.rungs.len(), seq.provenance.rungs.len());
    for (ra, rb) in pooled.provenance.rungs.iter().zip(seq.provenance.rungs.iter()) {
        assert_eq!(ra.rung, rb.rung);
        assert_eq!(
            std::mem::discriminant(&ra.outcome),
            std::mem::discriminant(&rb.outcome),
            "rung {} outcome kind diverges: {} vs {}",
            ra.rung,
            ra.outcome,
            rb.outcome
        );
        assert_eq!(ra.stats.len(), rb.stats.len(), "rung {} query counts diverge", ra.rung);
        for (qa, qb) in ra.stats.iter().zip(rb.stats.iter()) {
            assert_eq!(qa.label, qb.label, "rung {} query order diverges", ra.rung);
            assert_eq!(
                outcome_class(&qa.outcome),
                outcome_class(&qb.outcome),
                "rung {} query `{}` class diverges",
                ra.rung,
                qa.label
            );
        }
    }
}
