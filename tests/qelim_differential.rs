//! Differential suite for the generalized (Presburger) quantifier
//! elimination: the new engine must never *change* an answer — only move
//! it up the ladder.
//!
//! * On every corpus pair and on fuzzed `KernelGen` kernels, checking with
//!   `generalized_qelim` on and off (× incremental/one-shot backends,
//!   × sequential/pooled obligation screens) returns identically rendered
//!   verdicts at the `Param` rung whenever both sides can run it.
//! * The grid-stride pair is the rung-improvement witness: with the
//!   generalized elimination the `Param` rung proves it sound for every
//!   block size; without it the rung fails on the symbolic-stride loop and
//!   the ladder descends to `NonParam(4)` with downgrade provenance.
//! * The `core::qelim` failpoint aborts the elimination mid-run: the rung
//!   must degrade to the legacy residual-drop path (same downgrade note,
//!   `qelim.residual_dropped` counted), never to a wrong answer.
//!
//! Failpoints are process-global and this binary's tests run concurrently,
//! so every test takes `FAULT_LOCK` (armed or not).

use pug_ir::GpuConfig;
use pug_obs::MetricsRegistry;
use pug_testutil::KernelGen;
use pugpara::equiv::{check_equivalence_param, CheckOptions};
use pugpara::failpoints::{self, Fault};
use pugpara::runner::{run_resilient, Rung, RungOutcome, RunnerOptions};
use pugpara::{KernelUnit, Verdict};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

static FAULT_LOCK: Mutex<()> = Mutex::new(());

struct FaultScope(#[allow(dead_code)] MutexGuard<'static, ()>);

impl FaultScope {
    fn armed(sites: &[(&str, Fault)]) -> FaultScope {
        let guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        failpoints::reset();
        for &(site, fault) in sites {
            failpoints::arm(site, fault);
        }
        FaultScope(guard)
    }

    fn clean() -> FaultScope {
        FaultScope::armed(&[])
    }
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        failpoints::reset();
    }
}

fn load(src: &str) -> KernelUnit {
    KernelUnit::load(src).unwrap()
}

fn opts() -> CheckOptions {
    CheckOptions::with_timeout(Duration::from_secs(120))
}

/// Corpus pairs where the `Param` rung runs with the elimination both on
/// and off (no symbolic-stride loops — those are exercised separately,
/// because without the generalized elimination the rung *must* fail).
fn both_sides_corpus() -> Vec<(&'static str, KernelUnit, KernelUnit, GpuConfig)> {
    vec![
        (
            "transpose ok",
            load(pug_kernels::transpose::NAIVE),
            load(pug_kernels::transpose::OPTIMIZED),
            GpuConfig::symbolic(8),
        ),
        (
            "transpose buggy addr",
            load(pug_kernels::transpose::NAIVE),
            load(pug_kernels::transpose::BUGGY_ADDR),
            GpuConfig::symbolic(8),
        ),
        (
            "transpose unconstrained",
            load(pug_kernels::transpose::NAIVE),
            load(pug_kernels::transpose::OPTIMIZED_UNCONSTRAINED),
            GpuConfig::symbolic(8),
        ),
        (
            "reduction v0/v1",
            load(pug_kernels::reduction::V0),
            load(pug_kernels::reduction::V1),
            GpuConfig::symbolic_1d(8),
        ),
        (
            "vector_add self",
            load(pug_kernels::vector_add::KERNEL),
            load(pug_kernels::vector_add::KERNEL),
            GpuConfig::symbolic_1d(8),
        ),
        (
            "vector_add buggy",
            load(pug_kernels::vector_add::KERNEL),
            load(pug_kernels::vector_add::BUGGY),
            GpuConfig::symbolic_1d(8),
        ),
    ]
}

/// The full on/off × incremental/one-shot × sequential/pooled grid over
/// corpus pairs: rendered verdicts must agree cell by cell.
#[test]
fn corpus_grid_verdicts_identical() {
    let _scope = FaultScope::clean();
    for (label, src, tgt, cfg) in both_sides_corpus() {
        let reference = check_equivalence_param(&src, &tgt, &cfg, &opts()).unwrap();
        for one_shot in [false, true] {
            for pooled in [false, true] {
                for qelim_off in [false, true] {
                    let mut o = opts();
                    if one_shot {
                        o = o.one_shot();
                    }
                    o = if pooled { o.with_obligation_parallelism(4) } else { o.sequential() };
                    if qelim_off {
                        o = o.no_generalized_qelim();
                    }
                    let r = check_equivalence_param(&src, &tgt, &cfg, &o).unwrap();
                    assert_eq!(
                        format!("{}", r.verdict),
                        format!("{}", reference.verdict),
                        "{label}: verdict diverges at one_shot={one_shot} \
                         pooled={pooled} qelim_off={qelim_off}"
                    );
                }
            }
        }
    }
}

/// Fuzzed kernels: self-equivalence through the ladder must agree with
/// the elimination on and off.
#[test]
fn kernelgen_grid_verdicts_identical() {
    let _scope = FaultScope::clean();
    for i in 0..12u64 {
        let src = if i % 2 == 0 {
            KernelGen::basic(i * 13 + 1).kernel()
        } else {
            KernelGen::extended(i * 71 + 9).kernel()
        };
        let unit = load(&src);
        let cfg = GpuConfig::symbolic_1d(8);
        let on = run_resilient(&unit, &unit, &cfg, &RunnerOptions::default());
        let off =
            run_resilient(&unit, &unit, &cfg, &RunnerOptions::default().no_generalized_qelim());
        assert_eq!(
            format!("{}", on.verdict),
            format!("{}", off.verdict),
            "seed {i}: ladder verdict diverges with the elimination off\n{src}"
        );
        for one_shot in [false, true] {
            let mut a = opts();
            let mut b = opts().no_generalized_qelim();
            if one_shot {
                a = a.one_shot();
                b = b.one_shot();
            }
            let ra = check_equivalence_param(&unit, &unit, &cfg, &a).unwrap();
            let rb = check_equivalence_param(&unit, &unit, &cfg, &b).unwrap();
            assert_eq!(
                format!("{}", ra.verdict),
                format!("{}", rb.verdict),
                "seed {i}: Param verdict diverges (one_shot={one_shot})\n{src}"
            );
        }
    }
}

/// The headline: the symbolic-stride pair answers at `Param` (sound, for
/// every block size) with the generalized elimination, and only at
/// `NonParam(4)` (with downgrade provenance) without it.
#[test]
fn stride_pair_improves_rung() {
    let _scope = FaultScope::clean();
    let src = load(pug_kernels::stride::GRID_STRIDE);
    let tgt = load(pug_kernels::stride::GRID_STRIDE_REASSOC);
    let cfg = GpuConfig::symbolic_1d(8);

    let on = run_resilient(&src, &tgt, &cfg, &RunnerOptions::default());
    assert_eq!(on.provenance.answered_by, Some(Rung::Param), "{}", on.provenance.render());
    assert!(
        matches!(on.verdict, Verdict::Verified(pugpara::Soundness::Sound)),
        "generalized elimination must prove the stride pair sound, got {}",
        on.verdict
    );
    assert!(on.provenance.soundness_note.is_none());

    let off = run_resilient(&src, &tgt, &cfg, &RunnerOptions::default().no_generalized_qelim());
    assert_eq!(
        off.provenance.answered_by,
        Some(Rung::NonParam { n: 4 }),
        "{}",
        off.provenance.render()
    );
    assert!(off.verdict.is_verified(), "got {}", off.verdict);
    let param = off.provenance.rungs.iter().find(|r| r.rung == Rung::Param).unwrap();
    match &param.outcome {
        RungOutcome::Failed(m) => assert!(
            m.contains("Presburger") || m.contains("configuration-only"),
            "Param failure must blame the missing elimination, got: {m}"
        ),
        o => panic!("Param rung must fail without the elimination, got {o}"),
    }
    let note = off.provenance.soundness_note.as_deref().unwrap();
    assert!(note.contains("n=4"), "downgrade note must pin the thread count, got: {note}");
}

/// Aborting the elimination mid-run via the `core::qelim` failpoint
/// degrades to the legacy residual-drop path: same downgrade provenance as
/// turning the flag off, and the drop is counted.
#[test]
fn qelim_failpoint_degrades_with_provenance() {
    let _scope = FaultScope::armed(&[("core::qelim", Fault::BudgetExhausted)]);
    let src = load(pug_kernels::stride::GRID_STRIDE);
    let tgt = load(pug_kernels::stride::GRID_STRIDE_REASSOC);
    let cfg = GpuConfig::symbolic_1d(8);
    let metrics = MetricsRegistry::new();
    let opts = RunnerOptions::default().with_metrics(metrics.clone());

    let r = run_resilient(&src, &tgt, &cfg, &opts);
    assert_eq!(
        r.provenance.answered_by,
        Some(Rung::NonParam { n: 4 }),
        "{}",
        r.provenance.render()
    );
    assert!(r.verdict.is_verified(), "got {}", r.verdict);
    let param = r.provenance.rungs.iter().find(|rr| rr.rung == Rung::Param).unwrap();
    assert!(
        matches!(param.outcome, RungOutcome::Failed(_)),
        "Param must fail when the elimination faults, got {}",
        param.outcome
    );
    let note = r.provenance.soundness_note.as_deref().unwrap();
    assert!(note.contains("n=4"), "downgrade note must pin the thread count, got: {note}");

    let snap = metrics.snapshot();
    assert!(
        snap.counter("qelim.residual_dropped") >= 1,
        "the aborted elimination must count its residual drops"
    );
    assert_eq!(snap.counter("qelim.generalized"), 0, "no elimination may succeed while faulted");
}
