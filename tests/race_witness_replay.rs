//! Replay validation of race classifications: every race the checker
//! calls *provable* must come with a witness schedule that a fresh,
//! independent run of the `pug-ir` interpreter confirms — the schedule is
//! parsed back out of the report and replayed from scratch here, so the
//! test does not trust the classifier's own replay. A kernel whose racy
//! write sits behind a construct the interpreter cannot execute (a
//! barrier loop bounded by a scalar parameter) must classify *potential*,
//! never provable.

use pug_ir::{ConcreteInputs, Extent, GpuConfig};
use pug_testutil::KernelGen;
use pugpara::equiv::CheckOptions;
use pugpara::race::check_races;
use pugpara::{BugKind, KernelUnit, RaceClass};
use std::time::Duration;

fn opts() -> CheckOptions {
    CheckOptions::with_timeout(Duration::from_secs(120))
}

fn cfg_1d(bits: u32) -> GpuConfig {
    GpuConfig {
        bits,
        bdim: [Extent::Sym, Extent::Const(1), Extent::Const(1)],
        gdim: [Extent::Sym, Extent::Const(1)],
    }
}

/// One access parsed back out of a schedule line.
#[derive(Debug, PartialEq)]
struct ParsedAccess {
    bid: [u64; 2],
    tid: [u64; 3],
    is_write: bool,
    array: String,
    index: u64,
}

/// The whole schedule: configuration, scalar bindings, barrier-interval
/// number and the two conflicting accesses.
struct ParsedSchedule {
    cfg: GpuConfig,
    scalars: Vec<(String, u64)>,
    bi: usize,
    a1: ParsedAccess,
    a2: ParsedAccess,
}

fn nums(s: &str) -> Vec<u64> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in s.chars() {
        if c.is_ascii_digit() {
            cur.push(c);
        } else if !cur.is_empty() {
            out.push(cur.parse().unwrap());
            cur.clear();
        }
    }
    if !cur.is_empty() {
        out.push(cur.parse().unwrap());
    }
    out
}

fn parse_access(s: &str) -> ParsedAccess {
    // `block (0,0) thread (1,0,0) writes `out`[3]`
    let is_write = s.contains(" writes ");
    let array = s.split('`').nth(1).expect("array name in backticks").to_string();
    let n = nums(s);
    assert!(n.len() >= 6, "access line must carry 6 numbers: {s}");
    ParsedAccess {
        bid: [n[0], n[1]],
        tid: [n[2], n[3], n[4]],
        is_write,
        array,
        index: n[5],
    }
}

fn parse_schedule(schedule: &str, bits: u32) -> ParsedSchedule {
    let mut cfg = None;
    let mut scalars = Vec::new();
    let mut conflict = None;
    for line in schedule.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("config: ") {
            let n = nums(rest);
            assert_eq!(n.len(), 5, "config line must carry 5 extents: {line}");
            cfg = Some(GpuConfig {
                bits,
                bdim: [Extent::Const(n[0]), Extent::Const(n[1]), Extent::Const(n[2])],
                gdim: [Extent::Const(n[3]), Extent::Const(n[4])],
            });
        } else if let Some(rest) = line.strip_prefix("scalar: ") {
            let (name, v) = rest.split_once(" = ").expect("scalar binding");
            scalars.push((name.to_string(), v.parse().unwrap()));
        } else if let Some(rest) = line.strip_prefix("barrier interval #") {
            let (bi, accesses) = rest.split_once(": ").expect("interval header");
            let accesses =
                accesses.strip_suffix(" with no intervening barrier").expect("schedule suffix");
            let (first, second) = accesses.split_once(" and ").expect("two accesses");
            conflict = Some((bi.parse().unwrap(), parse_access(first), parse_access(second)));
        }
    }
    let (bi, a1, a2) = conflict.expect("schedule must name the conflicting pair");
    ParsedSchedule { cfg: cfg.expect("schedule must pin the configuration"), scalars, bi, a1, a2 }
}

/// Independently replay a provable race's schedule and confirm the
/// conflicting pair really occurs.
fn validate_schedule(label: &str, unit: &KernelUnit, schedule: &str, bits: u32) {
    let p = parse_schedule(schedule, bits);
    assert!(
        p.a1.is_write || p.a2.is_write,
        "{label}: a race needs at least one write:\n{schedule}"
    );
    assert!(
        p.a1.tid != p.a2.tid || p.a1.bid != p.a2.bid,
        "{label}: the conflicting accesses must come from distinct threads:\n{schedule}"
    );
    assert_eq!(p.a1.array, p.a2.array, "{label}: conflicting accesses on different arrays");
    assert_eq!(p.a1.index, p.a2.index, "{label}: conflicting accesses at different indices");

    let mut inputs = ConcreteInputs::default();
    for (name, v) in &p.scalars {
        inputs.scalars.insert(name.clone(), *v);
    }
    let (_, log) = pug_ir::run_concrete_logged(&unit.kernel, &unit.types, &p.cfg, &inputs)
        .unwrap_or_else(|e| panic!("{label}: a provable schedule must replay, got: {e}"));
    for want in [&p.a1, &p.a2] {
        assert!(
            log.iter().any(|a| {
                a.array == want.array
                    && a.index == want.index
                    && a.tid == want.tid
                    && a.bid == want.bid
                    && a.is_write == want.is_write
                    && a.bi == p.bi
            }),
            "{label}: replay does not exhibit {want:?} in interval {}:\n{schedule}",
            p.bi
        );
    }
}

/// Racy kernels whose schedules must be provable and replay-confirmed.
fn provable_corpus() -> Vec<(&'static str, &'static str)> {
    vec![
        ("same-cell write", "void k(int *out) { out[0] = tid.x; }"),
        ("cross-block alias", "void k(int *out, int *in) { out[tid.x] = in[tid.x]; }"),
        ("read-write overlap", "void k(int *d) { d[tid.x] = d[tid.x + 1]; }"),
        (
            "unguarded reduction",
            r#"
void k(int *g_odata, int *g_idata) {
    requires(blockDim.x <= 16 && blockDim.y == 1 && blockDim.z == 1);
    __shared__ int sdata[blockDim.x];
    sdata[tid.x] = g_idata[tid.x];
    __syncthreads();
    sdata[tid.x] += sdata[tid.x + 1];
    if (tid.x == 0) g_odata[bid.x] = sdata[0];
}
"#,
        ),
    ]
}

#[test]
fn corpus_provable_races_replay() {
    for (label, src) in provable_corpus() {
        let unit = KernelUnit::load(src).unwrap();
        let report = check_races(&unit, &cfg_1d(8), &opts()).unwrap();
        let bug = report.verdict.bug().unwrap_or_else(|| panic!("{label}: expected a race"));
        assert_eq!(bug.kind, BugKind::DataRace, "{label}");
        match bug.race.as_ref().unwrap_or_else(|| panic!("{label}: race must be classified")) {
            RaceClass::Provable { schedule } => validate_schedule(label, &unit, schedule, 8),
            RaceClass::Potential { blocked } => {
                panic!("{label}: expected a provable race, classifier blocked on: {blocked}")
            }
        }
        assert!(
            bug.render().contains("classification: provable"),
            "{label}: rendered report must carry the classification"
        );
    }
}

/// Fuzzed kernels under a symbolic grid: whatever races surface must be
/// classified, and every provable one must replay.
#[test]
fn fuzzed_races_are_classified_and_provable_ones_replay() {
    let mut seen_bug = 0;
    let mut seen_provable = 0;
    for seed in 0..15u64 {
        let src = KernelGen::basic(seed * 29 + 3).kernel();
        let unit = KernelUnit::load(&src).unwrap();
        let report = check_races(&unit, &cfg_1d(8), &opts()).unwrap();
        let Some(bug) = report.verdict.bug() else { continue };
        seen_bug += 1;
        let race =
            bug.race.as_ref().unwrap_or_else(|| panic!("seed {seed}: race unclassified\n{src}"));
        if let RaceClass::Provable { schedule } = race {
            seen_provable += 1;
            validate_schedule(&format!("seed {seed}"), &unit, schedule, 8);
        }
    }
    assert!(seen_bug >= 1, "the fuzzed grid should surface at least one race");
    assert!(seen_provable >= 1, "at least one fuzzed race should be provable");
}

/// The seeded potential-race kernel: the racy write is in a barrier loop
/// bounded by the scalar parameter `p`, which the interpreter cannot
/// unroll — the race must be found, classified, and *never* provable.
#[test]
fn param_bounded_barrier_loop_is_potential() {
    let unit = KernelUnit::load(pug_kernels::stride::PARAM_RACE).unwrap();
    let report = check_races(&unit, &cfg_1d(8), &opts()).unwrap();
    let bug = report.verdict.bug().expect("every thread writes out[i]: a race");
    assert_eq!(bug.kind, BugKind::DataRace);
    match bug.race.as_ref().expect("race must be classified") {
        RaceClass::Potential { blocked } => {
            assert!(
                blocked.contains("replay blocked"),
                "the block reason must name the replay failure, got: {blocked}"
            );
        }
        RaceClass::Provable { schedule } => {
            panic!("a parameter-bounded barrier loop cannot replay, yet got schedule:\n{schedule}")
        }
    }
    assert!(
        bug.render().contains("classification: potential"),
        "rendered report must carry the classification"
    );
}
