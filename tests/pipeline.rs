//! Cross-crate pipeline integration: every corpus kernel flows through
//! parse → type-check → (encode / extract) without errors, and the
//! capability entry points behave on representative kernels.

use pugpara::equiv::{check_equivalence_nonparam, check_equivalence_param, CheckOptions};
use pugpara::{KernelUnit, Verdict};
use pug_ir::GpuConfig;
use std::time::Duration;

fn opts() -> CheckOptions {
    CheckOptions::with_timeout(Duration::from_secs(90))
}

/// Every corpus kernel loads and — under a small concrete configuration —
/// encodes with the §III encoder.
#[test]
fn corpus_encodes_nonparam() {
    use std::collections::HashMap;
    for e in pug_kernels::all_kernels() {
        let kernels = pug_cuda::parse_program(e.source).unwrap();
        for k in kernels {
            let types = pug_cuda::check_kernel(&k).unwrap();
            let unit = KernelUnit { kernel: k, types };
            let mut ctx = pug_smt::Ctx::new();
            // 2×2 block covers both 1-D and 2-D kernels; power-of-two size
            // satisfies the corpus requires-clauses. The tiled matmul's
            // barrier loop is bounded by the `wA` parameter and the stride
            // family's `paramRace` by `p`: concretize them (the paper's
            // "+C." remedy).
            let cfg = GpuConfig::concrete_2d(8, 2, 2);
            let conc: HashMap<String, u64> = HashMap::from([
                ("wA".to_string(), 4u64),
                ("wB".to_string(), 2u64),
                ("p".to_string(), 2u64),
            ]);
            pugpara::nonparam::encode_with(&mut ctx, &unit, &cfg, "s", &conc)
                .unwrap_or_else(|err| panic!("{} fails to encode: {err}", e.name));
        }
    }
}

/// Self-equivalence (non-parameterized) of every corpus kernel: a sanity
/// invariant of the whole §III path including loop unrolling.
#[test]
fn corpus_nonparam_self_equivalence() {
    for e in pug_kernels::all_kernels() {
        if e.buggy {
            // Seeded-bug variants may read uninitialized shared memory
            // (that *is* the bug): the two encodings then see different
            // arbitrary values, and self-equivalence rightly fails.
            continue;
        }
        if e.name.starts_with("matmul") {
            // The tiled matmul needs a concretized wA to unroll; covered by
            // `matmul_naive_vs_tiled_concrete` below.
            continue;
        }
        let kernels = pug_cuda::parse_program(e.source).unwrap();
        for k in kernels {
            let name = k.name.clone();
            let types = pug_cuda::check_kernel(&k).unwrap();
            let unit = KernelUnit { kernel: k, types };
            let cfg = GpuConfig::concrete_2d(8, 2, 2);
            let r = check_equivalence_nonparam(&unit, &unit, &cfg, &opts())
                .unwrap_or_else(|err| panic!("{name}: {err}"));
            assert!(
                r.verdict.is_verified(),
                "{name} must be self-equivalent, got {}",
                r.verdict
            );
        }
    }
}

/// The headline pairs, one place: verified pairs verify, buggy pairs bug.
#[test]
fn headline_pairs() {
    let pairs: Vec<(&str, &str, &str, bool, GpuConfig)> = vec![
        (
            "transpose",
            pug_kernels::transpose::NAIVE,
            pug_kernels::transpose::OPTIMIZED,
            true,
            GpuConfig::symbolic_2d(8),
        ),
        (
            "transpose-buggy",
            pug_kernels::transpose::NAIVE,
            pug_kernels::transpose::BUGGY_ADDR,
            false,
            GpuConfig::symbolic_2d(8),
        ),
        (
            "reduction",
            pug_kernels::reduction::V0,
            pug_kernels::reduction::V1,
            true,
            GpuConfig::symbolic_1d(8),
        ),
        (
            "reduction-buggy",
            pug_kernels::reduction::V0,
            pug_kernels::reduction::BUGGY_INDEX,
            false,
            GpuConfig::symbolic_1d(8),
        ),
        (
            "vector-add-buggy",
            pug_kernels::vector_add::KERNEL,
            pug_kernels::vector_add::BUGGY,
            false,
            GpuConfig::symbolic_1d(8),
        ),
    ];
    for (name, a, b, expect_verified, cfg) in pairs {
        let ua = KernelUnit::load(a).unwrap();
        let ub = KernelUnit::load(b).unwrap();
        let r = check_equivalence_param(&ua, &ub, &cfg, &opts()).unwrap();
        match (&r.verdict, expect_verified) {
            (Verdict::Verified(_), true) | (Verdict::Bug(_), false) => {}
            (got, _) => panic!("{name}: expected verified={expect_verified}, got {got}"),
        }
    }
}

/// Scalar-product hidden assumption: with the power-of-two `requires` the
/// kernel is race-free and self-consistent; checking the unconstrained
/// variant against the constrained one exposes nothing (same code), but
/// the *race checker* accepts both and the tree still verifies self-equal.
#[test]
fn scalar_product_power_of_two_assumption() {
    let constrained = KernelUnit::load(pug_kernels::scalar_product::KERNEL).unwrap();
    let cfg = GpuConfig::symbolic_1d(8);
    let races = pugpara::check_races(&constrained, &cfg, &opts()).unwrap();
    assert!(races.verdict.is_verified(), "got {}", races.verdict);
    // Non-param equivalence of the constrained and unconstrained versions
    // at a power-of-two block: identical behaviour.
    let unconstrained = KernelUnit::load(pug_kernels::scalar_product::UNCONSTRAINED).unwrap();
    let cfg4 = GpuConfig::concrete_1d(8, 4);
    let r = check_equivalence_nonparam(&constrained, &unconstrained, &cfg4, &opts()).unwrap();
    assert!(r.verdict.is_verified(), "got {}", r.verdict);
}

/// Bitonic sort: GKLEE's blow-up example runs through the concrete
/// (non-parameterized) pipeline — self-equivalence at n = 4.
#[test]
fn bitonic_nonparam_self_equivalence() {
    let unit = KernelUnit::load(pug_kernels::bitonic::KERNEL).unwrap();
    let cfg = GpuConfig::concrete_1d(8, 4);
    let r = check_equivalence_nonparam(&unit, &unit, &cfg, &opts()).unwrap();
    assert!(r.verdict.is_verified(), "got {}", r.verdict);
}

/// Matmul: naive vs tiled at a concrete square block with concretized
/// inner dimension (the "+C." remedy for the data-dependent tile loop).
#[test]
fn matmul_naive_vs_tiled_concrete() {
    let naive = KernelUnit::load(pug_kernels::matmul::NAIVE).unwrap();
    let tiled = KernelUnit::load(pug_kernels::matmul::TILED).unwrap();
    let cfg = GpuConfig::concrete_2d(8, 2, 2);
    let o = opts().concretized("wA", 4).concretized("wB", 2);
    let r = check_equivalence_nonparam(&naive, &tiled, &cfg, &o).unwrap();
    assert!(r.verdict.is_verified(), "got {}", r.verdict);
}
