//! Reproduction workspace root — re-exports the PUGpara crates.
pub use pug_cuda as cuda;
pub use pug_ir as ir;
pub use pug_kernels as kernels;
pub use pug_sat as sat;
pub use pug_smt as smt;
pub use pugpara as core_api;
