//! Fast bug hunting (§IV-D): drop the quantified coverage formulas and run
//! only the value queries. Any reported bug is real (the encoding
//! under-approximates the proof, never the bugs); clean runs are not
//! proofs. This mode is how the paper "locates property violations
//! quickly".
//!
//! ```text
//! cargo run --release --example bug_hunting
//! ```

use pugpara::equiv::{check_equivalence_param, CheckOptions, Mode};
use pugpara::{KernelUnit, Soundness, Verdict};
use pug_ir::GpuConfig;
use std::time::Duration;

fn main() {
    let naive = KernelUnit::load(pug_kernels::transpose::NAIVE).unwrap();
    let buggy = KernelUnit::load(pug_kernels::transpose::BUGGY_ADDR).unwrap();
    let cfg = GpuConfig::symbolic_2d(8);

    for mode in [Mode::FastBugHunt, Mode::Prove] {
        let mut opts = CheckOptions::with_timeout(Duration::from_secs(120));
        opts.mode = mode;
        let report = check_equivalence_param(&naive, &buggy, &cfg, &opts).unwrap();
        println!(
            "{mode:?}: {} queries, {:.3}s SMT time",
            report.queries.len(),
            report.solver_time().as_secs_f64()
        );
        match &report.verdict {
            Verdict::Bug(b) => println!("  → {} ({})\n", b.kind, b.detail),
            other => println!("  → {other}\n"),
        }
    }

    // The flip side of fast mode: a *clean* fast-mode run is only an
    // under-approximate proof. The pure-coverage index bug demonstrates it:
    // fast mode is blind to it, prove mode reports it.
    let v0 = KernelUnit::load(pug_kernels::reduction::V0).unwrap();
    let idx_bug = KernelUnit::load(pug_kernels::reduction::BUGGY_INDEX).unwrap();
    let cfg1 = GpuConfig::symbolic_1d(8);
    println!("pure coverage bug (reduction 2*s*tid.x + 1):");
    for mode in [Mode::FastBugHunt, Mode::Prove] {
        let mut opts = CheckOptions::with_timeout(Duration::from_secs(120));
        opts.mode = mode;
        let report = check_equivalence_param(&v0, &idx_bug, &cfg1, &opts).unwrap();
        let note = match (&report.verdict, mode) {
            (Verdict::Verified(Soundness::UnderApprox), Mode::FastBugHunt) => {
                " (under-approximate: the bug is invisible to the value queries)"
            }
            _ => "",
        };
        println!("  {mode:?}: {}{note}", report.verdict);
    }
}
