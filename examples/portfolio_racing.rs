//! Portfolio mode: race the degradation ladder instead of descending it.
//!
//! ```text
//! cargo run --release --example portfolio_racing
//! ```
//!
//! The sequential runner tries Param → Param+C → NonParam(n) → FastBugHunt
//! one rung at a time, so a timing-out upper rung costs its whole deadline
//! before the next rung even starts. `run_portfolio` launches every rung
//! concurrently and adopts the strongest answering rung's verdict — the
//! same verdict the sequential ladder would return, decided after the
//! *longest* wait instead of the sum of waits. `verify_all` does the same
//! for a whole batch of kernel pairs over one worker pool.

use pugpara::portfolio::{run_portfolio, verify_all, PortfolioOptions, VerifyTask};
use pugpara::runner::{run_resilient, RunnerOptions};
use pugpara::KernelUnit;
use pug_ir::GpuConfig;
use std::time::{Duration, Instant};

fn main() {
    let naive = KernelUnit::load(pug_kernels::transpose::NAIVE).unwrap();
    let opt = KernelUnit::load(pug_kernels::transpose::OPTIMIZED).unwrap();
    let cfg = GpuConfig::symbolic_2d(8);

    // A ladder policy under which the fully symbolic Param rung times out
    // (it needs ~19 s on this pair) and a weaker rung answers: exactly the
    // shape where racing reclaims the sequential ladder's waiting time.
    let opts = RunnerOptions {
        rung_timeout: Some(Duration::from_secs(4)),
        fallback_ns: vec![144, 4],
        ..RunnerOptions::default()
    };

    println!("== sequential ladder");
    let t = Instant::now();
    let seq = run_resilient(&naive, &opt, &cfg, &opts);
    println!("{}", seq.provenance.render());
    println!("verdict: {}  ({:.2} s wall)\n", seq.verdict, t.elapsed().as_secs_f64());

    println!("== portfolio racing (same rungs, same budgets)");
    let t = Instant::now();
    let race = run_portfolio(&naive, &opt, &cfg, &PortfolioOptions::with_runner(opts));
    println!("{}", race.provenance.render());
    println!("verdict: {}  ({:.2} s wall)\n", race.verdict, t.elapsed().as_secs_f64());

    // Batch mode: many pairs over one pool, results in input order.
    let buggy = KernelUnit::load(pug_kernels::transpose::BUGGY_ADDR).unwrap();
    let v0 = KernelUnit::load(pug_kernels::reduction::V0).unwrap();
    let v1 = KernelUnit::load(pug_kernels::reduction::V1).unwrap();
    let tasks = vec![
        VerifyTask::new("transpose naive/buggy", naive.clone(), buggy, cfg.clone()),
        VerifyTask::new("reduction v0/v1", v0, v1, GpuConfig::symbolic_1d(8)),
    ];
    println!("== batch: verify_all over {} pairs", tasks.len());
    for (task, report) in tasks.iter().zip(verify_all(&tasks, &PortfolioOptions::default())) {
        let by = report
            .provenance
            .answered_by
            .map(|r| r.to_string())
            .unwrap_or_else(|| "no rung".into());
        println!("  {:<24} {} (answered by {by})", task.name, report.verdict);
    }
}
