//! The paper's §IV-E loop-alignment example: the modulo-arithmetic
//! reduction and its strided optimization preserve loop structure, so the
//! parameterized checker compares the loop *bodies* under one symbolic
//! iteration variable instead of unrolling — and proves equivalence for an
//! arbitrary block size.
//!
//! ```text
//! cargo run --release --example reduction_equivalence
//! ```

use pugpara::equiv::{check_equivalence_nonparam, check_equivalence_param, CheckOptions};
use pugpara::KernelUnit;
use pug_ir::GpuConfig;
use std::time::Duration;

fn main() {
    let opts = CheckOptions::with_timeout(Duration::from_secs(120));
    let v0 = KernelUnit::load(pug_kernels::reduction::V0).unwrap();
    let v1 = KernelUnit::load(pug_kernels::reduction::V1).unwrap();

    println!("== parameterized (loop-aligned) equivalence: reduce0 vs reduce1 ==");
    let report =
        check_equivalence_param(&v0, &v1, &GpuConfig::symbolic_1d(8), &opts).unwrap();
    for q in &report.queries {
        println!("  {:<30} {:>14}   {:>8.3}s", q.label, q.outcome, q.duration.as_secs_f64());
    }
    println!("  verdict: {}\n", report.verdict);

    println!("== non-parameterized baseline at growing n (full unrolling) ==");
    for n in [4u64, 8, 16] {
        let report =
            check_equivalence_nonparam(&v0, &v1, &GpuConfig::concrete_1d(8, n), &opts).unwrap();
        println!(
            "  n = {n:>2}: {} in {:.3}s SMT time",
            report.verdict,
            report.solver_time().as_secs_f64()
        );
    }
    println!();

    println!("== seeded index bug (2*s*tid.x + 1): found parametrically ==");
    let buggy = KernelUnit::load(pug_kernels::reduction::BUGGY_INDEX).unwrap();
    let report =
        check_equivalence_param(&v0, &buggy, &GpuConfig::symbolic_1d(8), &opts).unwrap();
    match report.verdict.bug() {
        Some(b) => println!("{}", b.render()),
        None => println!("  unexpected: {}", report.verdict),
    }
}
