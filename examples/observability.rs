//! Observability: trace a verification, read its metrics, explain its
//! verdict.
//!
//! ```text
//! cargo run --release --example observability
//! ```
//!
//! Every check accepts a [`TraceSink`] and a [`MetricsRegistry`] through
//! its options. Disabled (the default) they cost one branch per call;
//! recording, the sink collects a totally ordered span tree
//! (`verify > rung:Param > query:value[odata]`) exportable as JSONL, and
//! the registry totals solver effort (conflicts, propagations, Ackermann
//! selects, cache hits) across every query of the run. `explain_report`
//! then turns the finished [`ResilientReport`] into a human-readable
//! narrative of the ladder walk.

use pug_ir::GpuConfig;
use pug_obs::{validate, MetricsRegistry, TraceSink};
use pugpara::runner::{run_resilient, RunnerOptions};
use pugpara::{explain_report, KernelUnit};
use std::time::Duration;

fn main() {
    let naive = KernelUnit::load(pug_kernels::transpose::NAIVE).unwrap();
    let opt = KernelUnit::load(pug_kernels::transpose::OPTIMIZED).unwrap();
    let cfg = GpuConfig::symbolic_2d(8);

    // Attach a recording sink and a live registry; concretize the scalar
    // parameters so the Param+C rung answers inside a small deadline, and
    // turn the auxiliary race/perf passes on so they appear in the trace.
    let sink = TraceSink::recording();
    let metrics = MetricsRegistry::new();
    let opts = RunnerOptions {
        rung_timeout: Some(Duration::from_secs(2)),
        concretize: [("width".to_string(), 8), ("height".to_string(), 8)]
            .into_iter()
            .collect(),
        ..RunnerOptions::default()
    }
    .with_trace(sink.clone())
    .with_metrics(metrics.clone())
    .with_aux_passes();

    let report = run_resilient(&naive, &opt, &cfg, &opts);

    println!("== span tree (JSONL, first 10 events)");
    for line in sink.to_jsonl().lines().take(10) {
        println!("{line}");
    }
    let summary = validate(&sink.events()).expect("trace is structurally valid");
    println!(
        "... {} spans, {} points, max depth {}\n",
        summary.spans, summary.points, summary.max_depth
    );

    println!("== metrics");
    print!("{}", metrics.render());

    println!("\n== verdict narrative");
    print!("{}", explain_report(&report));
}
