//! Quickstart: verify a CUDA kernel parametrically in a few lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Loads the vector-add kernel, proves its post-condition for an arbitrary
//! number of threads, checks it race-free, then breaks it and watches the
//! verifier produce a concrete counterexample.

use pugpara::equiv::{check_equivalence_param, CheckOptions};
use pugpara::{check_postcondition_param, check_races, KernelUnit, Verdict};
use pug_ir::GpuConfig;
use std::time::Duration;

fn main() {
    let opts = CheckOptions::with_timeout(Duration::from_secs(60));
    let cfg = GpuConfig::symbolic_1d(8); // arbitrary #threads, 8-bit model

    // 1. Functional correctness: the postcondition holds for every thread
    //    count, every configuration, every input.
    let kernel = KernelUnit::load(pug_kernels::vector_add::WITH_POSTCOND).unwrap();
    let report = check_postcondition_param(&kernel, &cfg, &opts).unwrap();
    println!("postcondition of vectorAdd : {}", report.verdict);

    // 2. Race freedom, also parameterized.
    let report = check_races(&kernel, &cfg, &opts).unwrap();
    println!("race freedom of vectorAdd : {}", report.verdict);

    // 3. Equivalence with a buggy "optimization": the checker answers with
    //    a concrete witness (configuration, thread ids, inputs).
    let good = KernelUnit::load(pug_kernels::vector_add::KERNEL).unwrap();
    let buggy = KernelUnit::load(pug_kernels::vector_add::BUGGY).unwrap();
    let report = check_equivalence_param(&good, &buggy, &cfg, &opts).unwrap();
    match &report.verdict {
        Verdict::Bug(b) => {
            println!("equivalence vs buggy copy  : bug found, as expected");
            println!("{}", b.render());
        }
        other => println!("equivalence vs buggy copy  : unexpected verdict {other}"),
    }
}
