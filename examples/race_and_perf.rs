//! Parameterized race checking plus the performance analyses (bank
//! conflicts, coalescing) on the corpus — the Table I capabilities beyond
//! equivalence checking.
//!
//! ```text
//! cargo run --release --example race_and_perf
//! ```

use pugpara::equiv::CheckOptions;
use pugpara::{check_bank_conflicts, check_coalescing, check_races, KernelUnit};
use pug_ir::GpuConfig;
use std::time::Duration;

fn main() {
    let opts = CheckOptions::with_timeout(Duration::from_secs(90));

    println!("== parameterized race checking ==");
    for (name, src, cfg) in [
        ("reduce0", pug_kernels::reduction::V0, GpuConfig::symbolic_1d(8)),
        ("reduce1", pug_kernels::reduction::V1, GpuConfig::symbolic_1d(8)),
        ("optimizedTranspose", pug_kernels::transpose::OPTIMIZED, GpuConfig::symbolic_2d(8)),
    ] {
        let unit = KernelUnit::load(src).unwrap();
        let report = check_races(&unit, &cfg, &opts).unwrap();
        println!("  {name:<20} {}", report.verdict);
    }
    // A racy kernel, for contrast.
    let racy = KernelUnit::load("void k(int *d) { d[tid.x] = d[tid.x + 1]; }").unwrap();
    let report = check_races(&racy, &GpuConfig::symbolic_1d(8), &opts).unwrap();
    println!("  d[t]=d[t+1] (racy)   {}", report.verdict);
    if let Some(b) = report.verdict.bug() {
        println!("{}", b.render());
    }
    println!();

    println!("== coalescing analysis (naive vs optimized transpose) ==");
    for (name, src) in [
        ("naiveTranspose", pug_kernels::transpose::NAIVE),
        ("optimizedTranspose", pug_kernels::transpose::OPTIMIZED),
    ] {
        let unit = KernelUnit::load(src).unwrap();
        let report = check_coalescing(&unit, &GpuConfig::symbolic_2d(8), &opts).unwrap();
        if report.findings.is_empty() {
            println!("  {name:<20} all analysed global accesses coalesced");
        } else {
            for f in &report.findings {
                println!("  {name:<20} {}", f.detail);
            }
        }
    }
    println!();

    println!("== bank-conflict analysis (unpadded vs padded tile) ==");
    let unpadded = r#"
void k(int *odata, int *idata) {
    requires(blockDim.x == 16 && blockDim.y == 16 && blockDim.z == 1);
    __shared__ int tile[blockDim.x][blockDim.x];
    tile[threadIdx.y][threadIdx.x] = idata[threadIdx.x];
    __syncthreads();
    odata[threadIdx.x] = tile[threadIdx.x][threadIdx.y];
}
"#;
    let unit = KernelUnit::load(unpadded).unwrap();
    let report = check_bank_conflicts(&unit, &GpuConfig::symbolic_2d(8), &opts).unwrap();
    println!(
        "  unpadded tile[16][16]   : {} conflict finding(s)",
        report.findings.len()
    );
    for f in &report.findings {
        println!("    {}", f.detail);
    }
}
