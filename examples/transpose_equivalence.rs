//! The paper's §II motivating example, end to end: prove the naive and the
//! coalesced/padded transpose equivalent **for any number of threads**, and
//! rediscover the hidden square-block assumption (§IV-B) when the
//! `requires(blockDim.x == blockDim.y)` validity constraint is dropped.
//!
//! ```text
//! cargo run --release --example transpose_equivalence
//! ```

use pugpara::equiv::{check_equivalence_nonparam, check_equivalence_param, CheckOptions};
use pugpara::{KernelUnit, Verdict};
use pug_ir::GpuConfig;
use std::time::Duration;

fn main() {
    let opts = CheckOptions::with_timeout(Duration::from_secs(120));
    let naive = KernelUnit::load(pug_kernels::transpose::NAIVE).unwrap();
    let optimized = KernelUnit::load(pug_kernels::transpose::OPTIMIZED).unwrap();

    // Parameterized: one symbolic thread per kernel, symbolic 2-D launch,
    // symbolic matrix sizes. This is the check PUG/GKLEE cannot do.
    println!("== parameterized equivalence (arbitrary #threads, 8-bit model) ==");
    let report = check_equivalence_param(&naive, &optimized, &GpuConfig::symbolic_2d(8), &opts)
        .unwrap();
    for q in &report.queries {
        println!(
            "  {:<28} {:>14}   {:>8.3}s   ({} CNF vars)",
            q.label,
            q.outcome,
            q.duration.as_secs_f64(),
            q.stats.cnf_vars
        );
    }
    println!("  verdict: {}\n", report.verdict);

    // The §III baseline for a concrete 4×4 block, for comparison.
    println!("== non-parameterized baseline (n = 16, concrete 4x4 block) ==");
    let report =
        check_equivalence_nonparam(&naive, &optimized, &GpuConfig::concrete_2d(8, 4, 4), &opts)
            .unwrap();
    println!(
        "  verdict: {} in {:.3}s SMT time\n",
        report.verdict,
        report.solver_time().as_secs_f64()
    );

    // Drop the square-block requirement: PUGpara reports the hidden
    // assumption with a non-square witness configuration.
    println!("== hidden assumption discovery (no square-block requires) ==");
    let unconstrained =
        KernelUnit::load(pug_kernels::transpose::OPTIMIZED_UNCONSTRAINED).unwrap();
    let report =
        check_equivalence_param(&naive, &unconstrained, &GpuConfig::symbolic_2d(8), &opts)
            .unwrap();
    match &report.verdict {
        Verdict::Bug(b) => println!("{}", b.render()),
        other => println!("  unexpected: {other}"),
    }
}
