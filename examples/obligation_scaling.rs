//! Intra-rung obligation parallelism: scale the per-array screen.
//!
//! ```text
//! cargo run --release --example obligation_scaling
//! ```
//!
//! A rung's work inside `check_equivalence_param` is one obligation chain
//! per output array — independent SAT problems over a shared committed
//! prefix. `CheckOptions::with_obligation_parallelism(n)` screens them on
//! `n` pooled worker sessions (each a clause-level replay of the master's
//! prefix CNF) and merges the results deterministically, so the report is
//! bit-identical to `CheckOptions::sequential()`.
//!
//! The corpus pairs (transpose, scalar_product, …) write a *single*
//! global array each, so their pool width caps at 1 and nothing fans out;
//! this example instead times two multiplier-heavy multi-output pairs —
//! four independent value obligations per check, each dominated by a
//! bit-blasted multiplier, the exact shape the pool targets — at widths
//! 1, 2, 4 and 8, printing the wall-clock table and the pool counters.
//!
//! Read the numbers against the host: on a single-core machine the pooled
//! screen time-slices one CPU, so expect parity at best (the point there
//! is the *identical verdict*, asserted below); speedups need real cores.

use pug_ir::GpuConfig;
use pug_obs::MetricsRegistry;
use pugpara::equiv::{check_equivalence_param, CheckOptions};
use pugpara::KernelUnit;
use std::time::{Duration, Instant};

/// Four outputs, each behind a multiplier chain over symbolic inputs.
const QUADS: &str = r#"
__global__ void quads(int *a, int *b, int *c, int *d, int *in, int n) {
    requires(n > 0);
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        a[i] = in[i] * in[i];
        b[i] = in[i] * (in[i] + 1);
        c[i] = (in[i] + n) * (in[i] - n);
        d[i] = in[i] * in[i] * in[i];
    }
}
"#;

/// The same four functions, rewritten (distributed / reassociated) — the
/// solver has to prove each pair of multiplier chains equal.
const QUADS_REWRITTEN: &str = r#"
__global__ void quads(int *a, int *b, int *c, int *d, int *in, int n) {
    requires(n > 0);
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        a[i] = in[i] * in[i];
        b[i] = in[i] * in[i] + in[i];
        c[i] = in[i] * in[i] - n * n;
        d[i] = in[i] * (in[i] * in[i]);
    }
}
"#;

/// Mixed weights: two heavy multiplier arrays next to two trivial ones —
/// the work-stealing schedule has to keep the pool busy anyway.
const MIXED: &str = r#"
__global__ void mixed(int *a, int *b, int *c, int *d, int *in, int n) {
    requires(n > 0);
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        a[i] = in[i] * in[i] * 3;
        b[i] = in[i] + 1;
        c[i] = (in[i] * in[i]) * (n + 2);
        d[i] = in[i];
    }
}
"#;

const MIXED_REWRITTEN: &str = r#"
__global__ void mixed(int *a, int *b, int *c, int *d, int *in, int n) {
    requires(n > 0);
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        a[i] = (in[i] * in[i]) + (in[i] * in[i]) + (in[i] * in[i]);
        b[i] = 1 + in[i];
        c[i] = in[i] * in[i] * n + in[i] * in[i] * 2;
        d[i] = in[i];
    }
}
"#;

fn main() {
    let load = |s: &str| KernelUnit::load(s).unwrap();
    let pairs = [
        ("quads (4 multiplier-heavy arrays)", load(QUADS), load(QUADS_REWRITTEN)),
        ("mixed (2 heavy + 2 trivial arrays)", load(MIXED), load(MIXED_REWRITTEN)),
    ];
    let cfg = GpuConfig::symbolic_1d(8);

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("host parallelism: {cores} core(s)\n");

    for (name, src, tgt) in &pairs {
        println!("== {name}");
        let mut baseline: Option<(String, f64)> = None;
        for pool in [1usize, 2, 4, 8] {
            let metrics = MetricsRegistry::new();
            let opts = CheckOptions::with_timeout(Duration::from_secs(120))
                .with_obligation_parallelism(pool)
                .with_metrics(metrics.clone());
            let t = Instant::now();
            let report = check_equivalence_param(src, tgt, &cfg, &opts).unwrap();
            let wall = t.elapsed().as_secs_f64();
            let snap = metrics.snapshot();
            let verdict = report.verdict.to_string();

            let speedup = match &baseline {
                None => {
                    baseline = Some((verdict.clone(), wall));
                    "1.00x".to_string()
                }
                Some((base_verdict, base_wall)) => {
                    assert_eq!(
                        &verdict, base_verdict,
                        "pooled verdict diverged from sequential"
                    );
                    format!("{:.2}x", base_wall / wall.max(1e-9))
                }
            };
            println!(
                "  pool={pool}  {wall:>7.2}s  {speedup:>6}  sessions={} parallel={} \
                 exchanged={} imported={}  -> {verdict}",
                snap.gauge("pool.sessions").unwrap_or(0),
                snap.counter("obligations.parallel"),
                snap.counter("learnts.exchanged"),
                snap.counter("learnts.imported"),
            );
        }
        println!();
    }
    println!(
        "every pooled verdict asserted identical to pool=1 — the pooled screen is\n\
         observationally equivalent; width only changes where the time goes."
    );
}
