//! Render the paper's Table I (tool comparison) from the machine-readable
//! capability matrix, which the test suite ties to working entry points.
//!
//! ```text
//! cargo run --release --example capability_matrix
//! ```

fn main() {
    println!("{}", pugpara::capabilities::render_table1());
    println!("Bug classes per tool:");
    for t in pugpara::capabilities::table1() {
        println!("  {:<34} {:?}", t.name, t.capabilities);
    }
}
