//! Abstract syntax of the CUDA C kernel subset.
//!
//! The subset covers what the paper's corpus needs: integer scalars
//! (signed/unsigned), pointer parameters (global memory), `__shared__`
//! 1D/2D arrays, the thread-geometry builtins, barriers, structured control
//! flow, and the specification statements `requires`/`assume`/`assert`/
//! `postcond` (the paper's assertion language, §III).

use crate::token::Span;

/// A thread-geometry dimension selector.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Dim {
    X,
    Y,
    Z,
}

impl Dim {
    /// Lower-case dimension letter.
    pub fn letter(self) -> char {
        match self {
            Dim::X => 'x',
            Dim::Y => 'y',
            Dim::Z => 'z',
        }
    }
}

/// CUDA builtin variables (both long and short spellings are accepted:
/// `threadIdx.x` and `tid.x`, etc., matching the paper's notation).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Builtin {
    /// `threadIdx` / `tid`
    Tid(Dim),
    /// `blockIdx` / `bid`
    Bid(Dim),
    /// `blockDim` / `bdim`
    Bdim(Dim),
    /// `gridDim` / `gdim`
    Gdim(Dim),
}

/// Scalar types. `float`/`double` parse but are rejected by the type checker
/// with the paper's own caveat (PUGpara "currently lacks the ability to
/// handle float numbers").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scalar {
    Int,
    Uint,
    Bool,
    Float,
}

impl Scalar {
    /// Signedness used to pick signed vs unsigned SMT comparisons.
    pub fn is_signed(self) -> bool {
        matches!(self, Scalar::Int)
    }
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnOp {
    Neg,
    Not,
    BitNot,
}

/// Binary operators (C semantics over the configured bit width).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// `=>` — implication (assertion language).
    Imp,
}

impl BinOp {
    /// True for the comparison operators producing Bool.
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }

    /// True for the short-circuit logical operators.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// Expressions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expr {
    Int(u64),
    Bool(bool),
    Ident(String),
    Builtin(Builtin),
    /// `a[i]` or `a[i][j]`.
    Index { base: String, indices: Vec<Expr> },
    Unary { op: UnOp, arg: Box<Expr> },
    Binary { op: BinOp, lhs: Box<Expr>, rhs: Box<Expr> },
    /// `c ? t : e`.
    Ternary { cond: Box<Expr>, then: Box<Expr>, els: Box<Expr> },
    /// Builtin calls: `min`, `max`.
    Call { name: String, args: Vec<Expr> },
}

impl Expr {
    /// Binary-node constructor used by the parser and tests.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }
}

/// Assignment targets: a scalar variable or an array element.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LValue {
    pub name: String,
    pub indices: Vec<Expr>,
}

/// Statements.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Stmt {
    /// Declaration, possibly `__shared__`, possibly an array.
    Decl {
        ty: Scalar,
        name: String,
        /// Array dimension extents (empty for scalars). Extents may mention
        /// builtins, e.g. `block[bdim.x][bdim.x + 1]`.
        dims: Vec<Expr>,
        init: Option<Expr>,
        shared: bool,
        span: Span,
    },
    /// `lhs op= rhs`; `op == None` is a plain assignment.
    Assign { lhs: LValue, op: Option<BinOp>, rhs: Expr, span: Span },
    If { cond: Expr, then: Vec<Stmt>, els: Vec<Stmt>, span: Span },
    For { init: Box<Stmt>, cond: Expr, update: Box<Stmt>, body: Vec<Stmt>, span: Span },
    While { cond: Expr, body: Vec<Stmt>, span: Span },
    /// `__syncthreads()`.
    Barrier { span: Span },
    /// Specification statements (the paper's assertion language).
    Assert { cond: Expr, span: Span },
    Assume { cond: Expr, span: Span },
    /// Pre-condition on inputs/configuration.
    Requires { cond: Expr, span: Span },
    /// Post-condition; free scalar identifiers are implicitly universally
    /// quantified (the paper's `postcond(i < width && j < height => …)`).
    Postcond { cond: Expr, span: Span },
    /// Empty statement.
    Nop,
}

/// Kernel parameter kinds.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParamKind {
    /// Pointer parameter — a global-memory array (symbolic input/output).
    GlobalArray { elem: Scalar },
    /// Scalar parameter — a symbolic input value.
    Value { ty: Scalar },
}

/// A kernel parameter.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Param {
    pub name: String,
    pub kind: ParamKind,
}

/// A parsed kernel.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Kernel {
    pub name: String,
    pub params: Vec<Param>,
    pub body: Vec<Stmt>,
}

impl Kernel {
    /// Names of the global-array parameters, in declaration order.
    pub fn array_params(&self) -> Vec<&str> {
        self.params
            .iter()
            .filter(|p| matches!(p.kind, ParamKind::GlobalArray { .. }))
            .map(|p| p.name.as_str())
            .collect()
    }

    /// Names of the scalar parameters, in declaration order.
    pub fn scalar_params(&self) -> Vec<&str> {
        self.params
            .iter()
            .filter(|p| matches!(p.kind, ParamKind::Value { .. }))
            .map(|p| p.name.as_str())
            .collect()
    }
}
