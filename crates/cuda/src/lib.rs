//! # pug-cuda — CUDA C front-end for PUGpara
//!
//! A from-scratch lexer, parser and type checker for the CUDA C kernel
//! subset analysed by the paper (DESIGN.md §2 records the substitution for
//! PUG's original CIL-based C front-end). The subset covers the entire
//! evaluation corpus: integer arithmetic (including `*`, `/`, `%`, shifts),
//! thread-geometry builtins in both spellings (`threadIdx.x` / `tid.x`),
//! `__shared__` 1D/2D arrays, `__syncthreads()`, structured control flow,
//! and the specification statements `requires` / `assume` / `assert` /
//! `postcond` of the paper's assertion language (§III). Floating point is
//! rejected with a diagnostic, as in the paper.
//!
//! ## Example
//!
//! ```
//! use pug_cuda::{parse_kernel, check_kernel};
//!
//! let kernel = parse_kernel(r#"
//!     __global__ void copy(int *out, int *in, int n) {
//!         int i = blockIdx.x * blockDim.x + threadIdx.x;
//!         if (i < n) out[i] = in[i];
//!     }
//! "#).unwrap();
//! let types = check_kernel(&kernel).unwrap();
//! assert_eq!(kernel.name, "copy");
//! assert!(types.vars.contains_key("i"));
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;
pub mod typecheck;

pub use ast::{BinOp, Builtin, Dim, Expr, Kernel, LValue, Param, ParamKind, Scalar, Stmt, UnOp};
pub use error::FrontendError;
pub use parser::{parse_expr, parse_kernel, parse_program};
pub use typecheck::{check_kernel, TypeInfo, VarInfo};
