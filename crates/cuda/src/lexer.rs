//! Hand-written lexer for the CUDA C subset.

use crate::error::FrontendError;
use crate::token::{Span, Tok, Token};

/// Tokenize `src`; `//`, `/* */` comments and `#`-preprocessor lines are
/// skipped (the corpus kernels use `#define`-free sources).
pub fn lex(src: &str) -> Result<Vec<Token>, FrontendError> {
    Lexer { chars: src.chars().collect(), pos: 0, line: 1, col: 1 }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Lexer {
    fn span(&self) -> Span {
        Span { line: self.line, col: self.col }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Result<Vec<Token>, FrontendError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let span = self.span();
            let Some(c) = self.peek() else {
                out.push(Token { tok: Tok::Eof, span });
                return Ok(out);
            };
            let tok = if c.is_ascii_alphabetic() || c == '_' {
                self.ident_or_keyword()
            } else if c.is_ascii_digit() {
                self.number(span)?
            } else {
                self.punct(span)?
            };
            out.push(Token { tok, span });
        }
    }

    fn skip_trivia(&mut self) -> Result<(), FrontendError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    // preprocessor line: skip to end of line
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    let start = self.span();
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (None, _) => {
                                return Err(FrontendError::lex(start, "unterminated block comment"))
                            }
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn ident_or_keyword(&mut self) -> Tok {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match s.as_str() {
            "if" => Tok::KwIf,
            "else" => Tok::KwElse,
            "for" => Tok::KwFor,
            "while" => Tok::KwWhile,
            "do" => Tok::KwDo,
            "return" => Tok::KwReturn,
            "int" => Tok::KwInt,
            "unsigned" => Tok::KwUnsigned,
            "signed" => Tok::KwSigned,
            "float" => Tok::KwFloat,
            "double" => Tok::KwDouble,
            "bool" => Tok::KwBool,
            "void" => Tok::KwVoid,
            "char" => Tok::KwChar,
            "long" => Tok::KwLong,
            "short" => Tok::KwShort,
            "const" => Tok::KwConst,
            "true" => Tok::KwTrue,
            "false" => Tok::KwFalse,
            "__shared__" => Tok::KwShared,
            "__global__" => Tok::KwGlobal,
            "__device__" => Tok::KwDevice,
            "__syncthreads" => Tok::KwSyncthreads,
            _ => Tok::Ident(s),
        }
    }

    fn number(&mut self, span: Span) -> Result<Tok, FrontendError> {
        let mut s = String::new();
        let radix = if self.peek() == Some('0') && matches!(self.peek2(), Some('x') | Some('X')) {
            self.bump();
            self.bump();
            16
        } else {
            10
        };
        while let Some(c) = self.peek() {
            if c.is_digit(radix) {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // integer suffixes
        while let Some(c) = self.peek() {
            if matches!(c, 'u' | 'U' | 'l' | 'L') {
                self.bump();
            } else {
                break;
            }
        }
        if let Some(c) = self.peek() {
            if c == '.' || (radix == 10 && matches!(c, 'e' | 'E' | 'f' | 'F')) {
                return Err(FrontendError::lex(
                    span,
                    "floating-point literals are not supported (PUGpara does not handle floats)",
                ));
            }
        }
        if s.is_empty() {
            return Err(FrontendError::lex(span, "malformed integer literal"));
        }
        let v = u64::from_str_radix(&s, radix)
            .map_err(|e| FrontendError::lex(span, format!("bad integer literal: {e}")))?;
        Ok(Tok::Int(v))
    }

    fn punct(&mut self, span: Span) -> Result<Tok, FrontendError> {
        let c = self.bump().expect("caller checked");
        let two = |l: &mut Lexer, next: char, yes: Tok, no: Tok| {
            if l.peek() == Some(next) {
                l.bump();
                yes
            } else {
                no
            }
        };
        let t = match c {
            '(' => Tok::LParen,
            ')' => Tok::RParen,
            '{' => Tok::LBrace,
            '}' => Tok::RBrace,
            '[' => Tok::LBracket,
            ']' => Tok::RBracket,
            ';' => Tok::Semi,
            ',' => Tok::Comma,
            '.' => Tok::Dot,
            '?' => Tok::Question,
            ':' => Tok::Colon,
            '~' => Tok::Tilde,
            '+' => match self.peek() {
                Some('+') => {
                    self.bump();
                    Tok::PlusPlus
                }
                Some('=') => {
                    self.bump();
                    Tok::PlusAssign
                }
                _ => Tok::Plus,
            },
            '-' => match self.peek() {
                Some('-') => {
                    self.bump();
                    Tok::MinusMinus
                }
                Some('=') => {
                    self.bump();
                    Tok::MinusAssign
                }
                _ => Tok::Minus,
            },
            '*' => two(self, '=', Tok::StarAssign, Tok::Star),
            '/' => two(self, '=', Tok::SlashAssign, Tok::Slash),
            '%' => two(self, '=', Tok::PercentAssign, Tok::Percent),
            '^' => two(self, '=', Tok::CaretAssign, Tok::Caret),
            '!' => two(self, '=', Tok::NotEq, Tok::Bang),
            '=' => match self.peek() {
                Some('=') => {
                    self.bump();
                    Tok::EqEq
                }
                // `=>` — implication in the assertion language (paper §III).
                Some('>') => {
                    self.bump();
                    Tok::Implies
                }
                _ => Tok::Assign,
            },
            '&' => match self.peek() {
                Some('&') => {
                    self.bump();
                    Tok::AndAnd
                }
                Some('=') => {
                    self.bump();
                    Tok::AmpAssign
                }
                _ => Tok::Amp,
            },
            '|' => match self.peek() {
                Some('|') => {
                    self.bump();
                    Tok::OrOr
                }
                Some('=') => {
                    self.bump();
                    Tok::PipeAssign
                }
                _ => Tok::Pipe,
            },
            '<' => match self.peek() {
                Some('<') => {
                    self.bump();
                    two(self, '=', Tok::ShlAssign, Tok::Shl)
                }
                Some('=') => {
                    self.bump();
                    Tok::Le
                }
                _ => Tok::Lt,
            },
            '>' => match self.peek() {
                Some('>') => {
                    self.bump();
                    two(self, '=', Tok::ShrAssign, Tok::Shr)
                }
                Some('=') => {
                    self.bump();
                    Tok::Ge
                }
                _ => Tok::Gt,
            },
            other => {
                return Err(FrontendError::lex(span, format!("unexpected character {other:?}")))
            }
        };
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_declaration() {
        assert_eq!(
            toks("int x = 42;"),
            vec![
                Tok::KwInt,
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Int(42),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_cuda_keywords() {
        assert_eq!(
            toks("__shared__ __syncthreads();"),
            vec![
                Tok::KwShared,
                Tok::KwSyncthreads,
                Tok::LParen,
                Tok::RParen,
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn compound_operators() {
        assert_eq!(
            toks("a += b >>= c <<= d && e || f"),
            vec![
                Tok::Ident("a".into()),
                Tok::PlusAssign,
                Tok::Ident("b".into()),
                Tok::ShrAssign,
                Tok::Ident("c".into()),
                Tok::ShlAssign,
                Tok::Ident("d".into()),
                Tok::AndAnd,
                Tok::Ident("e".into()),
                Tok::OrOr,
                Tok::Ident("f".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_and_preprocessor_skipped() {
        let src = "#define N 8\n// line\nint /* block */ x;";
        assert_eq!(toks(src), vec![Tok::KwInt, Tok::Ident("x".into()), Tok::Semi, Tok::Eof]);
    }

    #[test]
    fn hex_and_suffixes() {
        assert_eq!(toks("0xff 10u 3L"), vec![Tok::Int(255), Tok::Int(10), Tok::Int(3), Tok::Eof]);
    }

    #[test]
    fn float_literal_rejected() {
        assert!(lex("1.5").is_err());
        assert!(lex("2.0f").is_err());
    }

    #[test]
    fn spans_track_lines() {
        let ts = lex("int\n  x;").unwrap();
        assert_eq!(ts[1].span.line, 2);
        assert_eq!(ts[1].span.col, 3);
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("/* never ends").is_err());
    }
}
