//! Type checking of parsed kernels.
//!
//! Enforces the restrictions PUGpara states for its input language:
//! no floating point, declared-before-use scalars, dimension-correct array
//! indexing, Boolean conditions (C-style integers are accepted and coerced),
//! and spec statements appearing in statement position. Postconditions are
//! exempt from declared-before-use: their free scalars are implicitly
//! universally quantified (paper §III).

use crate::ast::*;
use crate::error::FrontendError;
use crate::token::Span;
use std::collections::HashMap;

/// Information the IR lowering needs about every declared name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VarInfo {
    /// Scalar local or scalar kernel parameter.
    Scalar { ty: Scalar, is_param: bool },
    /// Global-memory array parameter (1-D, symbolic extent).
    GlobalArray { elem: Scalar },
    /// `__shared__` array with declared dimension extents.
    SharedArray { elem: Scalar, dims: usize },
    /// Non-shared local array (treated like a per-thread private array).
    LocalArray { elem: Scalar, dims: usize },
}

/// Result of type checking: kinds of all declared names.
#[derive(Clone, Debug, Default)]
pub struct TypeInfo {
    pub vars: HashMap<String, VarInfo>,
}

/// Type-check a kernel.
pub fn check_kernel(kernel: &Kernel) -> Result<TypeInfo, FrontendError> {
    let mut tc = TypeChecker { info: TypeInfo::default() };
    for p in &kernel.params {
        match &p.kind {
            ParamKind::GlobalArray { elem } => {
                tc.reject_float(*elem, Span::default(), &p.name)?;
                tc.info
                    .vars
                    .insert(p.name.clone(), VarInfo::GlobalArray { elem: *elem });
            }
            ParamKind::Value { ty } => {
                tc.reject_float(*ty, Span::default(), &p.name)?;
                tc.info
                    .vars
                    .insert(p.name.clone(), VarInfo::Scalar { ty: *ty, is_param: true });
            }
        }
    }
    tc.stmts(&kernel.body)?;
    Ok(tc.info)
}

/// The type of an expression: a scalar, with signedness.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExprTy {
    Bool,
    Int { signed: bool },
}

struct TypeChecker {
    info: TypeInfo,
}

impl TypeChecker {
    fn reject_float(&self, s: Scalar, span: Span, name: &str) -> Result<(), FrontendError> {
        if s == Scalar::Float {
            return Err(FrontendError::ty(
                span,
                format!(
                    "`{name}` has floating-point type: PUGpara does not support floats \
                     (see KLEE-FP for float equivalence, paper §II-A)"
                ),
            ));
        }
        Ok(())
    }

    fn stmts(&mut self, body: &[Stmt]) -> Result<(), FrontendError> {
        for s in body {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), FrontendError> {
        match s {
            Stmt::Nop => Ok(()),
            Stmt::Decl { ty, name, dims, init, shared, span } => {
                self.reject_float(*ty, *span, name)?;
                for d in dims {
                    self.expr(d, *span, false)?;
                }
                if let Some(e) = init {
                    if !dims.is_empty() {
                        return Err(FrontendError::ty(
                            *span,
                            format!("array `{name}` cannot have a scalar initializer"),
                        ));
                    }
                    self.expr(e, *span, false)?;
                }
                let info = if !dims.is_empty() {
                    if *shared {
                        VarInfo::SharedArray { elem: *ty, dims: dims.len() }
                    } else {
                        VarInfo::LocalArray { elem: *ty, dims: dims.len() }
                    }
                } else {
                    VarInfo::Scalar { ty: *ty, is_param: false }
                };
                // C allows shadowing in inner scopes; the corpus does not use
                // it, so redeclaration at a different kind is an error while
                // same-kind redeclaration (e.g. re-lowered loops) is allowed.
                if let Some(prev) = self.info.vars.get(name) {
                    if *prev != info {
                        return Err(FrontendError::ty(
                            *span,
                            format!("`{name}` redeclared with a different type"),
                        ));
                    }
                }
                self.info.vars.insert(name.clone(), info);
                Ok(())
            }
            Stmt::Assign { lhs, op: _, rhs, span } => {
                self.lvalue(lhs, *span)?;
                self.expr(rhs, *span, false)?;
                Ok(())
            }
            Stmt::If { cond, then, els, span } => {
                self.expr(cond, *span, false)?;
                self.stmts(then)?;
                self.stmts(els)
            }
            Stmt::For { init, cond, update, body, span } => {
                self.stmt(init)?;
                self.expr(cond, *span, false)?;
                self.stmt(update)?;
                self.stmts(body)
            }
            Stmt::While { cond, body, span } => {
                self.expr(cond, *span, false)?;
                self.stmts(body)
            }
            Stmt::Barrier { .. } => Ok(()),
            Stmt::Assert { cond, span } | Stmt::Assume { cond, span } | Stmt::Requires { cond, span } => {
                self.expr(cond, *span, false)?;
                Ok(())
            }
            Stmt::Postcond { cond, span } => {
                // free scalars allowed: implicitly universally quantified
                self.expr(cond, *span, true)?;
                Ok(())
            }
        }
    }

    fn lvalue(&mut self, lv: &LValue, span: Span) -> Result<(), FrontendError> {
        match self.info.vars.get(&lv.name).cloned() {
            None => Err(FrontendError::ty(span, format!("assignment to undeclared `{}`", lv.name))),
            Some(VarInfo::Scalar { .. }) => {
                if !lv.indices.is_empty() {
                    return Err(FrontendError::ty(
                        span,
                        format!("`{}` is a scalar and cannot be indexed", lv.name),
                    ));
                }
                Ok(())
            }
            Some(VarInfo::GlobalArray { .. }) => {
                if lv.indices.len() != 1 {
                    return Err(FrontendError::ty(
                        span,
                        format!("global array `{}` takes exactly one index", lv.name),
                    ));
                }
                self.expr(&lv.indices[0], span, false)?;
                Ok(())
            }
            Some(VarInfo::SharedArray { dims, .. }) | Some(VarInfo::LocalArray { dims, .. }) => {
                if lv.indices.len() != dims {
                    return Err(FrontendError::ty(
                        span,
                        format!("array `{}` has {dims} dimension(s), {} given", lv.name, lv.indices.len()),
                    ));
                }
                for i in &lv.indices {
                    self.expr(i, span, false)?;
                }
                Ok(())
            }
        }
    }

    fn expr(&mut self, e: &Expr, span: Span, spec: bool) -> Result<ExprTy, FrontendError> {
        match e {
            Expr::Int(_) => Ok(ExprTy::Int { signed: true }),
            Expr::Bool(_) => Ok(ExprTy::Bool),
            Expr::Builtin(_) => Ok(ExprTy::Int { signed: false }),
            Expr::Ident(name) => match self.info.vars.get(name) {
                Some(VarInfo::Scalar { ty, .. }) => Ok(scalar_ty(*ty)),
                Some(_) => Err(FrontendError::ty(
                    span,
                    format!("array `{name}` used without an index"),
                )),
                None if spec => {
                    // Implicitly quantified spec variable: registered as a
                    // signed scalar so the lowering can bind it.
                    self.info
                        .vars
                        .insert(name.clone(), VarInfo::Scalar { ty: Scalar::Int, is_param: false });
                    Ok(ExprTy::Int { signed: true })
                }
                None => Err(FrontendError::ty(span, format!("use of undeclared `{name}`"))),
            },
            Expr::Index { base, indices } => {
                let info = self.info.vars.get(base).cloned();
                match info {
                    Some(VarInfo::GlobalArray { elem }) => {
                        if indices.len() != 1 {
                            return Err(FrontendError::ty(
                                span,
                                format!("global array `{base}` takes exactly one index"),
                            ));
                        }
                        self.expr(&indices[0], span, spec)?;
                        Ok(scalar_ty(elem))
                    }
                    Some(VarInfo::SharedArray { elem, dims })
                    | Some(VarInfo::LocalArray { elem, dims }) => {
                        if indices.len() != dims {
                            return Err(FrontendError::ty(
                                span,
                                format!("array `{base}` has {dims} dimension(s), {} given", indices.len()),
                            ));
                        }
                        for i in indices {
                            self.expr(i, span, spec)?;
                        }
                        Ok(scalar_ty(elem))
                    }
                    Some(VarInfo::Scalar { .. }) => {
                        Err(FrontendError::ty(span, format!("scalar `{base}` cannot be indexed")))
                    }
                    None => Err(FrontendError::ty(span, format!("use of undeclared array `{base}`"))),
                }
            }
            Expr::Unary { op, arg } => {
                let t = self.expr(arg, span, spec)?;
                match op {
                    UnOp::Not => Ok(ExprTy::Bool),
                    UnOp::Neg | UnOp::BitNot => match t {
                        ExprTy::Bool => Err(FrontendError::ty(
                            span,
                            "arithmetic negation of a Boolean".to_string(),
                        )),
                        t => Ok(t),
                    },
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let lt = self.expr(lhs, span, spec)?;
                let rt = self.expr(rhs, span, spec)?;
                if op.is_comparison() {
                    return Ok(ExprTy::Bool);
                }
                if op.is_logical() || *op == BinOp::Imp {
                    return Ok(ExprTy::Bool);
                }
                // usual arithmetic conversion: unsigned wins
                Ok(match (lt, rt) {
                    (ExprTy::Int { signed: a }, ExprTy::Int { signed: b }) => {
                        ExprTy::Int { signed: a && b }
                    }
                    // bool promoted to int in arithmetic
                    (ExprTy::Int { signed }, ExprTy::Bool) | (ExprTy::Bool, ExprTy::Int { signed }) => {
                        ExprTy::Int { signed }
                    }
                    (ExprTy::Bool, ExprTy::Bool) => ExprTy::Int { signed: true },
                })
            }
            Expr::Ternary { cond, then, els } => {
                self.expr(cond, span, spec)?;
                let t = self.expr(then, span, spec)?;
                let e2 = self.expr(els, span, spec)?;
                Ok(match (t, e2) {
                    (ExprTy::Bool, ExprTy::Bool) => ExprTy::Bool,
                    (ExprTy::Int { signed: a }, ExprTy::Int { signed: b }) => {
                        ExprTy::Int { signed: a && b }
                    }
                    _ => ExprTy::Int { signed: true },
                })
            }
            Expr::Call { name, args } => {
                match name.as_str() {
                    "min" | "max" => {
                        if args.len() != 2 {
                            return Err(FrontendError::ty(
                                span,
                                format!("`{name}` takes exactly two arguments"),
                            ));
                        }
                        let a = self.expr(&args[0], span, spec)?;
                        let b = self.expr(&args[1], span, spec)?;
                        Ok(match (a, b) {
                            (ExprTy::Int { signed: x }, ExprTy::Int { signed: y }) => {
                                ExprTy::Int { signed: x && y }
                            }
                            _ => ExprTy::Int { signed: true },
                        })
                    }
                    other => Err(FrontendError::ty(
                        span,
                        format!("unsupported function call `{other}` (only min/max builtins)"),
                    )),
                }
            }
        }
    }
}

fn scalar_ty(s: Scalar) -> ExprTy {
    match s {
        Scalar::Bool => ExprTy::Bool,
        Scalar::Int => ExprTy::Int { signed: true },
        Scalar::Uint => ExprTy::Int { signed: false },
        Scalar::Float => ExprTy::Int { signed: true }, // rejected earlier
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_kernel;

    fn check_src(src: &str) -> Result<TypeInfo, FrontendError> {
        check_kernel(&parse_kernel(src).unwrap())
    }

    #[test]
    fn accepts_transpose() {
        let src = r#"
void k(int *odata, int *idata, int width, int height) {
    int xIndex = bid.x * bdim.x + tid.x;
    if (xIndex < width) odata[xIndex] = idata[xIndex];
}
"#;
        let info = check_src(src).unwrap();
        assert_eq!(info.vars["odata"], VarInfo::GlobalArray { elem: Scalar::Int });
        assert_eq!(info.vars["xIndex"], VarInfo::Scalar { ty: Scalar::Int, is_param: false });
    }

    #[test]
    fn rejects_float_param() {
        let err = check_src("void k(float *d) { d[tid.x] = 0; }").unwrap_err();
        assert!(err.to_string().contains("float"));
    }

    #[test]
    fn rejects_undeclared_use() {
        assert!(check_src("void k(int *d) { d[tid.x] = nowhere; }").is_err());
    }

    #[test]
    fn rejects_wrong_arity_index() {
        let src = r#"
void k(int *d) {
    __shared__ int s[bdim.x][bdim.x];
    d[tid.x] = s[tid.x];
}
"#;
        assert!(check_src(src).is_err());
    }

    #[test]
    fn postcond_free_vars_ok() {
        let src = r#"
void k(int *odata, int *idata, int width) {
    odata[tid.x] = idata[tid.x];
    postcond(i < width => odata[i] == idata[i]);
}
"#;
        let info = check_src(src).unwrap();
        assert!(matches!(info.vars["i"], VarInfo::Scalar { .. }));
    }

    #[test]
    fn free_vars_only_in_postcond() {
        let src = r#"
void k(int *odata) {
    assert(i < 10);
}
"#;
        assert!(check_src(src).is_err());
    }

    #[test]
    fn rejects_unknown_call() {
        assert!(check_src("void k(int *d) { d[0] = foo(1); }").is_err());
    }

    #[test]
    fn min_max_accepted() {
        let src = "void k(int *d, int w, int h) { d[tid.x] = min(w, h) + max(w, h); }";
        check_src(src).unwrap();
    }
}
