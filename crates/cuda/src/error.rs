//! Front-end diagnostics.

use crate::token::Span;
use std::fmt;

/// Which phase produced the diagnostic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    Lex,
    Parse,
    Type,
}

/// A front-end error with a source location.
#[derive(Clone, Debug)]
pub struct FrontendError {
    pub phase: Phase,
    pub span: Span,
    pub message: String,
}

impl FrontendError {
    pub fn lex(span: Span, message: impl Into<String>) -> FrontendError {
        FrontendError { phase: Phase::Lex, span, message: message.into() }
    }

    pub fn parse(span: Span, message: impl Into<String>) -> FrontendError {
        FrontendError { phase: Phase::Parse, span, message: message.into() }
    }

    pub fn ty(span: Span, message: impl Into<String>) -> FrontendError {
        FrontendError { phase: Phase::Type, span, message: message.into() }
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Type => "type",
        };
        write!(f, "{phase} error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for FrontendError {}
