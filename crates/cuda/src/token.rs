//! Tokens of the CUDA C subset.

use std::fmt;

/// Source position (1-based line/column) for diagnostics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Span {
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Lexical token kinds.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    Ident(String),
    /// Integer literal (decimal or 0x hex); suffixes `u`/`U`/`l`/`L` are
    /// consumed and ignored.
    Int(u64),
    // keywords
    KwIf,
    KwElse,
    KwFor,
    KwWhile,
    KwDo,
    KwReturn,
    KwInt,
    KwUnsigned,
    KwSigned,
    KwFloat,
    KwDouble,
    KwBool,
    KwVoid,
    KwChar,
    KwLong,
    KwShort,
    KwConst,
    KwTrue,
    KwFalse,
    KwShared,
    KwGlobal,
    KwDevice,
    KwSyncthreads,
    // punctuation / operators
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Question,
    Colon,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    ShlAssign,
    ShrAssign,
    PlusPlus,
    MinusMinus,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    AndAnd,
    OrOr,
    EqEq,
    NotEq,
    /// `=>` — implication, assertion language only.
    Implies,
    Lt,
    Gt,
    Le,
    Ge,
    Shl,
    Shr,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(n) => write!(f, "integer `{n}`"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A token with its source span.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    pub tok: Tok,
    pub span: Span,
}
