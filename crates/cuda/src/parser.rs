//! Recursive-descent parser with full C expression precedence.

use crate::ast::*;
use crate::error::FrontendError;
use crate::lexer::lex;
use crate::token::{Span, Tok, Token};

/// Parse a source file containing one or more kernels.
pub fn parse_program(src: &str) -> Result<Vec<Kernel>, FrontendError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut kernels = Vec::new();
    while p.peek() != &Tok::Eof {
        kernels.push(p.kernel()?);
    }
    if kernels.is_empty() {
        return Err(FrontendError::parse(Span::default(), "no kernel found"));
    }
    Ok(kernels)
}

/// Parse a source file expected to contain exactly one kernel.
pub fn parse_kernel(src: &str) -> Result<Kernel, FrontendError> {
    let ks = parse_program(src)?;
    if ks.len() != 1 {
        return Err(FrontendError::parse(
            Span::default(),
            format!("expected exactly one kernel, found {}", ks.len()),
        ));
    }
    Ok(ks.into_iter().next().expect("length checked"))
}

/// Parse a standalone expression (used by the assertion-language API).
pub fn parse_expr(src: &str) -> Result<Expr, FrontendError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect(Tok::Eof)?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek_nth(&self, n: usize) -> &Tok {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].tok
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: Tok) -> bool {
        if self.peek() == &t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok) -> Result<(), FrontendError> {
        if self.peek() == &t {
            self.bump();
            Ok(())
        } else {
            Err(FrontendError::parse(
                self.span(),
                format!("expected {t}, found {}", self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> Result<String, FrontendError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(FrontendError::parse(self.span(), format!("expected identifier, found {other}"))),
        }
    }

    // ------------------------------------------------------------- kernels

    fn kernel(&mut self) -> Result<Kernel, FrontendError> {
        // optional qualifiers
        while matches!(self.peek(), Tok::KwGlobal | Tok::KwDevice) {
            self.bump();
        }
        // return type: void or a scalar type (ignored)
        if !self.eat(Tok::KwVoid) {
            let _ = self.scalar_type()?;
        }
        let name = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                params.push(self.param()?);
                if !self.eat(Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        let body = self.block()?;
        Ok(Kernel { name, params, body })
    }

    fn param(&mut self) -> Result<Param, FrontendError> {
        let ty = self.scalar_type()?;
        let is_ptr = self.eat(Tok::Star);
        let name = self.ident()?;
        // `int data[]` is accepted as a pointer parameter too.
        let is_array = if self.eat(Tok::LBracket) {
            self.expect(Tok::RBracket)?;
            true
        } else {
            false
        };
        let kind = if is_ptr || is_array {
            ParamKind::GlobalArray { elem: ty }
        } else {
            ParamKind::Value { ty }
        };
        Ok(Param { name, kind })
    }

    /// `[const] (unsigned [int] | int | bool | float | double | long …)`
    fn scalar_type(&mut self) -> Result<Scalar, FrontendError> {
        self.eat(Tok::KwConst);
        let t = match self.peek().clone() {
            Tok::KwUnsigned => {
                self.bump();
                // optional `int`/`long`/`short`/`char`
                if matches!(self.peek(), Tok::KwInt | Tok::KwLong | Tok::KwShort | Tok::KwChar) {
                    self.bump();
                }
                Scalar::Uint
            }
            Tok::KwSigned => {
                self.bump();
                if matches!(self.peek(), Tok::KwInt | Tok::KwLong | Tok::KwShort | Tok::KwChar) {
                    self.bump();
                }
                Scalar::Int
            }
            Tok::KwInt | Tok::KwLong | Tok::KwShort | Tok::KwChar => {
                self.bump();
                Scalar::Int
            }
            Tok::KwBool => {
                self.bump();
                Scalar::Bool
            }
            Tok::KwFloat | Tok::KwDouble => {
                self.bump();
                Scalar::Float
            }
            other => {
                return Err(FrontendError::parse(self.span(), format!("expected a type, found {other}")))
            }
        };
        self.eat(Tok::KwConst);
        Ok(t)
    }

    fn is_type_start(&self) -> bool {
        matches!(
            self.peek(),
            Tok::KwInt
                | Tok::KwUnsigned
                | Tok::KwSigned
                | Tok::KwBool
                | Tok::KwFloat
                | Tok::KwDouble
                | Tok::KwLong
                | Tok::KwShort
                | Tok::KwChar
                | Tok::KwConst
                | Tok::KwShared
        )
    }

    // ---------------------------------------------------------- statements

    fn block(&mut self) -> Result<Vec<Stmt>, FrontendError> {
        self.expect(Tok::LBrace)?;
        let mut out = Vec::new();
        while !self.eat(Tok::RBrace) {
            if self.peek() == &Tok::Eof {
                return Err(FrontendError::parse(self.span(), "unterminated block"));
            }
            self.stmt_into(&mut out)?;
        }
        Ok(out)
    }

    /// Parse a single statement; it may expand to several (e.g. `int i, j;`).
    fn stmt_into(&mut self, out: &mut Vec<Stmt>) -> Result<(), FrontendError> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Semi => {
                self.bump();
                out.push(Stmt::Nop);
            }
            Tok::LBrace => {
                let inner = self.block()?;
                out.extend(inner);
            }
            Tok::KwSyncthreads => {
                self.bump();
                self.expect(Tok::LParen)?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                out.push(Stmt::Barrier { span });
            }
            Tok::KwIf => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let then = self.stmt_or_block()?;
                let els = if self.eat(Tok::KwElse) { self.stmt_or_block()? } else { Vec::new() };
                out.push(Stmt::If { cond, then, els, span });
            }
            Tok::KwFor => {
                self.bump();
                self.expect(Tok::LParen)?;
                let init = if self.peek() == &Tok::Semi {
                    self.bump();
                    Box::new(Stmt::Nop)
                } else if self.is_type_start() {
                    let mut decls = Vec::new();
                    self.decl_into(&mut decls)?;
                    if decls.len() != 1 {
                        return Err(FrontendError::parse(
                            span,
                            "for-initializer must declare exactly one variable",
                        ));
                    }
                    Box::new(decls.remove(0))
                } else {
                    let s = self.simple_assign()?;
                    self.expect(Tok::Semi)?;
                    Box::new(s)
                };
                let cond = if self.peek() == &Tok::Semi { Expr::Bool(true) } else { self.expr()? };
                self.expect(Tok::Semi)?;
                let update = if self.peek() == &Tok::RParen {
                    Box::new(Stmt::Nop)
                } else {
                    Box::new(self.simple_assign()?)
                };
                self.expect(Tok::RParen)?;
                let body = self.stmt_or_block()?;
                out.push(Stmt::For { init, cond, update, body, span });
            }
            Tok::KwWhile => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let body = self.stmt_or_block()?;
                out.push(Stmt::While { cond, body, span });
            }
            Tok::KwReturn => {
                self.bump();
                self.expect(Tok::Semi)?;
                // `return;` in a kernel is a no-op at the end of a void body.
                out.push(Stmt::Nop);
            }
            Tok::Ident(name) if is_spec_keyword(&name) && self.peek_nth(1) == &Tok::LParen => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                out.push(match name.as_str() {
                    "assert" => Stmt::Assert { cond, span },
                    "assume" => Stmt::Assume { cond, span },
                    "requires" => Stmt::Requires { cond, span },
                    "postcond" => Stmt::Postcond { cond, span },
                    _ => unreachable!("spec keyword checked"),
                });
            }
            _ if self.is_type_start() => {
                self.decl_into(out)?;
            }
            _ => {
                let s = self.simple_assign()?;
                self.expect(Tok::Semi)?;
                out.push(s);
            }
        }
        Ok(())
    }

    fn stmt_or_block(&mut self) -> Result<Vec<Stmt>, FrontendError> {
        if self.peek() == &Tok::LBrace {
            self.block()
        } else {
            let mut v = Vec::new();
            self.stmt_into(&mut v)?;
            Ok(v)
        }
    }

    /// Declarations, possibly `__shared__`, with comma-separated declarators.
    fn decl_into(&mut self, out: &mut Vec<Stmt>) -> Result<(), FrontendError> {
        let span = self.span();
        let shared = self.eat(Tok::KwShared);
        let ty = self.scalar_type()?;
        loop {
            self.eat(Tok::Star); // local pointer declarators are treated as arrays
            let name = self.ident()?;
            let mut dims = Vec::new();
            while self.eat(Tok::LBracket) {
                dims.push(self.expr()?);
                self.expect(Tok::RBracket)?;
            }
            let init = if self.eat(Tok::Assign) { Some(self.expr()?) } else { None };
            out.push(Stmt::Decl { ty, name, dims, init, shared, span });
            if !self.eat(Tok::Comma) {
                break;
            }
        }
        self.expect(Tok::Semi)?;
        Ok(())
    }

    /// Assignment-ish statements without the trailing semicolon:
    /// `lhs = e`, `lhs op= e`, `lhs++`, `++lhs`.
    fn simple_assign(&mut self) -> Result<Stmt, FrontendError> {
        let span = self.span();
        // prefix increment / decrement
        if matches!(self.peek(), Tok::PlusPlus | Tok::MinusMinus) {
            let inc = self.bump() == Tok::PlusPlus;
            let lhs = self.lvalue()?;
            return Ok(incdec(lhs, inc, span));
        }
        let lhs = self.lvalue()?;
        let op = match self.peek().clone() {
            Tok::Assign => None,
            Tok::PlusAssign => Some(BinOp::Add),
            Tok::MinusAssign => Some(BinOp::Sub),
            Tok::StarAssign => Some(BinOp::Mul),
            Tok::SlashAssign => Some(BinOp::Div),
            Tok::PercentAssign => Some(BinOp::Rem),
            Tok::AmpAssign => Some(BinOp::BitAnd),
            Tok::PipeAssign => Some(BinOp::BitOr),
            Tok::CaretAssign => Some(BinOp::BitXor),
            Tok::ShlAssign => Some(BinOp::Shl),
            Tok::ShrAssign => Some(BinOp::Shr),
            Tok::PlusPlus => {
                self.bump();
                return Ok(incdec(lhs, true, span));
            }
            Tok::MinusMinus => {
                self.bump();
                return Ok(incdec(lhs, false, span));
            }
            other => {
                return Err(FrontendError::parse(
                    span,
                    format!("expected an assignment operator, found {other}"),
                ))
            }
        };
        self.bump();
        let rhs = self.expr()?;
        Ok(Stmt::Assign { lhs, op, rhs, span })
    }

    fn lvalue(&mut self) -> Result<LValue, FrontendError> {
        let name = self.ident()?;
        let mut indices = Vec::new();
        while self.eat(Tok::LBracket) {
            indices.push(self.expr()?);
            self.expect(Tok::RBracket)?;
        }
        Ok(LValue { name, indices })
    }

    // --------------------------------------------------------- expressions

    /// Lowest precedence: implication (right-associative, assertion lang).
    fn expr(&mut self) -> Result<Expr, FrontendError> {
        let lhs = self.ternary()?;
        if self.eat(Tok::Implies) {
            let rhs = self.expr()?;
            return Ok(Expr::bin(BinOp::Imp, lhs, rhs));
        }
        Ok(lhs)
    }

    fn ternary(&mut self) -> Result<Expr, FrontendError> {
        let cond = self.logic_or()?;
        if self.eat(Tok::Question) {
            let then = self.expr()?;
            self.expect(Tok::Colon)?;
            let els = self.ternary()?;
            return Ok(Expr::Ternary {
                cond: Box::new(cond),
                then: Box::new(then),
                els: Box::new(els),
            });
        }
        Ok(cond)
    }

    fn logic_or(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.logic_and()?;
        while self.eat(Tok::OrOr) {
            let rhs = self.logic_and()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn logic_and(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.bit_or()?;
        while self.eat(Tok::AndAnd) {
            let rhs = self.bit_or()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn bit_or(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.bit_xor()?;
        while self.eat(Tok::Pipe) {
            let rhs = self.bit_xor()?;
            lhs = Expr::bin(BinOp::BitOr, lhs, rhs);
        }
        Ok(lhs)
    }

    fn bit_xor(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.bit_and()?;
        while self.eat(Tok::Caret) {
            let rhs = self.bit_and()?;
            lhs = Expr::bin(BinOp::BitXor, lhs, rhs);
        }
        Ok(lhs)
    }

    fn bit_and(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.equality()?;
        while self.eat(Tok::Amp) {
            let rhs = self.equality()?;
            lhs = Expr::bin(BinOp::BitAnd, lhs, rhs);
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.relational()?;
        loop {
            let op = match self.peek() {
                Tok::EqEq => BinOp::Eq,
                Tok::NotEq => BinOp::Ne,
                _ => break,
            };
            self.bump();
            let rhs = self.relational()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn relational(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.shift()?;
        loop {
            let op = match self.peek() {
                Tok::Lt => BinOp::Lt,
                Tok::Le => BinOp::Le,
                Tok::Gt => BinOp::Gt,
                Tok::Ge => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.shift()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn shift(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                Tok::Shl => BinOp::Shl,
                Tok::Shr => BinOp::Shr,
                _ => break,
            };
            self.bump();
            let rhs = self.additive()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, FrontendError> {
        let op = match self.peek() {
            Tok::Minus => Some(UnOp::Neg),
            Tok::Bang => Some(UnOp::Not),
            Tok::Tilde => Some(UnOp::BitNot),
            Tok::Plus => {
                self.bump();
                return self.unary();
            }
            Tok::LParen if self.is_cast() => {
                // (int) e / (unsigned) e — casts are width-preserving no-ops
                self.bump();
                let _ = self.scalar_type()?;
                self.expect(Tok::RParen)?;
                return self.unary();
            }
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let arg = self.unary()?;
            return Ok(Expr::Unary { op, arg: Box::new(arg) });
        }
        self.postfix()
    }

    fn is_cast(&self) -> bool {
        matches!(
            self.peek_nth(1),
            Tok::KwInt
                | Tok::KwUnsigned
                | Tok::KwSigned
                | Tok::KwBool
                | Tok::KwFloat
                | Tok::KwDouble
                | Tok::KwLong
                | Tok::KwShort
                | Tok::KwChar
        )
    }

    fn postfix(&mut self) -> Result<Expr, FrontendError> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(Expr::Int(n))
            }
            Tok::KwTrue => {
                self.bump();
                Ok(Expr::Bool(true))
            }
            Tok::KwFalse => {
                self.bump();
                Ok(Expr::Bool(false))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.bump();
                // builtin member access: tid.x / threadIdx.y / …
                if self.peek() == &Tok::Dot {
                    if let Some(mk) = builtin_base(&name) {
                        self.bump();
                        let dim_name = self.ident()?;
                        let dim = match dim_name.as_str() {
                            "x" => Dim::X,
                            "y" => Dim::Y,
                            "z" => Dim::Z,
                            other => {
                                return Err(FrontendError::parse(
                                    span,
                                    format!("unknown dimension `.{other}` on {name}"),
                                ))
                            }
                        };
                        return Ok(Expr::Builtin(mk(dim)));
                    }
                    return Err(FrontendError::parse(
                        span,
                        format!("member access is only supported on thread-geometry builtins, not `{name}`"),
                    ));
                }
                // call
                if self.peek() == &Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != &Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    return Ok(Expr::Call { name, args });
                }
                // indexing
                if self.peek() == &Tok::LBracket {
                    let mut indices = Vec::new();
                    while self.eat(Tok::LBracket) {
                        indices.push(self.expr()?);
                        self.expect(Tok::RBracket)?;
                    }
                    return Ok(Expr::Index { base: name, indices });
                }
                Ok(Expr::Ident(name))
            }
            other => Err(FrontendError::parse(span, format!("unexpected token {other} in expression"))),
        }
    }
}

fn incdec(lhs: LValue, inc: bool, span: Span) -> Stmt {
    Stmt::Assign {
        lhs,
        op: Some(if inc { BinOp::Add } else { BinOp::Sub }),
        rhs: Expr::Int(1),
        span,
    }
}

fn is_spec_keyword(name: &str) -> bool {
    matches!(name, "assert" | "assume" | "requires" | "postcond")
}

fn builtin_base(name: &str) -> Option<fn(Dim) -> Builtin> {
    match name {
        "threadIdx" | "tid" => Some(Builtin::Tid),
        "blockIdx" | "bid" => Some(Builtin::Bid),
        "blockDim" | "bdim" => Some(Builtin::Bdim),
        "gridDim" | "gdim" => Some(Builtin::Gdim),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_naive_transpose() {
        let src = r#"
__global__ void naiveTranspose(int *odata, int *idata, int width, int height) {
    int xIndex = blockIdx.x * blockDim.x + threadIdx.x;
    int yIndex = blockIdx.y * blockDim.y + threadIdx.y;
    if (xIndex < width && yIndex < height) {
        int index_in = xIndex + width * yIndex;
        int index_out = yIndex + height * xIndex;
        odata[index_out] = idata[index_in];
    }
}
"#;
        let k = parse_kernel(src).unwrap();
        assert_eq!(k.name, "naiveTranspose");
        assert_eq!(k.array_params(), vec!["odata", "idata"]);
        assert_eq!(k.scalar_params(), vec!["width", "height"]);
        assert_eq!(k.body.len(), 3);
    }

    #[test]
    fn parses_shared_2d_array_and_barrier() {
        let src = r#"
__global__ void k(int *o, int *i) {
    __shared__ int block[bdim.x][bdim.x + 1];
    block[tid.y][tid.x] = i[tid.x];
    __syncthreads();
    o[tid.x] = block[tid.x][tid.y];
}
"#;
        let k = parse_kernel(src).unwrap();
        let Stmt::Decl { name, dims, shared, .. } = &k.body[0] else {
            panic!("expected decl")
        };
        assert_eq!(name, "block");
        assert_eq!(dims.len(), 2);
        assert!(shared);
        assert!(matches!(k.body[2], Stmt::Barrier { .. }));
    }

    #[test]
    fn parses_for_loop_with_compound_update() {
        let src = r#"
void k(int *d) {
    for (unsigned int s = 1; s < bdim.x; s *= 2) {
        d[tid.x] += d[tid.x + s];
        __syncthreads();
    }
}
"#;
        let k = parse_kernel(src).unwrap();
        let Stmt::For { init, cond, update, body, .. } = &k.body[0] else {
            panic!("expected for")
        };
        assert!(matches!(**init, Stmt::Decl { ty: Scalar::Uint, .. }));
        assert!(matches!(cond, Expr::Binary { op: BinOp::Lt, .. }));
        assert!(matches!(**update, Stmt::Assign { op: Some(BinOp::Mul), .. }));
        assert_eq!(body.len(), 2);
    }

    #[test]
    fn expression_precedence() {
        // a + b * c << 2 == d && e || f
        let e = parse_expr("a + b * c << 2 == d && e || f").unwrap();
        // top must be ||
        let Expr::Binary { op: BinOp::Or, lhs, .. } = e else { panic!("top is ||") };
        let Expr::Binary { op: BinOp::And, lhs, .. } = *lhs else { panic!("next is &&") };
        let Expr::Binary { op: BinOp::Eq, lhs, .. } = *lhs else { panic!("next is ==") };
        let Expr::Binary { op: BinOp::Shl, .. } = *lhs else { panic!("next is <<") };
    }

    #[test]
    fn ternary_and_implication() {
        let e = parse_expr("i < n => a[i] == b ? c : d").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Imp, .. }));
        let e2 = parse_expr("x ? y : z ? u : v").unwrap();
        // right-associative ternary
        let Expr::Ternary { els, .. } = e2 else { panic!() };
        assert!(matches!(*els, Expr::Ternary { .. }));
    }

    #[test]
    fn modulo_and_increment() {
        let src = r#"
void k(int *d) {
    if ((tid.x % (2 * 4)) == 0) d[tid.x]++;
    int i = 0;
    i++;
    ++i;
    i--;
}
"#;
        let k = parse_kernel(src).unwrap();
        assert!(k.body.len() >= 4);
    }

    #[test]
    fn postcond_with_free_vars() {
        let src = r#"
void k(int *odata, int *idata, int width, int height) {
    int i, j;
    postcond(i < width && j < height => odata[i * height + j] == idata[j * width + i]);
}
"#;
        let k = parse_kernel(src).unwrap();
        assert!(matches!(k.body.last(), Some(Stmt::Postcond { .. })));
    }

    #[test]
    fn short_builtin_names() {
        let e = parse_expr("bid.x * bdim.x + tid.x").unwrap();
        let Expr::Binary { op: BinOp::Add, rhs, .. } = e else { panic!() };
        assert_eq!(*rhs, Expr::Builtin(Builtin::Tid(Dim::X)));
    }

    #[test]
    fn cast_is_noop() {
        let e = parse_expr("(int)x + (unsigned int)y").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Add, .. }));
    }

    #[test]
    fn error_on_member_of_ordinary_var() {
        assert!(parse_expr("foo.x").is_err());
    }

    #[test]
    fn multiple_kernels_in_one_file() {
        let src = "void a(int *x) { x[tid.x] = 1; } void b(int *y) { y[tid.x] = 2; }";
        let ks = parse_program(src).unwrap();
        assert_eq!(ks.len(), 2);
        assert_eq!(ks[0].name, "a");
        assert_eq!(ks[1].name, "b");
    }
}
