//! Front-end edge cases beyond the unit tests: operator corner cases,
//! diagnostics quality, and the exact paper listings.

use pug_cuda::ast::{BinOp, Expr, Stmt};
use pug_cuda::{check_kernel, parse_expr, parse_kernel, parse_program};

#[test]
fn paper_listing_naive_transpose_verbatim() {
    // §II listing, as printed in the paper (short builtin names).
    let src = r#"
void naiveTranspose (int *odata, int* idata, int width, int height) {
    int xIndex = bid.x * bdim.x + tid.x;
    int yIndex = bid.y * bdim.y + tid.y;
    if (xIndex < width && yIndex < height) {
        int index_in = xIndex + width * yIndex;
        int index_out = yIndex + height * xIndex;
        odata[index_out] = idata[index_in];
    }
    int i, j;
    postcond(i < width && j < height =>
        odata[i * height + j] == idata[j * width + i]);
}
"#;
    let k = parse_kernel(src).unwrap();
    check_kernel(&k).unwrap();
    assert_eq!(k.name, "naiveTranspose");
}

#[test]
fn paper_listing_loop_pair() {
    // §IV-E loop pair, as printed (with >>= and *=).
    let src = r#"
void a(int *sdata) {
    for (unsigned int k = bdim.x / 2; k > 0; k >>= 2) {
        if ((tid.x % (2 * k)) == 0) sdata[tid.x] += sdata[tid.x + k];
        __syncthreads();
    }
}
void b(int *sdata) {
    for (unsigned int k = 1; k < bdim.x; k *= 2) {
        int index = 2 * k * tid.x;
        if (index < bdim.x) sdata[index] += sdata[index + k];
        __syncthreads();
    }
}
"#;
    let ks = parse_program(src).unwrap();
    assert_eq!(ks.len(), 2);
    for k in &ks {
        check_kernel(k).unwrap();
    }
}

#[test]
fn precedence_mod_binds_like_mul() {
    let e = parse_expr("a % b + c").unwrap();
    let Expr::Binary { op: BinOp::Add, lhs, .. } = e else { panic!() };
    assert!(matches!(*lhs, Expr::Binary { op: BinOp::Rem, .. }));
}

#[test]
fn precedence_shift_below_additive() {
    let e = parse_expr("a << b + c").unwrap();
    let Expr::Binary { op: BinOp::Shl, rhs, .. } = e else { panic!() };
    assert!(matches!(*rhs, Expr::Binary { op: BinOp::Add, .. }));
}

#[test]
fn bitand_below_equality() {
    // C gotcha: a & b == c parses as a & (b == c).
    let e = parse_expr("a & b == c").unwrap();
    assert!(matches!(e, Expr::Binary { op: BinOp::BitAnd, .. }));
}

#[test]
fn unary_chains() {
    let e = parse_expr("-~!x").unwrap();
    assert!(matches!(e, Expr::Unary { .. }));
    let e2 = parse_expr("- - 5").unwrap();
    assert!(matches!(e2, Expr::Unary { .. }));
}

#[test]
fn dangling_else_binds_inner() {
    let src = "void k(int *d) { if (tid.x < 1) if (tid.x < 2) d[0] = 1; else d[1] = 2; }";
    let k = parse_kernel(src).unwrap();
    let Stmt::If { then, els, .. } = &k.body[0] else { panic!() };
    assert!(els.is_empty(), "else must bind to the inner if");
    let Stmt::If { els: inner_els, .. } = &then[0] else { panic!() };
    assert_eq!(inner_els.len(), 1);
}

#[test]
fn empty_statements_and_blocks() {
    let k = parse_kernel("void k(int *d) { ;; { } d[0] = 1; ; }").unwrap();
    check_kernel(&k).unwrap();
}

#[test]
fn error_messages_carry_position() {
    let err = parse_kernel("void k(int *d) {\n  d[0] = @;\n}").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("2:"), "line number expected in: {msg}");
}

#[test]
fn reserved_spec_names_need_parens() {
    // `assert` as an identifier without a call is just an ident.
    let k = parse_kernel("void k(int *d, int n) { int assert2 = n; d[0] = assert2; }").unwrap();
    check_kernel(&k).unwrap();
}

#[test]
fn for_without_init_or_update() {
    let src = "void k(int *d) { int i = 0; for (; i < 4; ) { d[i] = i; i++; } }";
    let k = parse_kernel(src).unwrap();
    check_kernel(&k).unwrap();
}

#[test]
fn do_keyword_is_rejected_cleanly() {
    assert!(parse_kernel("void k(int *d) { do { d[0] = 1; } while (0); }").is_err());
}

#[test]
fn pointer_and_bracket_params_agree() {
    let a = parse_kernel("void k(int *d) { d[0] = 1; }").unwrap();
    let b = parse_kernel("void k(int d[]) { d[0] = 1; }").unwrap();
    assert_eq!(a.params, b.params);
}

#[test]
fn shared_scalar_rejected_as_array_use() {
    // a __shared__ scalar declaration parses (dims empty ⇒ plain scalar)
    let k = parse_kernel("void k(int *d) { __shared__ int x; x = 1; d[0] = x; }").unwrap();
    check_kernel(&k).unwrap();
}

#[test]
fn float_keyword_in_body_rejected_at_typecheck() {
    let k = parse_kernel("void k(int *d) { float f = 1; d[0] = 0; }").unwrap();
    assert!(check_kernel(&k).is_err());
}

#[test]
fn deeply_nested_expression_parses() {
    let mut e = String::from("x");
    for _ in 0..64 {
        e = format!("({e} + 1)");
    }
    let src = format!("void k(int *d, int x) {{ d[0] = {e}; }}");
    let k = parse_kernel(&src).unwrap();
    check_kernel(&k).unwrap();
}

#[test]
fn hex_literals_and_masks() {
    let k = parse_kernel("void k(int *d) { d[tid.x & 0xF] = 0xff; }").unwrap();
    check_kernel(&k).unwrap();
}

#[test]
fn all_compound_assignments_roundtrip() {
    for op in ["+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="] {
        let src = format!("void k(int *d) {{ d[tid.x] {op} 3; }}");
        let k = parse_kernel(&src).unwrap_or_else(|e| panic!("{op}: {e}"));
        check_kernel(&k).unwrap_or_else(|e| panic!("{op}: {e}"));
    }
}

#[test]
fn ternary_in_index() {
    let k = parse_kernel("void k(int *d, int n) { d[tid.x < n ? tid.x : 0] = 1; }").unwrap();
    check_kernel(&k).unwrap();
}
