//! Golden-file tests for front-end diagnostics.
//!
//! Each case feeds a malformed kernel through the parse → typecheck
//! pipeline and snapshots the *exact* rendered diagnostic (phase, span,
//! message) against `tests/golden/<name>.txt`. Diagnostics are part of
//! the tool's user interface: a reworded message, a lost line number, or
//! a phase misattribution is a regression even when the error is still
//! detected.
//!
//! To refresh after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p pug-cuda --test golden_diagnostics
//! ```
//!
//! then review the diff like any other code change.

use pug_cuda::{check_kernel, parse_kernel};
use std::fs;
use std::path::PathBuf;

/// Run the front end on `src` and render the first diagnostic.
fn diagnose(src: &str) -> String {
    match parse_kernel(src) {
        Err(e) => e.to_string(),
        Ok(k) => match check_kernel(&k) {
            Err(e) => e.to_string(),
            Ok(_) => "no diagnostic (accepted)".to_string(),
        },
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(format!("{name}.txt"))
}

/// Compare (or, under `UPDATE_GOLDEN=1`, record) one snapshot.
fn check_golden(name: &str, src: &str) -> Result<(), String> {
    let actual = format!("input:\n{src}\ndiagnostic:\n{}\n", diagnose(src));
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, &actual).unwrap();
        return Ok(());
    }
    let expected = fs::read_to_string(&path).map_err(|e| {
        format!("{name}: cannot read {} ({e}); run with UPDATE_GOLDEN=1 to record", path.display())
    })?;
    if expected != actual {
        return Err(format!(
            "{name}: diagnostic drifted from golden file {}\n--- expected\n{expected}\n--- actual\n{actual}",
            path.display()
        ));
    }
    Ok(())
}

/// The corpus: (snapshot name, malformed source). Every case must
/// produce a diagnostic — an input that starts being accepted shows up
/// as a "no diagnostic (accepted)" snapshot mismatch.
const CASES: &[(&str, &str)] = &[
    ("lex_stray_symbol", "void k(int *d) {\n  d[0] = @;\n}"),
    ("lex_unterminated_comment", "void k(int *d) {\n  /* no closing\n  d[0] = 1;\n}"),
    ("parse_do_while", "void k(int *d) {\n  do { d[0] = 1; } while (0);\n}"),
    ("parse_missing_semicolon", "void k(int *d) {\n  d[0] = 1\n  d[1] = 2;\n}"),
    ("parse_unclosed_brace", "void k(int *d) {\n  if (tid.x < 4) {\n    d[0] = 1;\n}"),
    ("parse_missing_index", "void k(int *d) {\n  d[] = 1;\n}"),
    ("parse_bad_for_header", "void k(int *d) {\n  for (int i = 0; ; ; i++) d[i] = i;\n}"),
    ("parse_postcond_malformed", "void k(int *d) {\n  postcond(d[0] ==);\n}"),
    ("type_float_local", "void k(int *d) {\n  float f = 1;\n  d[0] = 0;\n}"),
    ("type_undeclared_variable", "void k(int *d) {\n  d[0] = q;\n}"),
    ("type_array_used_as_scalar", "void k(int *d) {\n  d = 1;\n}"),
    ("type_scalar_indexed", "void k(int *d, int n) {\n  d[0] = n[1];\n}"),
];

#[test]
fn diagnostics_match_golden_files() {
    let failures: Vec<String> =
        CASES.iter().filter_map(|(name, src)| check_golden(name, src).err()).collect();
    assert!(failures.is_empty(), "{} golden mismatches:\n{}", failures.len(), failures.join("\n"));
}

/// Meta-check: every case in the corpus actually errors. Keeps the golden
/// corpus honest — a "no diagnostic (accepted)" snapshot can only get in
/// by someone committing it past both this test and review.
#[test]
fn every_case_produces_a_diagnostic() {
    for (name, src) in CASES {
        assert_ne!(diagnose(src), "no diagnostic (accepted)", "case {name} no longer errors:\n{src}");
    }
}

/// Meta-check: no orphaned golden files for deleted cases.
#[test]
fn no_orphaned_golden_files() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    for entry in fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
        assert!(
            CASES.iter().any(|(name, _)| *name == stem),
            "orphaned golden file {} — delete it or re-add its case",
            path.display()
        );
    }
}
