//! # pug-testutil — deterministic test helpers
//!
//! The workspace builds in fully offline environments, so the test suites
//! cannot pull `rand`/`proptest` from a registry. This crate provides the
//! small slice of that functionality the suites actually use: a seedable,
//! deterministic PRNG with range/bool sampling, and a micro-benchmark
//! timing helper for the `cargo bench` harnesses.
//!
//! The generator is SplitMix64 (Steele, Lea & Flood; the seeding generator
//! of xoshiro): 64-bit state, full-period, passes BigCrush for the scales
//! used here. Determinism matters more than statistical perfection: every
//! failure reproduces from the printed seed.

use std::ops::{Range, RangeInclusive};
use std::time::{Duration, Instant};

pub mod kernelgen;
pub use kernelgen::{GenProfile, KernelGen};

/// Deterministic seedable PRNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the generator. Equal seeds give equal streams forever.
    pub fn seed_from_u64(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn gen_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 uniform mantissa bits, exactly how `rand` derives its f64s.
        let x = (self.gen_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }

    /// Uniform `u64` below `bound` (debiased by rejection).
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire-style rejection: retry in the biased zone.
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let x = self.gen_u64();
            if x < zone {
                return x % bound;
            }
        }
    }
}

/// Ranges [`TestRng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut TestRng) -> T;
}

macro_rules! impl_sample {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.gen_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_sample!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.gen_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_sample_signed!(i32, i64);

/// Time `iters` runs of `f` and report the mean, for the bench harnesses.
pub fn bench<F: FnMut()>(label: &str, iters: u32, mut f: F) {
    // One warm-up run keeps lazy initialization out of the measurement.
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let total = start.elapsed();
    let mean = total / iters;
    println!("{label:<40} {:>12} /iter  ({iters} iters)", format_duration(mean));
}

fn format_duration(d: Duration) -> String {
    if d >= Duration::from_secs(1) {
        format!("{:.3} s", d.as_secs_f64())
    } else if d >= Duration::from_millis(1) {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.1} µs", d.as_secs_f64() * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::seed_from_u64(7);
        let mut b = TestRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_u64(), b.gen_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(5..=5);
            assert_eq!(y, 5);
            let z: u32 = rng.gen_range(0..2);
            assert!(z < 2);
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = TestRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn range_distribution_covers_values() {
        let mut rng = TestRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
