//! Random CUDA-subset kernel generation for differential and property
//! testing.
//!
//! Promoted out of the workspace differential suite so every layer can
//! fuzz against the same corpus. Two profiles:
//!
//! * [`KernelGen::basic`] — the original generator: straight-line integer
//!   statements over `tid.x`, the scalar `p`, reads of `in`, writes of
//!   `out`, if/else nesting, and an optional second barrier round. This is
//!   the §III differential-testing workhorse (kernels stay cheap to
//!   interpret concretely).
//! * [`KernelGen::extended`] — adds the constructs the §IV *parameterized*
//!   encoding is built around: `__shared__` arrays written per-thread and
//!   read back across a `__syncthreads()` (conditional-assignment chains
//!   across barrier intervals), thread-guarded global writes (the
//!   `p(t) ? v[e(t)] := w(t)` shape), and extra barrier rounds (multi-BI
//!   instantiation chains).
//!
//! Generated source always stays inside the supported CUDA subset:
//! callers may `KernelUnit::load` every output. Determinism is absolute —
//! equal seed and profile give equal source, so any failure reproduces
//! from the printed seed.

use crate::TestRng;

/// Which language constructs the generator may emit.
#[derive(Clone, Copy, Debug)]
pub struct GenProfile {
    /// Declare `__shared__ int s[bdim.x]`, write it per-thread, and read
    /// it back after a barrier.
    pub shared_arrays: bool,
    /// Emit thread-guarded global writes (`if (tid-guard) out[..] = ..`).
    pub guarded_writes: bool,
    /// Allow up to two extra `__syncthreads()` rounds rewriting `out`.
    pub extra_barrier_rounds: bool,
}

impl GenProfile {
    /// The original differential-testing subset.
    pub fn basic() -> GenProfile {
        GenProfile { shared_arrays: false, guarded_writes: false, extra_barrier_rounds: false }
    }

    /// Everything on: fuzzes the §IV parameterized encoding too.
    pub fn extended() -> GenProfile {
        GenProfile { shared_arrays: true, guarded_writes: true, extra_barrier_rounds: true }
    }
}

/// A tiny random kernel generator over the supported CUDA subset.
#[derive(Clone, Debug)]
pub struct KernelGen {
    rng: TestRng,
    profile: GenProfile,
}

impl KernelGen {
    pub fn new(seed: u64, profile: GenProfile) -> KernelGen {
        KernelGen { rng: TestRng::seed_from_u64(seed), profile }
    }

    /// Original-profile generator (bit-compatible stream with the old
    /// inline `Gen` of the differential suite).
    pub fn basic(seed: u64) -> KernelGen {
        KernelGen::new(seed, GenProfile::basic())
    }

    /// Extended-profile generator: barriers, shared arrays, guarded writes.
    pub fn extended(seed: u64) -> KernelGen {
        KernelGen::new(seed, GenProfile::extended())
    }

    /// The underlying PRNG, for tests that sample configurations and
    /// inputs from the same seeded stream as the kernel itself.
    pub fn rng_mut(&mut self) -> &mut TestRng {
        &mut self.rng
    }

    /// Integer expressions over `tid.x`, the scalar `p`, reads of `in`,
    /// and small constants.
    pub fn expr(&mut self, depth: usize) -> String {
        if depth == 0 {
            return match self.rng.gen_range(0..4) {
                0 => "tid.x".into(),
                1 => "p".into(),
                2 => format!("{}", self.rng.gen_range(0..8)),
                _ => format!("in[{}]", self.idx(0)),
            };
        }
        let a = self.expr(depth - 1);
        let b = self.expr(depth - 1);
        let op = ["+", "-", "*", "&", "|", "^", "%", "/"][self.rng.gen_range(0..8usize)];
        format!("({a} {op} {b})")
    }

    /// Small index expressions (kept in range by masking).
    pub fn idx(&mut self, depth: usize) -> String {
        if depth == 0 {
            return match self.rng.gen_range(0..3) {
                0 => "tid.x".into(),
                1 => format!("{}", self.rng.gen_range(0..8)),
                _ => "(tid.x + 1)".into(),
            };
        }
        format!("(({}) & 7)", self.expr(depth - 1))
    }

    /// Comparison conditions.
    pub fn cond(&mut self) -> String {
        let a = self.expr(1);
        let b = self.expr(1);
        let op = ["<", "<=", "==", "!=", ">", ">="][self.rng.gen_range(0..6usize)];
        format!("({a}) {op} ({b})")
    }

    /// One statement; `depth` bounds if/else nesting.
    pub fn stmt(&mut self, depth: usize) -> String {
        self.stmt_for("out", depth)
    }

    /// One statement writing `dst`; same choice stream as [`Self::stmt`],
    /// so `stmt_for("out", d)` is bit-compatible with the original
    /// generator.
    fn stmt_for(&mut self, dst: &str, depth: usize) -> String {
        // The guarded-write variant is sampled *first* (extended profile
        // only) so the basic profile's choice stream stays identical to
        // the original generator.
        if self.profile.guarded_writes && self.rng.gen_bool(0.2) {
            // The paper's conditional-assignment shape: a thread-dependent
            // guard over a per-thread write.
            let bound = self.rng.gen_range(1..8);
            return format!(
                "if ((tid.x % 8) < {bound}) {dst}[{}] = {};",
                self.idx(1),
                self.expr(2)
            );
        }
        match self.rng.gen_range(0..6usize) {
            0 => format!("{dst}[{}] = {};", self.idx(1), self.expr(2)),
            1 => format!("int l{} = {};", self.rng.gen_range(0..3), self.expr(2)),
            2 if depth > 0 => {
                format!(
                    "if ({}) {{ {} }} else {{ {} }}",
                    self.cond(),
                    self.stmt_for(dst, depth - 1),
                    self.stmt_for(dst, depth - 1)
                )
            }
            3 => format!("{dst}[{}] += {};", self.idx(1), self.expr(1)),
            4 => {
                let v = self.rng.gen_range(0..3);
                format!("int l{v} = {}; {dst}[{}] = l{v};", self.expr(1), self.idx(1))
            }
            _ => format!("{dst}[{}] = in[{}];", self.idx(1), self.idx(1)),
        }
    }

    /// A complete kernel over `(int *out, int *in, int p)`.
    pub fn kernel(&mut self) -> String {
        let n = self.rng.gen_range(1..5);
        let body: Vec<String> = (0..n).map(|_| self.stmt(2)).collect();
        let barrier = if self.rng.gen_bool(0.4) {
            // a second round reading what the first wrote
            format!(
                "__syncthreads();\nout[{}] = out[{}] + 1;",
                self.idx(0),
                self.idx(0)
            )
        } else {
            String::new()
        };

        let mut decls = String::new();
        let mut tail = String::new();
        if self.profile.shared_arrays && self.rng.gen_bool(0.7) {
            // Per-thread write, barrier, then a read that is always
            // covered: every thread wrote `s[tid.x]`, and thread 0 wrote
            // `s[0]`. This is the canonical one-CA barrier interval of
            // §IV, so the parameterized resolver must chain through it.
            decls.push_str("__shared__ int s[bdim.x];\n");
            let val = self.expr(1);
            let read = if self.rng.gen_bool(0.5) { "s[tid.x]" } else { "s[0]" };
            tail.push_str(&format!(
                "s[tid.x] = {val};\n__syncthreads();\nout[{}] = {read};\n",
                self.idx(0)
            ));
        }
        if self.profile.extra_barrier_rounds {
            for _ in 0..self.rng.gen_range(0..3u32) {
                // Additional barrier intervals: the §IV-C multi-BI
                // backward-instantiation chains get real depth.
                tail.push_str(&format!(
                    "__syncthreads();\nout[{}] = out[{}] ^ {};\n",
                    self.idx(0),
                    self.idx(0),
                    self.expr(1)
                ));
            }
        }
        format!(
            "void k(int *out, int *in, int p) {{\n{decls}{}\n{barrier}\n{tail}}}",
            body.join("\n")
        )
    }

    /// A kernel over `arrays` independent output arrays `o0..o{k-1}` —
    /// one obligation chain per array, which is exactly the shape the
    /// intra-rung obligation pool fans out. Statements come from the same
    /// grammar as [`Self::kernel`] (profile constructs included), just
    /// re-targeted per array; determinism per (seed, profile, arrays) is
    /// absolute.
    pub fn multi_output_kernel(&mut self, arrays: usize) -> String {
        let arrays = arrays.max(1);
        let params: String = (0..arrays).map(|a| format!("int *o{a}, ")).collect();
        let mut body = String::new();
        for a in 0..arrays {
            let dst = format!("o{a}");
            // Guaranteed write first — grammar statements may be pure
            // declarations, and an array that is never written yields no
            // obligation chain at all.
            body.push_str(&format!("{dst}[{}] = {};\n", self.idx(1), self.expr(2)));
            for _ in 0..self.rng.gen_range(0..2u32) {
                body.push_str(&self.stmt_for(&dst, 1));
                body.push('\n');
            }
        }
        format!("void k({params}int *in, int p) {{\n{body}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_kernels() {
        for seed in 0..20 {
            assert_eq!(KernelGen::basic(seed).kernel(), KernelGen::basic(seed).kernel());
            assert_eq!(KernelGen::extended(seed).kernel(), KernelGen::extended(seed).kernel());
        }
    }

    #[test]
    fn basic_profile_never_emits_extended_constructs() {
        for seed in 0..50 {
            let src = KernelGen::basic(seed).kernel();
            assert!(!src.contains("__shared__"), "seed {seed}:\n{src}");
            assert!(!src.contains("% 8)"), "seed {seed}:\n{src}");
        }
    }

    #[test]
    fn multi_output_kernels_write_every_array() {
        for seed in 0..30 {
            let src = KernelGen::extended(seed).multi_output_kernel(4);
            for a in 0..4 {
                assert!(src.contains(&format!("int *o{a}, ")), "seed {seed}:\n{src}");
                assert!(src.contains(&format!("o{a}[")), "seed {seed}: o{a} never written\n{src}");
            }
            assert_eq!(
                src,
                KernelGen::extended(seed).multi_output_kernel(4),
                "seed {seed} not deterministic"
            );
        }
    }

    #[test]
    fn extended_profile_reaches_all_constructs() {
        let (mut shared, mut guarded, mut multi_barrier) = (0, 0, 0);
        for seed in 0..50 {
            let src = KernelGen::extended(seed).kernel();
            if src.contains("__shared__") {
                shared += 1;
            }
            if src.contains("% 8)") {
                guarded += 1;
            }
            if src.matches("__syncthreads()").count() >= 2 {
                multi_barrier += 1;
            }
        }
        assert!(shared > 10, "shared arrays in {shared}/50");
        assert!(guarded > 5, "guarded writes in {guarded}/50");
        assert!(multi_barrier > 5, "multi-BI kernels in {multi_barrier}/50");
    }
}
