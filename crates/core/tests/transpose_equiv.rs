//! End-to-end parameterized equivalence on the paper's §II transpose pair.

use pugpara::equiv::{check_equivalence_nonparam, check_equivalence_param, CheckOptions};
use pugpara::{BugKind, KernelUnit, Verdict};
use pug_ir::GpuConfig;
use std::time::Duration;

fn load(src: &str) -> KernelUnit {
    KernelUnit::load(src).unwrap()
}

fn opts() -> CheckOptions {
    CheckOptions::with_timeout(Duration::from_secs(120))
}

#[test]
fn param_transpose_equivalent_8bit() {
    let naive = load(pug_kernels::transpose::NAIVE);
    let opt = load(pug_kernels::transpose::OPTIMIZED);
    let cfg = GpuConfig::symbolic(8);
    let report = check_equivalence_param(&naive, &opt, &cfg, &opts()).unwrap();
    for q in &report.queries {
        eprintln!("  {}: {} in {:?}", q.label, q.outcome, q.duration);
    }
    assert!(
        report.verdict.is_verified(),
        "transpose pair must verify, got {}",
        report.verdict
    );
}

#[test]
fn param_transpose_buggy_addr_found() {
    let naive = load(pug_kernels::transpose::NAIVE);
    let buggy = load(pug_kernels::transpose::BUGGY_ADDR);
    let cfg = GpuConfig::symbolic(8);
    let report =
        check_equivalence_param(&naive, &buggy, &cfg, &opts().fast_bug_hunt()).unwrap();
    assert!(report.verdict.is_bug(), "address bug must be found, got {}", report.verdict);
}

#[test]
fn param_transpose_nonsquare_block_detected() {
    // Without requires(bdim.x == bdim.y) the hidden square-block assumption
    // is violated — the paper's §IV-B discovery, the `*` rows of Table II.
    let naive = load(pug_kernels::transpose::NAIVE);
    let unconstrained = load(pug_kernels::transpose::OPTIMIZED_UNCONSTRAINED);
    let cfg = GpuConfig::symbolic(8);
    let report = check_equivalence_param(&naive, &unconstrained, &cfg, &opts()).unwrap();
    match &report.verdict {
        Verdict::Bug(b) => {
            // Either the value query (corrupted tile) or the coverage query
            // (unwitnessed read) may fire first; in both cases the witness
            // configuration must have a non-square block.
            assert!(
                matches!(b.kind, BugKind::EquivalenceMismatch | BugKind::CoverageMismatch),
                "unexpected bug kind {:?}",
                b.kind
            );
            let get = |name: &str| -> u64 {
                b.witness
                    .lines()
                    .find(|l| l.trim_start().starts_with(&format!("{name} =")))
                    .and_then(|l| l.split('=').nth(1))
                    .and_then(|v| v.trim().split(' ').next())
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("{name} missing from witness:\n{}", b.witness))
            };
            assert_ne!(get("bdim.x"), get("bdim.y"), "witness block must be non-square");
        }
        other => panic!("expected the hidden-assumption bug, got {other}"),
    }
}

#[test]
fn nonparam_transpose_equivalent_small() {
    let naive = load(pug_kernels::transpose::NAIVE);
    let opt = load(pug_kernels::transpose::OPTIMIZED);
    // 2×2 block (n = 4), one block.
    let cfg = GpuConfig::concrete_2d(8, 2, 2);
    let report = check_equivalence_nonparam(&naive, &opt, &cfg, &opts()).unwrap();
    assert!(
        report.verdict.is_verified(),
        "non-param transpose at n=4 must verify, got {}",
        report.verdict
    );
}

#[test]
fn nonparam_transpose_buggy_found() {
    let naive = load(pug_kernels::transpose::NAIVE);
    let buggy = load(pug_kernels::transpose::BUGGY_ADDR);
    let cfg = GpuConfig::concrete_2d(8, 2, 2);
    let report = check_equivalence_nonparam(&naive, &buggy, &cfg, &opts()).unwrap();
    assert!(report.verdict.is_bug(), "got {}", report.verdict);
}
