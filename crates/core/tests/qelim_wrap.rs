//! Regression: the monotone-map quantifier elimination must agree with
//! explicit enumeration at every address of a *small* bit-width — in
//! particular at `n = 0`, where the `g(n−1)` boundary term wraps to
//! `g(2^w−1)` and (before the fix) the eliminated formula could wrongly
//! claim a vacuously-uncovered address was covered.
//!
//! At width 4 the whole space is enumerable: for each map family and each
//! domain size we assert, for all 16 addresses, that the ∃-closed
//! eliminated formula is satisfiable exactly when the address is not in
//! the image `{g(t) : t < n}`.

use pug_smt::{check, Budget, Ctx, TermId};
use pugpara::qelim::eliminate_no_cover;

const W: u32 = 4;

/// A map family g(t) = m·t + c (mod 2^4) with a human-readable name.
struct Family {
    name: &'static str,
    mul: u64,
    add: u64,
}

impl Family {
    fn apply(&self, ctx: &mut Ctx, t: TermId) -> TermId {
        let m = ctx.mk_bv_const(self.mul, W);
        let c = ctx.mk_bv_const(self.add, W);
        let p = ctx.mk_bv_mul(m, t);
        ctx.mk_bv_add(p, c)
    }

    fn concrete(&self, t: u64) -> u64 {
        (self.mul.wrapping_mul(t).wrapping_add(self.add)) & 0xF
    }

    /// True iff g is strictly increasing (no wrap) on [0..n).
    fn monotone_on(&self, n: u64) -> bool {
        (1..n).all(|t| self.concrete(t - 1) < self.concrete(t))
    }
}

fn families() -> Vec<Family> {
    vec![
        Family { name: "identity", mul: 1, add: 0 },
        Family { name: "stride2", mul: 2, add: 1 },
        Family { name: "offset9", mul: 1, add: 9 },
        Family { name: "stride3", mul: 3, add: 0 },
    ]
}

/// Check one (family, n) pair across every address of the 4-bit space.
fn check_family(fam: &Family, nv: u64) {
    assert!(fam.monotone_on(nv), "{} is not monotone on [0..{nv})", fam.name);
    let image: Vec<u64> = (0..nv).map(|t| fam.concrete(t)).collect();
    for addr in 0..16u64 {
        let mut ctx = Ctx::new();
        let a = ctx.mk_bv_const(addr, W);
        let n = ctx.mk_bv_const(nv, W);
        let mut g = |ctx: &mut Ctx, t: TermId| fam.apply(ctx, t);
        let nc = eliminate_no_cover(&mut ctx, &mut g, a, n, "wrap");
        let uncovered = !image.contains(&addr);
        let sat = check(&mut ctx, &[nc.formula], &Budget::unlimited()).is_sat();
        assert_eq!(
            sat, uncovered,
            "{}: n={nv} addr={addr}: eliminated formula said {} but enumeration says {}",
            fam.name,
            if sat { "uncovered" } else { "covered" },
            if uncovered { "uncovered" } else { "covered" },
        );
    }
}

#[test]
fn empty_domain_is_vacuously_uncovered() {
    // n = 0: every address is uncovered; before the fix the wrapped
    // g(n−1) = g(15) boundary could make the formula UNSAT.
    for fam in families() {
        check_family(&fam, 0);
    }
}

#[test]
fn singleton_domain_matches_enumeration() {
    for fam in families() {
        check_family(&fam, 1);
    }
}

#[test]
fn interior_domains_match_enumeration() {
    // Per-family domain sizes chosen to stay monotone (no image wrap) at
    // width 4: identity up to 15, stride2 up to 7 (g(6)=13), offset9 up to
    // 6 (g(5)=14), stride3 up to 5 (g(4)=12).
    let cases: &[(&str, &[u64])] = &[
        ("identity", &[7, 15]),
        ("stride2", &[4, 7]),
        ("offset9", &[3, 6]),
        ("stride3", &[2, 5]),
    ];
    for fam in families() {
        let sizes = cases.iter().find(|(n, _)| *n == fam.name).unwrap().1;
        for &nv in sizes {
            check_family(&fam, nv);
        }
    }
}
