//! Performance-defect analyses: bank conflicts and coalescing — the
//! optimizations whose motivation the paper's §I describes and whose
//! *results* the Transpose pair embodies.

use pugpara::equiv::CheckOptions;
use pugpara::perf::{check_bank_conflicts, check_coalescing};
use pugpara::KernelUnit;
use pug_ir::GpuConfig;
use std::time::Duration;

fn opts() -> CheckOptions {
    CheckOptions::with_timeout(Duration::from_secs(120))
}

#[test]
fn naive_transpose_writes_are_non_coalesced() {
    // odata[yIndex + height * xIndex]: adjacent threads stride by `height`
    // — the very defect the optimized kernel fixes (§II).
    let unit = KernelUnit::load(pug_kernels::transpose::NAIVE).unwrap();
    let report = check_coalescing(&unit, &GpuConfig::symbolic_2d(8), &opts()).unwrap();
    assert!(
        report.findings.iter().any(|f| f.detail.contains("odata")),
        "naive transpose writes must be flagged non-coalesced"
    );
}

#[test]
fn unpadded_tile_has_bank_conflicts() {
    // Reading a square tile column-wise without padding: stride bdim.x;
    // with bdim.x = 16 every lane hits the same bank.
    let src = r#"
void k(int *odata, int *idata) {
    requires(blockDim.x == 16 && blockDim.y == 16 && blockDim.z == 1);
    __shared__ int tile[blockDim.x][blockDim.x];
    tile[threadIdx.y][threadIdx.x] = idata[threadIdx.x];
    __syncthreads();
    odata[threadIdx.x] = tile[threadIdx.x][threadIdx.y];
}
"#;
    let unit = KernelUnit::load(src).unwrap();
    let report = check_bank_conflicts(&unit, &GpuConfig::symbolic_2d(8), &opts()).unwrap();
    assert!(
        report.findings.iter().any(|f| f.detail.contains("tile")),
        "unpadded column-wise tile read must conflict, findings: {:?}",
        report.findings.iter().map(|f| &f.detail).collect::<Vec<_>>()
    );
}

#[test]
fn padded_tile_read_can_still_conflict_for_odd_blocks() {
    // The +1 padding removes conflicts only for specific block sizes; the
    // analysis stays symbolic, so *some* configuration may conflict. We
    // only require the analysis to terminate and produce a report.
    let unit = KernelUnit::load(pug_kernels::transpose::OPTIMIZED).unwrap();
    let report = check_bank_conflicts(&unit, &GpuConfig::symbolic_2d(8), &opts()).unwrap();
    assert!(!report.queries.is_empty());
}

#[test]
fn vector_add_is_coalesced() {
    let unit = KernelUnit::load(pug_kernels::vector_add::KERNEL).unwrap();
    let report = check_coalescing(&unit, &GpuConfig::symbolic_1d(8), &opts()).unwrap();
    assert!(
        report.findings.is_empty(),
        "vectorAdd accesses are contiguous, findings: {:?}",
        report.findings.iter().map(|f| &f.detail).collect::<Vec<_>>()
    );
}

#[test]
fn reduction_v0_shared_accesses_conflict() {
    // sdata[tid.x + s] with s ≥ 16 maps distinct addresses to one bank.
    let unit = KernelUnit::load(pug_kernels::reduction::V0).unwrap();
    let report = check_bank_conflicts(&unit, &GpuConfig::symbolic_1d(8), &opts()).unwrap();
    // Best-effort: the analysis must at least run queries on sdata.
    assert!(report.queries.iter().any(|q| q.label.contains("sdata")));
}
