//! Differential suite for the incremental SMT backend: for every corpus
//! kernel pair and for fuzzed `KernelGen` kernels, the persistent
//! `SolveSession` path (`CheckOptions::default()`, incremental on) must
//! return the same verdict — and the same per-query outcome sequence — as
//! the one-shot `check_detailed` path (`CheckOptions::one_shot()`), both
//! with unlimited budgets and under failpoint-injected budget exhaustion
//! mid-session.

use pugpara::equiv::{check_equivalence_param, CheckOptions, Report};
use pugpara::{KernelUnit, QueryCache, Verdict};
use pug_ir::GpuConfig;
use pug_smt::failpoints::{self, Fault};
use pug_testutil::KernelGen;
use std::time::Duration;

fn load(src: &str) -> KernelUnit {
    KernelUnit::load(src).unwrap()
}

fn opts() -> CheckOptions {
    CheckOptions::with_timeout(Duration::from_secs(120))
}

/// Verdicts must match exactly up to the bug witness (models may differ —
/// both solvers are free to pick any countermodel).
fn same_verdict(a: &Verdict, b: &Verdict) -> bool {
    match (a, b) {
        (Verdict::Verified(x), Verdict::Verified(y)) => x == y,
        (Verdict::Bug(x), Verdict::Bug(y)) => x.kind == y.kind,
        (Verdict::Timeout, Verdict::Timeout) => true,
        _ => false,
    }
}

fn assert_reports_agree(label: &str, inc: &Report, one: &Report) {
    assert!(
        same_verdict(&inc.verdict, &one.verdict),
        "{label}: incremental verdict {} != one-shot verdict {}",
        inc.verdict,
        one.verdict
    );
    // The query streams must agree label-for-label and outcome-for-outcome:
    // the incremental path changes how queries are solved, never which
    // queries run or how they answer.
    assert_eq!(
        inc.queries.len(),
        one.queries.len(),
        "{label}: query counts diverge"
    );
    for (qi, qo) in inc.queries.iter().zip(one.queries.iter()) {
        assert_eq!(qi.label, qo.label, "{label}: query order diverges");
        assert_eq!(
            qi.outcome, qo.outcome,
            "{label}: query `{}` outcome diverges",
            qi.label
        );
    }
}

fn differential(label: &str, src: &KernelUnit, tgt: &KernelUnit, cfg: &GpuConfig) {
    let inc = check_equivalence_param(src, tgt, cfg, &opts()).unwrap();
    let one = check_equivalence_param(src, tgt, cfg, &opts().one_shot()).unwrap();
    assert_reports_agree(label, &inc, &one);
}

#[test]
fn corpus_pairs_agree() {
    let cases: &[(&str, &str, &str, GpuConfig)] = &[
        (
            "transpose ok",
            pug_kernels::transpose::NAIVE,
            pug_kernels::transpose::OPTIMIZED,
            GpuConfig::symbolic(8),
        ),
        (
            "transpose buggy addr",
            pug_kernels::transpose::NAIVE,
            pug_kernels::transpose::BUGGY_ADDR,
            GpuConfig::symbolic(8),
        ),
        (
            "transpose unconstrained",
            pug_kernels::transpose::NAIVE,
            pug_kernels::transpose::OPTIMIZED_UNCONSTRAINED,
            GpuConfig::symbolic(8),
        ),
        (
            "vector_add self",
            pug_kernels::vector_add::KERNEL,
            pug_kernels::vector_add::KERNEL,
            GpuConfig::symbolic_1d(8),
        ),
        (
            "vector_add buggy",
            pug_kernels::vector_add::KERNEL,
            pug_kernels::vector_add::BUGGY,
            GpuConfig::symbolic_1d(8),
        ),
    ];
    for (label, src, tgt, cfg) in cases {
        differential(label, &load(src), &load(tgt), cfg);
    }
}

#[test]
fn reduction_pair_agrees_concretized() {
    let v0 = load(pug_kernels::reduction::V0);
    let v1 = load(pug_kernels::reduction::V1);
    let cfg = GpuConfig::symbolic_1d(8);
    let o = opts().concretized("n", 8);
    let inc = check_equivalence_param(&v0, &v1, &cfg, &o).unwrap();
    let one = check_equivalence_param(&v0, &v1, &cfg, &o.clone().one_shot()).unwrap();
    assert_reports_agree("reduction v0/v1 +C", &inc, &one);
}

#[test]
fn fuzzed_kernels_agree_with_one_shot() {
    // Self-equivalence of generated kernels: many obligations per check,
    // shared premise prefixes — exactly the profile the session optimizes.
    for seed in 0..12u64 {
        let src = KernelGen::extended(seed).kernel();
        let unit = match KernelUnit::load(&src) {
            Ok(u) => u,
            Err(_) => continue, // generator stays in-subset; be lenient anyway
        };
        let cfg = GpuConfig::symbolic_1d(8);
        let inc = match check_equivalence_param(&unit, &unit, &cfg, &opts()) {
            Ok(r) => r,
            Err(_) => continue, // alignment limits apply to both paths equally
        };
        let one = check_equivalence_param(&unit, &unit, &cfg, &opts().one_shot()).unwrap();
        assert_reports_agree(&format!("fuzz seed {seed}\n{src}"), &inc, &one);
    }
}

#[test]
fn fuzzed_basic_profile_agrees() {
    for seed in 100..108u64 {
        let src = KernelGen::basic(seed).kernel();
        let Ok(unit) = KernelUnit::load(&src) else { continue };
        let cfg = GpuConfig::symbolic_1d(8);
        let Ok(inc) = check_equivalence_param(&unit, &unit, &cfg, &opts()) else { continue };
        let one = check_equivalence_param(&unit, &unit, &cfg, &opts().one_shot()).unwrap();
        assert_reports_agree(&format!("fuzz basic seed {seed}\n{src}"), &inc, &one);
    }
}

#[test]
fn budget_exhaustion_mid_session_agrees() {
    // Failpoint-injected budget exhaustion at the SMT boundary: both paths
    // trip the same `smt::check` site on every query, so both degrade to
    // the same Timeout verdict instead of diverging or crashing.
    let naive = load(pug_kernels::transpose::NAIVE);
    let opt = load(pug_kernels::transpose::OPTIMIZED);
    let cfg = GpuConfig::symbolic(8);

    failpoints::arm("smt::check", Fault::BudgetExhausted);
    let inc = check_equivalence_param(&naive, &opt, &cfg, &opts());
    let one = check_equivalence_param(&naive, &opt, &cfg, &opts().one_shot());
    failpoints::reset();

    let inc = inc.unwrap();
    let one = one.unwrap();
    assert!(matches!(inc.verdict, Verdict::Timeout), "incremental: {}", inc.verdict);
    assert!(matches!(one.verdict, Verdict::Timeout), "one-shot: {}", one.verdict);
}

#[test]
fn tiny_conflict_cap_does_not_crash_session() {
    // A starvation-level per-query conflict cap: verdicts may legitimately
    // be Timeout, but the session must never panic, poison the process, or
    // report a bug/proof the one-shot path contradicts.
    let naive = load(pug_kernels::transpose::NAIVE);
    let opt = load(pug_kernels::transpose::OPTIMIZED);
    let cfg = GpuConfig::symbolic(8);
    let mut o = opts();
    o.max_conflicts = Some(1);
    let inc = check_equivalence_param(&naive, &opt, &cfg, &o).unwrap();
    let one = check_equivalence_param(&naive, &opt, &cfg, &o.clone().one_shot()).unwrap();
    assert_reports_agree("conflict-starved transpose", &inc, &one);
}

#[test]
fn query_cache_short_circuits_repeat_checks() {
    // Two identical checks sharing one cache: the second run's obligations
    // are all cache hits, and the verdict is unchanged.
    let naive = load(pug_kernels::transpose::NAIVE);
    let opt = load(pug_kernels::transpose::OPTIMIZED);
    let cfg = GpuConfig::symbolic(8);
    let cache = QueryCache::new();

    let first =
        check_equivalence_param(&naive, &opt, &cfg, &opts().with_query_cache(cache.clone()))
            .unwrap();
    assert!(first.verdict.is_verified());
    let h0 = cache.hits();

    let second =
        check_equivalence_param(&naive, &opt, &cfg, &opts().with_query_cache(cache.clone()))
            .unwrap();
    assert!(second.verdict.is_verified());
    assert!(
        cache.hits() > h0,
        "second run must hit the cache (hits stayed at {h0})"
    );
    // Every unsat obligation discharged in the first run is answered from
    // the cache in the second (failed-witness Sat probes are re-solved —
    // only Unsat is cached).
    let cached = second.queries.iter().filter(|q| q.stats.cached).count();
    let valid_first = first.queries.iter().filter(|q| q.outcome == "valid").count();
    assert!(
        cached >= valid_first,
        "each discharged obligation should come back from the cache \
         ({cached} cached < {valid_first} discharged)"
    );
    // And the cross-mode agreement still holds with a cache in play.
    let one = check_equivalence_param(&naive, &opt, &cfg, &opts().one_shot()).unwrap();
    assert!(same_verdict(&second.verdict, &one.verdict));
}
