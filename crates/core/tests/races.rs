//! Parameterized race checking tests.

use pugpara::equiv::CheckOptions;
use pugpara::race::check_races;
use pugpara::{BugKind, KernelUnit};
use pug_ir::{Extent, GpuConfig};
use std::time::Duration;

fn opts() -> CheckOptions {
    CheckOptions::with_timeout(Duration::from_secs(120))
}

fn cfg_1d(bits: u32) -> GpuConfig {
    GpuConfig {
        bits,
        bdim: [Extent::Sym, Extent::Const(1), Extent::Const(1)],
        gdim: [Extent::Sym, Extent::Const(1)],
    }
}

#[test]
fn disjoint_writes_are_race_free() {
    // Single block: per-thread cells are disjoint.
    let unit =
        KernelUnit::load("void k(int *out, int *in) { out[tid.x] = in[tid.x]; }").unwrap();
    let cfg = GpuConfig {
        bits: 8,
        bdim: [Extent::Sym, Extent::Const(1), Extent::Const(1)],
        gdim: [Extent::Const(1), Extent::Const(1)],
    };
    let report = check_races(&unit, &cfg, &opts()).unwrap();
    assert!(report.verdict.is_verified(), "got {}", report.verdict);
}

#[test]
fn cross_block_alias_is_a_race() {
    // With a symbolic grid the same kernel races: two blocks write the
    // same `out[tid.x]` cell.
    let unit =
        KernelUnit::load("void k(int *out, int *in) { out[tid.x] = in[tid.x]; }").unwrap();
    let report = check_races(&unit, &cfg_1d(8), &opts()).unwrap();
    let bug = report.verdict.bug().expect("blocks alias out[tid.x]");
    assert_eq!(bug.kind, BugKind::DataRace);
}

#[test]
fn same_cell_write_is_a_race() {
    let unit = KernelUnit::load("void k(int *out) { out[0] = tid.x; }").unwrap();
    let report = check_races(&unit, &cfg_1d(8), &opts()).unwrap();
    let bug = report.verdict.bug().expect("two threads write out[0]");
    assert_eq!(bug.kind, BugKind::DataRace);
}

#[test]
fn read_write_overlap_is_a_race() {
    // thread t reads in-place neighbour it also writes: classic off-by-one
    // race without a barrier.
    let unit =
        KernelUnit::load("void k(int *d) { d[tid.x] = d[tid.x + 1]; }").unwrap();
    let report = check_races(&unit, &cfg_1d(8), &opts()).unwrap();
    assert!(report.verdict.is_bug(), "got {}", report.verdict);
}

#[test]
fn barrier_separates_accesses() {
    // The same pattern with a barrier between write and read is race-free.
    let src = r#"
void k(int *d, int *o) {
    __shared__ int s[bdim.x];
    s[tid.x] = d[tid.x];
    __syncthreads();
    o[tid.x] = s[tid.x + 1];
}
"#;
    let unit = KernelUnit::load(src).unwrap();
    let cfg = GpuConfig {
        bits: 8,
        bdim: [Extent::Sym, Extent::Const(1), Extent::Const(1)],
        gdim: [Extent::Const(1), Extent::Const(1)],
    };
    let report = check_races(&unit, &cfg, &opts()).unwrap();
    assert!(report.verdict.is_verified(), "got {}", report.verdict);
}

#[test]
fn reduction_v0_race_free_parameterized() {
    let unit = KernelUnit::load(pug_kernels::reduction::V0).unwrap();
    let report = check_races(&unit, &cfg_1d(8), &opts()).unwrap();
    for q in &report.queries {
        eprintln!("  {}: {} in {:?}", q.label, q.outcome, q.duration);
    }
    assert!(report.verdict.is_verified(), "got {}", report.verdict);
}

#[test]
fn reduction_v1_race_free_parameterized() {
    let unit = KernelUnit::load(pug_kernels::reduction::V1).unwrap();
    let report = check_races(&unit, &cfg_1d(8), &opts()).unwrap();
    assert!(report.verdict.is_verified(), "got {}", report.verdict);
}

#[test]
fn racy_reduction_without_guard_found() {
    // Dropping the stride guard makes sdata[index] collide across threads…
    // actually overlapping via index+s reads vs index writes.
    let src = r#"
void k(int *g_odata, int *g_idata) {
    requires(blockDim.x <= 16 && blockDim.y == 1 && blockDim.z == 1);
    __shared__ int sdata[blockDim.x];
    sdata[tid.x] = g_idata[tid.x];
    __syncthreads();
    sdata[tid.x] += sdata[tid.x + 1];
    if (tid.x == 0) g_odata[bid.x] = sdata[0];
}
"#;
    let unit = KernelUnit::load(src).unwrap();
    let report = check_races(&unit, &cfg_1d(8), &opts()).unwrap();
    let bug = report.verdict.bug().expect("sdata[t] += sdata[t+1] races");
    assert_eq!(bug.kind, BugKind::DataRace);
}

#[test]
fn transpose_optimized_race_free() {
    let unit = KernelUnit::load(pug_kernels::transpose::OPTIMIZED).unwrap();
    let report = check_races(&unit, &GpuConfig::symbolic_2d(8), &opts()).unwrap();
    assert!(report.verdict.is_verified(), "got {}", report.verdict);
}
