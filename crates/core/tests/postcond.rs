//! Post-condition checking tests — the paper's §III assertion language on
//! the corpus kernels.

use pugpara::equiv::CheckOptions;
use pugpara::postcond::{check_postcondition_nonparam, check_postcondition_param};
use pugpara::KernelUnit;
use pug_ir::GpuConfig;
use std::time::Duration;

fn opts() -> CheckOptions {
    CheckOptions::with_timeout(Duration::from_secs(120))
}

#[test]
fn vector_add_postcond_param() {
    let unit = KernelUnit::load(pug_kernels::vector_add::WITH_POSTCOND).unwrap();
    let cfg = GpuConfig::symbolic(8);
    let report = check_postcondition_param(&unit, &cfg, &opts()).unwrap();
    for q in &report.queries {
        eprintln!("  {}: {} in {:?}", q.label, q.outcome, q.duration);
    }
    assert!(report.verdict.is_verified(), "got {}", report.verdict);
}

#[test]
fn vector_add_postcond_nonparam() {
    let unit = KernelUnit::load(pug_kernels::vector_add::WITH_POSTCOND).unwrap();
    let cfg = GpuConfig::concrete_1d(8, 4);
    let report = check_postcondition_nonparam(&unit, &cfg, &opts()).unwrap();
    assert!(report.verdict.is_verified(), "got {}", report.verdict);
}

#[test]
fn violated_postcond_gives_witness() {
    // c[i] = a[i] + b[i] but spec demands a[i] - b[i].
    let src = r#"
void k(int *c, int *a, int *b, int n) {
    requires(n <= gridDim.x * blockDim.x);
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { c[i] = a[i] + b[i]; }
    int j;
    postcond(0 <= j && j < n => c[j] == a[j] - b[j]);
}
"#;
    let unit = KernelUnit::load(src).unwrap();
    let cfg = GpuConfig::symbolic(8);
    let report = check_postcondition_param(&unit, &cfg, &opts()).unwrap();
    let bug = report.verdict.bug().expect("must find the violated postcondition");
    assert_eq!(bug.kind, pugpara::BugKind::AssertionViolation);
    assert!(!bug.witness.is_empty());
}

#[test]
fn in_kernel_assert_checked() {
    // assert inside the kernel body: thread-local property.
    let src = r#"
void k(int *c) {
    int i = threadIdx.x;
    assert(i < blockDim.x);
    c[i] = i;
}
"#;
    let unit = KernelUnit::load(src).unwrap();
    let cfg = GpuConfig::symbolic(8);
    let report = check_postcondition_param(&unit, &cfg, &opts()).unwrap();
    assert!(report.verdict.is_verified(), "got {}", report.verdict);
}

#[test]
fn failing_assert_found() {
    let src = r#"
void k(int *c) {
    int i = threadIdx.x;
    assert(i < 4);
    c[i] = i;
}
"#;
    let unit = KernelUnit::load(src).unwrap();
    let cfg = GpuConfig::symbolic(8); // blockDim.x symbolic: i can be ≥ 4
    let report = check_postcondition_param(&unit, &cfg, &opts()).unwrap();
    assert!(report.verdict.is_bug(), "got {}", report.verdict);
}

#[test]
fn transpose_postcond_nonparam_concrete() {
    // The §II postcondition on the naive transpose, concrete 2×2 block and
    // concretized sizes (the matrix exactly covered by the grid).
    let unit = KernelUnit::load(pug_kernels::transpose::NAIVE_WITH_POSTCOND).unwrap();
    let cfg = GpuConfig::concrete_2d(8, 2, 2);
    let o = opts().concretized("width", 2).concretized("height", 2);
    let report = check_postcondition_nonparam(&unit, &cfg, &o).unwrap();
    assert!(report.verdict.is_verified(), "got {}", report.verdict);
}

#[test]
fn param_loops_need_concretization() {
    let unit = KernelUnit::load(pug_kernels::scan::NAIVE_WITH_POSTCOND).unwrap();
    let cfg = GpuConfig::symbolic(8);
    // Loop-bearing kernel: the parameterized postcondition path refuses.
    assert!(check_postcondition_param(&unit, &cfg, &opts()).is_err());
}

#[test]
fn scan_postcond_nonparam() {
    let unit = KernelUnit::load(pug_kernels::scan::NAIVE_WITH_POSTCOND).unwrap();
    let cfg = GpuConfig::concrete_1d(8, 4);
    let report = check_postcondition_nonparam(&unit, &cfg, &opts()).unwrap();
    assert!(report.verdict.is_verified(), "got {}", report.verdict);
}
