//! End-to-end equivalence on the reduction kernels — the paper's §IV-E
//! loop-alignment pair (modulo → strided indexing) and its seeded bugs.

use pugpara::equiv::{check_equivalence_nonparam, check_equivalence_param, CheckOptions};
use pugpara::KernelUnit;
use pug_ir::GpuConfig;
use std::time::Duration;

fn load(src: &str) -> KernelUnit {
    KernelUnit::load(src).unwrap()
}

fn opts() -> CheckOptions {
    CheckOptions::with_timeout(Duration::from_secs(180))
}

/// 1-D symbolic configuration (block height/depth pinned to 1 — the
/// reduction kernels are 1-D; the block width stays symbolic).
fn cfg_1d_symbolic(bits: u32) -> GpuConfig {
    GpuConfig {
        bits,
        bdim: [pug_ir::Extent::Sym, pug_ir::Extent::Const(1), pug_ir::Extent::Const(1)],
        gdim: [pug_ir::Extent::Sym, pug_ir::Extent::Const(1)],
    }
}

#[test]
fn param_reduction_v0_v1_equivalent_8bit() {
    let v0 = load(pug_kernels::reduction::V0);
    let v1 = load(pug_kernels::reduction::V1);
    let report = check_equivalence_param(&v0, &v1, &cfg_1d_symbolic(8), &opts()).unwrap();
    for q in &report.queries {
        eprintln!("  {}: {} in {:?}", q.label, q.outcome, q.duration);
    }
    assert!(
        report.verdict.is_verified(),
        "reduction v0/v1 must verify via loop alignment, got {}",
        report.verdict
    );
}

#[test]
fn param_reduction_buggy_index_found() {
    let v0 = load(pug_kernels::reduction::V0);
    let buggy = load(pug_kernels::reduction::BUGGY_INDEX);
    // The +1 index bug shifts the write set to odd cells: the co-covered
    // set is empty, so this is a pure *coverage* bug — fast bug hunting
    // (which drops the quantified coverage formulas, §IV-D) cannot see it;
    // prove mode reports the coverage mismatch.
    let report = check_equivalence_param(&v0, &buggy, &cfg_1d_symbolic(8), &opts()).unwrap();
    assert!(report.verdict.is_bug(), "index bug must be found, got {}", report.verdict);
}

#[test]
fn param_reduction_buggy_guard_found() {
    let v1 = load(pug_kernels::reduction::V1);
    let buggy = load(pug_kernels::reduction::BUGGY_GUARD);
    let report = check_equivalence_param(&v1, &buggy, &cfg_1d_symbolic(8), &opts()).unwrap();
    assert!(report.verdict.is_bug(), "guard bug must be found, got {}", report.verdict);
}

#[test]
fn nonparam_reduction_v0_v1_n4() {
    let v0 = load(pug_kernels::reduction::V0);
    let v1 = load(pug_kernels::reduction::V1);
    let cfg = GpuConfig::concrete_1d(8, 4);
    let report = check_equivalence_nonparam(&v0, &v1, &cfg, &opts()).unwrap();
    assert!(report.verdict.is_verified(), "got {}", report.verdict);
}

#[test]
fn nonparam_reduction_v0_v2_n4() {
    // v2 (sequential addressing, descending) has a *different* reduction
    // tree; only the fully unrolled concrete encoding can equate the sums.
    let v0 = load(pug_kernels::reduction::V0);
    let v2 = load(pug_kernels::reduction::V2);
    let cfg = GpuConfig::concrete_1d(8, 4);
    let report = check_equivalence_nonparam(&v0, &v2, &cfg, &opts()).unwrap();
    assert!(report.verdict.is_verified(), "got {}", report.verdict);
}

#[test]
fn nonparam_reduction_buggy_found_n4() {
    let v1 = load(pug_kernels::reduction::V1);
    let buggy = load(pug_kernels::reduction::BUGGY_INDEX);
    let cfg = GpuConfig::concrete_1d(8, 4);
    let report = check_equivalence_nonparam(&v1, &buggy, &cfg, &opts()).unwrap();
    assert!(report.verdict.is_bug(), "got {}", report.verdict);
}
