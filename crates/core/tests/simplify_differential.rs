//! Differential suite for SAT pre/inprocessing: for every corpus kernel
//! pair and for fuzzed `KernelGen` kernels, checking with simplification
//! enabled (`CheckOptions::default()`: BVE + subsumption + vivification +
//! hash-consed blasting) must return the same verdict — and the same
//! per-query outcome sequence — as the plain CDCL path
//! (`CheckOptions::no_simplify()`), on both the incremental and one-shot
//! backends, with unlimited budgets and under failpoint-aborted
//! preprocessing.
//!
//! Witness soundness rides along for free: the harness builds in debug
//! mode, and both `check_detailed` and `SolveSession::check` debug-assert
//! that every Sat model satisfies the original assertions — so each bug
//! row here proves BVE model reconstruction end-to-end at the SMT level.

use pugpara::equiv::{check_equivalence_param, CheckOptions, Report};
use pugpara::{KernelUnit, Verdict};
use pug_ir::GpuConfig;
use pug_smt::failpoints::{self, Fault};
use pug_testutil::KernelGen;
use std::time::Duration;

fn load(src: &str) -> KernelUnit {
    KernelUnit::load(src).unwrap()
}

fn opts() -> CheckOptions {
    CheckOptions::with_timeout(Duration::from_secs(120))
}

/// Verdicts must match exactly up to the bug witness (models may differ —
/// both configurations are free to pick any countermodel; validity of each
/// is debug-asserted inside the SMT layer).
fn same_verdict(a: &Verdict, b: &Verdict) -> bool {
    match (a, b) {
        (Verdict::Verified(x), Verdict::Verified(y)) => x == y,
        (Verdict::Bug(x), Verdict::Bug(y)) => x.kind == y.kind,
        (Verdict::Timeout, Verdict::Timeout) => true,
        _ => false,
    }
}

fn assert_reports_agree(label: &str, on: &Report, off: &Report) {
    assert!(
        same_verdict(&on.verdict, &off.verdict),
        "{label}: simplify-on verdict {} != simplify-off verdict {}",
        on.verdict,
        off.verdict
    );
    // Simplification changes how queries are solved, never which queries
    // run or how they answer.
    assert_eq!(on.queries.len(), off.queries.len(), "{label}: query counts diverge");
    for (qa, qb) in on.queries.iter().zip(off.queries.iter()) {
        assert_eq!(qa.label, qb.label, "{label}: query order diverges");
        assert_eq!(
            qa.outcome, qb.outcome,
            "{label}: query `{}` outcome diverges",
            qa.label
        );
    }
}

fn differential(label: &str, src: &KernelUnit, tgt: &KernelUnit, cfg: &GpuConfig) {
    // Incremental backend: simplify on vs off.
    let on = check_equivalence_param(src, tgt, cfg, &opts()).unwrap();
    let off = check_equivalence_param(src, tgt, cfg, &opts().no_simplify()).unwrap();
    assert_reports_agree(&format!("{label} (incremental)"), &on, &off);
    // One-shot backend: simplify on vs off (isolates preprocessing from
    // session/assumption interactions).
    let on1 = check_equivalence_param(src, tgt, cfg, &opts().one_shot()).unwrap();
    let off1 = check_equivalence_param(src, tgt, cfg, &opts().one_shot().no_simplify()).unwrap();
    assert_reports_agree(&format!("{label} (one-shot)"), &on1, &off1);
    // And across backends with simplification enabled everywhere.
    assert_reports_agree(&format!("{label} (cross-backend)"), &on, &on1);
}

#[test]
fn corpus_pairs_agree() {
    let cases: &[(&str, &str, &str, GpuConfig)] = &[
        (
            "transpose ok",
            pug_kernels::transpose::NAIVE,
            pug_kernels::transpose::OPTIMIZED,
            GpuConfig::symbolic(8),
        ),
        (
            "transpose buggy addr",
            pug_kernels::transpose::NAIVE,
            pug_kernels::transpose::BUGGY_ADDR,
            GpuConfig::symbolic(8),
        ),
        (
            "transpose unconstrained",
            pug_kernels::transpose::NAIVE,
            pug_kernels::transpose::OPTIMIZED_UNCONSTRAINED,
            GpuConfig::symbolic(8),
        ),
        (
            "vector_add self",
            pug_kernels::vector_add::KERNEL,
            pug_kernels::vector_add::KERNEL,
            GpuConfig::symbolic_1d(8),
        ),
        (
            "vector_add buggy",
            pug_kernels::vector_add::KERNEL,
            pug_kernels::vector_add::BUGGY,
            GpuConfig::symbolic_1d(8),
        ),
    ];
    for (label, src, tgt, cfg) in cases {
        differential(label, &load(src), &load(tgt), cfg);
    }
}

#[test]
fn reduction_pair_agrees_concretized() {
    let v0 = load(pug_kernels::reduction::V0);
    let v1 = load(pug_kernels::reduction::V1);
    let cfg = GpuConfig::symbolic_1d(8);
    let o = opts().concretized("n", 8);
    let on = check_equivalence_param(&v0, &v1, &cfg, &o).unwrap();
    let off = check_equivalence_param(&v0, &v1, &cfg, &o.clone().no_simplify()).unwrap();
    assert_reports_agree("reduction v0/v1 +C", &on, &off);
}

#[test]
fn fuzzed_kernels_agree_without_simplification() {
    // Self-equivalence of generated kernels: multiplier-heavy address
    // arithmetic with shared subcircuits — the profile the gate cache and
    // BVE target.
    for seed in 0..12u64 {
        let src = KernelGen::extended(seed).kernel();
        let unit = match KernelUnit::load(&src) {
            Ok(u) => u,
            Err(_) => continue, // generator stays in-subset; be lenient anyway
        };
        let cfg = GpuConfig::symbolic_1d(8);
        let on = match check_equivalence_param(&unit, &unit, &cfg, &opts()) {
            Ok(r) => r,
            Err(_) => continue, // alignment limits apply to both paths equally
        };
        let off = check_equivalence_param(&unit, &unit, &cfg, &opts().no_simplify()).unwrap();
        assert_reports_agree(&format!("fuzz seed {seed}\n{src}"), &on, &off);
    }
}

#[test]
fn fuzzed_basic_profile_agrees() {
    for seed in 100..108u64 {
        let src = KernelGen::basic(seed).kernel();
        let Ok(unit) = KernelUnit::load(&src) else { continue };
        let cfg = GpuConfig::symbolic_1d(8);
        let Ok(on) = check_equivalence_param(&unit, &unit, &cfg, &opts()) else { continue };
        let off = check_equivalence_param(&unit, &unit, &cfg, &opts().no_simplify()).unwrap();
        assert_reports_agree(&format!("fuzz basic seed {seed}\n{src}"), &on, &off);
    }
}

#[test]
fn aborted_preprocessing_is_sound_and_agrees() {
    // Failpoint-injected budget exhaustion inside `sat::simplify`: the
    // pre/inprocessing passes abort early (possibly half-done — some
    // variables eliminated, some clauses already strengthened), which must
    // be indistinguishable verdict-wise from never preprocessing at all.
    let naive = load(pug_kernels::transpose::NAIVE);
    let buggy = load(pug_kernels::transpose::BUGGY_ADDR);
    let cfg = GpuConfig::symbolic(8);

    failpoints::arm("sat::simplify", Fault::BudgetExhausted);
    let on = check_equivalence_param(&naive, &buggy, &cfg, &opts());
    let off = check_equivalence_param(&naive, &buggy, &cfg, &opts().no_simplify());
    failpoints::reset();

    let on = on.unwrap();
    let off = off.unwrap();
    assert!(on.verdict.is_bug(), "aborted preprocessing hid the bug: {}", on.verdict);
    assert_reports_agree("faulted preprocessing (transpose bug)", &on, &off);

    // Clean registry: the same check still answers identically.
    let clean = check_equivalence_param(&naive, &buggy, &cfg, &opts()).unwrap();
    assert!(same_verdict(&clean.verdict, &on.verdict));
}

#[test]
fn tiny_conflict_cap_agrees() {
    // A starvation-level per-query conflict cap: verdicts may legitimately
    // be Timeout, but preprocessing must not flip any query's outcome
    // relative to the plain path (both configurations gate on the same
    // budget before and during search).
    let naive = load(pug_kernels::transpose::NAIVE);
    let opt = load(pug_kernels::transpose::OPTIMIZED);
    let cfg = GpuConfig::symbolic(8);
    let mut o = opts();
    o.max_conflicts = Some(1);
    let on = check_equivalence_param(&naive, &opt, &cfg, &o).unwrap();
    // Budget-limited rows can answer differently with preprocessing (it may
    // solve within the cap what plain CDCL cannot), so only subset-check:
    // anything the plain path decided, the simplified path decides the same
    // way or better (never a contradicting verdict).
    let off = check_equivalence_param(&naive, &opt, &cfg, &o.clone().no_simplify()).unwrap();
    let contradict = matches!(
        (&on.verdict, &off.verdict),
        (Verdict::Verified(_), Verdict::Bug(_)) | (Verdict::Bug(_), Verdict::Verified(_))
    );
    assert!(
        !contradict,
        "conflict-starved verdicts contradict: simplify-on {} vs off {}",
        on.verdict, off.verdict
    );
}

#[test]
fn sat_level_witness_models_agree_on_bug_instances() {
    // Direct SMT-level check of model reconstruction: a multiplier-heavy
    // Sat instance (the corpus bug-row shape) solved with simplification on
    // and off. Both must answer Sat, and each model must satisfy the
    // original assertions — the on-path model exercises Davis–Putnam
    // reconstruction of every BVE-eliminated variable.
    use pug_smt::{check_detailed_with, Budget, Ctx, SimplifyConfig, SmtResult, Sort};

    let mut c = Ctx::new();
    let x = c.mk_var("x", Sort::BitVec(8));
    let y = c.mk_var("y", Sort::BitVec(8));
    let prod = c.mk_bv_mul(x, y);
    let target = c.mk_bv_const(143, 8);
    let one = c.mk_bv_const(1, 8);
    let eq = c.mk_eq(prod, target);
    let nx = c.mk_bv_ult(one, x);
    let ny = c.mk_bv_ult(one, y);
    let asserts = [eq, nx, ny];

    // Preprocess eagerly (no conflict-count deferral): the point here is
    // Davis–Putnam reconstruction, so BVE must actually run.
    let eager = SimplifyConfig { preprocess_min_conflicts: 0, ..SimplifyConfig::default() };
    let (r_on, st_on) = check_detailed_with(&mut c, &asserts, &Budget::unlimited(), &eager);
    let (r_off, _) =
        check_detailed_with(&mut c, &asserts, &Budget::unlimited(), &SimplifyConfig::off());

    let SmtResult::Sat(m_on) = r_on else { panic!("simplify-on: expected Sat") };
    let SmtResult::Sat(m_off) = r_off else { panic!("simplify-off: expected Sat") };
    for &a in &asserts {
        assert!(m_on.eval_bool(&c, a), "simplify-on model violates an assertion");
        assert!(m_off.eval_bool(&c, a), "simplify-off model violates an assertion");
    }
    // The witness values themselves are genuine factorizations.
    let (xa, ya) = (m_on.eval_bv(&c, x), m_on.eval_bv(&c, y));
    assert_eq!((xa * ya) & 0xff, 143, "reconstructed witness is not a factorization");
    assert!(xa > 1 && ya > 1);
    // Simplification did real work on this instance (otherwise this test
    // proves nothing about reconstruction).
    assert!(
        st_on.sat.vars_eliminated > 0 || st_on.gates_hashconsed > 0,
        "expected BVE or hash-consing activity (eliminated={}, hashconsed={})",
        st_on.sat.vars_eliminated,
        st_on.gates_hashconsed
    );
}
