//! Property fuzzing for the Omega-test-lite engine (`pugpara::presburger`):
//! random affine systems per rule family, the engine's answer checked
//! against brute-force enumeration over a small bounded domain.
//!
//! Two contracts, matching the engine's role in the verifier:
//!
//! * **Soundness direction** — `solve` may *never* answer `Unsat` while a
//!   model exists (a wrong `Unsat` would let the checker claim coverage
//!   that is not there). Checked on every family, bounded or not.
//! * **Bounded exactness** — when the system itself confines every
//!   variable to the enumerated box, `Sat`/`Unsat` must agree with
//!   enumeration exactly (`Unknown` is always allowed: the engine is
//!   budgeted, and the SMT solver re-validates whatever it produces).
//!
//! Plus determinism/idempotence: the answer is a pure function of the
//! system, and re-solving or permuting constraints cannot flip a decided
//! answer to the opposite decided answer.

use pug_testutil::TestRng;
use pugpara::presburger::{solve, Coef, Constraint, Omega, OmegaBudget, System};

const BOX: Coef = 6;
const SYSTEMS_PER_FAMILY: usize = 300;

#[derive(Clone, Copy, Debug)]
enum Family {
    /// Inequalities only: real/dark shadow elimination.
    Ge,
    /// One equality with a ±1 coefficient: unit substitution.
    EqUnit,
    /// Equalities with common factors: the gcd divisibility test.
    EqGcd,
    /// Opposing coefficient-≥2 bounds on a shared variable: the dark
    /// shadow is inexact and the gray-shadow splinters must fire.
    Shadow,
}

const FAMILIES: [Family; 4] = [Family::Ge, Family::EqUnit, Family::EqGcd, Family::Shadow];

fn coef(rng: &mut TestRng) -> Coef {
    rng.gen_range(-4i64..=4) as Coef
}

fn random_system(rng: &mut TestRng, family: Family, boxed: bool) -> System {
    let n_vars = rng.gen_range(1usize..=3);
    let mut sys = System::new(n_vars);
    let n_cons = rng.gen_range(1usize..=4);
    let cvec = |rng: &mut TestRng| -> Vec<Coef> { (0..n_vars).map(|_| coef(rng)).collect() };
    for _ in 0..n_cons {
        let coeffs = cvec(rng);
        let k = rng.gen_range(-10i64..=10) as Coef;
        sys.push(Constraint::ge(coeffs, k));
    }
    match family {
        Family::Ge => {}
        Family::EqUnit => {
            let mut coeffs = cvec(rng);
            let j = rng.gen_range(0usize..n_vars);
            coeffs[j] = if rng.gen_bool(0.5) { 1 } else { -1 };
            sys.push(Constraint::eq(coeffs, rng.gen_range(-10i64..=10) as Coef));
        }
        Family::EqGcd => {
            let g = rng.gen_range(2i64..=4) as Coef;
            let coeffs: Vec<Coef> = (0..n_vars).map(|_| g * coef(rng)).collect();
            // Half the time force a constant the gcd cannot divide.
            let k = if rng.gen_bool(0.5) {
                g * (rng.gen_range(-3i64..=3) as Coef) + 1
            } else {
                g * (rng.gen_range(-3i64..=3) as Coef)
            };
            sys.push(Constraint::eq(coeffs, k));
        }
        Family::Shadow => {
            let x = rng.gen_range(0usize..n_vars);
            let a = rng.gen_range(2i64..=4) as Coef;
            let b = rng.gen_range(2i64..=4) as Coef;
            let lo = rng.gen_range(-8i64..=8) as Coef;
            let hi = rng.gen_range(-8i64..=8) as Coef;
            let mut l = vec![0; n_vars];
            l[x] = a;
            sys.push(Constraint::ge(l, -lo)); // a·x ≥ lo
            let mut u = vec![0; n_vars];
            u[x] = b;
            sys.push(Constraint::le(u, hi)); // b·x ≤ hi
        }
    }
    if boxed {
        for v in 0..n_vars {
            let mut c = vec![0; n_vars];
            c[v] = 1;
            sys.push(Constraint::ge(c.clone(), BOX)); // x ≥ −BOX
            sys.push(Constraint::le(c, BOX)); // x ≤ BOX
        }
    }
    sys
}

/// `Unsat` must never contradict an enumerated model — on any family,
/// boxed or not (enumeration inside the box is a sound refuter either
/// way).
#[test]
fn never_unsat_when_a_model_exists() {
    let budget = OmegaBudget::default();
    for family in FAMILIES {
        let mut rng = TestRng::seed_from_u64(0xB0A7 ^ family as u64);
        for case in 0..SYSTEMS_PER_FAMILY {
            let boxed = case % 2 == 0;
            let sys = random_system(&mut rng, family, boxed);
            if solve(&sys, &budget) == Omega::Unsat {
                assert!(
                    !sys.brute_force_sat(-BOX, BOX),
                    "{family:?}/{case}: engine says Unsat but a model exists in the box\n{sys:?}"
                );
            }
        }
    }
}

/// On box-bounded systems the decided answers must match enumeration
/// exactly, and the budget must decide the overwhelming majority.
#[test]
fn boxed_systems_match_enumeration() {
    let budget = OmegaBudget::default();
    for family in FAMILIES {
        let mut rng = TestRng::seed_from_u64(0xE4AC7 ^ (family as u64) << 8);
        let mut unknowns = 0usize;
        for case in 0..SYSTEMS_PER_FAMILY {
            let sys = random_system(&mut rng, family, true);
            let want = sys.brute_force_sat(-BOX, BOX);
            match solve(&sys, &budget) {
                Omega::Sat => assert!(
                    want,
                    "{family:?}/{case}: engine says Sat, enumeration finds nothing\n{sys:?}"
                ),
                Omega::Unsat => assert!(
                    !want,
                    "{family:?}/{case}: engine says Unsat, enumeration has a model\n{sys:?}"
                ),
                Omega::Unknown => unknowns += 1,
            }
        }
        assert!(
            unknowns <= SYSTEMS_PER_FAMILY / 10,
            "{family:?}: {unknowns}/{SYSTEMS_PER_FAMILY} Unknowns — the budget should \
             decide boxed systems this small"
        );
    }
}

/// The answer is a pure function of the system (idempotence), and
/// constraint order cannot flip one decided answer to the other.
#[test]
fn deciding_is_deterministic_and_order_insensitive() {
    let budget = OmegaBudget::default();
    for family in FAMILIES {
        let mut rng = TestRng::seed_from_u64(0x1DE0 ^ (family as u64) << 16);
        for case in 0..SYSTEMS_PER_FAMILY {
            let sys = random_system(&mut rng, family, case % 2 == 0);
            let first = solve(&sys, &budget);
            assert_eq!(first, solve(&sys, &budget), "{family:?}/{case}: not idempotent");

            let mut rev = System::new(sys.n_vars);
            for c in sys.constraints.iter().rev() {
                rev.push(c.clone());
            }
            let rebuilt = solve(&rev, &budget);
            let contradicts = matches!(
                (first, rebuilt),
                (Omega::Sat, Omega::Unsat) | (Omega::Unsat, Omega::Sat)
            );
            assert!(
                !contradicts,
                "{family:?}/{case}: constraint order flips the decision \
                 ({first:?} vs {rebuilt:?})\n{sys:?}"
            );
        }
    }
}
