//! Verification verdicts and bug reports.

use pug_smt::{Ctx, Model};
use std::fmt;

/// How trustworthy a "no bug found" answer is (paper §IV-A, "Formal
/// Status"): dropping unsolved quantified formulas under-approximates the
/// proof — reported bugs are always real, but a clean run may miss bugs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Soundness {
    /// Every proof obligation was discharged, including the coverage
    /// obligations (no quantified residue was dropped).
    Sound,
    /// The quantified "no thread wrote this address" residue was dropped or
    /// only witness-checked: bugs reported are real; absence is not proof.
    UnderApprox,
}

/// Classification of a found bug.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BugKind {
    /// Outputs of the two kernels differ for some input/configuration.
    EquivalenceMismatch,
    /// A post-condition or assertion is violated.
    AssertionViolation,
    /// A read observes a cell no thread wrote — a hidden assumption on the
    /// configuration is violated (e.g. non-square block in Transpose,
    /// paper §IV-B), or the kernels cover different output cells.
    CoverageMismatch,
    /// Two threads conflict on a shared location (one is a write).
    DataRace,
    /// Shared-memory bank conflict (performance defect).
    BankConflict,
    /// Non-coalesced global memory access (performance defect).
    NonCoalesced,
}

impl fmt::Display for BugKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BugKind::EquivalenceMismatch => "functional equivalence mismatch",
            BugKind::AssertionViolation => "assertion/post-condition violation",
            BugKind::CoverageMismatch => "write-coverage / hidden-assumption violation",
            BugKind::DataRace => "data race",
            BugKind::BankConflict => "shared-memory bank conflict",
            BugKind::NonCoalesced => "non-coalesced global access",
        };
        f.write_str(s)
    }
}

/// Two-sided race classification (after Liew et al., "Provable GPU
/// Data-Races in Static Race Detection"): a `Sat` race query always yields
/// a model, but only a model whose schedule *replays* concretely is a
/// proof the race manifests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RaceClass {
    /// A concrete witness schedule (configuration, thread pair, addresses,
    /// interleaving) was extracted from the model and validated by
    /// replaying the kernel through the `pug-ir` interpreter.
    Provable {
        /// The validated schedule, rendered for the report.
        schedule: String,
    },
    /// The model exists but the replay was blocked (unsupported construct,
    /// symbolic-only scalar, replay cap) — the race is reported but its
    /// schedule is unconfirmed.
    Potential {
        /// Why the replay could not confirm the schedule.
        blocked: String,
    },
}

impl RaceClass {
    /// True for [`RaceClass::Provable`].
    pub fn is_provable(&self) -> bool {
        matches!(self, RaceClass::Provable { .. })
    }
}

/// A concrete bug witness: the SMT model restricted to the relevant
/// variables (thread ids, configuration, inputs).
#[derive(Clone, Debug)]
pub struct BugReport {
    pub kind: BugKind,
    /// Human-oriented description of where/how.
    pub detail: String,
    /// Counterexample model.
    pub model: Model,
    /// The model rendered with variable names (configuration, thread ids,
    /// input values) — available without the originating term context.
    pub witness: String,
    /// Race classification, present only for [`BugKind::DataRace`]
    /// reports from the parameterized race checker.
    pub race: Option<RaceClass>,
}

impl BugReport {
    /// Build a report, rendering the witness against `ctx`.
    pub fn new(kind: BugKind, detail: String, model: Model, ctx: &Ctx) -> BugReport {
        let witness = model.render(ctx);
        BugReport { kind, detail, model, witness, race: None }
    }

    /// Attach a race classification.
    pub fn with_race(mut self, race: RaceClass) -> BugReport {
        self.race = Some(race);
        self
    }

    /// Render the full report for display.
    pub fn render(&self) -> String {
        let mut s = format!("{}: {}\nwitness:\n{}", self.kind, self.detail, self.witness);
        match &self.race {
            Some(RaceClass::Provable { schedule }) => {
                s.push_str("\nclassification: provable (schedule validated by concrete replay)");
                s.push_str("\nwitness schedule:\n");
                s.push_str(schedule.trim_end());
            }
            Some(RaceClass::Potential { blocked }) => {
                s.push_str(&format!("\nclassification: potential ({blocked})"));
            }
            None => {}
        }
        s
    }
}

/// Outcome of a verification run.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// The property holds (equivalent / postcondition valid / race-free).
    Verified(Soundness),
    /// A bug was found (always real — the encoding under-approximates the
    /// proof, never the bugs).
    Bug(BugReport),
    /// A resource budget was exhausted (the paper's "T.O").
    Timeout,
}

impl Verdict {
    /// True for [`Verdict::Verified`].
    pub fn is_verified(&self) -> bool {
        matches!(self, Verdict::Verified(_))
    }

    /// True for [`Verdict::Bug`].
    pub fn is_bug(&self) -> bool {
        matches!(self, Verdict::Bug(_))
    }

    /// True for [`Verdict::Timeout`].
    pub fn is_timeout(&self) -> bool {
        matches!(self, Verdict::Timeout)
    }

    /// The bug report, if any.
    pub fn bug(&self) -> Option<&BugReport> {
        match self {
            Verdict::Bug(b) => Some(b),
            _ => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Verified(Soundness::Sound) => write!(f, "verified (sound)"),
            Verdict::Verified(Soundness::UnderApprox) => {
                write!(f, "no bug found (under-approximate proof)")
            }
            Verdict::Bug(b) => write!(f, "bug: {} — {}", b.kind, b.detail),
            Verdict::Timeout => write!(f, "timeout (T.O)"),
        }
    }
}
