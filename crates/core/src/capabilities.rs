//! Machine-readable rendition of the paper's **Table I** — the comparison
//! of formal verifiers for GPU programs — plus a self-check tying each
//! capability PUGpara advertises to a working entry point in this crate.

/// Analysis methodology (Table I row "Methodology").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Methodology {
    SymbolicAnalysis,
    ConcolicExecution,
    DynamicChecking,
}

/// Program representation analysed (Table I row "Level of Analysis").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AnalysisLevel {
    SourceCode,
    LlvmBytecode,
    SourceInstrumentation,
}

/// Input treatment (Table I row "Program Inputs").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InputKind {
    FullySymbolic,
    SymbolicPlusConcrete,
    ConcreteOnly,
}

/// Bug classes a tool targets (Table I row "Bugs Targeted").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Capability {
    DataRaces,
    FunctionalCorrectness,
    EquivalenceChecking,
    BankConflicts,
    NonCoalescedAccesses,
    Deadlocks,
}

/// One tool profile (a Table I column).
#[derive(Clone, Debug)]
pub struct ToolProfile {
    pub name: &'static str,
    pub methodology: Methodology,
    pub level: AnalysisLevel,
    pub inputs: InputKind,
    pub capabilities: &'static [Capability],
    pub parameterized: &'static [Capability],
}

/// The three columns of Table I.
pub fn table1() -> [ToolProfile; 3] {
    use Capability::*;
    [
        ToolProfile {
            name: "PUGpara (this implementation)",
            methodology: Methodology::SymbolicAnalysis,
            level: AnalysisLevel::SourceCode,
            inputs: InputKind::FullySymbolic,
            capabilities: &[
                DataRaces,
                FunctionalCorrectness,
                EquivalenceChecking,
                BankConflicts,
                NonCoalescedAccesses,
            ],
            // "Yes (for both Race and Equiv. Check)"
            parameterized: &[
                DataRaces,
                EquivalenceChecking,
                FunctionalCorrectness,
                BankConflicts,
                NonCoalescedAccesses,
            ],
        },
        ToolProfile {
            name: "GKLEE",
            methodology: Methodology::ConcolicExecution,
            level: AnalysisLevel::LlvmBytecode,
            inputs: InputKind::SymbolicPlusConcrete,
            capabilities: &[
                DataRaces,
                FunctionalCorrectness,
                BankConflicts,
                NonCoalescedAccesses,
                Deadlocks,
            ],
            parameterized: &[],
        },
        ToolProfile {
            name: "GRace",
            methodology: Methodology::DynamicChecking,
            level: AnalysisLevel::SourceInstrumentation,
            inputs: InputKind::ConcreteOnly,
            capabilities: &[DataRaces, BankConflicts],
            parameterized: &[],
        },
    ]
}

/// Render Table I as fixed-width text (used by `examples/capability_matrix`).
pub fn render_table1() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<34} {:<22} {:<24} {:<22} {}\n",
        "Tool", "Methodology", "Level", "Inputs", "Parameterized?"
    ));
    out.push_str(&"-".repeat(120));
    out.push('\n');
    for t in table1() {
        out.push_str(&format!(
            "{:<34} {:<22} {:<24} {:<22} {}\n",
            t.name,
            format!("{:?}", t.methodology),
            format!("{:?}", t.level),
            format!("{:?}", t.inputs),
            if t.parameterized.is_empty() {
                "No".to_string()
            } else {
                format!("Yes ({} classes)", t.parameterized.len())
            },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::{check_equivalence_param, CheckOptions};
    use crate::KernelUnit;
    use pug_ir::GpuConfig;

    #[test]
    fn table_shape_matches_paper() {
        let t = table1();
        assert_eq!(t[0].methodology, Methodology::SymbolicAnalysis);
        assert_eq!(t[1].methodology, Methodology::ConcolicExecution);
        assert_eq!(t[2].methodology, Methodology::DynamicChecking);
        assert_eq!(t[0].inputs, InputKind::FullySymbolic);
        assert!(t[0].parameterized.contains(&Capability::DataRaces));
        assert!(t[0].parameterized.contains(&Capability::EquivalenceChecking));
        assert!(t[1].parameterized.is_empty());
        assert!(t[2].parameterized.is_empty());
    }

    /// Every capability PUGpara advertises has a working entry point.
    #[test]
    fn advertised_capabilities_have_entry_points() {
        let unit = KernelUnit::load(pug_kernels::vector_add::KERNEL).unwrap();
        let cfg = GpuConfig::symbolic_1d(8);
        let opts = CheckOptions::default();
        for cap in table1()[0].capabilities {
            match cap {
                Capability::DataRaces => {
                    crate::race::check_races(&unit, &cfg, &opts).unwrap();
                }
                Capability::FunctionalCorrectness => {
                    let u = KernelUnit::load(pug_kernels::vector_add::WITH_POSTCOND).unwrap();
                    crate::postcond::check_postcondition_param(&u, &cfg, &opts).unwrap();
                }
                Capability::EquivalenceChecking => {
                    check_equivalence_param(&unit, &unit, &cfg, &opts).unwrap();
                }
                Capability::BankConflicts => {
                    crate::perf::check_bank_conflicts(&unit, &cfg, &opts).unwrap();
                }
                Capability::NonCoalescedAccesses => {
                    crate::perf::check_coalescing(&unit, &cfg, &opts).unwrap();
                }
                Capability::Deadlocks => unreachable!("not advertised"),
            }
        }
    }

    #[test]
    fn rendering_is_complete() {
        let s = render_table1();
        assert!(s.contains("PUGpara"));
        assert!(s.contains("GKLEE"));
        assert!(s.contains("GRace"));
    }
}
