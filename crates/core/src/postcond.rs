//! Post-condition and assertion checking — the paper's property-checking
//! mode (§III "The Assertion Language", §IV-A).
//!
//! `postcond(e)` describes the final state; free scalars in `e` are
//! implicitly universally quantified. The non-parameterized checker unrolls
//! a concrete configuration; the parameterized checker resolves the
//! postcondition's array reads through instantiated CA chains exactly like
//! the equivalence checker, so the property is established for an arbitrary
//! number of threads.

use crate::equiv::{CheckOptions, Mode, Report, Session};
use crate::error::Error;
use crate::kernel::KernelUnit;
use crate::param::{extract_region, thread_range, ExtractOptions};
use crate::resolve::Resolver;
use crate::verdict::{BugKind, BugReport, Verdict};
use pug_ir::{split_bis, GpuConfig, Segment};
use pug_smt::SmtResult;
use std::collections::HashMap;
use std::time::Instant;

/// Check `postcond`/`assert` statements under a concrete configuration
/// (§III encoding).
pub fn check_postcondition_nonparam(
    unit: &KernelUnit,
    cfg: &GpuConfig,
    opts: &CheckOptions,
) -> Result<Report, Error> {
    let started = Instant::now();
    let mut sess = Session::new(cfg, opts);
    let enc = crate::nonparam::encode_with(&mut sess.ctx, unit, cfg, "s", &opts.concretize)?;

    let mut premises = enc.config_constraints.clone();
    premises.extend(enc.assumptions.iter().copied());
    let mut goals = enc.postconds.clone();
    goals.extend(enc.asserts.iter().copied());
    if goals.is_empty() {
        return Err(Error::BadConfig {
            detail: format!("kernel `{}` has no postcond/assert to check", unit.kernel.name),
        });
    }
    let goal = sess.ctx.mk_and_many(&goals);
    let verdict = match sess.query("postcond(nonparam)", &premises, goal) {
        SmtResult::Unsat => Verdict::Verified(crate::Soundness::Sound),
        SmtResult::Unknown => Verdict::Timeout,
        SmtResult::Sat(model) => Verdict::Bug(BugReport::new(
            BugKind::AssertionViolation,
            format!("a postcondition/assertion of `{}` fails", unit.kernel.name),
            model,
            &sess.ctx,
        )),
    };
    Ok(sess.take_report(verdict, started))
}

/// Check `postcond`/`assert` statements parametrically (§IV encoding).
/// Loop-bearing kernels need concretization ("+C." through
/// [`CheckOptions::concretized`]) or the non-parameterized path.
pub fn check_postcondition_param(
    unit: &KernelUnit,
    cfg: &GpuConfig,
    opts: &CheckOptions,
) -> Result<Report, Error> {
    let started = Instant::now();
    let mut sess = Session::new(cfg, opts);
    let bound = cfg.bind(&mut sess.ctx, "");

    let segs = pug_ir::split_segments(&unit.kernel.body)?;
    if segs.iter().any(|s| matches!(s, Segment::Loop { .. })) {
        return Err(Error::Ir(pug_ir::IrError::SymbolicLoopBound {
            detail: "parameterized postcondition checking needs loop-free kernels; \
                     concretize the configuration or use the non-parameterized checker"
                .into(),
        }));
    }
    let bis = split_bis(&unit.kernel.body)?;
    let conc = sess.conc_map();
    let region = extract_region(
        &mut sess.ctx,
        unit,
        &bound,
        &bis,
        ExtractOptions {
            tag: "s",
            entry_versions: HashMap::new(),
            extra_locals: vec![],
            region: String::new(),
            concretize: conc,
        },
    )?;

    // Evaluate specs against the final versions, then resolve the version
    // reads through CA chains.
    let postcond_exprs = crate::spec::collect_postconds(&unit.kernel.body);
    let raw = crate::spec::eval_postconds(
        &mut sess.ctx,
        &unit.types,
        &bound,
        &region.finals,
        &postcond_exprs,
        "s",
    )?;
    let mut raw_goals = raw;
    raw_goals.extend(region.outputs.asserts.iter().copied());
    if raw_goals.is_empty() {
        return Err(Error::BadConfig {
            detail: format!("kernel `{}` has no postcond/assert to check", unit.kernel.name),
        });
    }

    let (resolved, premises, obligations, region_for_obs) = {
        let mut r = Resolver::new(&mut sess.ctx, &region, "s");
        r.cover_all_reads = true;
        let observer = r.observer("obs");
        let tru = r.ctx.mk_true();
        let resolved: Vec<_> =
            raw_goals.iter().map(|&g| r.resolve(g, observer, tru)).collect();
        let mut premises = bound.constraints.clone();
        premises.extend(region.outputs.assumptions.iter().copied());
        // In-body asserts are phrased over the canonical thread: they must
        // hold for every *valid* thread, so its range is a premise.
        premises.push(region.range);
        premises.extend(r.all_premises());
        let range = thread_range(r.ctx, &bound, observer.tid, observer.bid);
        premises.push(range);
        (resolved, premises, r.obligations, &region)
    };

    let goal = sess.ctx.mk_and_many(&resolved);
    match sess.query("postcond(param)", &premises, goal) {
        SmtResult::Unsat => {}
        SmtResult::Unknown => return Ok(sess.take_report(Verdict::Timeout, started)),
        SmtResult::Sat(model) => {
            let v = Verdict::Bug(BugReport::new(
                BugKind::AssertionViolation,
                format!("a postcondition/assertion of `{}` fails", unit.kernel.name),
                model,
                &sess.ctx,
            ));
            return Ok(sess.take_report(v, started));
        }
    }

    // Read-coverage obligations (prove mode): postconditions may read
    // output cells no thread wrote.
    if sess.mode() == Mode::Prove {
        for ob in &obligations {
            match crate::equiv::obligation_check_pub(
                &mut sess,
                &bound,
                ob,
                region_for_obs,
                &premises,
            )? {
                None => {}
                Some(Verdict::Timeout) => return Ok(sess.take_report(Verdict::Timeout, started)),
                Some(v) if ob.uninit_base => return Ok(sess.take_report(v, started)),
                Some(_) => {
                    // Input-backed read without a witnessed writer: the
                    // property was only checked on covered cells.
                    sess.soundness = crate::Soundness::UnderApprox;
                }
            }
        }
    }

    let soundness = sess.soundness;
    Ok(sess.take_report(Verdict::Verified(soundness), started))
}
