//! Verdict explanation reports.
//!
//! [`explain_report`] turns a [`ResilientReport`] into a human-readable
//! narrative: the verdict and its soundness, the degradation-ladder walk
//! (which rungs ran, which answered, which were skipped or abandoned),
//! the answering rung's query families, the disposition of the residual
//! quantified formulas, any counterexample witness, the auxiliary analysis
//! passes, and — optionally — where the wall-clock budget went.
//!
//! Two modes: [`ExplainOptions::default`] includes timing and search-effort
//! numbers; [`ExplainOptions::stable`] omits everything that varies from
//! run to run (times, query counts on budget-limited rungs, cache-hit
//! splits) so the output can be pinned by golden snapshot tests.

use crate::equiv::QueryStat;
use crate::runner::{PassRecord, Provenance, ResilientReport, RungOutcome, RungRecord};
use crate::verdict::{Soundness, Verdict};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Rendering options for [`explain_with`].
#[derive(Clone, Copy, Debug)]
pub struct ExplainOptions {
    /// Include wall-clock times, per-rung budget breakdown, aggregate SAT
    /// search effort, and query counts on budget-limited rungs. All of
    /// these vary run-to-run; turn this off for snapshot-stable output.
    pub show_times: bool,
}

impl Default for ExplainOptions {
    fn default() -> Self {
        ExplainOptions { show_times: true }
    }
}

impl ExplainOptions {
    /// Deterministic output: no times, no counts on non-answered rungs.
    pub fn stable() -> Self {
        ExplainOptions { show_times: false }
    }
}

/// Render the full narrative with times (see [`explain_with`]).
pub fn explain_report(report: &ResilientReport) -> String {
    explain_with(report, &ExplainOptions::default())
}

/// Render the narrative plus a `parallelism:` section sourced from a
/// [`MetricsSnapshot`] of the run's registry: obligation-pool engagement
/// (sessions forked, arrays screened in parallel, decisive fallbacks),
/// learnt-clause exchange traffic, and query-cache sharding/contention.
/// Everything here varies with the machine, so the section obeys
/// [`ExplainOptions::show_times`].
pub fn explain_full(
    report: &ResilientReport,
    metrics: &pug_obs::MetricsSnapshot,
    opts: &ExplainOptions,
) -> String {
    let mut out = explain_with(report, opts);
    if !opts.show_times {
        return out;
    }
    let _ = writeln!(out, "\nparallelism:");
    let sessions = metrics.gauge("pool.sessions").unwrap_or(0);
    if sessions == 0 {
        let _ = writeln!(
            out,
            "  obligation pool not engaged (single array, width 1, or sequential())"
        );
    } else {
        let _ = writeln!(
            out,
            "  obligation pool: {} worker sessions, {} arrays screened in parallel, \
             {} decisive fallbacks to sequential",
            sessions,
            metrics.counter("obligations.parallel"),
            metrics.counter("obligations.fallback"),
        );
        let _ = writeln!(
            out,
            "  learnt exchange: {} clauses exported, {} imported",
            metrics.counter("learnts.exchanged"),
            metrics.counter("learnts.imported"),
        );
    }
    if let Some(shards) = metrics.gauge("cache.shards") {
        let _ = writeln!(
            out,
            "  query cache: {shards} shards, {} contended lockings",
            metrics.gauge("cache.contended").unwrap_or(0),
        );
    }
    out
}

/// Render a [`ResilientReport`] as a verdict narrative.
pub fn explain_with(report: &ResilientReport, opts: &ExplainOptions) -> String {
    let mut out = String::new();
    let prov = &report.provenance;

    // --- Verdict header -----------------------------------------------
    let _ = writeln!(out, "verdict: {}", report.verdict);
    if let Some(rung) = prov.answered_by {
        let _ = writeln!(out, "answered by: {rung}");
    }
    if let Some(note) = &prov.soundness_note {
        let _ = writeln!(out, "note: {note}");
    }

    // --- Ladder walk --------------------------------------------------
    let _ = writeln!(out, "\nladder:");
    for r in &prov.rungs {
        let _ = writeln!(out, "  {:<16} {}", r.rung.to_string(), rung_story(r, prov, opts));
    }

    // --- Query families of the answering rung -------------------------
    if let Some(answered) = prov.answered_by {
        if let Some(r) = prov.rungs.iter().find(|r| r.rung == answered) {
            if !r.stats.is_empty() {
                let _ = writeln!(out, "\nqueries ({answered}):");
                out.push_str(&family_table(&r.stats, opts));
            }
        }
    }

    // --- Residual-formula disposition ---------------------------------
    let _ = writeln!(out, "\nresidual quantified formulas:");
    let _ = writeln!(out, "  {}", residue_story(&report.verdict));

    // --- Counterexample witness ---------------------------------------
    if let Verdict::Bug(bug) = &report.verdict {
        let _ = writeln!(out, "\ncounterexample:");
        for line in bug.render().lines() {
            let _ = writeln!(out, "  {line}");
        }
    }

    // --- Auxiliary passes ---------------------------------------------
    if !prov.passes.is_empty() {
        let _ = writeln!(out, "\nauxiliary passes:");
        for p in &prov.passes {
            out.push_str(&pass_line(p, opts));
        }
    }

    // --- Budget -------------------------------------------------------
    if opts.show_times {
        let _ = writeln!(out, "\nbudget:");
        let mut effort = pug_sat::Stats::default();
        let mut gates_hashconsed: u64 = 0;
        let mut rewrite_discharged: u64 = 0;
        for r in &prov.rungs {
            if matches!(r.outcome, RungOutcome::Skipped(_)) {
                continue;
            }
            let solve: f64 = r.stats.iter().map(|q| q.duration.as_secs_f64()).sum();
            let _ = writeln!(
                out,
                "  {:<16} {:>7.2}s wall  {:>7.2}s in queries  ({})",
                r.rung.to_string(),
                r.elapsed.as_secs_f64(),
                solve,
                count_queries(r.queries),
            );
            for q in &r.stats {
                effort.merge(&q.stats.sat);
                gates_hashconsed += q.stats.gates_hashconsed;
                rewrite_discharged += u64::from(q.stats.discharged_by_rewrite);
            }
        }
        for p in &prov.passes {
            let solve: f64 = p.stats.iter().map(|q| q.duration.as_secs_f64()).sum();
            let _ = writeln!(
                out,
                "  pass {:<11} {:>7.2}s wall  {:>7.2}s in queries  ({})",
                p.pass,
                p.elapsed.as_secs_f64(),
                solve,
                count_queries(p.stats.len()),
            );
            for q in &p.stats {
                effort.merge(&q.stats.sat);
                gates_hashconsed += q.stats.gates_hashconsed;
                rewrite_discharged += u64::from(q.stats.discharged_by_rewrite);
            }
        }
        let _ = writeln!(out, "  total            {:>7.2}s wall", report.elapsed.as_secs_f64());
        let _ = writeln!(
            out,
            "  search effort: {} conflicts, {} propagations, {} learnt clauses \
             ({} imported), {} restarts",
            effort.conflicts,
            effort.propagations,
            effort.learnt_clauses,
            effort.learnts_imported,
            effort.restarts,
        );
        let _ = writeln!(
            out,
            "  simplification: {} vars eliminated, {} clauses subsumed, {} clauses vivified, \
             {} gates hash-consed",
            effort.vars_eliminated,
            effort.clauses_subsumed,
            effort.clauses_vivified,
            gates_hashconsed,
        );
        let _ = writeln!(
            out,
            "  canonicalization: {rewrite_discharged} obligations discharged by rewriting",
        );
    }

    out
}

/// One-line narrative for a rung record.
fn rung_story(r: &RungRecord, prov: &Provenance, opts: &ExplainOptions) -> String {
    match &r.outcome {
        RungOutcome::Answered => {
            let role = if prov.answered_by == Some(r.rung) {
                "answered"
            } else {
                // Possible when a stronger rung's verdict was adopted over
                // a weaker rung that also finished (portfolio racing).
                "answered (not adopted)"
            };
            format!("{role} after {}", count_queries(r.queries))
        }
        RungOutcome::Timeout => {
            if opts.show_times {
                format!("ran out of budget after {}", count_queries(r.queries))
            } else {
                "ran out of budget".to_string()
            }
        }
        RungOutcome::Crashed(m) => format!("crashed: {m}"),
        RungOutcome::Failed(m) => format!("error: {m}"),
        RungOutcome::Skipped(m) => format!("skipped: {m}"),
        RungOutcome::Abandoned => "abandoned — a stronger rung answered first".to_string(),
    }
}

fn count_queries(n: usize) -> String {
    if n == 1 {
        "1 query".to_string()
    } else {
        format!("{n} queries")
    }
}

/// Group query stats by label family (the prefix before `[`/`(`) and
/// tally outcomes. Cache hits count as `valid` — cachedness is a
/// performance detail, and folding it keeps the table deterministic.
/// Rewrite discharges also count as `valid`, but are surfaced even in
/// stable mode: which obligations collapse under canonicalization is a
/// deterministic property of the encoding, not of timing.
fn family_table(stats: &[QueryStat], opts: &ExplainOptions) -> String {
    #[derive(Default)]
    struct Tally {
        total: usize,
        valid: usize,
        cached: usize,
        rewrite: usize,
        cex: usize,
        timeout: usize,
    }
    let mut families: BTreeMap<String, Tally> = BTreeMap::new();
    for q in stats {
        let fam = q
            .label
            .split(['[', '('])
            .next()
            .unwrap_or(&q.label)
            .to_string();
        let t = families.entry(fam).or_default();
        t.total += 1;
        match q.outcome.as_str() {
            "valid" => t.valid += 1,
            "valid (cached)" => {
                t.valid += 1;
                t.cached += 1;
            }
            "valid (rewrite)" => {
                t.valid += 1;
                t.rewrite += 1;
            }
            "counterexample" => t.cex += 1,
            _ => t.timeout += 1,
        }
    }
    let mut out = String::new();
    for (fam, t) in &families {
        let mut story = if t.valid == t.total {
            "all valid".to_string()
        } else {
            let mut parts = Vec::new();
            if t.valid > 0 {
                parts.push(format!("{} valid", t.valid));
            }
            if t.cex > 0 {
                parts.push(format!("{} counterexample", t.cex));
            }
            if t.timeout > 0 {
                parts.push(format!("{} timeout", t.timeout));
            }
            parts.join(", ")
        };
        if t.rewrite > 0 {
            let _ = write!(story, " ({} discharged by rewriting)", t.rewrite);
        }
        if opts.show_times && t.cached > 0 {
            let _ = write!(story, " ({} cached)", t.cached);
        }
        let _ = writeln!(out, "  {:<16} x{:<4} {story}", fam, t.total);
    }
    out
}

/// Narrative for how the quantified write-coverage residue was handled.
fn residue_story(verdict: &Verdict) -> &'static str {
    match verdict {
        Verdict::Verified(Soundness::Sound) => {
            "all write-coverage obligations were discharged (every residual \
             formula was witnessed, eliminated by Presburger reasoning, or \
             proven); the proof is sound"
        }
        Verdict::Verified(Soundness::UnderApprox) => {
            "some quantified write-coverage residue was dropped after \
             witnessing failed; the result under-approximates the proof — \
             reported bugs are real, but absence of bugs is not a proof"
        }
        Verdict::Bug(_) => {
            "not applicable — the counterexample is a concrete witness, and \
             bug reports are sound regardless of any dropped residue"
        }
        Verdict::Timeout => {
            "unknown — no rung answered within budget, so the residue was \
             never reached"
        }
    }
}

/// One line per auxiliary pass.
fn pass_line(p: &PassRecord, opts: &ExplainOptions) -> String {
    if opts.show_times {
        format!(
            "  {:<16} {}  ({:.2}s, {})\n",
            p.pass,
            p.summary,
            p.elapsed.as_secs_f64(),
            count_queries(p.stats.len()),
        )
    } else {
        format!("  {:<16} {}\n", p.pass, p.summary)
    }
}
