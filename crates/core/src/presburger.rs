//! Omega-test-lite: integer linear arithmetic elimination for the residual
//! ∀-formulas the monotone-only [`crate::qelim`] cannot handle.
//!
//! The frontend only ever produces *affine* (and guarded/piecewise-affine)
//! index maps — `c·tid.x + d`, grid-stride offsets, tile bases — so a full
//! Presburger decision procedure is overkill. This module implements the
//! slice of Pugh's Omega test that those maps need:
//!
//! * a pure integer engine ([`solve`]) doing Fourier–Motzkin elimination
//!   with the *real shadow* (Unsat ⇒ Unsat, always sound), the *dark
//!   shadow* `a·U − b·L ≥ (a−1)(b−1)` (Sat ⇒ Sat, exact when a unit
//!   coefficient is involved), and a bounded *gray shadow* splinter search
//!   in between — beyond the splinter budget the answer is
//!   [`Omega::Unknown`], never a guess;
//! * a term-level bridge ([`affine_decompose`], [`invert_affine`],
//!   [`stride_membership`]) that turns affine bit-vector index maps into
//!   exact witness substitutions and quantifier-free membership
//!   constraints for the `equiv.rs` resolution layer.
//!
//! ## Domain constraint and trust story
//!
//! The engine reasons over **mathematical integers**; the verifier's terms
//! live in **w-bit arithmetic modulo 2^w**. The bridge therefore never lets
//! the engine's answer reach a verdict directly: every witness substitution
//! and membership constraint it derives is re-checked by the bit-vector SMT
//! solver (which models wrap-around exactly), so an engine bug — or the
//! integer/modular mismatch itself — can cost completeness (a proof falls
//! back to the degradation ladder) but never soundness. The modular inverse
//! used by [`invert_affine`] *is* exact in 2^w arithmetic: for odd `c` the
//! map `x ↦ c·x + d (mod 2^w)` is a bijection with inverse
//! `x = c⁻¹·(a − d)`; for `c = 2^s·c'` (odd `c'`) the inverse holds under
//! the explicit divisibility side condition `(a − d) mod 2^s = 0` which is
//! emitted as part of the witness and checked by the solver.

use pug_smt::{Ctx, Op, Sort, TermId};

// ---------------------------------------------------------------------------
// Pure integer engine
// ---------------------------------------------------------------------------

/// Constraint coefficients. `i128` gives FM pair products headroom; any
/// overflow is caught with checked arithmetic and degrades to `Unknown`.
pub type Coef = i128;

/// Relation of a [`Constraint`]: `Σ cᵢ·xᵢ + k  {=, ≥}  0`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rel {
    Eq,
    Ge,
}

/// One linear constraint over `n_vars` integer variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Constraint {
    pub coeffs: Vec<Coef>,
    pub constant: Coef,
    pub rel: Rel,
}

impl Constraint {
    /// `Σ cᵢ·xᵢ + k ≥ 0`.
    pub fn ge(coeffs: Vec<Coef>, constant: Coef) -> Constraint {
        Constraint { coeffs, constant, rel: Rel::Ge }
    }

    /// `Σ cᵢ·xᵢ + k = 0`.
    pub fn eq(coeffs: Vec<Coef>, constant: Coef) -> Constraint {
        Constraint { coeffs, constant, rel: Rel::Eq }
    }

    /// `Σ cᵢ·xᵢ + k ≤ 0`, stored as the negated `≥`.
    pub fn le(coeffs: Vec<Coef>, constant: Coef) -> Constraint {
        Constraint {
            coeffs: coeffs.into_iter().map(|c| -c).collect(),
            constant: -constant,
            rel: Rel::Ge,
        }
    }

    /// Evaluate at a concrete point (brute-force oracle for the fuzzer).
    pub fn holds_at(&self, point: &[Coef]) -> bool {
        let v: Coef = self
            .coeffs
            .iter()
            .zip(point)
            .map(|(c, x)| c * x)
            .sum::<Coef>()
            + self.constant;
        match self.rel {
            Rel::Eq => v == 0,
            Rel::Ge => v >= 0,
        }
    }
}

/// A conjunction of constraints over a fixed variable count.
#[derive(Clone, Debug, Default)]
pub struct System {
    pub n_vars: usize,
    pub constraints: Vec<Constraint>,
}

impl System {
    pub fn new(n_vars: usize) -> System {
        System { n_vars, constraints: Vec::new() }
    }

    pub fn push(&mut self, c: Constraint) {
        debug_assert_eq!(c.coeffs.len(), self.n_vars);
        self.constraints.push(c);
    }

    /// Brute-force satisfiability over the box `[lo, hi]^n` — the
    /// enumeration oracle the property fuzzer compares [`solve`] against.
    pub fn brute_force_sat(&self, lo: Coef, hi: Coef) -> bool {
        let mut point = vec![lo; self.n_vars];
        loop {
            if self.constraints.iter().all(|c| c.holds_at(&point)) {
                return true;
            }
            let mut i = 0;
            loop {
                if i == self.n_vars {
                    return false;
                }
                point[i] += 1;
                if point[i] <= hi {
                    break;
                }
                point[i] = lo;
                i += 1;
            }
            if self.n_vars == 0 {
                return false;
            }
        }
    }
}

/// Three-valued answer. `Sat`/`Unsat` are definitive over the integers;
/// `Unknown` means a budget ran out or arithmetic overflowed — callers must
/// treat it as "no information" (the bridge then leaves the obligation to
/// the degradation ladder).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Omega {
    Sat,
    Unsat,
    Unknown,
}

/// Elimination budgets. The defaults comfortably cover the affine maps the
/// frontend emits (a handful of variables, single-digit coefficients).
#[derive(Clone, Copy, Debug)]
pub struct OmegaBudget {
    /// Maximum gray-shadow splinters explored per elimination step.
    pub max_splinters: usize,
    /// Maximum live constraints per elimination step — FM squares the
    /// constraint count in the worst case, so unchecked recursion can
    /// grind for minutes inside the step budget. Exceeding the cap
    /// returns [`Omega::Unknown`] (always sound: the caller falls back).
    pub max_constraints: usize,
    /// Maximum recursive elimination steps overall.
    pub max_steps: usize,
}

impl Default for OmegaBudget {
    fn default() -> OmegaBudget {
        OmegaBudget { max_splinters: 64, max_steps: 4096, max_constraints: 512 }
    }
}

fn gcd(a: Coef, b: Coef) -> Coef {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

fn floor_div(a: Coef, b: Coef) -> Coef {
    debug_assert!(b > 0);
    let q = a / b;
    if a % b != 0 && a < 0 {
        q - 1
    } else {
        q
    }
}

/// Normalize one constraint by the gcd of its coefficients. Returns
/// `None` when the constraint is trivially true (droppable), `Some(Err)`
/// when it is trivially false, `Some(Ok(c))` otherwise.
fn normalize(c: &Constraint) -> Option<Result<Constraint, ()>> {
    let g = c.coeffs.iter().fold(0, |acc, &x| gcd(acc, x));
    if g == 0 {
        // Variable-free: decide now.
        let sat = match c.rel {
            Rel::Eq => c.constant == 0,
            Rel::Ge => c.constant >= 0,
        };
        return if sat { None } else { Some(Err(())) };
    }
    let mut out = c.clone();
    match c.rel {
        Rel::Eq => {
            // The integer gcd test: Σ cᵢxᵢ = −k has a solution only when
            // g | k.
            if c.constant % g != 0 {
                return Some(Err(()));
            }
            out.constant = c.constant / g;
        }
        // Tightening: Σ cᵢxᵢ ≥ −k  ⇔  Σ (cᵢ/g)xᵢ ≥ ⌈−k/g⌉, i.e. the
        // constant rounds *down* (floor) on the `+ k ≥ 0` form.
        Rel::Ge => out.constant = floor_div(c.constant, g),
    }
    for x in &mut out.coeffs {
        *x /= g;
    }
    Some(Ok(out))
}

/// Decide satisfiability of `sys` over the integers (Omega-test-lite).
///
/// Sound in both directions when it answers: `Unsat` comes only from the
/// real shadow / gcd tests (which over-approximate the solution set) and
/// exhausted splinter enumeration; `Sat` comes only from the dark shadow
/// (which under-approximates it), an exact elimination, or an empty system.
pub fn solve(sys: &System, budget: &OmegaBudget) -> Omega {
    let mut steps = 0usize;
    solve_rec(sys.clone(), budget, &mut steps)
}

fn solve_rec(sys: System, budget: &OmegaBudget, steps: &mut usize) -> Omega {
    if *steps >= budget.max_steps {
        return Omega::Unknown;
    }
    *steps += 1;

    // Normalize; decide variable-free constraints on the spot.
    let mut cons: Vec<Constraint> = Vec::with_capacity(sys.constraints.len());
    for c in &sys.constraints {
        match normalize(c) {
            None => {}
            Some(Err(())) => return Omega::Unsat,
            Some(Ok(c)) => cons.push(c),
        }
    }
    if cons.is_empty() {
        return Omega::Sat;
    }
    // FM duplicates aggressively; dropping repeats is free precision-wise
    // and keeps the quadratic pair combination from compounding on copies.
    cons.sort_by(|a, b| (&a.coeffs, a.constant, a.rel as u8).cmp(&(&b.coeffs, b.constant, b.rel as u8)));
    cons.dedup();
    if cons.len() > budget.max_constraints {
        return Omega::Unknown;
    }

    // Exact equality elimination: an equality with a ±1 coefficient lets
    // us substitute that variable away with no loss of precision.
    if let Some((ci, vi)) = cons.iter().enumerate().find_map(|(i, c)| {
        (c.rel == Rel::Eq)
            .then(|| c.coeffs.iter().position(|&a| a.abs() == 1).map(|v| (i, v)))
            .flatten()
    }) {
        let eqc = cons.remove(ci);
        let a = eqc.coeffs[vi];
        // a·x + rest = 0  ⇒  x = −rest/a; with a = ±1 this is integral.
        // Substitute into every other constraint: coeffs_j += c_x·(−rest)·a.
        let mut next = System::new(sys.n_vars);
        for c in cons {
            let cx = c.coeffs[vi];
            if cx == 0 {
                next.push(c);
                continue;
            }
            let mut out = c.clone();
            out.coeffs[vi] = 0;
            // x = (−1/a)·(Σ_{j≠vi} e_j x_j + e_k); multiply through.
            for j in 0..sys.n_vars {
                if j == vi {
                    continue;
                }
                let Some(p) = eqc.coeffs[j].checked_mul(cx) else { return Omega::Unknown };
                out.coeffs[j] -= p * a; // a ∈ {−1, 1}: (−1/a) = −a
            }
            let Some(p) = eqc.constant.checked_mul(cx) else { return Omega::Unknown };
            out.constant -= p * a;
            next.push(out);
        }
        return solve_rec(next, budget, steps);
    }

    // Remaining equalities (no unit coefficient): the lite engine skips
    // Omega's mod-elimination and rewrites them as opposing inequalities
    // for FM to grind through. Precision is unchanged; only speed suffers,
    // and the affine maps we target essentially never hit this path.
    if cons.iter().any(|c| c.rel == Rel::Eq) {
        let mut next = System::new(sys.n_vars);
        for c in cons {
            if c.rel == Rel::Eq {
                next.push(Constraint::ge(c.coeffs.clone(), c.constant));
                next.push(Constraint::le(c.coeffs, c.constant));
            } else {
                next.push(c);
            }
        }
        return solve_rec(next, budget, steps);
    }

    // Choose the elimination variable minimizing the FM blowup.
    let mut best: Option<(usize, usize)> = None;
    for v in 0..sys.n_vars {
        let lowers = cons.iter().filter(|c| c.coeffs[v] > 0).count();
        let uppers = cons.iter().filter(|c| c.coeffs[v] < 0).count();
        if lowers + uppers == 0 {
            continue;
        }
        let cost = lowers * uppers;
        if best.is_none_or(|(_, bc)| cost < bc) {
            best = Some((v, cost));
        }
    }
    let Some((v, _)) = best else {
        // No variable appears — normalize() decided everything already.
        return Omega::Sat;
    };

    let lowers: Vec<&Constraint> = cons.iter().filter(|c| c.coeffs[v] > 0).collect();
    let uppers: Vec<&Constraint> = cons.iter().filter(|c| c.coeffs[v] < 0).collect();
    let rest: Vec<Constraint> =
        cons.iter().filter(|c| c.coeffs[v] == 0).cloned().collect();

    // One-sided variable: any value far enough in the unbounded direction
    // satisfies its constraints — dropping them is exact.
    if lowers.is_empty() || uppers.is_empty() {
        let next = System { n_vars: sys.n_vars, constraints: rest };
        return solve_rec(next, budget, steps);
    }

    // FM pair combination. For lower `a·x ≥ A` (a = l.coeffs[v]) and upper
    // `b·x ≤ B` (b = −u.coeffs[v]): the real shadow is `a·B − b·A ≥ 0`,
    // which in `Σc+k ≥ 0` form is coefficient-wise `a·u + b·l`. The dark
    // shadow subtracts `(a−1)(b−1)` from the constant.
    let combine = |l: &Constraint, u: &Constraint, dark: bool| -> Option<Constraint> {
        let a = l.coeffs[v];
        let b = -u.coeffs[v];
        let mut coeffs = vec![0; sys.n_vars];
        for (j, c) in coeffs.iter_mut().enumerate() {
            let p1 = a.checked_mul(u.coeffs[j])?;
            let p2 = b.checked_mul(l.coeffs[j])?;
            *c = p1.checked_add(p2)?;
        }
        let mut constant = a
            .checked_mul(u.constant)?
            .checked_add(b.checked_mul(l.constant)?)?;
        if dark {
            constant = constant.checked_sub((a - 1).checked_mul(b - 1)?)?;
        }
        Some(Constraint::ge(coeffs, constant))
    };

    let mut real = System { n_vars: sys.n_vars, constraints: rest.clone() };
    let mut exact = true;
    for l in &lowers {
        for u in &uppers {
            let a = l.coeffs[v];
            let b = -u.coeffs[v];
            if a != 1 && b != 1 {
                exact = false;
            }
            match combine(l, u, false) {
                Some(c) => real.push(c),
                None => return Omega::Unknown,
            }
        }
    }

    if exact {
        // Real shadow == dark shadow: the elimination is equivalence-
        // preserving and the recursive answer is definitive either way.
        return solve_rec(real, budget, steps);
    }

    match solve_rec(real, budget, steps) {
        Omega::Unsat => return Omega::Unsat,
        Omega::Unknown => return Omega::Unknown,
        Omega::Sat => {}
    }

    let mut dark = System { n_vars: sys.n_vars, constraints: rest };
    for l in &lowers {
        for u in &uppers {
            match combine(l, u, true) {
                Some(c) => dark.push(c),
                None => return Omega::Unknown,
            }
        }
    }
    match solve_rec(dark, budget, steps) {
        Omega::Sat => return Omega::Sat,
        Omega::Unknown => return Omega::Unknown,
        Omega::Unsat => {}
    }

    // Gray shadow: a solution, if any, hugs *some* lower bound (Pugh): for
    // every lower constraint `a·x ≥ A` there may be a solution with
    // `a·x ≤ A + (a·bmax − a − bmax)/bmax`, where bmax is the largest
    // upper coefficient. Completeness needs the splinters of every lower
    // bound — a solution outside the dark shadow is only guaranteed close
    // to one of them, not to any particular one.
    let bmax = uppers.iter().map(|u| -u.coeffs[v]).max().unwrap_or(1);
    let mut splinters = 0usize;
    let mut saw_unknown = false;
    for l in &lowers {
        let a = l.coeffs[v];
        let Some(num) = a
            .checked_mul(bmax)
            .and_then(|ab| ab.checked_sub(a))
            .and_then(|x| x.checked_sub(bmax))
        else {
            return Omega::Unknown;
        };
        let max_i = floor_div(num, bmax).max(0);
        if max_i as u128 >= budget.max_splinters as u128 {
            return Omega::Unknown;
        }
        for i in 0..=max_i {
            splinters += 1;
            if splinters > budget.max_splinters {
                return Omega::Unknown;
            }
            // a·x = A + i  ⇔  (l's form) a·x + Σ l_j x_j + l_k − i = 0.
            let mut sp = System { n_vars: sys.n_vars, constraints: cons.clone() };
            sp.push(Constraint::eq(l.coeffs.clone(), l.constant - i));
            match solve_rec(sp, budget, steps) {
                Omega::Sat => return Omega::Sat,
                Omega::Unknown => saw_unknown = true,
                Omega::Unsat => {}
            }
        }
    }
    if saw_unknown {
        Omega::Unknown
    } else {
        Omega::Unsat
    }
}

// ---------------------------------------------------------------------------
// Term bridge: affine bit-vector index maps
// ---------------------------------------------------------------------------

/// An index map decomposed as `coeff · x + offset (mod 2^w)` where
/// `offset` does not mention `x`.
#[derive(Clone, Copy, Debug)]
pub struct AffineX {
    pub coeff: u64,
    pub offset: TermId,
}

fn contains_var(ctx: &Ctx, t: TermId, x: TermId) -> bool {
    // Iterative DFS over the DAG; no memo needed at index-map sizes.
    let mut stack = vec![t];
    let mut seen = std::collections::HashSet::new();
    while let Some(t) = stack.pop() {
        if t == x {
            return true;
        }
        if seen.insert(t) {
            stack.extend(ctx.args(t).iter().copied());
        }
    }
    false
}

/// Decompose `t` as `coeff·x + offset (mod 2^w)` with `offset` free of
/// `x`. Returns `None` when `t` is not affine in `x` (e.g. `x` under a
/// division, select, or non-constant multiplier).
pub fn affine_decompose(ctx: &mut Ctx, t: TermId, x: TermId) -> Option<AffineX> {
    let Sort::BitVec(w) = ctx.sort(t) else { return None };
    let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
    if t == x {
        let zero = ctx.mk_bv_const(0, w);
        return Some(AffineX { coeff: 1, offset: zero });
    }
    if !contains_var(ctx, t, x) {
        return Some(AffineX { coeff: 0, offset: t });
    }
    match ctx.op(t).clone() {
        Op::BvAdd => {
            let args = ctx.args(t).to_vec();
            let l = affine_decompose(ctx, args[0], x)?;
            let r = affine_decompose(ctx, args[1], x)?;
            let offset = ctx.mk_bv_add(l.offset, r.offset);
            Some(AffineX { coeff: l.coeff.wrapping_add(r.coeff) & mask, offset })
        }
        Op::BvSub => {
            let args = ctx.args(t).to_vec();
            let l = affine_decompose(ctx, args[0], x)?;
            let r = affine_decompose(ctx, args[1], x)?;
            let offset = ctx.mk_bv_sub(l.offset, r.offset);
            Some(AffineX { coeff: l.coeff.wrapping_sub(r.coeff) & mask, offset })
        }
        Op::BvNeg => {
            let args = ctx.args(t).to_vec();
            let a = affine_decompose(ctx, args[0], x)?;
            let offset = ctx.mk_bv_neg(a.offset);
            Some(AffineX { coeff: a.coeff.wrapping_neg() & mask, offset })
        }
        Op::BvMul => {
            let args = ctx.args(t).to_vec();
            let (c, sub) = if let Some(c) = ctx.const_bv(args[0]) {
                (c, args[1])
            } else if let Some(c) = ctx.const_bv(args[1]) {
                (c, args[0])
            } else {
                return None;
            };
            let a = affine_decompose(ctx, sub, x)?;
            let cterm = ctx.mk_bv_const(c, w);
            let offset = ctx.mk_bv_mul(cterm, a.offset);
            Some(AffineX { coeff: a.coeff.wrapping_mul(c) & mask, offset })
        }
        Op::BvShl => {
            let args = ctx.args(t).to_vec();
            let s = ctx.const_bv(args[1])?;
            if s >= u64::from(w) {
                return None;
            }
            let a = affine_decompose(ctx, args[0], x)?;
            let offset = ctx.mk_bv_shl(a.offset, args[1]);
            Some(AffineX { coeff: a.coeff.wrapping_shl(s as u32) & mask, offset })
        }
        _ => None,
    }
}

/// Multiplicative inverse of odd `c` modulo `2^w` (Newton/Hensel lifting:
/// each step doubles the number of correct low bits).
pub fn mod_inverse(c: u64, w: u32) -> u64 {
    debug_assert!(c % 2 == 1);
    let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
    let mut inv = c; // correct mod 2^3 already (c·c ≡ 1 mod 8 for odd c)
    for _ in 0..6 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(c.wrapping_mul(inv)));
    }
    inv & mask
}

/// Invert the affine map `t = coeff·x + offset` at the concrete address
/// `addr`: returns the witness term for `x` plus an optional side
/// condition that must hold for the inversion to be exact.
///
/// * odd `coeff`: `x = coeff⁻¹·(addr − offset)` — a bijection mod 2^w, no
///   side condition;
/// * `coeff = 2^s·c'` with odd `c'`: `x = c'⁻¹·((addr − offset) >> s)`
///   under the divisibility side condition `(addr − offset) & (2^s−1) = 0`;
/// * `coeff = 0` (or a non-affine map): no inversion.
pub fn invert_affine(
    ctx: &mut Ctx,
    t: TermId,
    x: TermId,
    addr: TermId,
) -> Option<(TermId, Option<TermId>)> {
    let Sort::BitVec(w) = ctx.sort(t) else { return None };
    let aff = affine_decompose(ctx, t, x)?;
    if aff.coeff == 0 {
        return None;
    }
    let diff = ctx.mk_bv_sub(addr, aff.offset);
    let s = aff.coeff.trailing_zeros();
    if s == 0 {
        let inv = mod_inverse(aff.coeff, w);
        let invt = ctx.mk_bv_const(inv, w);
        let wit = ctx.mk_bv_mul(invt, diff);
        return Some((wit, None));
    }
    if s >= w {
        return None;
    }
    let odd = aff.coeff >> s;
    let inv = mod_inverse(odd, w);
    let invt = ctx.mk_bv_const(inv, w);
    let st = ctx.mk_bv_const(u64::from(s), w);
    let shifted = ctx.mk_bv_lshr(diff, st);
    let wit = ctx.mk_bv_mul(invt, shifted);
    // Divisibility: the low s bits of (addr − offset) must be zero.
    let lowmask = ctx.mk_bv_const((1u64 << s) - 1, w);
    let low = ctx.mk_bv_and(diff, lowmask);
    let zero = ctx.mk_bv_const(0, w);
    let side = ctx.mk_eq(low, zero);
    Some((wit, Some(side)))
}

/// Quantifier-free membership constraint for a symbolic-stride iteration
/// space: `k ∈ {start, start+step, …}` bounded by `bound`. Emits
/// `start ≤ k ∧ k < bound (or ≤) ∧ (k − start) mod step = 0 ∧ step ≠ 0` —
/// exactly the constraint set the Omega engine validates as affine, with
/// the solver re-checking it in modular arithmetic.
pub fn stride_membership(
    ctx: &mut Ctx,
    k: TermId,
    start: TermId,
    bound: TermId,
    step: TermId,
    inclusive: bool,
) -> TermId {
    let ge = ctx.mk_bv_ule(start, k);
    let ub = if inclusive { ctx.mk_bv_ule(k, bound) } else { ctx.mk_bv_ult(k, bound) };
    let diff = ctx.mk_bv_sub(k, start);
    let rem = ctx.mk_bv_urem(diff, step);
    let Sort::BitVec(w) = ctx.sort(k) else { unreachable!("stride var is a bit-vector") };
    let zero = ctx.mk_bv_const(0, w);
    let aligned = ctx.mk_eq(rem, zero);
    let step_nz = ctx.mk_neq(step, zero);
    let c1 = ctx.mk_and(ge, ub);
    let c2 = ctx.mk_and(aligned, step_nz);
    ctx.mk_and(c1, c2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sat(sys: &System) -> Omega {
        solve(sys, &OmegaBudget::default())
    }

    #[test]
    fn empty_system_is_sat() {
        assert_eq!(sat(&System::new(3)), Omega::Sat);
    }

    #[test]
    fn contradictory_bounds_are_unsat() {
        // x ≥ 5 ∧ x ≤ 3
        let mut s = System::new(1);
        s.push(Constraint::ge(vec![1], -5));
        s.push(Constraint::le(vec![1], -3));
        assert_eq!(sat(&s), Omega::Unsat);
    }

    #[test]
    fn gcd_test_kills_unaligned_equality() {
        // 2x + 4y = 1 has no integer solution.
        let mut s = System::new(2);
        s.push(Constraint::eq(vec![2, 4], -1));
        assert_eq!(sat(&s), Omega::Unsat);
    }

    #[test]
    fn dark_shadow_gap() {
        // 2x ≥ 5 ∧ 2x ≤ 5: real shadow is sat (x = 2.5), integers are not.
        let mut s = System::new(1);
        s.push(Constraint::ge(vec![2], -5));
        s.push(Constraint::le(vec![2], -5));
        assert_eq!(sat(&s), Omega::Unsat);
    }

    #[test]
    fn gray_shadow_finds_the_lattice_point() {
        // 3x ≥ 7 ∧ 3x ≤ 9: dark shadow (3·(−7) − 3·... ) misses x = 3.
        let mut s = System::new(1);
        s.push(Constraint::ge(vec![3], -7));
        s.push(Constraint::le(vec![3], -9));
        assert_eq!(sat(&s), Omega::Sat);
    }

    #[test]
    fn stride_disjointness_two_vars() {
        // 4x + 1 = 4y + 3 (two stride-4 classes) is unsat.
        let mut s = System::new(2);
        s.push(Constraint::eq(vec![4, -4], -2));
        assert_eq!(sat(&s), Omega::Unsat);
        // 4x + 1 = 2y + 1 is sat (y = 2x).
        let mut s = System::new(2);
        s.push(Constraint::eq(vec![4, -2], 0));
        assert_eq!(sat(&s), Omega::Sat);
    }

    #[test]
    fn mod_inverse_is_exact_at_every_width() {
        for w in [4u32, 8, 16, 32, 64] {
            let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
            for c in [1u64, 3, 5, 7, 0x55, 0xABCDEF1, u64::MAX] {
                let c = (c & mask) | 1;
                let inv = mod_inverse(c, w);
                assert_eq!(c.wrapping_mul(inv) & mask, 1, "c={c:#x} w={w}");
            }
        }
    }

    #[test]
    fn affine_decompose_and_invert_roundtrip() {
        let mut ctx = Ctx::default();
        let x = ctx.mk_var("x", Sort::BitVec(8));
        let three = ctx.mk_bv_const(3, 8);
        let seven = ctx.mk_bv_const(7, 8);
        let mul = ctx.mk_bv_mul(three, x);
        let t = ctx.mk_bv_add(mul, seven); // 3x + 7
        let aff = affine_decompose(&mut ctx, t, x).unwrap();
        assert_eq!(aff.coeff, 3);
        // Invert at addr = 3·5 + 7 = 22: witness must fold to 5.
        let addr = ctx.mk_bv_const(22, 8);
        let (wit, side) = invert_affine(&mut ctx, t, x, addr).unwrap();
        assert!(side.is_none(), "odd coefficient needs no side condition");
        assert_eq!(ctx.const_bv(wit), Some(5));
    }

    #[test]
    fn invert_even_coefficient_has_divisibility_side() {
        let mut ctx = Ctx::default();
        let x = ctx.mk_var("x", Sort::BitVec(8));
        let four = ctx.mk_bv_const(4, 8);
        let one = ctx.mk_bv_const(1, 8);
        let mul = ctx.mk_bv_mul(four, x);
        let t = ctx.mk_bv_add(mul, one); // 4x + 1
        // addr = 4·6 + 1 = 25 inverts to 6 with the side condition true.
        let addr = ctx.mk_bv_const(25, 8);
        let (wit, side) = invert_affine(&mut ctx, t, x, addr).unwrap();
        assert_eq!(ctx.const_bv(wit), Some(6));
        let side = side.expect("even coefficient requires a side condition");
        assert_eq!(ctx.const_bool(side), Some(true));
        // addr = 24 is not in the image of 4x + 1: side condition is false.
        let addr = ctx.mk_bv_const(24, 8);
        let (_, side) = invert_affine(&mut ctx, t, x, addr).unwrap();
        assert_eq!(ctx.const_bool(side.unwrap()), Some(false));
    }

    #[test]
    fn non_affine_maps_are_rejected() {
        let mut ctx = Ctx::default();
        let x = ctx.mk_var("x", Sort::BitVec(8));
        let sq = ctx.mk_bv_mul(x, x);
        assert!(affine_decompose(&mut ctx, sq, x).is_none());
        let y = ctx.mk_var("y", Sort::BitVec(8));
        let div = ctx.mk_bv_udiv(x, y);
        assert!(affine_decompose(&mut ctx, div, x).is_none());
    }
}
