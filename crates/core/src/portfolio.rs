//! Portfolio-parallel verification: racing the degradation ladder.
//!
//! The sequential ladder of [`crate::runner`] tries one encoding at a time,
//! so its wall-clock cost is the *sum* of every rung attempted before the
//! answering one — and most of that sum is deadline-bound waiting when an
//! upper rung times out. The paper's §III/§IV duality makes the rungs
//! complementary (the parameterized proof and the concrete-`n` bug hunt
//! have opposite best cases), which is exactly the profile portfolio
//! racing exploits: launch every rung concurrently, adopt the first
//! *conclusive* verdict by soundness priority, and cancel the losers.
//!
//! ## Determinism
//!
//! "First conclusive verdict wins" is arbitrated by *ladder priority*, not
//! arrival time: a weaker rung's answer is adopted only once every
//! stronger rung has resolved without answering (timeout, crash, error).
//! The winner is therefore the strongest answering rung — the same rung
//! the sequential ladder would have stopped at — so racing returns the
//! same verdict at the same soundness level, every run. Rungs *below* an
//! answering rung are cancelled immediately (their result can never take
//! priority); their partial cost is recorded as
//! [`RungOutcome::Abandoned`].
//!
//! ## Budget splitting
//!
//! Each rung runs under its own [`CancelToken::child`] of a per-task root
//! token and its own resource caps — the per-rung caps the sequential
//! ladder would grant, not a shared pool. Sharing one `ResourceBudget`
//! across concurrent rungs would double-count conflicts and term nodes
//! against the caps and, worse, let one rung's watchdog cancel its
//! siblings; the child-token tree keeps exhaustion strictly per-rung while
//! the task root remains a portfolio-wide kill switch
//! (see `pug_sat::Budget::split` for the solver-level form of the same
//! contract).
//!
//! ## Batch mode
//!
//! [`verify_all`] schedules many verification tasks across one worker
//! pool: every (task, rung) pair becomes an independent pool job, so a
//! deadline-waiting rung of one kernel never blocks another kernel's
//! progress. Results come back in input order with full per-task
//! provenance — which rung answered and what the abandoned rungs cost.

use crate::kernel::KernelUnit;
use crate::runner::{
    adopt_verdict, build_ladder, dispatch_rung, run_aux_passes, rung_outcome_key, rung_timeout,
    run_rung, Provenance, ResilientReport, RungOutcome, RungRecord, RungResult, RunnerOptions,
};
use crate::equiv::{QueryStat, Report};
use crate::verdict::Verdict;
use pug_ir::GpuConfig;
use pug_obs::{MetricsRegistry, TraceSpan};
use pug_smt::CancelToken;
use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default [`QueryCache`] capacity, in fingerprints. Generous on purpose:
/// a fingerprint is 16 bytes, so a full cache holds ~16 MiB of keys —
/// far beyond what any single run records — and the cap only exists so a
/// long-lived process (the `pug-serve` daemon) cannot grow without bound.
pub const DEFAULT_QUERY_CACHE_CAPACITY: usize = 1 << 20;

/// Default number of [`QueryCache`] shards (a power of two). Sixteen
/// shards keep the per-shard mutex essentially uncontended for any
/// obligation pool the verifier spawns (pool sizes track core counts)
/// while the fixed overhead — sixteen empty `HashSet`s — stays trivial.
pub const DEFAULT_QUERY_CACHE_SHARDS: usize = 16;

/// Acquire `m`, recovering the guard if a panicking holder poisoned it.
///
/// The cache's invariants are re-established before any panic point inside
/// the critical sections below, so the data is always structurally valid;
/// mapping poisoning to a miss (the old behavior) silently disabled
/// caching forever after one crashed worker.
fn recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Cross-rung cache of obligations already proven unsatisfiable.
///
/// Portfolio rungs race *different encodings of the same kernel pair*, and
/// several of them (Param and FastBugHunt verbatim; Param+C when nothing is
/// concretized away) issue structurally identical value queries. The cache
/// keys on the canonical fingerprint of the fully concretized assert set
/// ([`pug_smt::assert_fingerprint`]), which is context-independent — the
/// deterministic encoders produce the same variable names in every rung's
/// private [`pug_smt::Ctx`], so equal obligations collide across rungs.
///
/// Only **Unsat** ("obligation valid") verdicts are cached: a `Sat` answer
/// carries a model whose terms live in the answering rung's context, and
/// `Unknown` is budget-dependent. Unsat is also the common case — every
/// discharged proof obligation — and the one worth sharing.
///
/// The cache is **bounded**: at most `capacity` fingerprints are retained,
/// evicted FIFO (oldest insertion first) once full. The default capacity
/// ([`DEFAULT_QUERY_CACHE_CAPACITY`]) is far above any single run's
/// footprint, so batch/bench behavior is unchanged; the bound matters for
/// the long-lived `pug-serve` daemon, where one process-wide cache absorbs
/// every submitted kernel family indefinitely.
///
/// ## Sharding
///
/// The store is split into a power-of-two number of *shards*, each its own
/// `Mutex<CacheInner>` selected by folding the 128-bit fingerprint
/// (`(fp ^ (fp >> 64)) & mask`). Concurrent obligation workers therefore
/// serialize only when two lookups land on the same shard, not on one
/// process-wide lock; the `contended` counter per shard records how often
/// a lock was actually busy (`try_lock` failed and the caller had to
/// wait). Capacity is divided evenly across shards and eviction is FIFO
/// *per shard*, so with more than one shard the retention bound is
/// approximate: total occupancy never exceeds
/// `max(shards, capacity)` entries. Single-shard caches
/// ([`QueryCache::with_shards`]`(cap, 1)`) keep the exact global FIFO.
#[derive(Clone)]
pub struct QueryCache {
    shards: Arc<[CacheShard]>,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: usize,
    /// The requested (global) retention bound, as reported by `stats()`.
    capacity: usize,
}

/// One lock's worth of [`QueryCache`]: a fingerprint set with FIFO
/// eviction order plus its own hit/miss/contention counters (atomics, so
/// the read path never takes a second lock to account for itself).
struct CacheShard {
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    contended: AtomicU64,
}

struct CacheInner {
    set: HashSet<u128>,
    /// Insertion order of the fingerprints in `set`, for FIFO eviction.
    order: VecDeque<u128>,
    capacity: usize,
    evictions: u64,
}

/// Point-in-time counters of a [`QueryCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryCacheStats {
    /// Distinct unsat fingerprints currently stored.
    pub entries: usize,
    /// Retention bound, in fingerprints.
    pub capacity: usize,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to be solved.
    pub misses: u64,
    /// Fingerprints dropped to stay within `capacity`.
    pub evictions: u64,
    /// Number of shards the store is split across.
    pub shards: usize,
    /// Lookups/records that found their shard's lock busy and had to wait.
    pub contended: u64,
}

/// Per-shard counters of a [`QueryCache`] (see [`QueryCache::shard_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Distinct unsat fingerprints currently stored in this shard.
    pub entries: usize,
    /// Lookups answered from this shard.
    pub hits: u64,
    /// Lookups on this shard that had to be solved.
    pub misses: u64,
    /// Acquisitions that found this shard's lock busy.
    pub contended: u64,
}

impl Default for QueryCache {
    fn default() -> QueryCache {
        QueryCache::with_capacity(DEFAULT_QUERY_CACHE_CAPACITY)
    }
}

impl QueryCache {
    pub fn new() -> QueryCache {
        QueryCache::default()
    }

    /// A cache retaining at most `capacity` fingerprints (FIFO eviction),
    /// split across [`DEFAULT_QUERY_CACHE_SHARDS`] shards. A capacity of
    /// zero stores nothing (every record is evicted on the spot) while
    /// still counting lookups.
    pub fn with_capacity(capacity: usize) -> QueryCache {
        QueryCache::with_shards(capacity, DEFAULT_QUERY_CACHE_SHARDS)
    }

    /// A cache with an explicit shard count. `shards` is rounded up to
    /// the next power of two (minimum one); capacity is divided evenly,
    /// with every shard granted at least one slot when `capacity > 0` so
    /// a tiny capacity does not degenerate into a zero-retention cache.
    pub fn with_shards(capacity: usize, shards: usize) -> QueryCache {
        let n = shards.max(1).next_power_of_two();
        let per_shard = if capacity == 0 { 0 } else { (capacity / n).max(1) };
        let shards: Vec<CacheShard> = (0..n)
            .map(|_| CacheShard {
                inner: Mutex::new(CacheInner {
                    set: HashSet::new(),
                    order: VecDeque::new(),
                    capacity: per_shard,
                    evictions: 0,
                }),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                contended: AtomicU64::new(0),
            })
            .collect();
        QueryCache { shards: shards.into(), mask: n - 1, capacity }
    }

    /// Shard index for a fingerprint: fold the two 64-bit halves together
    /// (the canonical hash mixes well in both) and mask.
    fn shard_index(&self, fp: u128) -> usize {
        ((fp ^ (fp >> 64)) as usize) & self.mask
    }

    /// Lock a shard's store, counting the acquisition as contended when
    /// the lock was busy on first try. Poisoned locks are recovered like
    /// [`recover`].
    fn lock_shard(shard: &CacheShard) -> MutexGuard<'_, CacheInner> {
        match shard.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                shard.contended.fetch_add(1, Ordering::Relaxed);
                recover(&shard.inner)
            }
        }
    }

    /// Is this fingerprint a known-unsat assert set? Counts a hit or miss.
    pub fn lookup_unsat(&self, fp: u128) -> bool {
        let shard = &self.shards[self.shard_index(fp)];
        let hit = Self::lock_shard(shard).set.contains(&fp);
        if hit {
            shard.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            shard.misses.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Is this fingerprint stored? Does **not** count a hit or miss —
    /// pooled obligation workers use this for their deferred-accounting
    /// overlay, where the hit/miss is replayed later via
    /// [`QueryCache::note_lookup`] in deterministic merge order.
    pub fn contains(&self, fp: u128) -> bool {
        let shard = &self.shards[self.shard_index(fp)];
        Self::lock_shard(shard).set.contains(&fp)
    }

    /// Account a lookup that was performed earlier through
    /// [`QueryCache::contains`]: bumps the owning shard's hit or miss
    /// counter without touching the store.
    pub fn note_lookup(&self, fp: u128, hit: bool) {
        let shard = &self.shards[self.shard_index(fp)];
        if hit {
            shard.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            shard.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a proven-unsat assert set, evicting the oldest entries of
    /// its shard if that shard is at capacity.
    pub fn record_unsat(&self, fp: u128) {
        let shard = &self.shards[self.shard_index(fp)];
        let mut inner = Self::lock_shard(shard);
        if inner.set.insert(fp) {
            inner.order.push_back(fp);
            while inner.order.len() > inner.capacity {
                if let Some(old) = inner.order.pop_front() {
                    inner.set.remove(&old);
                    inner.evictions += 1;
                }
            }
        }
    }

    /// Lookups answered from the cache (all shards).
    pub fn hits(&self) -> usize {
        self.shards.iter().map(|s| s.hits.load(Ordering::Relaxed)).sum::<u64>() as usize
    }

    /// Lookups that had to be solved (all shards).
    pub fn misses(&self) -> usize {
        self.shards.iter().map(|s| s.misses.load(Ordering::Relaxed)).sum::<u64>() as usize
    }

    /// Fingerprints evicted to stay within capacity (all shards).
    pub fn evictions(&self) -> u64 {
        self.shards.iter().map(|s| Self::lock_shard(s).evictions).sum()
    }

    /// Distinct unsat fingerprints stored (all shards).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| Self::lock_shard(s).set.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All counters in one aggregate snapshot (shards are read one after
    /// another, so concurrent writers can skew totals by a few entries —
    /// the counters are monotonic, never inconsistent).
    pub fn stats(&self) -> QueryCacheStats {
        let mut s = QueryCacheStats {
            capacity: self.capacity,
            shards: self.shards.len(),
            ..QueryCacheStats::default()
        };
        for shard in self.shards.iter() {
            let inner = Self::lock_shard(shard);
            s.entries += inner.set.len();
            s.evictions += inner.evictions;
            drop(inner);
            s.hits += shard.hits.load(Ordering::Relaxed);
            s.misses += shard.misses.load(Ordering::Relaxed);
            s.contended += shard.contended.load(Ordering::Relaxed);
        }
        s
    }

    /// Per-shard counters, in shard-index order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|shard| ShardStats {
                entries: Self::lock_shard(shard).set.len(),
                hits: shard.hits.load(Ordering::Relaxed),
                misses: shard.misses.load(Ordering::Relaxed),
                contended: shard.contended.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Surface the cache counters as `cache.*` gauges in `metrics`
    /// (no-op on a disabled registry). Aggregates come first; per-shard
    /// contention counters are published as `cache.shard<i>.contended`
    /// (hits likewise) so a hot shard is visible in `/metrics` output.
    pub fn publish(&self, metrics: &MetricsRegistry) {
        if !metrics.is_enabled() {
            return;
        }
        let s = self.stats();
        metrics.set_gauge("cache.entries", s.entries as u64);
        metrics.set_gauge("cache.capacity", s.capacity as u64);
        metrics.set_gauge("cache.hits", s.hits);
        metrics.set_gauge("cache.misses", s.misses);
        metrics.set_gauge("cache.evictions", s.evictions);
        metrics.set_gauge("cache.shards", s.shards as u64);
        metrics.set_gauge("cache.contended", s.contended);
        for (i, sh) in self.shard_stats().iter().enumerate() {
            metrics.set_gauge(&format!("cache.shard{i}.hits"), sh.hits);
            metrics.set_gauge(&format!("cache.shard{i}.contended"), sh.contended);
        }
    }
}

impl fmt::Debug for QueryCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        f.debug_struct("QueryCache")
            .field("entries", &s.entries)
            .field("capacity", &s.capacity)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("evictions", &s.evictions)
            .field("shards", &s.shards)
            .field("contended", &s.contended)
            .finish()
    }
}

/// A boxed unit of work for the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Hand-rolled fixed-size worker pool: `std::thread` workers pulling boxed
/// jobs from one shared channel. No external dependencies, no async
/// runtime — the jobs here are seconds-long solver calls, so scheduling
/// overhead is irrelevant next to isolation and determinism.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `threads` workers (at least one).
    pub fn new(threads: usize) -> WorkerPool {
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("pug-portfolio-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only for the receive; the job runs
                        // unlocked so workers hand off the queue promptly.
                        // Poison recovery matters here: treating a poisoned
                        // queue mutex as fatal would silently retire every
                        // worker, and the next submit would kill the
                        // process instead of running the job.
                        let job = recover(&rx).recv();
                        match job {
                            // Belt and braces: rung jobs already catch
                            // checker panics, but a worker must survive
                            // anything so the pool never loses capacity.
                            Ok(job) => {
                                let _ = catch_unwind(AssertUnwindSafe(job));
                            }
                            Err(_) => break, // pool dropped: drain and exit
                        }
                    })
                    .expect("spawn portfolio worker")
            })
            .collect();
        WorkerPool { tx: Some(tx), workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueue a job; workers pick jobs up in FIFO order.
    pub fn submit(&self, job: Job) {
        self.tx
            .as_ref()
            .expect("pool not shut down")
            .send(job)
            .expect("portfolio workers alive");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.tx.take(); // close the channel: workers drain and exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// One batch verification task: prove `src` ≡ `tgt` under `cfg`.
#[derive(Clone, Debug)]
pub struct VerifyTask {
    /// Label carried into logs and batch renderings.
    pub name: String,
    pub src: KernelUnit,
    pub tgt: KernelUnit,
    pub cfg: GpuConfig,
}

impl VerifyTask {
    pub fn new(name: &str, src: KernelUnit, tgt: KernelUnit, cfg: GpuConfig) -> VerifyTask {
        VerifyTask { name: name.to_string(), src, tgt, cfg }
    }
}

/// Portfolio policy: the ladder policy plus scheduling knobs.
#[derive(Clone, Debug, Default)]
pub struct PortfolioOptions {
    /// The ladder raced by every task (rungs, per-rung timeouts, caps).
    pub runner: RunnerOptions,
    /// Worker threads. `None` picks `max(ladder width, available cores)`:
    /// at least one thread per rung so deadline-bound rungs overlap their
    /// waiting instead of serializing it, even on a single core.
    pub threads: Option<usize>,
}

impl PortfolioOptions {
    pub fn with_runner(runner: RunnerOptions) -> PortfolioOptions {
        PortfolioOptions { runner, threads: None }
    }
}

/// What one rung job reports back to the arbiter.
struct RungMsg {
    task: usize,
    index: usize,
    result: RungResult,
    elapsed: Duration,
    stats: Vec<QueryStat>,
}

/// A resolved rung, parked until the task finalizes.
struct Slot {
    outcome: RungOutcome,
    report: Option<Report>,
    elapsed: Duration,
    stats: Vec<QueryStat>,
}

/// Per-task arbitration state.
struct TaskState {
    tokens: Vec<CancelToken>,
    slots: Vec<Option<Slot>>,
    /// Rungs the arbiter cancelled (as opposed to genuinely timing out).
    axed: Vec<bool>,
    /// Winning ladder index, once the frontier reaches an answered rung.
    winner: Option<usize>,
    /// Wall-clock from batch start to the verdict decision.
    decided_after: Option<Duration>,
}

impl TaskState {
    fn new(width: usize, root: &CancelToken) -> TaskState {
        TaskState {
            tokens: (0..width).map(|_| root.child()).collect(),
            slots: (0..width).map(|_| None).collect(),
            axed: vec![false; width],
            winner: None,
            decided_after: None,
        }
    }

    /// Cancel every undecided rung strictly below `index` in priority.
    fn axe_below(&mut self, index: usize) {
        for j in (index + 1)..self.tokens.len() {
            if self.slots[j].is_none() && !self.axed[j] {
                self.tokens[j].cancel();
                self.axed[j] = true;
            }
        }
    }

    /// Advance the priority frontier: the task is decided once the
    /// strongest unresolved-or-answered position holds an answer.
    fn arbitrate(&mut self, since_start: Duration) {
        if self.winner.is_some() {
            return;
        }
        for (i, slot) in self.slots.iter().enumerate() {
            match slot {
                None => return, // a stronger rung is still in flight
                Some(s) if matches!(s.outcome, RungOutcome::Answered) => {
                    self.winner = Some(i);
                    self.decided_after = Some(since_start);
                    self.axe_below(i);
                    return;
                }
                Some(_) => {} // resolved without answering: descend
            }
        }
    }
}

/// Race the degradation ladder for one kernel pair: all rungs launch
/// concurrently and the strongest answering rung's verdict is adopted (see
/// the module docs for the determinism argument). The returned provenance
/// records every rung — answered, timed out, crashed, or abandoned — with
/// its cost.
pub fn run_portfolio(
    src: &KernelUnit,
    tgt: &KernelUnit,
    cfg: &GpuConfig,
    opts: &PortfolioOptions,
) -> ResilientReport {
    let task = VerifyTask::new("race", src.clone(), tgt.clone(), cfg.clone());
    verify_all(std::slice::from_ref(&task), opts)
        .pop()
        .expect("one task in, one report out")
}

/// Verify a batch of kernel pairs across a private worker pool.
///
/// Every (task, rung) pair is an independent job, scheduled task-major so
/// earlier tasks' ladders fill the pool first. Results are returned in
/// input order regardless of completion order; each task's verdict is
/// arbitrated exactly as in [`run_portfolio`], so batch results equal the
/// sequential ladder's task by task.
pub fn verify_all(tasks: &[VerifyTask], opts: &PortfolioOptions) -> Vec<ResilientReport> {
    if tasks.is_empty() {
        return Vec::new();
    }
    let (ladder, _) = build_ladder(&opts.runner);
    let width = ladder.len();
    let threads = opts.threads.unwrap_or_else(|| {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        width.max(cores)
    });
    let pool = WorkerPool::new(threads.min(width * tasks.len()));
    verify_all_on(&pool, tasks, opts, &CancelToken::new())
}

/// [`verify_all`] on an **externally owned** worker pool, under an
/// **external cancellation parent**.
///
/// This is the service entry point: a long-running process (`pug-serve`)
/// keeps one warm pool for its whole lifetime and calls this from many
/// threads concurrently — `WorkerPool::submit` takes `&self`, so batches
/// interleave their (task, rung) jobs in FIFO submission order. Every
/// task's root token is a [`CancelToken::child`] of `parent`: cancelling
/// `parent` (client disconnect, daemon drain) aborts this batch's rungs
/// without touching other batches sharing the pool, while each rung still
/// gets its own grandchild token so sibling isolation inside the batch is
/// unchanged.
pub fn verify_all_on(
    pool: &WorkerPool,
    tasks: &[VerifyTask],
    opts: &PortfolioOptions,
    parent: &CancelToken,
) -> Vec<ResilientReport> {
    if tasks.is_empty() {
        return Vec::new();
    }
    let started = Instant::now();
    let (ladder, skipped) = build_ladder(&opts.runner);
    let width = ladder.len();
    let (tx, rx) = channel::<RungMsg>();

    // One query cache per batch: rungs racing the same task (and identical
    // tasks within the batch) share discharged obligations, so no obligation
    // is ever solved twice across the portfolio.
    let mut runner_opts = opts.runner.clone();
    if runner_opts.query_cache.is_none() {
        runner_opts.query_cache = Some(QueryCache::new());
    }

    let mut states: Vec<TaskState> = Vec::with_capacity(tasks.len());
    let mut verify_spans: Vec<TraceSpan> = Vec::with_capacity(tasks.len());
    for (t, task) in tasks.iter().enumerate() {
        let root = parent.child();
        let state = TaskState::new(width, &root);
        let shared = Arc::new(task.clone());
        // The task's verify span stays open until its report is assembled,
        // so every racing rung's span nests under a live parent.
        let vspan = if runner_opts.trace.is_enabled() {
            TraceSpan::root(runner_opts.trace.clone()).child_with(
                "verify",
                vec![
                    ("task", task.name.as_str().into()),
                    ("src", task.src.kernel.name.as_str().into()),
                    ("tgt", task.tgt.kernel.name.as_str().into()),
                ],
            )
        } else {
            TraceSpan::disabled()
        };
        for (i, &rung) in ladder.iter().enumerate() {
            let token = state.tokens[i].clone();
            let tx = tx.clone();
            let task = Arc::clone(&shared);
            let ropts = runner_opts.clone();
            let timeout = rung_timeout(&ropts, i);
            let vspan = vspan.clone();
            pool.submit(Box::new(move || {
                let (result, elapsed, stats) = if token.is_cancelled() {
                    // Axed while still queued: zero cost, never started.
                    (RungResult::Timeout, Duration::ZERO, Vec::new())
                } else {
                    let rung_span = if vspan.is_enabled() {
                        vspan.child(&format!("rung:{rung}"))
                    } else {
                        TraceSpan::disabled()
                    };
                    let r = run_rung(rung, timeout, token, rung_span.clone(), ropts.metrics.clone(), |check_opts| {
                        dispatch_rung(rung, &task.src, &task.tgt, &task.cfg, &ropts, check_opts)
                    });
                    if rung_span.is_enabled() {
                        // Raw fate at close time; the arbiter may later
                        // reclassify a cancelled timeout as "abandoned" in
                        // the provenance.
                        let outcome = match &r.0 {
                            RungResult::Verdict(_) => "answered",
                            RungResult::Timeout => "timeout",
                            RungResult::Crashed(_) => "crashed",
                            RungResult::Failed(_) => "failed",
                        };
                        rung_span.close_with(vec![
                            ("outcome", outcome.into()),
                            ("queries", r.2.len().into()),
                        ]);
                    }
                    r
                };
                // The arbiter outlives every job; a send can only fail if
                // the batch already panicked, in which case silence is fine.
                let _ = tx.send(RungMsg { task: t, index: i, result, elapsed, stats });
            }));
        }
        states.push(state);
        verify_spans.push(vspan);
    }
    drop(tx);

    // Arbiter: collect every rung's fate; decide each task at its frontier.
    let mut remaining = tasks.len() * width;
    while remaining > 0 {
        let msg = rx.recv().expect("rung job lost without reporting");
        remaining -= 1;
        let state = &mut states[msg.task];
        let (outcome, report) = match msg.result {
            RungResult::Verdict(r) => (RungOutcome::Answered, Some(r)),
            RungResult::Timeout => (RungOutcome::Timeout, None),
            RungResult::Crashed(m) => (RungOutcome::Crashed(m), None),
            RungResult::Failed(m) => (RungOutcome::Failed(m), None),
        };
        if matches!(outcome, RungOutcome::Answered) {
            // Whatever the frontier says, rungs weaker than an answered one
            // can never win: stop paying for them now.
            state.axe_below(msg.index);
        }
        state.slots[msg.index] =
            Some(Slot { outcome, report, elapsed: msg.elapsed, stats: msg.stats });
        state.arbitrate(started.elapsed());
    }

    // Assemble reports in input order.
    let reports: Vec<ResilientReport> = states
        .into_iter()
        .zip(tasks.iter())
        .zip(verify_spans)
        .map(|((mut state, task), vspan)| {
            if runner_opts.metrics.is_enabled() {
                for r in &skipped {
                    runner_opts.metrics.incr(rung_outcome_key(&r.outcome));
                }
            }
            let mut prov = Provenance { rungs: skipped.clone(), ..Provenance::default() };
            let mut verdict = Verdict::Timeout;
            if let Some(w) = state.winner {
                let rung = ladder[w];
                prov.answered_by = Some(rung);
                prov.soundness_note = rung.downgrade();
                let report = state.slots[w]
                    .as_mut()
                    .and_then(|s| s.report.take())
                    .expect("winner slot holds a report");
                verdict = adopt_verdict(report.verdict, rung);
            }
            for (i, slot) in state.slots.into_iter().enumerate() {
                let slot = slot.expect("all slots resolved");
                // A rung the arbiter cancelled that then yielded `Unknown`
                // did not time out on its own merits: it lost the race.
                let outcome = match slot.outcome {
                    RungOutcome::Timeout if state.axed[i] => RungOutcome::Abandoned,
                    o => o,
                };
                if runner_opts.metrics.is_enabled() {
                    runner_opts.metrics.incr(rung_outcome_key(&outcome));
                }
                prov.rungs.push(RungRecord {
                    rung: ladder[i],
                    outcome,
                    elapsed: slot.elapsed,
                    queries: slot.stats.len(),
                    stats: slot.stats,
                });
            }
            if runner_opts.aux_passes {
                prov.passes = run_aux_passes(&task.tgt, &task.cfg, &runner_opts, &vspan);
            }
            vspan.close_with(vec![("verdict", verdict.to_string().into())]);
            let elapsed = state.decided_after.unwrap_or_else(|| started.elapsed());
            ResilientReport { verdict, provenance: prov, elapsed }
        })
        .collect();
    if let Some(cache) = &runner_opts.query_cache {
        cache.publish(&runner_opts.metrics);
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Rung;
    use crate::verdict::Soundness;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_all_jobs_and_survives_panics() {
        let pool = WorkerPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        for i in 0..16 {
            let counter = Arc::clone(&counter);
            pool.submit(Box::new(move || {
                if i % 5 == 0 {
                    // Suppress the default hook's backtrace spam for the
                    // deliberate panics below.
                    let hook = std::panic::take_hook();
                    std::panic::set_hook(Box::new(|_| {}));
                    let result = catch_unwind(|| panic!("job {i} dies"));
                    std::panic::set_hook(hook);
                    assert!(result.is_err());
                }
                counter.fetch_add(1, Ordering::SeqCst);
            }));
        }
        drop(pool); // joins workers after the queue drains
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn racing_easy_pair_answers_param_and_abandons_losers() {
        let naive = KernelUnit::load(pug_kernels::transpose::NAIVE).unwrap();
        let report = run_portfolio(
            &naive,
            &naive,
            &GpuConfig::symbolic_2d(8),
            &PortfolioOptions::default(),
        );
        assert!(report.verdict.is_verified(), "{}", report.provenance.render());
        assert_eq!(report.provenance.answered_by, Some(Rung::Param));
        assert!(report.provenance.soundness_note.is_none());
        assert!(matches!(report.verdict, Verdict::Verified(Soundness::Sound)));
        // Weaker rungs either lost the race or answered first and were
        // outranked — none may have timed out on its own.
        for r in &report.provenance.rungs {
            assert!(
                !matches!(r.outcome, RungOutcome::Timeout),
                "rung {} reports a genuine timeout in a race with no deadline",
                r.rung
            );
        }
    }

    #[test]
    fn batch_results_come_back_in_input_order() {
        let naive = KernelUnit::load(pug_kernels::transpose::NAIVE).unwrap();
        let buggy = KernelUnit::load(pug_kernels::transpose::BUGGY_ADDR).unwrap();
        let cfg = GpuConfig::symbolic_2d(8);
        let tasks = vec![
            VerifyTask::new("self", naive.clone(), naive.clone(), cfg.clone()),
            VerifyTask::new("buggy", naive.clone(), buggy, cfg.clone()),
            VerifyTask::new("self2", naive.clone(), naive, cfg),
        ];
        let reports = verify_all(&tasks, &PortfolioOptions::default());
        assert_eq!(reports.len(), 3);
        assert!(reports[0].verdict.is_verified());
        assert!(reports[1].verdict.is_bug(), "{}", reports[1].provenance.render());
        assert!(reports[2].verdict.is_verified());
    }

    #[test]
    fn empty_batch_is_empty() {
        assert!(verify_all(&[], &PortfolioOptions::default()).is_empty());
    }

    #[test]
    fn query_cache_evicts_fifo_at_capacity() {
        // Single-shard: the only configuration with an exact global FIFO.
        let cache = QueryCache::with_shards(3, 1);
        for fp in 0..3u128 {
            cache.record_unsat(fp);
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), 0);
        cache.record_unsat(3); // evicts 0
        cache.record_unsat(4); // evicts 1
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), 2);
        assert!(!cache.lookup_unsat(0), "oldest entry must be gone");
        assert!(!cache.lookup_unsat(1));
        assert!(cache.lookup_unsat(2) && cache.lookup_unsat(3) && cache.lookup_unsat(4));
        // Re-recording a present fingerprint is a no-op, not an eviction.
        cache.record_unsat(4);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), 2);
        let s = cache.stats();
        assert_eq!((s.entries, s.capacity, s.evictions), (3, 3, 2));
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 2);
        assert_eq!(s.shards, 1);
    }

    #[test]
    fn query_cache_shards_partition_and_aggregate() {
        let cache = QueryCache::with_capacity(64);
        let s = cache.stats();
        assert_eq!(s.shards, DEFAULT_QUERY_CACHE_SHARDS);
        // Fingerprints spanning every shard index land in distinct shards
        // and aggregate back to the global counts.
        for fp in 0..32u128 {
            cache.record_unsat(fp);
        }
        assert_eq!(cache.len(), 32);
        let per_shard = cache.shard_stats();
        assert_eq!(per_shard.len(), DEFAULT_QUERY_CACHE_SHARDS);
        assert_eq!(per_shard.iter().map(|s| s.entries).sum::<usize>(), 32);
        // fp and fp^(fp>>64) agree for small values: 0..16 covers each
        // shard exactly twice with 32 entries.
        assert!(per_shard.iter().all(|s| s.entries == 2));
        for fp in 0..32u128 {
            assert!(cache.lookup_unsat(fp));
        }
        assert!(!cache.lookup_unsat(999));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (32, 1));
        // `contains` + `note_lookup` split accounting exactly like a
        // counted lookup.
        assert!(cache.contains(5));
        let before = cache.stats();
        assert_eq!((before.hits, before.misses), (32, 1), "contains must not count");
        cache.note_lookup(5, true);
        cache.note_lookup(999, false);
        let after = cache.stats();
        assert_eq!((after.hits, after.misses), (33, 2));
    }

    #[test]
    fn query_cache_zero_capacity_stores_nothing() {
        let cache = QueryCache::with_capacity(0);
        cache.record_unsat(7);
        assert!(cache.is_empty());
        assert_eq!(cache.evictions(), 1);
        assert!(!cache.lookup_unsat(7));
    }

    #[test]
    fn query_cache_survives_poisoning() {
        let cache = QueryCache::with_capacity(8);
        cache.record_unsat(1);
        // Poison the shard mutex holding fingerprint 1 the way a panicking
        // worker would: unwind while holding the guard. Fingerprint 2 maps
        // to a different shard, so the recovery path is exercised on both
        // the poisoned shard (lookup of 1) and a healthy one (record of 2).
        let c2 = cache.clone();
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let _ = std::thread::spawn(move || {
            let _guard = recover(&c2.shards[c2.shard_index(1)].inner);
            panic!("worker dies holding the cache lock");
        })
        .join();
        std::panic::set_hook(hook);
        // A poisoned lock must not silently degrade to a permanent miss.
        assert!(cache.lookup_unsat(1), "hit must survive lock poisoning");
        cache.record_unsat(2);
        assert!(cache.lookup_unsat(2), "recording must survive lock poisoning");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn query_cache_publishes_gauges() {
        let cache = QueryCache::with_capacity(4);
        cache.record_unsat(1);
        let _ = cache.lookup_unsat(1);
        let _ = cache.lookup_unsat(9);
        let metrics = pug_obs::MetricsRegistry::new();
        cache.publish(&metrics);
        let snap = metrics.snapshot();
        assert_eq!(snap.gauge("cache.entries"), Some(1));
        assert_eq!(snap.gauge("cache.capacity"), Some(4));
        assert_eq!(snap.gauge("cache.hits"), Some(1));
        assert_eq!(snap.gauge("cache.misses"), Some(1));
        assert_eq!(snap.gauge("cache.evictions"), Some(0));
        assert_eq!(snap.gauge("cache.shards"), Some(DEFAULT_QUERY_CACHE_SHARDS as u64));
        assert_eq!(snap.gauge("cache.contended"), Some(0));
        // Per-shard counters: fingerprint 1 lives in shard 1, 9 in shard 9.
        assert_eq!(snap.gauge("cache.shard1.hits"), Some(1));
        assert_eq!(snap.gauge("cache.shard9.contended"), Some(0));
    }

    #[test]
    fn verify_all_on_shares_an_external_pool_and_parent_token() {
        let naive = KernelUnit::load(pug_kernels::transpose::NAIVE).unwrap();
        let cfg = GpuConfig::symbolic_2d(8);
        let pool = WorkerPool::new(4);
        let parent = CancelToken::new();
        let tasks =
            vec![VerifyTask::new("self", naive.clone(), naive.clone(), cfg.clone())];
        let reports = verify_all_on(&pool, &tasks, &PortfolioOptions::default(), &parent);
        assert!(reports[0].verdict.is_verified());
        // A pre-cancelled parent aborts the whole batch: every rung is
        // cancelled before doing real work, so no rung answers.
        parent.cancel();
        let reports = verify_all_on(&pool, &tasks, &PortfolioOptions::default(), &parent);
        assert!(matches!(reports[0].verdict, Verdict::Timeout));
        assert!(reports[0].provenance.answered_by.is_none());
        // The pool is still healthy for subsequent batches.
        let reports =
            verify_all_on(&pool, &tasks, &PortfolioOptions::default(), &CancelToken::new());
        assert!(reports[0].verdict.is_verified());
    }
}
