//! Conditional-assignment (CA) extraction — the parameterized encoding of
//! paper §IV.
//!
//! Only **one symbolic thread** is modeled. Executing a barrier interval
//! with the canonical thread `τ` (fresh `tid`/`bid` variables) against a
//! CA-collecting memory yields, per shared/global array, the set of guarded
//! writes `p(τ) ? v[e(τ)] := w(τ)`. Reads inside a BI refer to the array
//! *version* at BI entry (race freedom guarantees no same-BI conflicts), so
//! values chain across barrier intervals through version variables — the
//! resolver ([`crate::resolve`]) later replaces those by instantiated CA
//! chains (Fig. 1 / Fig. 2).

use crate::error::Error;
use crate::kernel::KernelUnit;
use pug_ir::{BoundConfig, Env, Machine, Memory, Val};
use pug_smt::{Ctx, Sort, TermId};
use std::collections::{HashMap, HashSet};

/// A conditional assignment `guard ? array[addr] := value` over the
/// canonical thread variables.
#[derive(Clone, Debug)]
pub struct CA {
    pub array: String,
    pub guard: TermId,
    pub addr: TermId,
    pub value: TermId,
}

/// Metadata of one non-base array version: which array, the previous
/// version term, and the CAs that produced it.
#[derive(Clone, Debug)]
pub struct VersionMeta {
    pub array: String,
    pub prev: TermId,
    pub cas: Vec<CA>,
}

/// The canonical symbolic thread of one kernel.
#[derive(Clone, Copy, Debug)]
pub struct CanonicalThread {
    pub tid: [TermId; 3],
    pub bid: [TermId; 2],
}

/// Result of parameterized extraction over a (possibly multi-BI) region.
#[derive(Clone, Debug)]
pub struct ParamRegion {
    /// Canonical thread variables the CA terms are expressed over.
    pub thread: CanonicalThread,
    /// Range constraint over the canonical thread (`tid.* < bdim.*` etc.).
    pub range: TermId,
    /// Version metadata for every version produced in this region.
    pub versions: HashMap<TermId, VersionMeta>,
    /// Final version term per array touched in the region.
    pub finals: HashMap<String, TermId>,
    /// Entry (base) version term per array.
    pub entries: HashMap<String, TermId>,
    /// Base versions that are *uninitialized* (shared memory): reads
    /// reaching them need coverage justification.
    pub uninit_bases: HashSet<TermId>,
    /// Whether each array is `__shared__` (block-local) — writer
    /// instantiation must then stay within the reader's block.
    pub shared_arrays: HashSet<String>,
    /// Spec obligations gathered while executing with the canonical thread.
    pub outputs: pug_ir::ExecOutputs,
    /// Access log (race/performance checks reuse it).
    pub log: Vec<pug_ir::Access>,
}

/// CA-collecting memory: reads select from the entry version; writes are
/// recorded as CAs of the current BI.
struct CaMemory {
    versions: HashMap<String, TermId>,
    pending: Vec<CA>,
    /// First array referenced without a declaration. The `Memory` trait
    /// cannot return `Result`, so the read poisons the run instead of
    /// panicking; [`extract_region`] turns it into [`Error::UnknownArray`].
    missing: Option<String>,
}

impl Memory for CaMemory {
    fn read(&mut self, ctx: &mut Ctx, array: &str, index: TermId, _guard: TermId) -> TermId {
        let v = match self.versions.get(array) {
            Some(&v) => v,
            None => {
                if self.missing.is_none() {
                    self.missing = Some(array.to_string());
                }
                // Placeholder so execution can unwind to the error check.
                let w = ctx.width(index);
                ctx.mk_var(&format!("{array}@missing"), Sort::Array { index: w, elem: w })
            }
        };
        ctx.mk_select(v, index)
    }

    fn write(&mut self, _ctx: &mut Ctx, array: &str, index: TermId, value: TermId, guard: TermId) {
        self.pending.push(CA { array: array.to_string(), guard, addr: index, value });
    }
}

/// Make the canonical thread for a kernel tag, with its range constraint.
pub fn canonical_thread(ctx: &mut Ctx, bound: &BoundConfig, tag: &str) -> (CanonicalThread, TermId) {
    let w = bound.bits;
    let v = |ctx: &mut Ctx, n: &str| ctx.mk_var(&format!("{n}!{tag}"), Sort::BitVec(w));
    let tid = [v(ctx, "tau.x"), v(ctx, "tau.y"), v(ctx, "tau.z")];
    let bid = [v(ctx, "taub.x"), v(ctx, "taub.y")];
    let range = thread_range(ctx, bound, tid, bid);
    (CanonicalThread { tid, bid }, range)
}

/// `tid.* < bdim.* ∧ bid.* < gdim.*` for arbitrary thread coordinate terms.
pub fn thread_range(
    ctx: &mut Ctx,
    bound: &BoundConfig,
    tid: [TermId; 3],
    bid: [TermId; 2],
) -> TermId {
    let mut cs = Vec::new();
    for (t, b) in tid.iter().zip(&bound.bdim) {
        cs.push(ctx.mk_bv_ult(*t, *b));
    }
    for (t, g) in bid.iter().zip(&bound.gdim) {
        cs.push(ctx.mk_bv_ult(*t, *g));
    }
    ctx.mk_and_many(&cs)
}

/// Options for one extraction run.
pub struct ExtractOptions<'a> {
    /// Kernel tag ("s" / "t") namespacing canonical and private symbols.
    pub tag: &'a str,
    /// Pre-bound entry version term per array. Missing arrays get fresh
    /// entry variables (global arrays: the shared input symbol).
    pub entry_versions: HashMap<String, TermId>,
    /// Extra scalar bindings (e.g. the aligned loop variable).
    pub extra_locals: Vec<(String, TermId, bool)>,
    /// Version-name prefix (distinguishes segments / loop bodies).
    pub region: String,
    /// Concretized scalar parameters ("+C."), forwarded to the executor so
    /// data-dependent loops can unroll.
    pub concretize: HashMap<String, u64>,
}

/// Extract CAs for a straight-line region: a sequence of barrier intervals
/// (each BI a barrier-free statement list).
pub fn extract_region(
    ctx: &mut Ctx,
    unit: &KernelUnit,
    bound: &BoundConfig,
    bis: &[Vec<pug_cuda::Stmt>],
    opts: ExtractOptions<'_>,
) -> Result<ParamRegion, Error> {
    let w = bound.bits;
    let sort = Sort::Array { index: w, elem: w };
    let (thread, range) = canonical_thread(ctx, bound, opts.tag);

    let mut entries: HashMap<String, TermId> = HashMap::new();
    let mut uninit_bases: HashSet<TermId> = HashSet::new();
    let mut shared_arrays: HashSet<String> = HashSet::new();
    let mut mem = CaMemory { versions: HashMap::new(), pending: Vec::new(), missing: None };

    for name in unit.global_arrays() {
        let t = *opts
            .entry_versions
            .get(&name)
            .unwrap_or(&ctx.mk_var(&name, sort));
        entries.insert(name.clone(), t);
        mem.versions.insert(name.clone(), t);
    }
    for name in unit.shared_arrays() {
        shared_arrays.insert(name.clone());
        let t = match opts.entry_versions.get(&name) {
            Some(&t) => t,
            None => {
                let t = ctx.mk_var(&format!("{name}@0!{}", opts.tag), sort);
                uninit_bases.insert(t);
                t
            }
        };
        entries.insert(name.clone(), t);
        mem.versions.insert(name.clone(), t);
    }

    let mut env = Env::new(thread.tid, thread.bid);
    let mut versions: HashMap<TermId, VersionMeta> = HashMap::new();

    let mut machine = Machine::new(ctx, &mut mem, bound, &unit.types);
    // postconds are evaluated post-hoc against final versions (see spec.rs)
    machine.collect_postconds = false;
    machine.concrete_params = opts.concretize.clone();
    machine.name_prefix = format!("{}!", opts.tag);
    for (name, term, signed) in &opts.extra_locals {
        env.bind(name, Val::Bv { term: *term, signed: *signed });
    }

    // Multi-dimensional arrays may be declared in an earlier segment than
    // the one being extracted: pre-seed every declared extent so index
    // flattening works in any region.
    seed_declared_dims(&mut machine, &unit.kernel.body, &mut env)?;

    let tru = machine.ctx.mk_true();
    for (bi_ix, bi) in bis.iter().enumerate() {
        machine.exec_block(bi, &mut env, tru)?;
        if let Some(array) = machine.mem.missing.take() {
            return Err(Error::UnknownArray { array });
        }
        // Seal the BI: arrays with pending CAs get a new version.
        let pending = std::mem::take(&mut machine.mem.pending);
        let mut by_array: HashMap<String, Vec<CA>> = HashMap::new();
        for ca in pending {
            by_array.entry(ca.array.clone()).or_default().push(ca);
        }
        for (array, cas) in by_array {
            let prev = machine.mem.versions[&array];
            let next = machine.ctx.mk_var(
                &format!("{array}@{}b{}!{}", opts.region, bi_ix + 1, opts.tag),
                sort,
            );
            versions.insert(next, VersionMeta { array: array.clone(), prev, cas });
            machine.mem.versions.insert(array, next);
        }
    }

    let outputs = machine.outputs.clone();
    let log = machine.log.clone();
    let finals = mem.versions.clone();

    Ok(ParamRegion {
        thread,
        range,
        versions,
        finals,
        entries,
        uninit_bases,
        shared_arrays,
        outputs,
        log,
    })
}

/// Walk the whole kernel body and register the extents of every array
/// declaration with the machine (extents are configuration expressions).
fn seed_declared_dims<M: Memory>(
    machine: &mut Machine<'_, M>,
    body: &[pug_cuda::Stmt],
    env: &mut Env,
) -> Result<(), Error> {
    use pug_cuda::Stmt;
    for s in body {
        match s {
            Stmt::Decl { name, dims, .. } if dims.len() > 1 => {
                let w = machine.cfg.bits;
                let mut ds = Vec::with_capacity(dims.len());
                let tru = machine.ctx.mk_true();
                for d in dims {
                    let v = machine.eval(d, env, tru)?;
                    ds.push(v.as_bv(machine.ctx, w));
                }
                machine.seed_array_dims(name, ds);
            }
            Stmt::If { then, els, .. } => {
                seed_declared_dims(machine, then, env)?;
                seed_declared_dims(machine, els, env)?;
            }
            Stmt::For { body, .. } | Stmt::While { body, .. } => {
                seed_declared_dims(machine, body, env)?;
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pug_ir::GpuConfig;

    fn extract(src: &str) -> (Ctx, ParamRegion) {
        let unit = KernelUnit::load(src).unwrap();
        let mut ctx = Ctx::new();
        let cfg = GpuConfig::symbolic(8);
        let bound = cfg.bind(&mut ctx, "");
        let bis = pug_ir::split_bis(&unit.kernel.body).unwrap();
        let region = extract_region(
            &mut ctx,
            &unit,
            &bound,
            &bis,
            ExtractOptions {
                tag: "s",
                entry_versions: HashMap::new(),
                extra_locals: vec![],
                region: String::new(),
                concretize: HashMap::new(),
            },
        )
        .unwrap();
        (ctx, region)
    }

    #[test]
    fn single_ca_from_guarded_write() {
        let (ctx, region) = extract(
            "void k(int *out, int *in, int n) { if (tid.x < n) out[tid.x] = in[tid.x]; }",
        );
        assert_eq!(region.versions.len(), 1);
        let meta = region.versions.values().next().unwrap();
        assert_eq!(meta.array, "out");
        assert_eq!(meta.cas.len(), 1);
        // guard mentions the canonical thread, not a constant
        assert!(ctx.const_bool(meta.cas[0].guard).is_none());
    }

    #[test]
    fn two_bis_chain_versions() {
        let (_ctx, region) = extract(
            r#"
void k(int *out, int *in) {
    __shared__ int buf[bdim.x];
    buf[tid.x] = in[tid.x];
    __syncthreads();
    out[tid.x] = buf[tid.x];
}
"#,
        );
        // buf gets version 1 (BI 1), out gets version 1 (BI 2)
        assert_eq!(region.versions.len(), 2);
        let arrays: Vec<&str> =
            region.versions.values().map(|m| m.array.as_str()).collect();
        assert!(arrays.contains(&"buf") && arrays.contains(&"out"));
        // the out CA's value reads buf's *written* version
        let out_meta = region.versions.values().find(|m| m.array == "out").unwrap();
        let buf_final = region.finals["buf"];
        let mut found = false;
        let mut stack = vec![out_meta.cas[0].value];
        let ctx = &_ctx;
        let mut seen = std::collections::HashSet::new();
        while let Some(t) = stack.pop() {
            if !seen.insert(t) {
                continue;
            }
            if t == buf_final {
                found = true;
            }
            stack.extend_from_slice(ctx.args(t));
        }
        assert!(found, "out's value must reference buf's BI-1 version");
        // shared array base is marked uninitialized
        assert_eq!(region.uninit_bases.len(), 1);
        assert!(region.shared_arrays.contains("buf"));
    }

    #[test]
    fn flattened_branch_gives_multiple_cas() {
        let (_, region) = extract(
            r#"
void k(int *out) {
    if (tid.x < 4) out[tid.x] = 1;
    else out[tid.x + 4] = 2;
}
"#,
        );
        let meta = region.versions.values().next().unwrap();
        assert_eq!(meta.cas.len(), 2, "two write sites, two CAs");
    }

    #[test]
    fn unknown_array_poisons_instead_of_panicking() {
        // A read of an undeclared array used to panic mid-extraction; now it
        // records the name so extract_region returns Error::UnknownArray.
        let mut ctx = Ctx::new();
        let mut mem =
            CaMemory { versions: HashMap::new(), pending: Vec::new(), missing: None };
        let idx = ctx.mk_bv_const(0, 8);
        let tru = ctx.mk_true();
        let _ = mem.read(&mut ctx, "ghost", idx, tru);
        assert_eq!(mem.missing.as_deref(), Some("ghost"));
        let err = Error::UnknownArray { array: "ghost".into() };
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn compound_assignment_reads_entry_state() {
        let (ctx, region) = extract("void k(int *d) { d[tid.x] += 5; }");
        let meta = region.versions.values().next().unwrap();
        // value = select(d@entry, tid.x) + 5
        let v = meta.cas[0].value;
        assert!(matches!(ctx.op(v), pug_smt::Op::BvAdd));
    }
}
