//! Top-level verifier errors.

use std::fmt;

/// Errors surfaced by the verifier API (distinct from *verdicts*: a bug
/// found in a kernel is a verdict, not an error).
#[derive(Debug)]
pub enum Error {
    /// Lexing/parsing/type-checking failed.
    Frontend(pug_cuda::FrontendError),
    /// Lowering or symbolic execution failed (unsupported construct,
    /// symbolic loop bound without alignment, barrier divergence, …).
    Ir(pug_ir::IrError),
    /// The two kernels cannot be aligned for parameterized comparison and
    /// no fallback applies.
    AlignmentFailed { detail: String },
    /// Check configuration problem (e.g. non-param encoding without a
    /// concrete thread count).
    BadConfig { detail: String },
    /// Symbolic execution referenced an array the kernel never declared —
    /// a malformed unit that previously crashed CA extraction.
    UnknownArray { array: String },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Frontend(e) => write!(f, "{e}"),
            Error::Ir(e) => write!(f, "{e}"),
            Error::AlignmentFailed { detail } => write!(f, "loop alignment failed: {detail}"),
            Error::BadConfig { detail } => write!(f, "bad configuration: {detail}"),
            Error::UnknownArray { array } => {
                write!(f, "unknown array `{array}` in CA extraction")
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<pug_cuda::FrontendError> for Error {
    fn from(e: pug_cuda::FrontendError) -> Error {
        Error::Frontend(e)
    }
}

impl From<pug_ir::IrError> for Error {
    fn from(e: pug_ir::IrError) -> Error {
        Error::Ir(e)
    }
}
