//! Resolution of array reads against conditional assignments — the
//! paper's Figures 1 and 2, the embedded-ite combination of §IV-C, and the
//! premise/coverage machinery replacing the quantified formulas of §IV-D.
//!
//! To compute the value of `v[a]` where `v` is a non-base version, every CA
//! of the producing barrier interval is *instantiated* with fresh thread
//! variables (`s₁, s₂, …` in Fig. 2) and combined into a nested `ite`
//! (§IV-C); the else branch falls through to the previous version. Because
//! the fresh thread variables are universally quantified in an UNSAT-style
//! validity check, the resolver also emits **coverage premises**: the
//! checked property is asserted only for addresses actually covered by some
//! instantiation. The residual obligation — "every read is covered", the
//! paper's quantified formula — is recorded as a [`CoverageObligation`] and
//! discharged separately by witness substitution (or by the monotone-g
//! elimination of [`crate::qelim`]), or skipped in fast-bug-hunt mode
//! (reported bugs stay real; §IV-D "Fast Bug Hunting").

use crate::param::{ParamRegion, CA};
use pug_smt::{Ctx, Op, Sort, TermId};
use std::collections::HashMap;

/// A thread reference: concrete coordinate terms.
#[derive(Clone, Copy, Debug)]
pub struct ThreadRef {
    pub tid: [TermId; 3],
    pub bid: [TermId; 2],
}

/// One CA instantiation (a fresh `sᵢ`).
#[derive(Clone, Debug)]
pub struct Instantiation {
    pub thread: ThreadRef,
    /// `addr == e(sᵢ) ∧ p(sᵢ)`.
    pub cond: TermId,
    /// The CA's address expression over the *canonical* thread — used by
    /// the coverage checker to derive inversion witnesses.
    pub canonical_addr: TermId,
}

/// A residual read-coverage obligation: under `guard`, the reader at
/// `reader` reads `addr` from an uninitialized-base chain; some
/// instantiation must cover it.
#[derive(Clone, Debug)]
pub struct CoverageObligation {
    pub array: String,
    pub addr: TermId,
    pub reader: ThreadRef,
    pub guard: TermId,
    /// Disjunction of the instantiated cover conditions.
    pub cover: TermId,
    /// The instantiations appearing in `cover` (witness substitution
    /// replaces their thread variables).
    pub insts: Vec<Instantiation>,
    /// Whether the chain bottoms out in *uninitialized* (shared-memory)
    /// state. Unprovable coverage of such a read is reported as a bug;
    /// for input-backed arrays it only downgrades soundness.
    pub uninit_base: bool,
}

/// The result of resolving one output cell.
#[derive(Clone, Debug)]
pub struct ResolvedOutput {
    /// The value term (fully resolved: only base-version selects remain).
    pub value: TermId,
    /// Coverage condition: some instantiation wrote the cell.
    pub cover: TermId,
    /// The top-level instantiations of the final-version chain.
    pub insts: Vec<Instantiation>,
}

/// Resolver over one extracted region.
pub struct Resolver<'a> {
    pub ctx: &'a mut Ctx,
    pub region: &'a ParamRegion,
    /// Tag making fresh instantiation variables unique per kernel.
    pub tag: String,
    /// Thread-range premises for every fresh instantiation.
    pub range_premises: Vec<TermId>,
    /// Guarded read-coverage premises (`guard ⇒ cover`) — the prove-mode
    /// assumption that reads hit writes; justified by the obligations.
    pub read_premises: Vec<TermId>,
    /// Residual obligations for the separate coverage check.
    pub obligations: Vec<CoverageObligation>,
    /// When set, *every* resolved read gets a coverage premise, not just
    /// reads bottoming out in uninitialized shared memory. Postcondition
    /// checking uses this: without it, the universally-quantified fresh
    /// writer lets the chain take the stale-value branch adversarially.
    pub cover_all_reads: bool,
    fresh: u32,
    memo: HashMap<(TermId, [TermId; 2]), TermId>,
}

impl<'a> Resolver<'a> {
    /// All premises (ranges + guarded read coverage), for the value query.
    pub fn all_premises(&self) -> Vec<TermId> {
        let mut v = self.range_premises.clone();
        v.extend(self.read_premises.iter().copied());
        v
    }

    /// New resolver for `region`.
    pub fn new(ctx: &'a mut Ctx, region: &'a ParamRegion, tag: &str) -> Resolver<'a> {
        Resolver {
            ctx,
            region,
            tag: tag.to_string(),
            range_premises: Vec::new(),
            read_premises: Vec::new(),
            obligations: Vec::new(),
            cover_all_reads: false,
            fresh: 0,
            memo: HashMap::new(),
        }
    }

    /// A named observer thread: using the same `name` in two resolvers
    /// yields the *same* terms, so per-block state is compared for one
    /// common symbolic block.
    pub fn observer(&mut self, name: &str) -> ThreadRef {
        let w = match self.ctx.sort(self.region.thread.tid[0]) {
            Sort::BitVec(w) => w,
            _ => unreachable!("thread vars are bit-vectors"),
        };
        let mk = |ctx: &mut Ctx, c: &str| ctx.mk_var(&format!("{name}.{c}"), Sort::BitVec(w));
        ThreadRef {
            tid: [mk(self.ctx, "x"), mk(self.ctx, "y"), mk(self.ctx, "z")],
            bid: [mk(self.ctx, "bx"), mk(self.ctx, "by")],
        }
    }

    fn fresh_thread(&mut self) -> ThreadRef {
        self.fresh += 1;
        let n = self.fresh;
        let w = match self.ctx.sort(self.region.thread.tid[0]) {
            Sort::BitVec(w) => w,
            _ => unreachable!("thread vars are bit-vectors"),
        };
        let mk = |ctx: &mut Ctx, c: &str, tag: &str| {
            ctx.mk_var(&format!("s{n}.{c}!{tag}"), Sort::BitVec(w))
        };
        let tag = self.tag.clone();
        ThreadRef {
            tid: [mk(self.ctx, "x", &tag), mk(self.ctx, "y", &tag), mk(self.ctx, "z", &tag)],
            bid: [mk(self.ctx, "bx", &tag), mk(self.ctx, "by", &tag)],
        }
    }

    /// Substitution map sending the canonical thread to `thread`.
    fn subst_map(&self, thread: ThreadRef) -> HashMap<TermId, TermId> {
        let c = self.region.thread;
        let mut m = HashMap::new();
        for i in 0..3 {
            m.insert(c.tid[i], thread.tid[i]);
        }
        for i in 0..2 {
            m.insert(c.bid[i], thread.bid[i]);
        }
        m
    }

    /// Range constraint for a thread reference.
    fn range_of(&mut self, thread: ThreadRef) -> TermId {
        let map = self.subst_map(thread);
        self.ctx.substitute(self.region.range, &map)
    }

    /// Instantiate one CA at a fresh thread (Fig. 2). For shared (per-block)
    /// arrays the writer must be in the reader's block, so the block index
    /// is not fresh but the reader's.
    fn instantiate(
        &mut self,
        ca: &CA,
        addr: TermId,
        reader_bid: [TermId; 2],
        shared: bool,
    ) -> (Instantiation, TermId /* value */, ThreadRef) {
        let mut thread = self.fresh_thread();
        if shared {
            thread.bid = reader_bid;
        }
        let map = self.subst_map(thread);
        let range = self.range_of(thread);
        self.range_premises.push(range);
        let e = self.ctx.substitute(ca.addr, &map);
        let p = self.ctx.substitute(ca.guard, &map);
        let wv = self.ctx.substitute(ca.value, &map);
        let addr_eq = self.ctx.mk_eq(addr, e);
        let cond = self.ctx.mk_and(addr_eq, p);
        (Instantiation { thread, cond, canonical_addr: ca.addr }, wv, thread)
    }

    /// Resolve every non-base version select inside `t`, with `reader` as
    /// the thread performing the enclosing computation and `guard` the
    /// condition under which it happens.
    pub fn resolve(&mut self, t: TermId, reader: ThreadRef, guard: TermId) -> TermId {
        if let Some(&r) = self.memo.get(&(t, reader.bid)) {
            return r;
        }
        let node = self.ctx.node(t).clone();
        let result = match node.op {
            Op::Select => {
                let base = node.args[0];
                let addr = self.resolve(node.args[1], reader, guard);
                if self.region.versions.contains_key(&base) {
                    self.resolve_read(base, addr, reader, guard)
                } else {
                    self.ctx.mk_select(base, addr)
                }
            }
            _ => {
                let mut args = Vec::with_capacity(node.args.len());
                let mut changed = false;
                for &a in &node.args {
                    let na = self.resolve(a, reader, guard);
                    changed |= na != a;
                    args.push(na);
                }
                if changed {
                    self.ctx.rebuild(&node.op, &args)
                } else {
                    t
                }
            }
        };
        self.memo.insert((t, reader.bid), result);
        result
    }

    /// Resolve `version[addr]` by chaining CA instantiations down the
    /// version history (embedded ite, §IV-C).
    fn resolve_read(
        &mut self,
        version: TermId,
        addr: TermId,
        reader: ThreadRef,
        guard: TermId,
    ) -> TermId {
        let (value, cover, insts, base) = self.chain(version, addr, reader, guard);
        let uninit = self.region.uninit_bases.contains(&base);
        if uninit || self.cover_all_reads {
            // Reads must hit a write: record the premise (prove mode rests
            // on it) and the residual obligation for the coverage check.
            let array = self.region.versions[&version].array.clone();
            let premise = self.ctx.mk_implies(guard, cover);
            self.read_premises.push(premise);
            self.obligations.push(CoverageObligation {
                array,
                addr,
                reader,
                guard,
                cover,
                insts,
                uninit_base: uninit,
            });
        }
        value
    }

    /// Build the nested-ite chain for `version[addr]`; returns
    /// (value, cover disjunction, instantiations, base version reached).
    pub fn chain(
        &mut self,
        version: TermId,
        addr: TermId,
        reader: ThreadRef,
        guard: TermId,
    ) -> (TermId, TermId, Vec<Instantiation>, TermId) {
        let Some(meta) = self.region.versions.get(&version).cloned() else {
            let val = self.ctx.mk_select(version, addr);
            let f = self.ctx.mk_false();
            return (val, f, Vec::new(), version);
        };
        let shared = self.region.shared_arrays.contains(&meta.array);
        // Instantiate this version's CAs.
        let mut branches: Vec<(TermId, TermId, ThreadRef)> = Vec::new();
        let mut insts: Vec<Instantiation> = Vec::new();
        for ca in &meta.cas {
            let (inst, raw_value, wthread) = self.instantiate(ca, addr, reader.bid, shared);
            branches.push((inst.cond, raw_value, wthread));
            insts.push(inst);
        }
        // Fall through to the previous version.
        let (else_val, else_cover, prev_insts, base) = self.chain(meta.prev, addr, reader, guard);
        insts.extend(prev_insts);

        // Value chain: the writer thread becomes the reader of its own
        // value expression (its reads resolve within its block).
        let mut value = else_val;
        let mut cover = else_cover;
        for (cond, raw_value, wthread) in branches.into_iter().rev() {
            let branch_guard = self.ctx.mk_and(guard, cond);
            let resolved = self.resolve(raw_value, wthread, branch_guard);
            value = self.ctx.mk_ite(cond, resolved, value);
            cover = self.ctx.mk_or(cond, cover);
        }
        (value, cover, insts, base)
    }

    /// Resolve the final value of `array[addr]` (output cells) as observed
    /// by `observer`: writers of global arrays get fully fresh coordinates;
    /// writers of per-block shared arrays are confined to the observer's
    /// block. Equivalence checks pass the *same* observer to both kernels so
    /// block-local state is compared block-for-block.
    pub fn resolve_output(
        &mut self,
        array: &str,
        addr: TermId,
        observer: ThreadRef,
    ) -> ResolvedOutput {
        let version = self.region.finals[array];
        let tru = self.ctx.mk_true();
        let (value, cover, insts, _base) = self.chain(version, addr, observer, tru);
        ResolvedOutput { value, cover, insts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelUnit;
    use crate::param::{extract_region, ExtractOptions};
    use pug_ir::GpuConfig;
    use pug_smt::{check, check_valid, Budget, SmtResult};

    fn setup(src: &str) -> (Ctx, ParamRegion, Vec<TermId>) {
        let unit = KernelUnit::load(src).unwrap();
        let mut ctx = Ctx::new();
        let cfg = GpuConfig::symbolic(8);
        let bound = cfg.bind(&mut ctx, "");
        let bis = pug_ir::split_bis(&unit.kernel.body).unwrap();
        let region = extract_region(
            &mut ctx,
            &unit,
            &bound,
            &bis,
            ExtractOptions {
                tag: "s",
                entry_versions: HashMap::new(),
                extra_locals: vec![],
                region: String::new(),
                concretize: HashMap::new(),
            },
        )
        .unwrap();
        (ctx, region, bound.constraints)
    }

    #[test]
    fn covered_copy_resolves_to_input() {
        // out[t] = in[t]: for covered k, value is in[k].
        let (mut ctx, region, mut premises) = setup("void k(int *out, int *in) { out[tid.x] = in[tid.x]; }");
        let k = ctx.mk_var("k", Sort::BitVec(8));
        let mut r = Resolver::new(&mut ctx, &region, "s");
        let obs = r.observer("obs");
        let out = r.resolve_output("out", k, obs);
        premises.extend(r.all_premises());
        premises.push(out.cover);
        let base_in = region.entries["in"];
        let expected = ctx.mk_select(base_in, k);
        let goal = ctx.mk_eq(out.value, expected);
        let v = check_valid(&mut ctx, &premises, goal, &Budget::unlimited());
        assert!(v.is_unsat(), "covered copy must resolve to the input, got {v:?}");
    }

    #[test]
    fn instantiations_are_fresh_per_read() {
        // Fig. 2: two reads of v get distinct thread variables.
        let (mut ctx, region, _) = setup(
            r#"
void k(int *out, int *in) {
    __shared__ int v[bdim.x];
    v[tid.x] = in[tid.x];
    __syncthreads();
    out[tid.x] = v[tid.x] + v[tid.x + 1];
}
"#,
        );
        let k = ctx.mk_var("k", Sort::BitVec(8));
        let mut r = Resolver::new(&mut ctx, &region, "s");
        let obs = r.observer("obs");
        let _out = r.resolve_output("out", k, obs);
        // one instantiation for the out CA + two for the two v reads
        assert!(
            r.range_premises.len() >= 3,
            "expected ≥3 range premises, got {}",
            r.range_premises.len()
        );
        // the two v reads are distinct addresses → two coverage obligations
        assert_eq!(r.obligations.len(), 2);
    }

    #[test]
    fn uncovered_cell_keeps_else_value() {
        // Only even cells written; cover for odd k must be falsifiable.
        let (mut ctx, region, mut premises) =
            setup("void k(int *out) { out[2 * tid.x] = 7; }");
        let k = ctx.mk_var("k", Sort::BitVec(8));
        let mut r = Resolver::new(&mut ctx, &region, "s");
        let obs = r.observer("obs");
        let out = r.resolve_output("out", k, obs);
        premises.extend(r.all_premises());
        // k odd ∧ cover: unsatisfiable
        let one = ctx.mk_bv_const(1, 8);
        let kbit = ctx.mk_bv_and(k, one);
        let odd = ctx.mk_eq(kbit, one);
        premises.push(odd);
        premises.push(out.cover);
        let res = check(&mut ctx, &premises, &Budget::unlimited());
        assert!(matches!(res, SmtResult::Unsat), "odd cells cannot be covered");
    }

    #[test]
    fn shared_write_then_read_roundtrip() {
        // Through shared memory: out[k] == in[k] for covered k, assuming
        // read coverage (which holds with the identity correspondence).
        let (mut ctx, region, mut premises) = setup(
            r#"
void k(int *out, int *in) {
    __shared__ int buf[bdim.x];
    buf[tid.x] = in[tid.x];
    __syncthreads();
    out[tid.x] = buf[tid.x];
}
"#,
        );
        let k = ctx.mk_var("k", Sort::BitVec(8));
        let mut r = Resolver::new(&mut ctx, &region, "s");
        let obs = r.observer("obs");
        let out = r.resolve_output("out", k, obs);
        premises.extend(r.all_premises());
        premises.push(out.cover);
        let base_in = region.entries["in"];
        let expected = ctx.mk_select(base_in, k);
        let goal = ctx.mk_eq(out.value, expected);
        let v = check_valid(&mut ctx, &premises, goal, &Budget::unlimited());
        assert!(v.is_unsat(), "copy through shared memory must round-trip, got {v:?}");
    }
}
