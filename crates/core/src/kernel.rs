//! Loading kernels: parse + type-check + array classification.

use crate::error::Error;
use pug_cuda::ast::Stmt;
use pug_cuda::typecheck::{TypeInfo, VarInfo};
use pug_cuda::Kernel;

/// A parsed and type-checked kernel ready for encoding.
#[derive(Clone, Debug)]
pub struct KernelUnit {
    pub kernel: Kernel,
    pub types: TypeInfo,
}

impl KernelUnit {
    /// Parse and type-check a single kernel from CUDA C source.
    pub fn load(src: &str) -> Result<KernelUnit, Error> {
        let kernel = pug_cuda::parse_kernel(src)?;
        let types = pug_cuda::check_kernel(&kernel)?;
        Ok(KernelUnit { kernel, types })
    }

    /// Load a named kernel from a source file containing several.
    pub fn load_named(src: &str, name: &str) -> Result<KernelUnit, Error> {
        let kernels = pug_cuda::parse_program(src)?;
        let kernel = kernels
            .into_iter()
            .find(|k| k.name == name)
            .ok_or_else(|| Error::BadConfig { detail: format!("no kernel named `{name}`") })?;
        let types = pug_cuda::check_kernel(&kernel)?;
        Ok(KernelUnit { kernel, types })
    }

    /// Global-memory array parameters (symbolic inputs/outputs).
    pub fn global_arrays(&self) -> Vec<String> {
        self.kernel.array_params().into_iter().map(str::to_string).collect()
    }

    /// `__shared__` array names declared in the body.
    pub fn shared_arrays(&self) -> Vec<String> {
        fn walk(stmts: &[Stmt], out: &mut Vec<String>) {
            for s in stmts {
                match s {
                    Stmt::Decl { name, dims, shared: true, .. } if !dims.is_empty() => {
                        out.push(name.clone());
                    }
                    Stmt::If { then, els, .. } => {
                        walk(then, out);
                        walk(els, out);
                    }
                    Stmt::For { body, .. } | Stmt::While { body, .. } => walk(body, out),
                    _ => {}
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.kernel.body, &mut out);
        out
    }

    /// Names of global arrays the kernel writes (syntactically).
    pub fn written_globals(&self) -> Vec<String> {
        fn walk(stmts: &[Stmt], types: &TypeInfo, out: &mut Vec<String>) {
            for s in stmts {
                match s {
                    Stmt::Assign { lhs, .. } => {
                        if matches!(types.vars.get(&lhs.name), Some(VarInfo::GlobalArray { .. })) {
                            out.push(lhs.name.clone());
                        }
                    }
                    Stmt::If { then, els, .. } => {
                        walk(then, types, out);
                        walk(els, types, out);
                    }
                    Stmt::For { body, .. } | Stmt::While { body, .. } => walk(body, types, out),
                    _ => {}
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.kernel.body, &self.types, &mut out);
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
void k(int *odata, int *idata, int n) {
    __shared__ int buf[bdim.x];
    buf[tid.x] = idata[tid.x];
    __syncthreads();
    if (tid.x < n) odata[tid.x] = buf[tid.x];
}
"#;

    #[test]
    fn classification() {
        let u = KernelUnit::load(SRC).unwrap();
        assert_eq!(u.global_arrays(), vec!["odata", "idata"]);
        assert_eq!(u.shared_arrays(), vec!["buf"]);
        assert_eq!(u.written_globals(), vec!["odata"]);
    }

    #[test]
    fn load_named_picks_kernel() {
        let two = "void a(int *x) { x[tid.x] = 1; } void b(int *y) { y[tid.x] = 2; }";
        let u = KernelUnit::load_named(two, "b").unwrap();
        assert_eq!(u.kernel.name, "b");
        assert!(KernelUnit::load_named(two, "c").is_err());
    }
}
