//! Post-hoc evaluation of `postcond` specifications.
//!
//! A post-condition describes the *final* state of the kernel, so it cannot
//! be evaluated while threads are still executing (mid-encoding array
//! versions would be observed instead). Both encoders therefore skip
//! `postcond` during execution and this module re-evaluates the collected
//! specification expressions against the final array terms. Free scalar
//! identifiers in a postcondition are bound to fresh symbols, which makes
//! them universally quantified in the validity check (paper §III).

use crate::error::Error;
use pug_cuda::ast::{Expr, Stmt};
use pug_cuda::typecheck::TypeInfo;
use pug_ir::{BoundConfig, Env, Machine, StoreMemory};
use pug_smt::{Ctx, Sort, TermId};
use std::collections::HashMap;

/// Collect the expressions of all `postcond` statements in a body.
pub fn collect_postconds(body: &[Stmt]) -> Vec<Expr> {
    fn walk(stmts: &[Stmt], out: &mut Vec<Expr>) {
        for s in stmts {
            match s {
                Stmt::Postcond { cond, .. } => out.push(cond.clone()),
                Stmt::If { then, els, .. } => {
                    walk(then, out);
                    walk(els, out);
                }
                Stmt::For { body, .. } | Stmt::While { body, .. } => walk(body, out),
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    walk(body, &mut out);
    out
}

/// Evaluate postcondition expressions against final array terms. Reads go
/// straight to the provided array terms; the caller resolves any version
/// variables afterwards (parameterized path) or relies on store chains
/// (non-parameterized path).
pub fn eval_postconds(
    ctx: &mut Ctx,
    types: &TypeInfo,
    bound: &BoundConfig,
    finals: &HashMap<String, TermId>,
    postconds: &[Expr],
    tag: &str,
) -> Result<Vec<TermId>, Error> {
    if postconds.is_empty() {
        return Ok(Vec::new());
    }
    let mut mem = StoreMemory::default();
    for (name, &term) in finals {
        mem.insert(name, term);
    }
    // Postconditions are global properties; thread builtins inside them are
    // bound to fresh symbols (universally quantified).
    let w = bound.bits;
    let v = |ctx: &mut Ctx, n: &str| ctx.mk_var(&format!("spec.{n}!{tag}"), Sort::BitVec(w));
    let tid = [v(ctx, "tid.x"), v(ctx, "tid.y"), v(ctx, "tid.z")];
    let bid = [v(ctx, "bid.x"), v(ctx, "bid.y")];
    let mut env = Env::new(tid, bid);

    let mut machine = Machine::new(ctx, &mut mem, bound, types);
    machine.name_prefix = format!("spec!{tag}!");
    let tru = machine.ctx.mk_true();
    let mut out = Vec::new();
    for e in postconds {
        let val = machine.eval(e, &mut env, tru)?;
        let b = val.as_bool(machine.ctx);
        out.push(b);
    }
    Ok(out)
}
