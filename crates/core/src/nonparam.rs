//! The non-parameterized (generic) encoder — paper §III.
//!
//! Serializes the race-free concurrent execution into the *natural order*:
//! within every barrier interval, thread 0 executes first, then thread 1,
//! …, thread n−1. Each thread's statements are translated by the symbolic
//! executor (SSA locals, `ite`-merged branches), and shared/global memory
//! becomes one store chain per array — Θ(n) stores per written array, which
//! is precisely the blow-up the paper's Tables II/III show for this method.

use crate::error::Error;
use crate::kernel::KernelUnit;
use pug_ir::{split_bis, unroll_barrier_loops, BoundConfig, ConstEnv, Env, GpuConfig, Machine, StoreMemory};
use pug_smt::{Ctx, Sort, TermId};
use std::collections::HashMap;

/// Result of encoding one kernel for a concrete configuration.
#[derive(Clone, Debug)]
pub struct NonParamEncoding {
    /// Final term of every array (global + shared) after all threads ran.
    pub final_arrays: HashMap<String, TermId>,
    /// Initial (input) terms of the global arrays.
    pub base_arrays: HashMap<String, TermId>,
    /// `assume`/`requires` facts collected during execution.
    pub assumptions: Vec<TermId>,
    /// `assert` obligations.
    pub asserts: Vec<TermId>,
    /// `postcond` obligations.
    pub postconds: Vec<TermId>,
    /// Configuration side constraints.
    pub config_constraints: Vec<TermId>,
    /// Names of global arrays this kernel writes.
    pub written: Vec<String>,
}

/// Encode `unit` under the fully concrete `cfg`, tagging kernel-private
/// symbols with `suffix` so two kernels can coexist in one context.
pub fn encode(
    ctx: &mut Ctx,
    unit: &KernelUnit,
    cfg: &GpuConfig,
    suffix: &str,
) -> Result<NonParamEncoding, Error> {
    encode_with(ctx, unit, cfg, suffix, &HashMap::new())
}

/// [`encode`] with concretized scalar parameters ("+C."): the values also
/// feed the loop unroller, so barrier loops whose bounds depend on a
/// concretized parameter (e.g. the tiled matmul's `wA`) become unrollable.
pub fn encode_with(
    ctx: &mut Ctx,
    unit: &KernelUnit,
    cfg: &GpuConfig,
    suffix: &str,
    concretize: &HashMap<String, u64>,
) -> Result<NonParamEncoding, Error> {
    let tpb = cfg.threads_per_block().ok_or_else(|| Error::BadConfig {
        detail: "non-parameterized encoding needs a concrete block size".into(),
    })?;
    let blocks = cfg.num_blocks().ok_or_else(|| Error::BadConfig {
        detail: "non-parameterized encoding needs a concrete grid size".into(),
    })?;
    let _ = tpb;
    let bound: BoundConfig = cfg.bind(ctx, "");
    let w = cfg.bits;

    // Flatten barrier-carrying loops and split into barrier intervals.
    let mut cenv = ConstEnv::from_config(cfg);
    cenv.vars.extend(concretize.iter().map(|(k, v)| (k.clone(), *v)));
    let flat = unroll_barrier_loops(&unit.kernel.body, &cenv)?;
    let bis = split_bis(&flat)?;

    // Array bases: global arrays are shared symbols (the kernels of an
    // equivalence check read the same inputs); shared memory is per kernel.
    let sort = Sort::Array { index: w, elem: w };
    let mut mem = StoreMemory::default();
    let mut base_arrays = HashMap::new();
    for name in unit.global_arrays() {
        let t = ctx.mk_var(&name, sort);
        base_arrays.insert(name.clone(), t);
        mem.insert(&name, t);
    }
    for name in unit.shared_arrays() {
        let t = ctx.mk_var(&format!("{name}!{suffix}"), sort);
        mem.insert(&name, t);
    }

    // Thread coordinate grids (natural order: block-major, then y, then x).
    let (bx, by) = match (cfg.bdim[0], cfg.bdim[1]) {
        (pug_ir::Extent::Const(x), pug_ir::Extent::Const(y)) => (x, y),
        _ => unreachable!("checked concrete above"),
    };
    let (gx, gy) = match (cfg.gdim[0], cfg.gdim[1]) {
        (pug_ir::Extent::Const(x), pug_ir::Extent::Const(y)) => (x, y),
        _ => unreachable!("checked concrete above"),
    };

    let mut envs: Vec<Env> = Vec::new();
    for gyy in 0..gy {
        for gxx in 0..gx {
            for tyy in 0..by {
                for txx in 0..bx {
                    let tid = [
                        ctx.mk_bv_const(txx, w),
                        ctx.mk_bv_const(tyy, w),
                        ctx.mk_bv_const(0, w),
                    ];
                    let bid = [ctx.mk_bv_const(gxx, w), ctx.mk_bv_const(gyy, w)];
                    envs.push(Env::new(tid, bid));
                }
            }
        }
    }
    let _ = blocks;

    let mut machine = Machine::new(ctx, &mut mem, &bound, &unit.types);
    // postconds are evaluated post-hoc against the final state (see spec.rs)
    machine.collect_postconds = false;
    machine.concrete_params = concretize.clone();
    let tru = machine.ctx.mk_true();
    for bi in &bis {
        for (ti, env) in envs.iter_mut().enumerate() {
            machine.name_prefix = format!("{suffix}!t{ti}!");
            machine.exec_block(bi, env, tru)?;
        }
    }

    let outputs = machine.outputs.clone();
    let written = unit.written_globals();
    let mut final_arrays = HashMap::new();
    for name in unit.global_arrays().iter().chain(unit.shared_arrays().iter()) {
        if let Some(t) = mem.current(name) {
            final_arrays.insert(name.clone(), t);
        }
    }

    let postcond_exprs = crate::spec::collect_postconds(&unit.kernel.body);
    let postconds = crate::spec::eval_postconds(
        ctx,
        &unit.types,
        &bound,
        &final_arrays,
        &postcond_exprs,
        suffix,
    )?;

    Ok(NonParamEncoding {
        final_arrays,
        base_arrays,
        assumptions: outputs.assumptions,
        asserts: outputs.asserts,
        postconds,
        config_constraints: bound.constraints,
        written,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pug_smt::{check, check_valid, Budget};

    #[test]
    fn copy_kernel_final_state() {
        // 4 threads copy in[t] to out[t]; final out[k] == in[k] for k < 4.
        let unit = KernelUnit::load("void k(int *out, int *in) { out[tid.x] = in[tid.x]; }").unwrap();
        let mut ctx = Ctx::new();
        let cfg = GpuConfig::concrete_1d(8, 4);
        let enc = encode(&mut ctx, &unit, &cfg, "s").unwrap();
        let k = ctx.mk_var("k", Sort::BitVec(8));
        let four = ctx.mk_bv_const(4, 8);
        let in_range = ctx.mk_bv_ult(k, four);
        let out_final = enc.final_arrays["out"];
        let in_base = enc.base_arrays["in"];
        let sel_out = ctx.mk_select(out_final, k);
        let sel_in = ctx.mk_select(in_base, k);
        let eq = ctx.mk_eq(sel_out, sel_in);
        let goal = ctx.mk_implies(in_range, eq);
        let r = check_valid(&mut ctx, &[], goal, &Budget::unlimited());
        assert!(r.is_unsat(), "expected valid, got {r:?}");
    }

    #[test]
    fn serialization_order_is_natural() {
        // All threads write the same cell: the last thread (id n-1) wins
        // under the natural order.
        let unit = KernelUnit::load("void k(int *out) { out[0] = tid.x; }").unwrap();
        let mut ctx = Ctx::new();
        let cfg = GpuConfig::concrete_1d(8, 4);
        let enc = encode(&mut ctx, &unit, &cfg, "s").unwrap();
        let zero = ctx.mk_bv_const(0, 8);
        let three = ctx.mk_bv_const(3, 8);
        let sel = ctx.mk_select(enc.final_arrays["out"], zero);
        let eq = ctx.mk_eq(sel, three);
        let r = check_valid(&mut ctx, &[], eq, &Budget::unlimited());
        assert!(r.is_unsat(), "natural order must make thread 3 the last writer");
    }

    #[test]
    fn guarded_write_keeps_old_value() {
        // Only thread 0 writes; out[1] keeps its input value.
        let unit =
            KernelUnit::load("void k(int *out) { if (tid.x == 0) out[0] = 7; }").unwrap();
        let mut ctx = Ctx::new();
        let cfg = GpuConfig::concrete_1d(8, 2);
        let enc = encode(&mut ctx, &unit, &cfg, "s").unwrap();
        let one = ctx.mk_bv_const(1, 8);
        let sel_new = ctx.mk_select(enc.final_arrays["out"], one);
        let sel_old = ctx.mk_select(enc.base_arrays["out"], one);
        let eq = ctx.mk_eq(sel_new, sel_old);
        let r = check_valid(&mut ctx, &[], eq, &Budget::unlimited());
        assert!(r.is_unsat());
        // and out[0] == 7
        let zero = ctx.mk_bv_const(0, 8);
        let sel0 = ctx.mk_select(enc.final_arrays["out"], zero);
        let seven = ctx.mk_bv_const(7, 8);
        let eq0 = ctx.mk_eq(sel0, seven);
        assert!(check_valid(&mut ctx, &[], eq0, &Budget::unlimited()).is_unsat());
    }

    #[test]
    fn barrier_separates_rounds() {
        // Round 1: out[t] = t. Round 2: out[t] = out[(t+1) % 2] + 10.
        // After the barrier every thread sees round-1 values.
        let unit = KernelUnit::load(
            "void k(int *out) { out[tid.x] = tid.x; __syncthreads(); out[tid.x] = out[(tid.x + 1) % 2] + 10; }",
        )
        .unwrap();
        let mut ctx = Ctx::new();
        let cfg = GpuConfig::concrete_1d(8, 2);
        let enc = encode(&mut ctx, &unit, &cfg, "s").unwrap();
        // out[0] = out[1] + 10 = 1 + 10 = 11 ; out[1] = out[0] + 10.
        // Natural order within round 2: thread 0 first, but it reads the
        // *current chain*, which after the barrier already has round-1
        // values; thread 1 then reads out[0] — careful: natural-order
        // serialization means thread 1 sees thread 0's round-2 write only
        // if they alias, which they don't here (0 reads 1, 1 reads 0 after
        // 0 already wrote 11). This is exactly the determinism caveat the
        // race checker guards; for this test we only pin out[0].
        let zero = ctx.mk_bv_const(0, 8);
        let eleven = ctx.mk_bv_const(11, 8);
        let sel = ctx.mk_select(enc.final_arrays["out"], zero);
        let eq = ctx.mk_eq(sel, eleven);
        assert!(check_valid(&mut ctx, &[], eq, &Budget::unlimited()).is_unsat());
    }

    #[test]
    fn symbolic_scalar_params_are_shared_inputs() {
        let unit =
            KernelUnit::load("void k(int *out, int n) { if (tid.x < n) out[tid.x] = n; }").unwrap();
        let mut ctx = Ctx::new();
        let cfg = GpuConfig::concrete_1d(8, 2);
        let enc = encode(&mut ctx, &unit, &cfg, "s").unwrap();
        // exists n such that out[0] == n and 0 < n: satisfiable
        let n = ctx.mk_var("n", Sort::BitVec(8));
        let zero = ctx.mk_bv_const(0, 8);
        let sel = ctx.mk_select(enc.final_arrays["out"], zero);
        let eq = ctx.mk_eq(sel, n);
        let pos = ctx.mk_bv_ult(zero, n);
        let both = ctx.mk_and(eq, pos);
        assert!(check(&mut ctx, &[both], &Budget::unlimited()).is_sat());
    }
}
