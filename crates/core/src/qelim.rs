//! Quantifier elimination for monotone address maps — paper §IV-D.
//!
//! The residual formula of the parameterized encoding is
//! `∀t ∈ [0..n) : ¬(a = g(t) ∧ c(t))`, asserting that *no* thread wrote
//! address `a`. For an increasing address map `g` this is equivalent to the
//! existential
//!
//! ```text
//! a < g(0)  ∨  a > g(n−1)  ∨  ∃t ∈ [0..n−1) : g(t) < a < g(t+1)
//! ```
//!
//! and the ∃ is eliminated by introducing a fresh variable (there is at most
//! one such `t` because `g` is increasing). The monotonicity premise itself
//! is returned as a separate proof obligation.
//!
//! # Domain constraint
//!
//! All arithmetic is fixed-width bit-vector arithmetic: the equivalence
//! above is only meaningful when `g` does not wrap modulo `2^w` on
//! `[0..n)` — which is exactly what the monotonicity obligation enforces
//! (`g(t) <u g(t+1)` fails at any wrapping step). The one place the
//! *eliminated formula itself* could wrap is the `g(n−1)` boundary term
//! when `n = 0`: `n−1` wraps to `2^w−1` and the boundary disjuncts become
//! garbage. An empty domain makes the ∀ vacuously true, so the formula
//! carries an explicit `n = 0` disjunct rather than relying on the wrapped
//! boundary terms.

use pug_smt::{Ctx, Sort, TermId};

/// Result of eliminating one no-coverage quantifier.
#[derive(Clone, Debug)]
pub struct NoCoverage {
    /// Quantifier-free formula equivalent to "no thread wrote `a`"
    /// (contains the fresh witness variable).
    pub formula: TermId,
    /// The fresh witness variable `t`.
    pub witness: TermId,
    /// Monotonicity obligation: `t' + 1 < n ⇒ g(t') < g(t'+1)` for a fresh
    /// `t'` — prove it valid before trusting [`NoCoverage::formula`].
    pub monotonicity: TermId,
}

/// Eliminate `∀t ∈ [0..n) : a ≠ g(t)` assuming `g` increasing on `[0..n)`.
///
/// `g` builds the address term for a given thread-index term.
pub fn eliminate_no_cover(
    ctx: &mut Ctx,
    g: &mut dyn FnMut(&mut Ctx, TermId) -> TermId,
    a: TermId,
    n: TermId,
    tag: &str,
) -> NoCoverage {
    let w = ctx.width(a);
    let zero = ctx.mk_bv_const(0, w);
    let one = ctx.mk_bv_const(1, w);

    // Boundary cases: a below g(0) or above g(n-1).
    let g0 = g(ctx, zero);
    let below = ctx.mk_bv_ult(a, g0);
    let n1 = ctx.mk_bv_sub(n, one);
    let gn1 = g(ctx, n1);
    let above = ctx.mk_bv_ult(gn1, a);

    // Interior gap witnessed by a fresh t: t + 1 < n ∧ g(t) < a < g(t+1).
    let t = ctx.fresh_var(&format!("gap!{tag}"), Sort::BitVec(w));
    let t1 = ctx.mk_bv_add(t, one);
    // t < n ∧ t+1 < n: both conjuncts needed so t+1 cannot wrap past n.
    let lo_dom = ctx.mk_bv_ult(t, n);
    let hi_dom = ctx.mk_bv_ult(t1, n);
    let in_dom = ctx.mk_and(lo_dom, hi_dom);
    let gt = g(ctx, t);
    let gt1 = g(ctx, t1);
    let lo = ctx.mk_bv_ult(gt, a);
    let hi = ctx.mk_bv_ult(a, gt1);
    let gap0 = ctx.mk_and(lo, hi);
    let gap = ctx.mk_and(in_dom, gap0);

    let f0 = ctx.mk_or(below, above);
    let f1 = ctx.mk_or(f0, gap);
    // n = 0: empty domain, the ∀ holds vacuously. Without this disjunct the
    // g(n−1) boundary term above wraps to g(2^w−1) and the formula can
    // wrongly claim the (vacuously uncovered) address is covered.
    let empty = ctx.mk_eq(n, zero);
    let formula = ctx.mk_or(empty, f1);

    // Monotonicity obligation over another fresh index.
    let tm = ctx.fresh_var(&format!("mono!{tag}"), Sort::BitVec(w));
    let tm1 = ctx.mk_bv_add(tm, one);
    let lo = ctx.mk_bv_ult(tm, n);
    let hi = ctx.mk_bv_ult(tm1, n);
    let dom = ctx.mk_and(lo, hi);
    let gm = g(ctx, tm);
    let gm1 = g(ctx, tm1);
    let inc = ctx.mk_bv_ult(gm, gm1);
    let monotonicity = ctx.mk_implies(dom, inc);

    NoCoverage { formula, witness: t, monotonicity }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pug_smt::{check, check_valid, Budget};

    /// g(t) = 2t + 1 over t ∈ [0..n): odd addresses 1, 3, …, 2n−1.
    fn stride2(ctx: &mut Ctx, t: TermId) -> TermId {
        let w = ctx.width(t);
        let two = ctx.mk_bv_const(2, w);
        let one = ctx.mk_bv_const(1, w);
        let m = ctx.mk_bv_mul(two, t);
        ctx.mk_bv_add(m, one)
    }

    #[test]
    fn monotonicity_obligation_proves() {
        let mut ctx = Ctx::new();
        let a = ctx.mk_var("a", Sort::BitVec(8));
        let n = ctx.mk_bv_const(10, 8);
        let nc = eliminate_no_cover(&mut ctx, &mut stride2, a, n, "t1");
        // 2t+1 < 2(t+1)+1 holds whenever t+1 < 10 at 8 bits (no overflow).
        let v = check_valid(&mut ctx, &[], nc.monotonicity, &Budget::unlimited());
        assert!(v.is_unsat(), "stride-2 map must be increasing, got {v:?}");
    }

    #[test]
    fn uncovered_even_address_satisfies_formula() {
        // a = 4 is even → not of the form 2t+1 → no-coverage must hold
        // for some witness valuation.
        let mut ctx = Ctx::new();
        let a = ctx.mk_bv_const(4, 8);
        let n = ctx.mk_bv_const(10, 8);
        let nc = eliminate_no_cover(&mut ctx, &mut stride2, a, n, "t2");
        assert!(check(&mut ctx, &[nc.formula], &Budget::unlimited()).is_sat());
    }

    #[test]
    fn covered_address_refutes_formula() {
        // a = 7 = g(3): no witness valuation can claim it uncovered.
        let mut ctx = Ctx::new();
        let a = ctx.mk_bv_const(7, 8);
        let n = ctx.mk_bv_const(10, 8);
        let nc = eliminate_no_cover(&mut ctx, &mut stride2, a, n, "t3");
        let r = check(&mut ctx, &[nc.formula], &Budget::unlimited());
        assert!(r.is_unsat(), "7 is covered by t=3, got {r:?}");
    }

    #[test]
    fn equivalence_with_explicit_enumeration() {
        // For symbolic a, the eliminated formula (∃-closed over the witness)
        // agrees with explicit enumeration ¬(a=g(0)) ∧ … ∧ ¬(a=g(n−1)) on a
        // small n: check both directions via satisfiability of the
        // difference restricted to the address range covered by the map.
        let mut ctx = Ctx::new();
        let a = ctx.mk_var("a4", Sort::BitVec(8));
        let nv = 6u64;
        let n = ctx.mk_bv_const(nv, 8);
        let nc = eliminate_no_cover(&mut ctx, &mut stride2, a, n, "t4");
        // enumeration
        let mut enumerated = ctx.mk_true();
        for t in 0..nv {
            let tc = ctx.mk_bv_const(t, 8);
            let gt = stride2(&mut ctx, tc);
            let ne = ctx.mk_neq(a, gt);
            enumerated = ctx.mk_and(enumerated, ne);
        }
        // formula ⇒ enumerated must be valid (the witness form is exact on
        // the "uncovered" side for increasing g)
        let goal = ctx.mk_implies(nc.formula, enumerated);
        let v = check_valid(&mut ctx, &[], goal, &Budget::unlimited());
        assert!(v.is_unsat(), "eliminated form must imply enumeration, got {v:?}");
    }
}
