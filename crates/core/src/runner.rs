//! Resilient verification runner: the graceful degradation ladder.
//!
//! A verification attempt can fail in ways the paper's tables gloss over:
//! the solver exhausts a budget ("T.O"), a panic escapes a checker, a
//! symbolic encoding is simply too hard. This module wraps every attempt in
//! a fault boundary and descends a ladder of progressively weaker — but
//! cheaper and more robust — encodings:
//!
//! 1. **Param** — the §IV parameterized encoding, fully symbolic
//!    configuration. Strongest claim: holds for *all* thread counts.
//! 2. **Param+C** — the same encoding with scalar parameters pinned
//!    (the paper's "+C." concretization). Holds for the pinned values with
//!    arbitrary remaining symbolics.
//! 3. **NonParam(n)** — the §III serialized baseline at a small concrete
//!    configuration. Holds for that `n` only.
//! 4. **FastBugHunt** — value queries only (§IV-D). Bugs found are real;
//!    a clean run proves nothing beyond an under-approximation.
//!
//! Each rung runs under [`std::panic::catch_unwind`] with its own
//! [`CancelToken`] armed by a [`Watchdog`] thread, so a hung or crashing
//! rung costs one rung, not the process. Every rung's fate is recorded in a
//! [`Provenance`] so the final verdict says *which* encoding answered, what
//! was spent on the way down, and how soundness degraded.

use crate::equiv::{
    check_equivalence_nonparam, check_equivalence_param, CheckOptions, QueryStat, Report,
};
use crate::error::Error;
use crate::kernel::KernelUnit;
use crate::verdict::{Soundness, Verdict};
use pug_ir::{Extent, GpuConfig};
use pug_obs::{MetricsRegistry, TraceSink, TraceSpan};
use pug_smt::failpoints::{self, Fault};
use pug_smt::CancelToken;
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One rung of the degradation ladder.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rung {
    /// Parameterized, fully symbolic configuration (§IV).
    Param,
    /// Parameterized with concretized scalar parameters ("+C.").
    ParamConcretized,
    /// Non-parameterized serialization at a concrete thread count (§III).
    NonParam { n: u64 },
    /// Parameterized value-queries-only mode (§IV-D).
    FastBugHunt,
}

impl Rung {
    /// Failpoint site name for this rung.
    fn site(&self) -> &'static str {
        match self {
            Rung::Param => "runner::param",
            Rung::ParamConcretized => "runner::param_c",
            Rung::NonParam { .. } => "runner::nonparam",
            Rung::FastBugHunt => "runner::fastbughunt",
        }
    }

    /// The soundness qualification a *clean* verdict from this rung carries.
    pub(crate) fn downgrade(&self) -> Option<String> {
        match self {
            Rung::Param => None,
            Rung::ParamConcretized => Some(
                "parameters pinned (+C.): the verdict holds for the concretized values only"
                    .into(),
            ),
            Rung::NonParam { n } => Some(format!(
                "non-parameterized fallback: the verdict holds for n={n} threads only"
            )),
            Rung::FastBugHunt => Some(
                "fast bug hunt: coverage obligations skipped; absence of bugs is not a proof"
                    .into(),
            ),
        }
    }
}

impl fmt::Display for Rung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rung::Param => write!(f, "Param"),
            Rung::ParamConcretized => write!(f, "Param+C"),
            Rung::NonParam { n } => write!(f, "NonParam(n={n})"),
            Rung::FastBugHunt => write!(f, "FastBugHunt"),
        }
    }
}

/// What happened on one rung.
#[derive(Clone, Debug)]
pub enum RungOutcome {
    /// The rung produced a definitive verdict (verified or bug).
    Answered,
    /// Budget exhausted (timeout / memory cap / cancellation).
    Timeout,
    /// The checker panicked; the message was captured.
    Crashed(String),
    /// The checker returned an error (e.g. alignment failure).
    Failed(String),
    /// The rung was not applicable (e.g. no "+C." values configured).
    Skipped(String),
    /// Portfolio racing only: a higher-priority rung answered first and
    /// this rung was cancelled mid-flight. Its partial cost is still
    /// recorded in the [`RungRecord`].
    Abandoned,
}

impl fmt::Display for RungOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RungOutcome::Answered => write!(f, "answered"),
            RungOutcome::Timeout => write!(f, "timeout"),
            RungOutcome::Crashed(m) => write!(f, "crashed: {m}"),
            RungOutcome::Failed(m) => write!(f, "error: {m}"),
            RungOutcome::Skipped(m) => write!(f, "skipped: {m}"),
            RungOutcome::Abandoned => write!(f, "abandoned (lost the race)"),
        }
    }
}

/// Record of one rung attempt.
#[derive(Clone, Debug)]
pub struct RungRecord {
    pub rung: Rung,
    pub outcome: RungOutcome,
    /// Wall-clock time spent on this rung (zero for skipped rungs).
    pub elapsed: Duration,
    /// SMT queries issued on this rung, when the checker got that far.
    pub queries: usize,
    /// Per-query statistics of this rung — kept even when the rung timed
    /// out, so traces and explanations can show where the budget went.
    pub stats: Vec<QueryStat>,
}

/// Record of one auxiliary analysis pass (races, bank conflicts,
/// coalescing) run alongside the equivalence ladder when
/// [`RunnerOptions::aux_passes`] is set.
#[derive(Clone, Debug)]
pub struct PassRecord {
    /// Pass name: `race`, `bank-conflict` or `coalescing`.
    pub pass: &'static str,
    /// One-line result: a verdict rendering, a findings count, or an error.
    pub summary: String,
    pub elapsed: Duration,
    /// The pass's SMT queries — previously dropped on the floor; threading
    /// them here is what makes the passes visible in traces and reports.
    pub stats: Vec<QueryStat>,
}

/// Where the final verdict came from and what it cost.
#[derive(Clone, Debug, Default)]
pub struct Provenance {
    /// Every rung attempted (or skipped), in ladder order.
    pub rungs: Vec<RungRecord>,
    /// The rung whose verdict was adopted, if any rung answered.
    pub answered_by: Option<Rung>,
    /// Human-readable soundness qualification of the adopted verdict, when
    /// the answering rung is weaker than the fully parameterized claim.
    pub soundness_note: Option<String>,
    /// Auxiliary analysis passes (races, bank conflicts, coalescing), when
    /// [`RunnerOptions::aux_passes`] requested them.
    pub passes: Vec<PassRecord>,
}

impl Provenance {
    /// Multi-line rendering for logs / the benchmark harness.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.rungs {
            out.push_str(&format!(
                "  {:<16} {:>8.2}s  {}\n",
                r.rung.to_string(),
                r.elapsed.as_secs_f64(),
                r.outcome
            ));
        }
        match &self.answered_by {
            Some(r) => out.push_str(&format!("  answered by {r}")),
            None => out.push_str("  no rung answered"),
        }
        if let Some(n) = &self.soundness_note {
            out.push_str(&format!("\n  note: {n}"));
        }
        for p in &self.passes {
            out.push_str(&format!(
                "\n  pass {:<12} {:>8.2}s  {}",
                p.pass,
                p.elapsed.as_secs_f64(),
                p.summary
            ));
        }
        out
    }

    /// Total wall-clock spent across attempted rungs.
    pub fn total_spent(&self) -> Duration {
        self.rungs.iter().map(|r| r.elapsed).sum()
    }

    /// Wall-clock spent on rungs that were cancelled after losing a
    /// portfolio race — the price of racing, separated out so batch
    /// reports can show what speculation cost.
    pub fn abandoned_cost(&self) -> Duration {
        self.rungs
            .iter()
            .filter(|r| matches!(r.outcome, RungOutcome::Abandoned))
            .map(|r| r.elapsed)
            .sum()
    }
}

/// Verdict plus provenance: the runner's result.
#[derive(Clone, Debug)]
pub struct ResilientReport {
    /// The adopted verdict. [`Verdict::Timeout`] when every rung ran out of
    /// budget, crashed or failed.
    pub verdict: Verdict,
    pub provenance: Provenance,
    pub elapsed: Duration,
}

/// Ladder policy.
#[derive(Clone, Debug)]
pub struct RunnerOptions {
    /// Wall-clock budget for the *first* rung; each descent multiplies it
    /// by `backoff`. `None` = no per-rung deadline (the watchdog is then
    /// not armed).
    pub rung_timeout: Option<Duration>,
    /// Per-descent timeout multiplier. `< 1` spends less on weaker rungs
    /// (they are cheaper); `1.0` keeps the budget flat.
    pub backoff: f64,
    /// Scalar parameters for the Param+C rung; empty skips that rung.
    pub concretize: HashMap<String, u64>,
    /// Concrete thread counts for the NonParam rungs (tried in order).
    pub fallback_ns: Vec<u64>,
    /// Memory cap on the SAT clause database, per rung.
    pub max_clause_bytes: Option<usize>,
    /// Memory cap on hash-consed term nodes, per rung.
    pub max_term_nodes: Option<usize>,
    /// Cross-rung cache of discharged obligations. `None` makes each
    /// runner/batch entry point create its own, so rungs of one run always
    /// share; supply one explicitly to share across runs.
    pub query_cache: Option<crate::portfolio::QueryCache>,
    /// Structured trace sink. [`TraceSink::disabled`] (the default) costs
    /// one branch per query; a recording sink captures the span tree
    /// `verify > rung:… > bi:… > query:…` for JSONL export.
    pub trace: TraceSink,
    /// Metrics registry fed across rungs; disabled by default.
    pub metrics: MetricsRegistry,
    /// Also run the auxiliary analyses (data races, shared-memory bank
    /// conflicts, global-memory coalescing) on the target kernel once the
    /// ladder resolves, attaching their query statistics to the provenance.
    pub aux_passes: bool,
    /// Term canonicalization (`pug_smt::normalize`) on every rung and aux
    /// pass. On by default; differential suites turn it off.
    pub normalize: bool,
    /// Intra-rung obligation parallelism, forwarded to every rung's
    /// [`CheckOptions::obligation_parallelism`]: `0` auto-detects, `1`
    /// forces the sequential obligation loop, `n ≥ 2` pools up to `n`
    /// solver sessions per region comparison.
    pub obligation_parallelism: usize,
    /// Generalized (Presburger) quantifier elimination, forwarded to every
    /// rung and aux pass ([`CheckOptions::generalized_qelim`]). On by
    /// default; the differential suites turn it off to prove the ladder
    /// reaches identical verdicts through the legacy residual-drop path.
    pub generalized_qelim: bool,
}

impl Default for RunnerOptions {
    fn default() -> RunnerOptions {
        RunnerOptions {
            rung_timeout: None,
            backoff: 1.0,
            concretize: HashMap::new(),
            fallback_ns: vec![4],
            max_clause_bytes: None,
            max_term_nodes: None,
            query_cache: None,
            trace: TraceSink::disabled(),
            metrics: MetricsRegistry::disabled(),
            aux_passes: false,
            normalize: true,
            obligation_parallelism: 0,
            generalized_qelim: true,
        }
    }
}

impl RunnerOptions {
    /// Flat per-rung wall-clock budget.
    pub fn with_rung_timeout(timeout: Duration) -> RunnerOptions {
        RunnerOptions { rung_timeout: Some(timeout), ..RunnerOptions::default() }
    }

    /// Add a concretized parameter (enables the Param+C rung).
    pub fn concretized(mut self, name: &str, value: u64) -> RunnerOptions {
        self.concretize.insert(name.to_string(), value);
        self
    }

    /// Record the run's span tree into `sink`.
    pub fn with_trace(mut self, sink: TraceSink) -> RunnerOptions {
        self.trace = sink;
        self
    }

    /// Feed counters/histograms into `metrics`.
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> RunnerOptions {
        self.metrics = metrics;
        self
    }

    /// Enable the auxiliary race/perf passes.
    pub fn with_aux_passes(mut self) -> RunnerOptions {
        self.aux_passes = true;
        self
    }

    /// Pin the per-rung obligation pool width (`0` = auto, `1` =
    /// sequential).
    pub fn with_obligation_parallelism(mut self, n: usize) -> RunnerOptions {
        self.obligation_parallelism = n;
        self
    }

    /// Disable the generalized (Presburger) quantifier elimination on
    /// every rung and aux pass.
    pub fn no_generalized_qelim(mut self) -> RunnerOptions {
        self.generalized_qelim = false;
        self
    }
}

/// Watchdog: a thread that trips a [`CancelToken`] when a deadline passes.
///
/// Unlike a bare `thread::sleep`, the watchdog parks on a condvar and is
/// released the moment the guarded work finishes, so short checks never
/// leave sleeping threads behind. Dropping the watchdog signals completion
/// and joins the thread.
pub struct Watchdog {
    state: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl Watchdog {
    /// Arm: trip `token` after `timeout` unless dropped first.
    pub fn arm(token: CancelToken, timeout: Duration) -> Watchdog {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let shared = Arc::clone(&state);
        let handle = std::thread::spawn(move || {
            let (lock, cv) = &*shared;
            let deadline = Instant::now() + timeout;
            let mut done = lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            while !*done {
                let now = Instant::now();
                if now >= deadline {
                    token.cancel();
                    return;
                }
                let (guard, _) = cv.wait_timeout(done, deadline - now).unwrap();
                done = guard;
            }
        });
        Watchdog { state, handle: Some(handle) }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        let (lock, cv) = &*self.state;
        *lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = true;
        cv.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Extract a printable message from a caught panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Pin every symbolic extent of `cfg` to a concrete `n`-thread block
/// (near-square split when the block is 2-D), one block in the grid.
fn pin_config(cfg: &GpuConfig, n: u64) -> GpuConfig {
    let mut c = cfg.clone();
    let two_d = matches!(c.bdim[1], Extent::Sym);
    if matches!(c.bdim[0], Extent::Sym) {
        if two_d {
            let side = (1..=n).rev().find(|s| s * s <= n && n.is_multiple_of(*s)).unwrap_or(1);
            c.bdim[0] = Extent::Const(n / side);
            c.bdim[1] = Extent::Const(side);
        } else {
            c.bdim[0] = Extent::Const(n);
        }
    }
    for d in c.bdim.iter_mut().chain(c.gdim.iter_mut()) {
        if matches!(d, Extent::Sym) {
            *d = Extent::Const(1);
        }
    }
    c
}

/// How one rung resolved, internally. Shared with [`crate::portfolio`].
pub(crate) enum RungResult {
    Verdict(Report),
    Timeout,
    Crashed(String),
    Failed(String),
}

/// Run one rung under its fault boundary: failpoint, watchdog, panic catch.
///
/// The caller supplies the rung's [`CancelToken`] so an external arbiter
/// (the portfolio scheduler) can retain a handle and cancel the rung
/// mid-flight; the sequential ladder passes a fresh token per rung.
pub(crate) fn run_rung<F>(
    rung: Rung,
    timeout: Option<Duration>,
    token: CancelToken,
    trace: TraceSpan,
    metrics: MetricsRegistry,
    f: F,
) -> (RungResult, Duration, Vec<QueryStat>)
where
    F: FnOnce(CheckOptions) -> Result<Report, Error>,
{
    let started = Instant::now();
    let _watchdog = timeout.map(|t| Watchdog::arm(token.clone(), t));

    let opts = CheckOptions { timeout, cancel: token, trace, metrics, ..CheckOptions::default() };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        // Fault injection: `Panic` unwinds from inside the boundary, exactly
        // like a checker bug would.
        if let Some(Fault::BudgetExhausted | Fault::SpuriousUnknown) = failpoints::trip(rung.site())
        {
            return Ok(Report {
                verdict: Verdict::Timeout,
                queries: Vec::new(),
                elapsed: Duration::ZERO,
            });
        }
        f(opts)
    }));
    let elapsed = started.elapsed();

    match outcome {
        Err(payload) => (RungResult::Crashed(panic_message(&*payload)), elapsed, Vec::new()),
        Ok(Err(e)) => (RungResult::Failed(e.to_string()), elapsed, Vec::new()),
        Ok(Ok(report)) => match report.verdict {
            // A timed-out rung still issued real queries; keep them so
            // provenance shows where the budget went.
            Verdict::Timeout => (RungResult::Timeout, elapsed, report.queries),
            _ => {
                let queries = report.queries.clone();
                (RungResult::Verdict(report), elapsed, queries)
            }
        },
    }
}

/// The runnable ladder for `opts`, in descending soundness order, plus the
/// pre-skipped records for rungs that are not applicable (Param+C without
/// concretized parameters). Shared by the sequential ladder and the
/// portfolio racer so both modes attempt — and arbitrate over — the exact
/// same rung set.
pub(crate) fn build_ladder(opts: &RunnerOptions) -> (Vec<Rung>, Vec<RungRecord>) {
    let mut ladder: Vec<Rung> = vec![Rung::Param];
    let mut skipped = Vec::new();
    if !opts.concretize.is_empty() {
        ladder.push(Rung::ParamConcretized);
    } else {
        skipped.push(RungRecord {
            rung: Rung::ParamConcretized,
            outcome: RungOutcome::Skipped("no concretized parameters configured".into()),
            elapsed: Duration::ZERO,
            queries: 0,
            stats: Vec::new(),
        });
    }
    ladder.extend(opts.fallback_ns.iter().map(|&n| Rung::NonParam { n }));
    ladder.push(Rung::FastBugHunt);
    (ladder, skipped)
}

/// Per-rung wall-clock budget: the first-rung timeout scaled by
/// `backoff^index` over the runnable ladder. Index-based (not
/// descent-based) so the racing scheduler hands out the same budgets the
/// sequential ladder would.
pub(crate) fn rung_timeout(opts: &RunnerOptions, index: usize) -> Option<Duration> {
    opts.rung_timeout.map(|t| t.mul_f64(opts.backoff.max(0.01).powi(index as i32)))
}

/// Dispatch one rung's check with the runner-level caps applied.
pub(crate) fn dispatch_rung(
    rung: Rung,
    src: &KernelUnit,
    tgt: &KernelUnit,
    cfg: &GpuConfig,
    opts: &RunnerOptions,
    mut check_opts: CheckOptions,
) -> Result<Report, Error> {
    check_opts.max_clause_bytes = opts.max_clause_bytes;
    check_opts.max_term_nodes = opts.max_term_nodes;
    check_opts.query_cache = opts.query_cache.clone();
    check_opts.normalize = opts.normalize;
    check_opts.obligation_parallelism = opts.obligation_parallelism;
    check_opts.generalized_qelim = opts.generalized_qelim;
    match rung {
        Rung::Param => check_equivalence_param(src, tgt, cfg, &check_opts),
        Rung::ParamConcretized => {
            check_opts.concretize = opts.concretize.clone();
            check_equivalence_param(src, tgt, cfg, &check_opts)
        }
        Rung::NonParam { n } => {
            let pinned = pin_config(cfg, n);
            check_equivalence_nonparam(src, tgt, &pinned, &check_opts)
        }
        Rung::FastBugHunt => {
            check_opts.mode = crate::equiv::Mode::FastBugHunt;
            check_equivalence_param(src, tgt, cfg, &check_opts)
        }
    }
}

/// Soundness-downgrade a rung's verdict exactly as the sequential ladder
/// does: a clean verdict from a weaker rung is only an under-approximate
/// proof of the parameterized claim; bugs stay bugs.
pub(crate) fn adopt_verdict(verdict: Verdict, rung: Rung) -> Verdict {
    match (verdict, rung.downgrade()) {
        (Verdict::Verified(_), Some(_)) => Verdict::Verified(Soundness::UnderApprox),
        (v, _) => v,
    }
}

/// Run the full degradation ladder for the equivalence of `src` and `tgt`.
///
/// Descends `Param → Param+C → NonParam(n) → FastBugHunt` until a rung
/// produces a definitive verdict; rungs that time out, crash or error are
/// recorded and skipped past. When no rung answers, the verdict is
/// [`Verdict::Timeout`] with the full attempt history attached.
pub fn run_resilient(
    src: &KernelUnit,
    tgt: &KernelUnit,
    cfg: &GpuConfig,
    opts: &RunnerOptions,
) -> ResilientReport {
    let started = Instant::now();
    let mut prov = Provenance::default();
    let (ladder, skipped) = build_ladder(opts);
    if opts.metrics.is_enabled() {
        for r in &skipped {
            opts.metrics.incr(rung_outcome_key(&r.outcome));
        }
    }
    prov.rungs.extend(skipped);

    // Ladder descent reuses discharged obligations: what the Param rung
    // proved before timing out, FastBugHunt need not prove again.
    let mut opts_with_cache;
    let opts = if opts.query_cache.is_none() {
        opts_with_cache = opts.clone();
        opts_with_cache.query_cache = Some(crate::portfolio::QueryCache::new());
        &opts_with_cache
    } else {
        opts
    };

    let verify_span = if opts.trace.is_enabled() {
        TraceSpan::root(opts.trace.clone()).child_with(
            "verify",
            vec![
                ("src", src.kernel.name.as_str().into()),
                ("tgt", tgt.kernel.name.as_str().into()),
            ],
        )
    } else {
        TraceSpan::disabled()
    };

    for (index, rung) in ladder.into_iter().enumerate() {
        let timeout = rung_timeout(opts, index);
        let rung_span = if verify_span.is_enabled() {
            verify_span.child(&format!("rung:{rung}"))
        } else {
            TraceSpan::disabled()
        };
        let (result, elapsed, stats) = run_rung(
            rung,
            timeout,
            CancelToken::new(),
            rung_span.clone(),
            opts.metrics.clone(),
            |check_opts| dispatch_rung(rung, src, tgt, cfg, opts, check_opts),
        );

        let (outcome, answer) = match result {
            RungResult::Verdict(report) => (RungOutcome::Answered, Some(report)),
            RungResult::Timeout => (RungOutcome::Timeout, None),
            RungResult::Crashed(m) => (RungOutcome::Crashed(m), None),
            RungResult::Failed(m) => (RungOutcome::Failed(m), None),
        };
        note_rung_outcome(opts, &rung_span, &outcome, stats.len());
        prov.rungs.push(RungRecord { rung, outcome, elapsed, queries: stats.len(), stats });

        if let Some(report) = answer {
            prov.answered_by = Some(rung);
            prov.soundness_note = rung.downgrade();
            let verdict = adopt_verdict(report.verdict, rung);
            if opts.aux_passes {
                prov.passes = run_aux_passes(tgt, cfg, opts, &verify_span);
            }
            verify_span.close_with(vec![("verdict", verdict.to_string().into())]);
            if let Some(cache) = &opts.query_cache {
                cache.publish(&opts.metrics);
            }
            return ResilientReport { verdict, provenance: prov, elapsed: started.elapsed() };
        }
    }

    if opts.aux_passes {
        prov.passes = run_aux_passes(tgt, cfg, opts, &verify_span);
    }
    verify_span.close_with(vec![("verdict", "timeout (no rung answered)".into())]);
    if let Some(cache) = &opts.query_cache {
        cache.publish(&opts.metrics);
    }
    ResilientReport {
        verdict: Verdict::Timeout,
        provenance: prov,
        elapsed: started.elapsed(),
    }
}

/// Record a rung's fate in the trace and the outcome counters.
pub(crate) fn note_rung_outcome(
    opts: &RunnerOptions,
    rung_span: &TraceSpan,
    outcome: &RungOutcome,
    queries: usize,
) {
    if rung_span.is_enabled() {
        rung_span.close_with(vec![
            ("outcome", outcome.to_string().into()),
            ("queries", queries.into()),
        ]);
    }
    if opts.metrics.is_enabled() {
        opts.metrics.incr(rung_outcome_key(outcome));
    }
}

/// Metrics counter name for a rung outcome.
pub(crate) fn rung_outcome_key(outcome: &RungOutcome) -> &'static str {
    match outcome {
        RungOutcome::Answered => "runner.rung.answered",
        RungOutcome::Timeout => "runner.rung.timeout",
        RungOutcome::Crashed(_) => "runner.rung.crashed",
        RungOutcome::Failed(_) => "runner.rung.failed",
        RungOutcome::Skipped(_) => "runner.rung.skipped",
        RungOutcome::Abandoned => "runner.rung.abandoned",
    }
}

/// Run the auxiliary analyses (data races, bank conflicts, coalescing) on
/// the *target* kernel — the artifact actually shipped — under the same
/// caps as a rung, each inside its own fault boundary. Their `QueryStat`s
/// used to be dropped on the floor; they now ride in the provenance.
pub(crate) fn run_aux_passes(
    tgt: &KernelUnit,
    cfg: &GpuConfig,
    opts: &RunnerOptions,
    parent: &TraceSpan,
) -> Vec<PassRecord> {
    type PassFn = fn(&KernelUnit, &GpuConfig, &CheckOptions) -> (String, Vec<QueryStat>);

    fn race_pass(u: &KernelUnit, c: &GpuConfig, o: &CheckOptions) -> (String, Vec<QueryStat>) {
        match crate::race::check_races(u, c, o) {
            Ok(rep) => (rep.verdict.to_string(), rep.queries),
            Err(e) => (format!("error: {e}"), Vec::new()),
        }
    }
    fn perf_summary(
        r: Result<crate::perf::PerfReport, Error>,
    ) -> (String, Vec<QueryStat>) {
        match r {
            Ok(rep) if rep.findings.is_empty() => ("clean".into(), rep.queries),
            Ok(rep) => (format!("{} finding(s)", rep.findings.len()), rep.queries),
            Err(e) => (format!("error: {e}"), Vec::new()),
        }
    }
    fn bank_pass(u: &KernelUnit, c: &GpuConfig, o: &CheckOptions) -> (String, Vec<QueryStat>) {
        perf_summary(crate::perf::check_bank_conflicts(u, c, o))
    }
    fn coalesce_pass(u: &KernelUnit, c: &GpuConfig, o: &CheckOptions) -> (String, Vec<QueryStat>) {
        perf_summary(crate::perf::check_coalescing(u, c, o))
    }

    let passes: [(&'static str, PassFn); 3] =
        [("race", race_pass), ("bank-conflict", bank_pass), ("coalescing", coalesce_pass)];

    let mut records = Vec::new();
    for (name, pass) in passes {
        let span = if parent.is_enabled() {
            parent.child(&format!("pass:{name}"))
        } else {
            TraceSpan::disabled()
        };
        let check = CheckOptions {
            timeout: opts.rung_timeout,
            max_clause_bytes: opts.max_clause_bytes,
            max_term_nodes: opts.max_term_nodes,
            trace: span.clone(),
            metrics: opts.metrics.clone(),
            // Aux passes share the run's cache and canonicalization policy:
            // their obligations fingerprint the same way, so the registry's
            // per-lookup counters cover every query of the run.
            query_cache: opts.query_cache.clone(),
            normalize: opts.normalize,
            obligation_parallelism: opts.obligation_parallelism,
            generalized_qelim: opts.generalized_qelim,
            ..CheckOptions::default()
        };
        let started = Instant::now();
        let (summary, stats) =
            match catch_unwind(AssertUnwindSafe(|| pass(tgt, cfg, &check))) {
                Ok(r) => r,
                Err(payload) => (format!("crashed: {}", panic_message(&*payload)), Vec::new()),
            };
        span.close_with(vec![("summary", summary.as_str().into())]);
        records.push(PassRecord { pass: name, summary, elapsed: started.elapsed(), stats });
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watchdog_trips_after_deadline() {
        let token = CancelToken::new();
        let _w = Watchdog::arm(token.clone(), Duration::from_millis(20));
        assert!(!token.is_cancelled());
        std::thread::sleep(Duration::from_millis(120));
        assert!(token.is_cancelled());
    }

    #[test]
    fn watchdog_drop_does_not_trip() {
        let token = CancelToken::new();
        {
            let _w = Watchdog::arm(token.clone(), Duration::from_secs(30));
        } // dropped immediately: thread must exit without firing
        assert!(!token.is_cancelled());
    }

    #[test]
    fn pin_config_1d_and_2d() {
        let c1 = pin_config(&GpuConfig::symbolic_1d(8), 4);
        assert_eq!(c1.bdim[0], Extent::Const(4));
        assert_eq!(c1.gdim[0], Extent::Const(1));
        let c2 = pin_config(&GpuConfig::symbolic_2d(8), 8);
        assert_eq!(c2.bdim[0], Extent::Const(4));
        assert_eq!(c2.bdim[1], Extent::Const(2));
        // already-concrete extents are untouched
        let c3 = pin_config(&GpuConfig::concrete_1d(8, 16), 4);
        assert_eq!(c3.bdim[0], Extent::Const(16));
    }

    #[test]
    fn ladder_answers_on_first_rung_for_easy_pair() {
        let naive = KernelUnit::load(pug_kernels::transpose::NAIVE).unwrap();
        let report = run_resilient(
            &naive,
            &naive,
            &GpuConfig::symbolic_2d(8),
            &RunnerOptions::default(),
        );
        assert!(report.verdict.is_verified(), "{}", report.provenance.render());
        assert_eq!(report.provenance.answered_by, Some(Rung::Param));
        assert!(report.provenance.soundness_note.is_none());
    }
}
