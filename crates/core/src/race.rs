//! Parameterized race checking.
//!
//! The paper notes that PUG's race-checking techniques "easily accommodate
//! the use of symbolic thread identifiers" (§II-A): within one barrier
//! interval, instantiate the access set at two *distinct* symbolic threads
//! and ask the solver for an address collision where at least one access is
//! a write. A `Sat` answer is a real race with a concrete witness
//! (configuration, thread ids); `Unsat` over all pairs is a parameterized
//! race-freedom proof — the very assumption the equivalence encodings rest
//! on (§III "we assume that no data races occur").

use crate::equiv::{CheckOptions, Report, Session};
use crate::error::Error;
use crate::kernel::KernelUnit;
use crate::param::{extract_region, thread_range, ExtractOptions, ParamRegion};
use crate::resolve::ThreadRef;
use crate::verdict::{BugKind, BugReport, Verdict};
use pug_cuda::typecheck::VarInfo;
use pug_ir::{split_bis, BoundConfig, GpuConfig, Segment};
use pug_smt::{Sort, SmtResult, TermId};
use std::collections::HashMap;
use std::time::Instant;

/// Check a kernel for intra-barrier-interval data races, parametrically.
pub fn check_races(
    unit: &KernelUnit,
    cfg: &GpuConfig,
    opts: &CheckOptions,
) -> Result<Report, Error> {
    let started = Instant::now();
    let mut sess = Session::new(cfg, opts);
    let bound = cfg.bind(&mut sess.ctx, "");

    let segments = pug_ir::split_segments(&unit.kernel.body)?;
    let mut assumptions: Vec<TermId> = bound.constraints.clone();

    for (i, seg) in segments.iter().enumerate() {
        let (region, extra) = match seg {
            Segment::Straight(stmts) => {
                let bis = split_bis(stmts)?;
                let conc = sess.conc_map();
                let region = extract_region(
                    &mut sess.ctx,
                    unit,
                    &bound,
                    &bis,
                    ExtractOptions {
                        tag: &format!("r{i}"),
                        entry_versions: HashMap::new(),
                        extra_locals: vec![],
                        region: format!("seg{i}"),
                        concretize: conc,
                    },
                )?;
                (region, Vec::new())
            }
            Segment::Loop { init, cond, update, body, .. } => {
                // One symbolic iteration with the header's membership
                // constraint (races across iterations are separated by the
                // in-loop barrier).
                let header =
                    pug_ir::normalize_header(init, cond, update).ok_or_else(|| {
                        Error::AlignmentFailed {
                            detail: "race checking needs a recognizable loop header".into(),
                        }
                    })?;
                let w = bound.bits;
                let kvar = sess.ctx.mk_var(&format!("k!race{i}"), Sort::BitVec(w));
                let membership =
                    crate::equiv::space_constraint_pub(&mut sess, &bound, &header.space, kvar)?;
                let bis = split_bis(body)?;
                let conc = sess.conc_map();
                let region = extract_region(
                    &mut sess.ctx,
                    unit,
                    &bound,
                    &bis,
                    ExtractOptions {
                        tag: &format!("r{i}"),
                        entry_versions: HashMap::new(),
                        extra_locals: vec![(header.var.clone(), kvar, false)],
                        region: format!("seg{i}"),
                        concretize: conc,
                    },
                )?;
                (region, vec![membership])
            }
        };
        assumptions.extend(region.outputs.assumptions.iter().copied());

        sess.enter_seg(&format!("bi:{i}"));
        if let Some(v) = race_in_region(&mut sess, &bound, unit, &region, &assumptions, &extra, i)? {
            return Ok(sess.take_report(v, started));
        }
        sess.exit_seg();
    }
    let soundness = sess.soundness;
    Ok(sess.take_report(Verdict::Verified(soundness), started))
}

fn race_in_region(
    sess: &mut Session,
    bound: &BoundConfig,
    unit: &KernelUnit,
    region: &ParamRegion,
    assumptions: &[TermId],
    extra: &[TermId],
    seg_ix: usize,
) -> Result<Option<Verdict>, Error> {
    // Two distinct symbolic threads.
    let w = bound.bits;
    let mk = |sess: &mut Session, n: &str| {
        let t = sess.ctx.mk_var(&format!("{n}!race{seg_ix}"), Sort::BitVec(w));
        t
    };
    let t1 = ThreadRef {
        tid: [mk(sess, "t1.x"), mk(sess, "t1.y"), mk(sess, "t1.z")],
        bid: [mk(sess, "t1.bx"), mk(sess, "t1.by")],
    };
    let t2 = ThreadRef {
        tid: [mk(sess, "t2.x"), mk(sess, "t2.y"), mk(sess, "t2.z")],
        bid: [mk(sess, "t2.bx"), mk(sess, "t2.by")],
    };
    let r1 = thread_range(&mut sess.ctx, bound, t1.tid, t1.bid);
    let r2 = thread_range(&mut sess.ctx, bound, t2.tid, t2.bid);

    let subst = |sess: &mut Session, t: TermId, to: ThreadRef| -> TermId {
        let c = region.thread;
        let mut map = HashMap::new();
        for i in 0..3 {
            map.insert(c.tid[i], to.tid[i]);
        }
        for i in 0..2 {
            map.insert(c.bid[i], to.bid[i]);
        }
        sess.ctx.substitute(t, &map)
    };

    // Distinctness: some tid component differs (same-block case), or any
    // coordinate differs (cross-block, global arrays only).
    let tids_differ = {
        let mut d = sess.ctx.mk_false();
        for i in 0..3 {
            let ne = sess.ctx.mk_neq(t1.tid[i], t2.tid[i]);
            d = sess.ctx.mk_or(d, ne);
        }
        d
    };
    let same_block = {
        let bx = sess.ctx.mk_eq(t1.bid[0], t2.bid[0]);
        let by = sess.ctx.mk_eq(t1.bid[1], t2.bid[1]);
        sess.ctx.mk_and(bx, by)
    };
    let coords_differ = {
        let mut d = tids_differ;
        for i in 0..2 {
            let ne = sess.ctx.mk_neq(t1.bid[i], t2.bid[i]);
            d = sess.ctx.mk_or(d, ne);
        }
        d
    };

    let accesses = &region.log;
    for (ai, a) in accesses.iter().enumerate() {
        for b in accesses.iter().skip(ai) {
            if a.array != b.array || (!a.is_write && !b.is_write) {
                continue;
            }
            let shared = matches!(
                unit.types.vars.get(&a.array),
                Some(VarInfo::SharedArray { .. })
            );
            let addr1 = subst(sess, a.index, t1);
            let g1 = subst(sess, a.guard, t1);
            let addr2 = subst(sess, b.index, t2);
            let g2 = subst(sess, b.guard, t2);

            let mut asserts = assumptions.to_vec();
            asserts.extend(extra.iter().copied());
            asserts.push(r1);
            asserts.push(r2);
            if shared {
                asserts.push(same_block);
                asserts.push(tids_differ);
            } else {
                asserts.push(coords_differ);
            }
            asserts.push(g1);
            asserts.push(g2);
            let collide = sess.ctx.mk_eq(addr1, addr2);
            asserts.push(collide);

            // Satisfiability query (not validity): negate `false` as goal.
            let goal = sess.ctx.mk_false();
            match sess.query(&format!("race[{}#{seg_ix}]", a.array), &asserts, goal) {
                SmtResult::Unsat => {}
                SmtResult::Unknown => return Ok(Some(Verdict::Timeout)),
                SmtResult::Sat(model) => {
                    let kind = match (a.is_write, b.is_write) {
                        (true, true) => "write-write",
                        _ => "read-write",
                    };
                    return Ok(Some(Verdict::Bug(BugReport::new(
                        BugKind::DataRace,
                        format!(
                            "{kind} race on `{}` within a barrier interval (segment {seg_ix})",
                            a.array
                        ),
                        model,
                        &sess.ctx,
                    ))));
                }
            }
        }
    }
    Ok(None)
}
