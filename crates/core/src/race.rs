//! Parameterized race checking.
//!
//! The paper notes that PUG's race-checking techniques "easily accommodate
//! the use of symbolic thread identifiers" (§II-A): within one barrier
//! interval, instantiate the access set at two *distinct* symbolic threads
//! and ask the solver for an address collision where at least one access is
//! a write. A `Sat` answer is a real race with a concrete witness
//! (configuration, thread ids); `Unsat` over all pairs is a parameterized
//! race-freedom proof — the very assumption the equivalence encodings rest
//! on (§III "we assume that no data races occur").
//!
//! Each `Sat` race is additionally **classified** (after Liew et al.): the
//! witness is first *minimized* (the query re-solved under small
//! coordinate/extent bounds, so the launch fits the replay budget), then
//! the model is turned into a concrete configuration + thread pair and
//! replayed through the `pug-ir` interpreter with access logging. If the
//! replay exhibits the conflicting accesses, the race is *provable* and the
//! report carries the validated schedule; if the replay is blocked (e.g. a
//! barrier loop bounded by a scalar the interpreter cannot concretize) the
//! race stays *potential*. Classification never changes the verdict — a
//! `Sat` model is a real race under the symbolic semantics either way.

use crate::equiv::{CheckOptions, Report, Session};
use crate::error::Error;
use crate::kernel::KernelUnit;
use crate::param::{extract_region, thread_range, ExtractOptions, ParamRegion};
use crate::resolve::ThreadRef;
use crate::verdict::{BugKind, BugReport, RaceClass, Verdict};
use pug_cuda::typecheck::VarInfo;
use pug_ir::{split_bis, BoundConfig, ConcreteInputs, Extent, GpuConfig, Segment};
use pug_smt::{Model, Sort, SmtResult, TermId};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Replay refuses witness configurations launching more threads than this
/// (the classification must stay cheap relative to the SMT query).
const REPLAY_THREAD_CAP: u64 = 1024;

/// Check a kernel for intra-barrier-interval data races, parametrically.
pub fn check_races(
    unit: &KernelUnit,
    cfg: &GpuConfig,
    opts: &CheckOptions,
) -> Result<Report, Error> {
    let started = Instant::now();
    let mut sess = Session::new(cfg, opts);
    let bound = cfg.bind(&mut sess.ctx, "");

    let segments = pug_ir::split_segments(&unit.kernel.body)?;
    let mut assumptions: Vec<TermId> = bound.constraints.clone();

    for (i, seg) in segments.iter().enumerate() {
        let (region, extra) = match seg {
            Segment::Straight(stmts) => {
                let bis = split_bis(stmts)?;
                let conc = sess.conc_map();
                let region = extract_region(
                    &mut sess.ctx,
                    unit,
                    &bound,
                    &bis,
                    ExtractOptions {
                        tag: &format!("r{i}"),
                        entry_versions: HashMap::new(),
                        extra_locals: vec![],
                        region: format!("seg{i}"),
                        concretize: conc,
                    },
                )?;
                (region, Vec::new())
            }
            Segment::Loop { init, cond, update, body, .. } => {
                // One symbolic iteration with the header's membership
                // constraint (races across iterations are separated by the
                // in-loop barrier).
                let header =
                    pug_ir::normalize_header(init, cond, update).ok_or_else(|| {
                        Error::AlignmentFailed {
                            detail: "race checking needs a recognizable loop header".into(),
                        }
                    })?;
                let w = bound.bits;
                let kvar = sess.ctx.mk_var(&format!("k!race{i}"), Sort::BitVec(w));
                let params = crate::equiv::scalar_params(&[unit]);
                let membership = crate::equiv::space_constraint_pub(
                    &mut sess,
                    &bound,
                    &header.space,
                    kvar,
                    &params,
                )?;
                let bis = split_bis(body)?;
                let conc = sess.conc_map();
                let region = extract_region(
                    &mut sess.ctx,
                    unit,
                    &bound,
                    &bis,
                    ExtractOptions {
                        tag: &format!("r{i}"),
                        entry_versions: HashMap::new(),
                        extra_locals: vec![(header.var.clone(), kvar, false)],
                        region: format!("seg{i}"),
                        concretize: conc,
                    },
                )?;
                (region, vec![membership])
            }
        };
        assumptions.extend(region.outputs.assumptions.iter().copied());

        sess.enter_seg(&format!("bi:{i}"));
        if let Some(v) =
            race_in_region(&mut sess, &bound, unit, cfg, &region, &assumptions, &extra, i)?
        {
            return Ok(sess.take_report(v, started));
        }
        sess.exit_seg();
    }
    let soundness = sess.soundness;
    Ok(sess.take_report(Verdict::Verified(soundness), started))
}

#[allow(clippy::too_many_arguments)]
fn race_in_region(
    sess: &mut Session,
    bound: &BoundConfig,
    unit: &KernelUnit,
    cfg: &GpuConfig,
    region: &ParamRegion,
    assumptions: &[TermId],
    extra: &[TermId],
    seg_ix: usize,
) -> Result<Option<Verdict>, Error> {
    // Two distinct symbolic threads.
    let w = bound.bits;
    let mk = |sess: &mut Session, n: &str| {
        let t = sess.ctx.mk_var(&format!("{n}!race{seg_ix}"), Sort::BitVec(w));
        t
    };
    let t1 = ThreadRef {
        tid: [mk(sess, "t1.x"), mk(sess, "t1.y"), mk(sess, "t1.z")],
        bid: [mk(sess, "t1.bx"), mk(sess, "t1.by")],
    };
    let t2 = ThreadRef {
        tid: [mk(sess, "t2.x"), mk(sess, "t2.y"), mk(sess, "t2.z")],
        bid: [mk(sess, "t2.bx"), mk(sess, "t2.by")],
    };
    let r1 = thread_range(&mut sess.ctx, bound, t1.tid, t1.bid);
    let r2 = thread_range(&mut sess.ctx, bound, t2.tid, t2.bid);

    let subst = |sess: &mut Session, t: TermId, to: ThreadRef| -> TermId {
        let c = region.thread;
        let mut map = HashMap::new();
        for i in 0..3 {
            map.insert(c.tid[i], to.tid[i]);
        }
        for i in 0..2 {
            map.insert(c.bid[i], to.bid[i]);
        }
        sess.ctx.substitute(t, &map)
    };

    // Distinctness: some tid component differs (same-block case), or any
    // coordinate differs (cross-block, global arrays only).
    let tids_differ = {
        let mut d = sess.ctx.mk_false();
        for i in 0..3 {
            let ne = sess.ctx.mk_neq(t1.tid[i], t2.tid[i]);
            d = sess.ctx.mk_or(d, ne);
        }
        d
    };
    let same_block = {
        let bx = sess.ctx.mk_eq(t1.bid[0], t2.bid[0]);
        let by = sess.ctx.mk_eq(t1.bid[1], t2.bid[1]);
        sess.ctx.mk_and(bx, by)
    };
    let coords_differ = {
        let mut d = tids_differ;
        for i in 0..2 {
            let ne = sess.ctx.mk_neq(t1.bid[i], t2.bid[i]);
            d = sess.ctx.mk_or(d, ne);
        }
        d
    };

    let accesses = &region.log;
    for (ai, a) in accesses.iter().enumerate() {
        for b in accesses.iter().skip(ai) {
            if a.array != b.array || (!a.is_write && !b.is_write) {
                continue;
            }
            let shared = matches!(
                unit.types.vars.get(&a.array),
                Some(VarInfo::SharedArray { .. })
            );
            let addr1 = subst(sess, a.index, t1);
            let g1 = subst(sess, a.guard, t1);
            let addr2 = subst(sess, b.index, t2);
            let g2 = subst(sess, b.guard, t2);

            let mut asserts = assumptions.to_vec();
            asserts.extend(extra.iter().copied());
            asserts.push(r1);
            asserts.push(r2);
            if shared {
                asserts.push(same_block);
                asserts.push(tids_differ);
            } else {
                asserts.push(coords_differ);
            }
            asserts.push(g1);
            asserts.push(g2);
            let collide = sess.ctx.mk_eq(addr1, addr2);
            asserts.push(collide);

            // Satisfiability query (not validity): negate `false` as goal.
            let goal = sess.ctx.mk_false();
            match sess.query(&format!("race[{}#{seg_ix}]", a.array), &asserts, goal) {
                SmtResult::Unsat => {}
                SmtResult::Unknown => return Ok(Some(Verdict::Timeout)),
                SmtResult::Sat(model) => {
                    // The model is free to pick enormous coordinates for
                    // the witness threads; a replayable schedule wants a
                    // small launch. Prefer a model of the same query with
                    // every coordinate (and symbolic extent) bounded by a
                    // small constant — when the race only manifests at
                    // large coordinates, the original model stands and the
                    // replay cap decides.
                    let model = minimize_witness(
                        sess, bound, cfg, &asserts, t1, t2, seg_ix, &a.array,
                    )
                    .unwrap_or(model);
                    let kind = match (a.is_write, b.is_write) {
                        (true, true) => "write-write",
                        _ => "read-write",
                    };
                    let class = classify_race(sess, unit, cfg, bound, &model, &a.array, t1, t2);
                    sess.note_race(class.is_provable());
                    let tag = match &class {
                        RaceClass::Provable { .. } => "provable",
                        RaceClass::Potential { .. } => "potential",
                    };
                    let report = BugReport::new(
                        BugKind::DataRace,
                        format!(
                            "{kind} race on `{}` within a barrier interval (segment {seg_ix}, \
                             {tag})",
                            a.array
                        ),
                        model,
                        &sess.ctx,
                    )
                    .with_race(class);
                    return Ok(Some(Verdict::Bug(report)));
                }
            }
        }
    }
    Ok(None)
}

/// Re-solve a `Sat` race query with the witness coordinates and every
/// symbolic extent bounded by a small constant, so the witness launch
/// fits the replay cap. Two rounds with a growing bound; `None` when the
/// race needs coordinates larger than both (the caller keeps the
/// unbounded model).
#[allow(clippy::too_many_arguments)]
fn minimize_witness(
    sess: &mut Session,
    bound: &BoundConfig,
    cfg: &GpuConfig,
    asserts: &[TermId],
    t1: ThreadRef,
    t2: ThreadRef,
    seg_ix: usize,
    array: &str,
) -> Option<Model> {
    let w = bound.bits;
    // The second tier is sized so two symbolic extents (the common 1-D
    // symbolic launch) land exactly on the replay cap (32 × 32 = 1024),
    // and is large enough to reach index wraparound at 8-bit widths —
    // wrap collisions like `b·bdim + t ≡ t' (mod 2^8)` need coordinate
    // products past 256.
    for bnd in [4u64, 32] {
        let lim = sess.ctx.mk_bv_const(bnd, w);
        let mut asserts = asserts.to_vec();
        for t in [&t1, &t2] {
            for c in t.tid.iter().chain(t.bid.iter()) {
                let lt = sess.ctx.mk_bv_ult(*c, lim);
                asserts.push(lt);
            }
        }
        for i in 0..3 {
            if cfg.bdim[i] == Extent::Sym {
                let le = sess.ctx.mk_bv_ule(bound.bdim[i], lim);
                asserts.push(le);
            }
        }
        for i in 0..2 {
            if cfg.gdim[i] == Extent::Sym {
                let le = sess.ctx.mk_bv_ule(bound.gdim[i], lim);
                asserts.push(le);
            }
        }
        let goal = sess.ctx.mk_false();
        if let SmtResult::Sat(m) =
            sess.query(&format!("race-min[{array}#{seg_ix}<{bnd}]"), &asserts, goal)
        {
            return Some(m);
        }
    }
    None
}

/// Classify a `Sat` race model as *provable* or *potential* by replaying
/// the witness schedule through the concrete interpreter.
///
/// The classification pipeline: (1) read the two witness threads, a fully
/// concrete configuration and the scalar parameters off the model
/// (unconstrained variables default to 0; extents are clamped to ≥ 1 and
/// shrunk around the witness threads when the model's launch exceeds the
/// replay cap);
/// (2) replay the kernel under the natural-order schedule with access
/// logging; (3) search the log for a same-interval conflicting access pair
/// between exactly the two witness threads. Any failure along the way —
/// too many threads, an interpreter-unsupported construct, or a log with
/// no conflict — yields [`RaceClass::Potential`] with the blocker named.
#[allow(clippy::too_many_arguments)]
fn classify_race(
    sess: &mut Session,
    unit: &KernelUnit,
    cfg: &GpuConfig,
    bound: &BoundConfig,
    model: &Model,
    array: &str,
    t1: ThreadRef,
    t2: ThreadRef,
) -> RaceClass {
    // (1) Witness thread coordinates off the model.
    let coords = |sess: &mut Session, t: &ThreadRef| -> ([u64; 3], [u64; 2]) {
        (
            [
                model.eval_bv(&sess.ctx, t.tid[0]),
                model.eval_bv(&sess.ctx, t.tid[1]),
                model.eval_bv(&sess.ctx, t.tid[2]),
            ],
            [model.eval_bv(&sess.ctx, t.bid[0]), model.eval_bv(&sess.ctx, t.bid[1])],
        )
    };
    let c1 = coords(sess, &t1);
    let c2 = coords(sess, &t2);

    // Concrete configuration from the witness model. The model is free to
    // pick huge extents for dimensions nothing constrains; when the launch
    // would exceed the replay cap, shrink every *symbolic* extent to just
    // cover the two witness threads — the replay itself validates the
    // shrink (a race that only manifests at the larger extent simply fails
    // to reproduce and degrades to Potential).
    let ext = |sess: &mut Session, e: Extent, t: TermId| -> u64 {
        match e {
            Extent::Const(v) => v,
            Extent::Sym => model.eval_bv(&sess.ctx, t).max(1),
        }
    };
    let mut bdim = [
        ext(sess, cfg.bdim[0], bound.bdim[0]),
        ext(sess, cfg.bdim[1], bound.bdim[1]),
        ext(sess, cfg.bdim[2], bound.bdim[2]),
    ];
    let mut gdim =
        [ext(sess, cfg.gdim[0], bound.gdim[0]), ext(sess, cfg.gdim[1], bound.gdim[1])];
    let launch = |bdim: [u64; 3], gdim: [u64; 2]| {
        gdim.iter().fold(bdim.iter().fold(1u64, |a, &v| a.saturating_mul(v)), |a, &v| {
            a.saturating_mul(v)
        })
    };
    if launch(bdim, gdim) > REPLAY_THREAD_CAP {
        for (i, d) in bdim.iter_mut().enumerate() {
            if cfg.bdim[i] == Extent::Sym {
                *d = c1.0[i].max(c2.0[i]) + 1;
            }
        }
        for (i, d) in gdim.iter_mut().enumerate() {
            if cfg.gdim[i] == Extent::Sym {
                *d = c1.1[i].max(c2.1[i]) + 1;
            }
        }
    }
    let total = launch(bdim, gdim);
    if total > REPLAY_THREAD_CAP {
        return RaceClass::Potential {
            blocked: format!(
                "witness configuration launches {total} threads (replay cap \
                 {REPLAY_THREAD_CAP})"
            ),
        };
    }
    let [bx, by, bz] = bdim;
    let [gx, gy] = gdim;
    let ccfg = GpuConfig {
        bits: cfg.bits,
        bdim: [Extent::Const(bx), Extent::Const(by), Extent::Const(bz)],
        gdim: [Extent::Const(gx), Extent::Const(gy)],
    };

    // Scalar parameters: pinned values win, otherwise read off the model
    // (the lowering binds parameters by bare name, so `mk_var` resolves to
    // the same symbol the encoded constraints mention).
    let mut inputs = ConcreteInputs::default();
    let w = bound.bits;
    let conc = sess.conc_map();
    for (name, info) in &unit.types.vars {
        if matches!(info, VarInfo::Scalar { is_param: true, .. }) {
            let v = match conc.get(name) {
                Some(&v) => v,
                None => {
                    let t = sess.ctx.mk_var(name, Sort::BitVec(w));
                    model.eval_bv(&sess.ctx, t)
                }
            };
            inputs.scalars.insert(name.clone(), v);
        }
    }

    // (2) Replay with access logging. Arrays start all-zero, matching both
    // the interpreter's sparse default and the model's default for
    // unconstrained input cells.
    let (_, log) = match pug_ir::run_concrete_logged(&unit.kernel, &unit.types, &ccfg, &inputs) {
        Ok(r) => r,
        Err(e) => {
            return RaceClass::Potential {
                blocked: format!("replay blocked by an unsupported construct: {e}"),
            }
        }
    };

    // (3) Find a same-interval conflicting pair between the two witness
    // threads on the reported array.
    let of_thread = |a: &pug_ir::ConcreteAccess, c: &([u64; 3], [u64; 2])| {
        a.array == array && a.tid == c.0 && a.bid == c.1
    };
    for a1 in log.iter().filter(|a| of_thread(a, &c1)) {
        for a2 in log.iter().filter(|a| of_thread(a, &c2)) {
            let distinct = a1.tid != a2.tid || a1.bid != a2.bid;
            if distinct && a1.bi == a2.bi && a1.index == a2.index && (a1.is_write || a2.is_write)
            {
                let mut schedule = String::new();
                let _ = writeln!(
                    schedule,
                    "  config: bdim=({bx},{by},{bz}) gdim=({gx},{gy})"
                );
                let mut scalars: Vec<_> = inputs.scalars.iter().collect();
                scalars.sort();
                for (name, v) in scalars {
                    let _ = writeln!(schedule, "  scalar: {name} = {v}");
                }
                let acc = |a: &pug_ir::ConcreteAccess| {
                    format!(
                        "block ({},{}) thread ({},{},{}) {} `{}`[{}]",
                        a.bid[0],
                        a.bid[1],
                        a.tid[0],
                        a.tid[1],
                        a.tid[2],
                        if a.is_write { "writes" } else { "reads" },
                        a.array,
                        a.index
                    )
                };
                let _ = writeln!(
                    schedule,
                    "  barrier interval #{}: {} and {} with no intervening barrier",
                    a1.bi,
                    acc(a1),
                    acc(a2)
                );
                return RaceClass::Provable { schedule };
            }
        }
    }
    RaceClass::Potential {
        blocked: "replay ran but did not reproduce the conflicting access pair under the \
                  natural-order schedule"
            .into(),
    }
}
