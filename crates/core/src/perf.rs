//! Performance-defect checks: shared-memory bank conflicts and
//! non-coalesced global accesses.
//!
//! These are the "performance bugs" of the PUG/GKLEE lineage (Table I;
//! §I lists coalescing and bank-conflict elimination as the optimizations
//! whose *correctness* PUGpara checks — these analyses detect when the
//! optimization is actually needed). Both are parameterized: the thread
//! pairs are symbolic.
//!
//! Model (compute-capability 1.x, as in the paper's CUDA 2.0 era):
//! * 16 shared-memory banks, one 32-bit word wide: bank = address mod 16;
//!   a conflict is two distinct addresses in one half-warp mapping to the
//!   same bank.
//! * A half-warp is 16 consecutive threads by linearized id
//!   `tid.x + tid.y * bdim.x`; a global access is coalesced when thread
//!   `t+1` touches `address(t) + 1`.

use crate::equiv::{CheckOptions, QueryStat, Session};
use crate::error::Error;
use crate::kernel::KernelUnit;
use crate::param::{extract_region, thread_range, ExtractOptions};
use crate::resolve::ThreadRef;
use crate::verdict::{BugKind, BugReport};
use pug_cuda::typecheck::VarInfo;
use pug_ir::{split_bis, GpuConfig, Segment};
use pug_smt::{SmtResult, Sort, TermId};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Findings of a performance analysis (not verdicts: these are warnings).
#[derive(Clone, Debug)]
pub struct PerfReport {
    pub findings: Vec<BugReport>,
    pub queries: Vec<QueryStat>,
    pub elapsed: Duration,
}

const BANKS: u64 = 16;
const HALF_WARP: u64 = 16;

/// Detect shared-memory bank conflicts, parametrically.
pub fn check_bank_conflicts(
    unit: &KernelUnit,
    cfg: &GpuConfig,
    opts: &CheckOptions,
) -> Result<PerfReport, Error> {
    analyze(unit, cfg, opts, Analysis::BankConflicts)
}

/// Detect non-coalesced global-memory accesses, parametrically.
pub fn check_coalescing(
    unit: &KernelUnit,
    cfg: &GpuConfig,
    opts: &CheckOptions,
) -> Result<PerfReport, Error> {
    analyze(unit, cfg, opts, Analysis::Coalescing)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Analysis {
    BankConflicts,
    Coalescing,
}

fn analyze(
    unit: &KernelUnit,
    cfg: &GpuConfig,
    opts: &CheckOptions,
    which: Analysis,
) -> Result<PerfReport, Error> {
    let started = Instant::now();
    let mut sess = Session::new(cfg, opts);
    let bound = cfg.bind(&mut sess.ctx, "");
    let w = bound.bits;

    let mut findings = Vec::new();
    let segments = pug_ir::split_segments(&unit.kernel.body)?;
    let mut assumptions: Vec<TermId> = bound.constraints.clone();

    for (i, seg) in segments.iter().enumerate() {
        // One symbolic iteration for loop segments, as in the race checker.
        type SegmentEnv = (Vec<pug_cuda::Stmt>, Vec<(String, TermId, bool)>, Vec<TermId>);
        let (stmts, extra_locals, mut extra): SegmentEnv =
            match seg {
                Segment::Straight(sts) => (sts.clone(), vec![], vec![]),
                Segment::Loop { init, cond, update, body, .. } => {
                    let Some(header) = pug_ir::normalize_header(init, cond, update) else {
                        continue; // unrecognized loop: skip (perf analysis is best-effort)
                    };
                    let kvar = sess.ctx.mk_var(&format!("k!perf{i}"), Sort::BitVec(w));
                    let params = crate::equiv::scalar_params(&[unit]);
                    let Ok(membership) = crate::equiv::space_constraint_pub(
                        &mut sess,
                        &bound,
                        &header.space,
                        kvar,
                        &params,
                    ) else {
                        continue;
                    };
                    (body.clone(), vec![(header.var.clone(), kvar, false)], vec![membership])
                }
            };
        let bis = split_bis(&stmts)?;
        let conc = sess.conc_map();
        let region = extract_region(
            &mut sess.ctx,
            unit,
            &bound,
            &bis,
            ExtractOptions {
                tag: &format!("p{i}"),
                entry_versions: HashMap::new(),
                extra_locals,
                region: format!("seg{i}"),
                concretize: conc,
            },
        )?;
        assumptions.extend(region.outputs.assumptions.iter().copied());
        extra.extend(assumptions.iter().copied());

        // Two symbolic threads of the same block.
        let mk = |sess: &mut Session, n: &str| {
            sess.ctx.mk_var(&format!("{n}!perf{i}"), Sort::BitVec(w))
        };
        let bid = [mk(&mut sess, "p.bx"), mk(&mut sess, "p.by")];
        let t1 = ThreadRef { tid: [mk(&mut sess, "p1.x"), mk(&mut sess, "p1.y"), mk(&mut sess, "p1.z")], bid };
        let t2 = ThreadRef { tid: [mk(&mut sess, "p2.x"), mk(&mut sess, "p2.y"), mk(&mut sess, "p2.z")], bid };
        let r1 = thread_range(&mut sess.ctx, bound_ref(&bound), t1.tid, t1.bid);
        let r2 = thread_range(&mut sess.ctx, bound_ref(&bound), t2.tid, t2.bid);

        let subst = |sess: &mut Session, t: TermId, to: ThreadRef| -> TermId {
            let c = region.thread;
            let mut map = HashMap::new();
            for j in 0..3 {
                map.insert(c.tid[j], to.tid[j]);
            }
            for j in 0..2 {
                map.insert(c.bid[j], to.bid[j]);
            }
            sess.ctx.substitute(t, &map)
        };

        // Linearized thread ids and the same-half-warp / successor shapes.
        let lin = |sess: &mut Session, t: ThreadRef| -> TermId {
            let m = sess.ctx.mk_bv_mul(t.tid[1], bound.bdim[0]);
            sess.ctx.mk_bv_add(t.tid[0], m)
        };
        let lin1 = lin(&mut sess, t1);
        let lin2 = lin(&mut sess, t2);
        let hw = sess.ctx.mk_bv_const(HALF_WARP, w);
        let warp1 = sess.ctx.mk_bv_udiv(lin1, hw);
        let warp2 = sess.ctx.mk_bv_udiv(lin2, hw);
        let same_half_warp = sess.ctx.mk_eq(warp1, warp2);
        let one = sess.ctx.mk_bv_const(1, w);
        let lin1p = sess.ctx.mk_bv_add(lin1, one);
        let successors = sess.ctx.mk_eq(lin1p, lin2);

        sess.enter_seg(&format!("bi:{i}"));
        let mut reported: Vec<String> = Vec::new();
        for a in &region.log {
            let info = unit.types.vars.get(&a.array);
            let is_shared = matches!(info, Some(VarInfo::SharedArray { .. }));
            let is_global = matches!(info, Some(VarInfo::GlobalArray { .. }));
            let relevant = match which {
                Analysis::BankConflicts => is_shared,
                Analysis::Coalescing => is_global,
            };
            if !relevant || reported.contains(&a.array) {
                continue;
            }
            let addr1 = subst(&mut sess, a.index, t1);
            let g1 = subst(&mut sess, a.guard, t1);
            let addr2 = subst(&mut sess, a.index, t2);
            let g2 = subst(&mut sess, a.guard, t2);

            let mut asserts = extra.clone();
            asserts.extend([r1, r2, g1, g2]);
            let label = match which {
                Analysis::BankConflicts => {
                    let banks = sess.ctx.mk_bv_const(BANKS, w);
                    let b1 = sess.ctx.mk_bv_urem(addr1, banks);
                    let b2 = sess.ctx.mk_bv_urem(addr2, banks);
                    let same_bank = sess.ctx.mk_eq(b1, b2);
                    let diff_addr = sess.ctx.mk_neq(addr1, addr2);
                    asserts.extend([same_half_warp, same_bank, diff_addr]);
                    format!("bank-conflict[{}#{i}]", a.array)
                }
                Analysis::Coalescing => {
                    let addr1p = sess.ctx.mk_bv_add(addr1, one);
                    let non_contiguous = sess.ctx.mk_neq(addr1p, addr2);
                    asserts.extend([same_half_warp, successors, non_contiguous]);
                    format!("non-coalesced[{}#{i}]", a.array)
                }
            };
            let goal = sess.ctx.mk_false();
            match sess.query(&label, &asserts, goal) {
                SmtResult::Unsat => {}
                SmtResult::Unknown => break,
                SmtResult::Sat(model) => {
                    let kind = match which {
                        Analysis::BankConflicts => BugKind::BankConflict,
                        Analysis::Coalescing => BugKind::NonCoalesced,
                    };
                    let what = match which {
                        Analysis::BankConflicts => "bank conflict on",
                        Analysis::Coalescing => "non-coalesced access to",
                    };
                    findings.push(BugReport::new(
                        kind,
                        format!("{what} `{}` (segment {i})", a.array),
                        model,
                        &sess.ctx,
                    ));
                    reported.push(a.array.clone());
                }
            }
        }
        sess.exit_seg();
    }
    Ok(PerfReport { findings, queries: sess.take_queries(), elapsed: started.elapsed() })
}

fn bound_ref(b: &pug_ir::BoundConfig) -> &pug_ir::BoundConfig {
    b
}
