//! Functional equivalence checking of a kernel and its optimized version —
//! the paper's headline application (§II, §IV-B, §V).
//!
//! Two encoders are provided:
//!
//! * [`check_equivalence_nonparam`] — the §III baseline: both kernels are
//!   serialized for a *concrete* thread count and the final arrays compared
//!   at a fresh symbolic index. Complete for that configuration, blows up
//!   with n.
//! * [`check_equivalence_param`] — the §IV contribution: one symbolic
//!   thread per kernel. Output cells are resolved through instantiated CA
//!   chains; kernels with structure-preserved loops are compared body-wise
//!   after loop alignment (§IV-E). Three query families are issued:
//!   1. **value** — on cells covered by both kernels, the written values
//!      agree (bugs found here are always real);
//!   2. **output coverage** — the two kernels write the same cell set,
//!      proven by witness correspondences between their threads;
//!   3. **read coverage** — every shared-memory read is covered by a
//!      writer, exposing hidden configuration assumptions (the non-square
//!      Transpose block of §IV-B).
//!
//! In [`Mode::FastBugHunt`] families 2–3 are skipped (the paper's §IV-D
//! fast bug hunting: reported bugs are real, proofs are under-approximate).

use crate::error::Error;
use crate::kernel::KernelUnit;
use crate::param::{extract_region, thread_range, ExtractOptions, ParamRegion};
use crate::resolve::{CoverageObligation, Instantiation, ResolvedOutput, Resolver, ThreadRef};
use crate::verdict::{BugKind, BugReport, Soundness, Verdict};
use pug_cuda::ast::{BinOp, Builtin, Dim, Expr, Stmt};
use pug_cuda::typecheck::VarInfo;
use pug_ir::{
    align_headers, normalize_header, split_bis, Alignment, BoundConfig, GpuConfig, LoopSpace,
    Segment,
};
use crate::portfolio::{QueryCache, WorkerPool};
use pug_obs::{MetricsRegistry, MetricsSnapshot, TraceSpan};
use pug_smt::{
    assert_fingerprint, check_detailed_with, Budget, CancelToken, CheckStats, Ctx, LearntRing, Op,
    SimplifyConfig, SmtResult, SolveSession, Sort, TermId,
};
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Checking mode (paper §IV-A / §IV-D).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Discharge coverage obligations too; a `Verified(Sound)` verdict is a
    /// proof (when witnesses succeed).
    Prove,
    /// Only the value queries — locate property violations quickly by
    /// ignoring the quantified formulas.
    FastBugHunt,
}

/// Options shared by all checkers.
#[derive(Clone, Debug)]
pub struct CheckOptions {
    /// Wall-clock budget for the whole check (all queries share it); the
    /// paper used 5 minutes ("T.O" beyond that).
    pub timeout: Option<Duration>,
    /// Optional SAT conflict cap per query.
    pub max_conflicts: Option<u64>,
    /// Prove vs fast-bug-hunt.
    pub mode: Mode,
    /// The paper's "+C." flag: scalar parameters to pin to concrete values.
    pub concretize: HashMap<String, u64>,
    /// Cooperative cancellation: tripping this token (from a watchdog or a
    /// supervising thread) makes every layer of the pipeline yield `Unknown`
    /// within a bounded amount of work.
    pub cancel: CancelToken,
    /// Memory cap on the SAT clause database, in bytes of literal storage.
    pub max_clause_bytes: Option<usize>,
    /// Memory cap on hash-consed term nodes in the SMT context.
    pub max_term_nodes: Option<usize>,
    /// Solve the check's queries through one persistent [`SolveSession`]
    /// (committed shared prefix + assumption-guarded goals) instead of a
    /// fresh solver per query. On by default; the one-shot path remains for
    /// differential testing and benchmarking.
    pub incremental: bool,
    /// Cross-rung cache of discharged obligations, shared by the portfolio
    /// scheduler; `None` disables caching.
    pub query_cache: Option<QueryCache>,
    /// Parent trace span: every query/segment span of this check opens
    /// under it. [`TraceSpan::disabled`] (the default) records nothing and
    /// costs one branch per query.
    pub trace: TraceSpan,
    /// Metrics registry fed by the check's queries (solver counters, cache
    /// hits, CA instantiations). Disabled by default.
    pub metrics: MetricsRegistry,
    /// SAT pre/inprocessing (BVE, subsumption, vivification). On by default;
    /// the differential suites turn it off to cross-check verdicts and
    /// witnesses against the plain CDCL path.
    pub simplify: SimplifyConfig,
    /// Term canonicalization (`pug_smt::normalize`): obligations are
    /// rewritten to canonical form before fingerprinting and bit-blasting,
    /// and obligations that collapse to `⊥` are discharged with zero SAT
    /// calls. On by default; the differential suites turn it off to
    /// cross-check verdicts against the raw-term path.
    pub normalize: bool,
    /// Intra-rung obligation parallelism: how many pooled [`SolveSession`]
    /// workers race the per-array obligations of one region comparison.
    /// `0` (the default) resolves to the machine's available parallelism;
    /// the effective width is always capped at the number of output
    /// arrays, and widths below two take the plain sequential path. The
    /// pooled path screens the arrays concurrently and, on any decisive
    /// outcome (bug, timeout, error), discards the screen and re-runs the
    /// sequential loop — so verdicts, witnesses and provenance are
    /// bit-identical to `sequential()` by construction.
    pub obligation_parallelism: usize,
    /// Bounded learnt-clause exchange between pooled workers: short
    /// prefix-only learnts are published to a shared ring and imported at
    /// restart boundaries. Only affects solver-internal effort on the
    /// pooled screen (never verdicts — see DESIGN.md §5). On by default;
    /// meaningless when the check is sequential or one-shot.
    pub learnt_exchange: bool,
    /// Generalized (Presburger / Omega-test-lite) quantifier elimination:
    /// symbolic-stride loop memberships and affine witness inversions that
    /// the monotone-only `qelim` machinery cannot express. On by default;
    /// when off (or when the `core::qelim` failpoint is armed) the engine
    /// behaves exactly as before this pass existed — affected obligations
    /// fall back to the residual-drop path and the rung downgrades.
    pub generalized_qelim: bool,
}

impl Default for CheckOptions {
    fn default() -> CheckOptions {
        CheckOptions {
            timeout: None,
            max_conflicts: None,
            mode: Mode::Prove,
            concretize: HashMap::new(),
            cancel: CancelToken::new(),
            max_clause_bytes: None,
            max_term_nodes: None,
            incremental: true,
            query_cache: None,
            trace: TraceSpan::disabled(),
            metrics: MetricsRegistry::disabled(),
            simplify: SimplifyConfig::default(),
            normalize: true,
            obligation_parallelism: 0,
            learnt_exchange: true,
            generalized_qelim: true,
        }
    }
}

impl CheckOptions {
    /// With a wall-clock budget.
    pub fn with_timeout(timeout: Duration) -> CheckOptions {
        CheckOptions { timeout: Some(timeout), ..CheckOptions::default() }
    }

    /// Add a concretized parameter (the paper's "+C.").
    pub fn concretized(mut self, name: &str, value: u64) -> CheckOptions {
        self.concretize.insert(name.to_string(), value);
        self
    }

    /// Switch to fast bug hunting.
    pub fn fast_bug_hunt(mut self) -> CheckOptions {
        self.mode = Mode::FastBugHunt;
        self
    }

    /// Attach a cancellation token (shared with a watchdog/supervisor).
    pub fn with_cancel(mut self, token: CancelToken) -> CheckOptions {
        self.cancel = token;
        self
    }

    /// Disable the incremental session: every query builds a fresh solver.
    pub fn one_shot(mut self) -> CheckOptions {
        self.incremental = false;
        self
    }

    /// Attach a cross-rung query cache.
    pub fn with_query_cache(mut self, cache: QueryCache) -> CheckOptions {
        self.query_cache = Some(cache);
        self
    }

    /// Record this check's spans under `parent`.
    pub fn with_trace(mut self, parent: TraceSpan) -> CheckOptions {
        self.trace = parent;
        self
    }

    /// Feed solver/cache/CA counters into `metrics`.
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> CheckOptions {
        self.metrics = metrics;
        self
    }

    /// Disable SAT pre/inprocessing: queries solve the raw blasted CNF.
    pub fn no_simplify(mut self) -> CheckOptions {
        self.simplify = SimplifyConfig::off();
        self
    }

    /// Disable term canonicalization: queries fingerprint and blast the
    /// raw constructor-built terms.
    pub fn no_normalize(mut self) -> CheckOptions {
        self.normalize = false;
        self
    }

    /// Force the plain sequential obligation loop (the escape hatch for
    /// debugging and differential testing the pooled path against).
    pub fn sequential(mut self) -> CheckOptions {
        self.obligation_parallelism = 1;
        self
    }

    /// Pin the obligation pool width (`0` = auto-detect from the machine).
    pub fn with_obligation_parallelism(mut self, n: usize) -> CheckOptions {
        self.obligation_parallelism = n;
        self
    }

    /// Disable learnt-clause exchange between pooled workers.
    pub fn without_learnt_exchange(mut self) -> CheckOptions {
        self.learnt_exchange = false;
        self
    }

    /// Disable the generalized (Presburger) quantifier elimination; the
    /// differential suites use this to prove the fallback path still
    /// reaches the same verdicts through the degradation ladder.
    pub fn no_generalized_qelim(mut self) -> CheckOptions {
        self.generalized_qelim = false;
        self
    }
}

/// Statistics of one SMT query issued during a check.
#[derive(Clone, Debug)]
pub struct QueryStat {
    pub label: String,
    pub outcome: String,
    pub duration: Duration,
    pub stats: CheckStats,
}

/// The full result of a check: verdict plus per-query statistics.
#[derive(Clone, Debug)]
pub struct Report {
    pub verdict: Verdict,
    pub queries: Vec<QueryStat>,
    pub elapsed: Duration,
}

impl Report {
    fn new(verdict: Verdict, queries: Vec<QueryStat>, started: Instant) -> Report {
        Report { verdict, queries, elapsed: started.elapsed() }
    }

    /// Total SMT solving time across queries.
    pub fn solver_time(&self) -> Duration {
        self.queries.iter().map(|q| q.duration).sum()
    }
}

/// Shared session state for one check.
pub(crate) struct Session {
    pub ctx: Ctx,
    budget: Budget,
    queries: Vec<QueryStat>,
    conc: HashMap<String, u64>,
    bits: u32,
    pub soundness: Soundness,
    mode: Mode,
    /// The persistent incremental solver, used when `incremental` is set.
    solve: SolveSession,
    /// Un-concretized ids of premises committed into the session's shared
    /// prefix; `query` subtracts these so only the delta is re-encoded.
    committed: HashSet<TermId>,
    incremental: bool,
    cache: Option<QueryCache>,
    /// Memo for canonical fingerprints (the term DAG is append-only, so
    /// entries never go stale).
    canon_memo: HashMap<TermId, u128>,
    /// The check's root trace position plus the currently-open segment
    /// spans; queries open under the innermost. Leftover spans are closed
    /// on drop so traces stay balanced across early returns and errors.
    trace: TraceSpan,
    seg_stack: Vec<TraceSpan>,
    metrics: MetricsRegistry,
    simplify: SimplifyConfig,
    /// Session-wide canonicalizer (memo keyed on the append-only term DAG,
    /// so entries stay valid across queries and epochs).
    norm: pug_smt::normalize::Normalizer,
    normalize: bool,
    /// Requested obligation pool width (`0` = auto); resolved per region
    /// comparison against the number of output arrays.
    obl_par: usize,
    learnt_exchange: bool,
    /// Generalized (Presburger) quantifier elimination enabled for this
    /// session (see [`CheckOptions::generalized_qelim`]).
    generalized_qelim: bool,
    /// Deferred cache accounting, present only on pooled *worker* sessions:
    /// lookups read the shared cache uncounted plus a per-array local set,
    /// and every op is logged for deterministic replay at merge time.
    overlay: Option<CacheOverlay>,
    /// The lazily-created obligation worker pool. Distinct from the
    /// portfolio's rung pool on purpose: a rung job blocking on its own
    /// pool's queue would deadlock if both drew from one set of threads.
    obl_pool: Option<WorkerPool>,
}

/// One deferred cache operation of a pooled worker, replayed on the shared
/// [`QueryCache`] in deterministic (array-index) order at merge time.
#[derive(Clone, Copy, Debug)]
enum CacheOp {
    /// A lookup that was answered from `local ∪ shared` without counting;
    /// replay bumps the owning shard's hit/miss counter.
    Lookup { fp: u128, hit: bool },
    /// A proven-unsat fingerprint recorded locally; replay inserts it into
    /// the shared cache.
    Record(u128),
}

/// Worker-session cache mode: reads go through the *frozen* shared cache
/// plus a per-array local set (so an array's outcome classes depend only
/// on the array itself, never on which worker ran it or what its pool
/// siblings solved first), writes stay local, and everything is logged.
#[derive(Default)]
struct CacheOverlay {
    ops: Vec<CacheOp>,
    local: HashSet<u128>,
}

/// Master-session state saved across a pooled screen (see
/// [`Session::snapshot`]).
struct SessionSnapshot {
    ctx: Ctx,
    solve: SolveSession,
    committed: HashSet<TermId>,
    canon_memo: HashMap<TermId, u128>,
    norm: pug_smt::normalize::Normalizer,
    soundness: Soundness,
}

/// Internal control flow: `Some` means stop with this verdict.
type Stop = Option<Verdict>;

impl Session {
    pub(crate) fn mode(&self) -> Mode {
        self.mode
    }

    pub(crate) fn take_report(&mut self, verdict: Verdict, started: Instant) -> Report {
        Report::new(verdict, std::mem::take(&mut self.queries), started)
    }

    pub(crate) fn take_queries(&mut self) -> Vec<QueryStat> {
        std::mem::take(&mut self.queries)
    }

    /// The "+C." map, for forwarding into extraction (loop unrolling).
    pub(crate) fn conc_map(&self) -> HashMap<String, u64> {
        self.conc.clone()
    }

    pub fn new(cfg: &GpuConfig, opts: &CheckOptions) -> Session {
        let budget = Budget {
            max_conflicts: opts.max_conflicts,
            max_propagations: None,
            deadline: opts.timeout.map(|d| Instant::now() + d),
            max_clause_bytes: opts.max_clause_bytes,
            max_term_nodes: opts.max_term_nodes,
            cancel: opts.cancel.clone(),
        };
        Session {
            ctx: Ctx::new(),
            budget,
            queries: Vec::new(),
            conc: opts.concretize.clone(),
            bits: cfg.bits,
            // Fast bug hunting drops the coverage obligations up front, so
            // a clean run is an under-approximate proof by construction.
            soundness: match opts.mode {
                Mode::Prove => Soundness::Sound,
                Mode::FastBugHunt => Soundness::UnderApprox,
            },
            mode: opts.mode,
            solve: SolveSession::with_config(opts.simplify.clone()),
            committed: HashSet::new(),
            incremental: opts.incremental,
            cache: opts.query_cache.clone(),
            canon_memo: HashMap::new(),
            trace: opts.trace.clone(),
            seg_stack: Vec::new(),
            metrics: opts.metrics.clone(),
            simplify: opts.simplify.clone(),
            norm: pug_smt::normalize::Normalizer::new(),
            normalize: opts.normalize,
            obl_par: opts.obligation_parallelism,
            learnt_exchange: opts.learnt_exchange,
            generalized_qelim: opts.generalized_qelim,
            overlay: None,
            obl_pool: None,
        }
    }

    /// Is the generalized (Presburger) elimination usable right now? The
    /// `core::qelim` failpoint simulates an aborted elimination: armed, the
    /// engine degrades to the pre-Presburger residual-drop path.
    pub(crate) fn qelim_enabled(&self) -> bool {
        self.generalized_qelim && pug_smt::failpoints::check("core::qelim").is_none()
    }

    /// The innermost open span (segment scope or the check root).
    fn current_span(&self) -> &TraceSpan {
        self.seg_stack.last().unwrap_or(&self.trace)
    }

    /// Open a named segment scope (e.g. `bi:2`); later queries nest under
    /// it until [`Session::exit_seg`]. Scopes left open by an early return
    /// or an error are closed when the session drops.
    pub(crate) fn enter_seg(&mut self, name: &str) {
        if self.trace.is_enabled() {
            let child = self.current_span().child(name);
            self.seg_stack.push(child);
        }
    }

    /// Close the innermost segment scope.
    pub(crate) fn exit_seg(&mut self) {
        if let Some(span) = self.seg_stack.pop() {
            span.close();
        }
    }

    /// Record a CA-chain resolution for an output array: how many
    /// conditional-assignment instantiations each side contributed and how
    /// many read obligations they induced (paper §IV, Fig. 2).
    pub(crate) fn note_ca_chain(&mut self, array: &str, insts_s: usize, insts_t: usize, obligations: usize) {
        if self.metrics.is_enabled() {
            self.metrics.add("resolve.ca_instantiations", (insts_s + insts_t) as u64);
            self.metrics.add("resolve.read_obligations", obligations as u64);
        }
        if self.trace.is_enabled() {
            self.current_span().point(
                &format!("ca-chain[{array}]"),
                vec![
                    ("insts_s", insts_s.into()),
                    ("insts_t", insts_t.into()),
                    ("obligations", obligations.into()),
                ],
            );
        }
    }

    /// A coverage obligation was discharged by a ∀-elimination witness.
    pub(crate) fn note_qelim_witnessed(&mut self) {
        self.metrics.incr("qelim.witnessed");
    }

    /// The generalized (Presburger) elimination produced the constraint or
    /// witness that made a formerly-residual obligation quantifier-free.
    pub(crate) fn note_qelim_generalized(&mut self) {
        self.metrics.incr("qelim.generalized");
    }

    /// A race report was classified ([`crate::verdict::RaceClass`]).
    pub(crate) fn note_race(&mut self, provable: bool) {
        self.metrics.incr("races.reported");
        self.metrics.incr(if provable { "races.provable" } else { "races.potential" });
    }

    /// No witness shape applied: the obligation was dropped and the proof
    /// downgraded to under-approximate.
    pub(crate) fn note_qelim_dropped(&mut self, array: &str) {
        self.metrics.incr("qelim.residual_dropped");
        if self.trace.is_enabled() {
            self.current_span().point(
                &format!("qelim-drop[{array}]"),
                vec![("effect", "soundness downgraded to under-approximate".into())],
            );
        }
    }

    /// Open a fresh solve-session epoch. The persistent session accumulates
    /// permanent Tseitin gates for every term it ever blasts, and each SAT
    /// call must assign and propagate the *whole* live CNF — so an unbounded
    /// session makes query N pay O(session age) even when the query itself
    /// is tiny. Lockstep callers window the session per segment: queries
    /// inside one segment share their (large) region premises through one
    /// epoch, while the next segment starts from a clean solver and
    /// re-commits only the small accumulated base.
    pub(crate) fn begin_epoch(&mut self) {
        if !self.incremental {
            return;
        }
        self.metrics.incr("smt.epochs");
        self.solve = SolveSession::with_config(self.simplify.clone());
        self.committed.clear();
    }

    /// Commit premises into the session's shared prefix: they are reduced,
    /// blasted and asserted permanently, so later queries pay only their
    /// delta. **Only premises contained in every later query of this check
    /// may be committed** — the callers pass the monotonically growing
    /// `base` premise sets, never per-segment `extra`s.
    pub(crate) fn commit_prefix(&mut self, terms: &[TermId]) {
        if !self.incremental {
            return;
        }
        let mut fresh: Vec<TermId> = Vec::new();
        for &t in terms {
            if self.committed.insert(t) {
                let c = self.concretize(t);
                // Commit the *canonical* form: `query` normalizes its delta
                // the same way, so the subtraction stays consistent.
                let c = self.canon(c);
                fresh.push(c);
            }
        }
        if !fresh.is_empty() {
            self.solve.commit(&mut self.ctx, &fresh, &self.budget);
        }
    }

    /// Substitute concretized parameters ("+C.") into a term.
    fn concretize(&mut self, t: TermId) -> TermId {
        if self.conc.is_empty() {
            return t;
        }
        let mut map = HashMap::new();
        for (name, val) in &self.conc {
            let var = self.ctx.mk_var(name, Sort::BitVec(self.bits));
            let c = self.ctx.mk_bv_const(*val, self.bits);
            map.insert(var, c);
        }
        self.ctx.substitute(t, &map)
    }

    /// Canonical form of a (concretized) term, when normalization is on.
    /// A failpoint-aborted pass (`smt::normalize`) degrades to the raw
    /// term — sound, since every rule is equivalence-preserving — instead
    /// of poisoning the session.
    fn canon(&mut self, t: TermId) -> TermId {
        if !self.normalize {
            return t;
        }
        match pug_smt::normalize::try_normalize(&mut self.norm, &mut self.ctx, t) {
            Some(n) => n,
            None => {
                self.metrics.incr("normalize.aborted");
                t
            }
        }
    }

    /// Run `premises ⇒ goal` as an UNSAT query, recording statistics.
    ///
    /// Callers always pass the *full* premise set; already-committed
    /// premises are subtracted here on the incremental path (they are
    /// permanent clauses in the session), and the cross-rung cache is
    /// consulted on the full concretized assert set before any solving.
    pub(crate) fn query(&mut self, label: &str, premises: &[TermId], goal: TermId) -> SmtResult {
        let started = Instant::now();
        // Span guard: closes on drop, so a panic unwinding through the
        // solver (into the rung's `catch_unwind`) still balances the trace.
        let qspan = if self.trace.is_enabled() {
            Some(self.current_span().child_guard(&format!("query:{label}")))
        } else {
            None
        };
        let mut asserts: Vec<TermId> = Vec::with_capacity(premises.len() + 1);
        let mut delta: Vec<TermId> = Vec::new();
        for &p in premises {
            let committed = self.committed.contains(&p);
            let c = self.concretize(p);
            let c = self.canon(c);
            asserts.push(c);
            if !committed {
                delta.push(c);
            }
        }
        let g = self.concretize(goal);
        let g = self.canon(g);
        let ng = self.ctx.mk_not(g);
        asserts.push(ng);
        delta.push(ng);

        // Rewrite discharge: canonicalization plus one round of fact
        // propagation collapsed the obligation to `⊥` — valid, zero SAT
        // calls, and no cache traffic (re-deriving it is cheaper than a
        // lookup would be). An armed `smt::check` failpoint disables the
        // shortcut: injected SMT-layer faults must hit every query, not
        // just the ones that happen to need the solver.
        if self.normalize
            && pug_smt::failpoints::check("smt::check").is_none()
            && pug_smt::normalize::facts_refute(
                &mut self.ctx,
                &asserts[..asserts.len() - 1],
                ng,
            )
        {
            let duration = started.elapsed();
            let stats = CheckStats { discharged_by_rewrite: true, ..CheckStats::default() };
            if let Some(g) = qspan {
                g.finish(vec![
                    ("outcome", "valid (rewrite)".into()),
                    ("us", (duration.as_micros() as u64).into()),
                ]);
            }
            self.observe_query("valid (rewrite)", duration, &stats);
            self.queries.push(QueryStat {
                label: label.to_string(),
                outcome: "valid (rewrite)".into(),
                duration,
                stats,
            });
            return SmtResult::Unsat;
        }

        // Cross-rung cache: the fingerprint covers the full assert set, so
        // it is identical whichever path (or rung) would solve it.
        let fp = if self.cache.is_some() {
            Some(assert_fingerprint(&self.ctx, &asserts, &mut self.canon_memo))
        } else {
            None
        };
        if let (Some(cache), Some(f)) = (&self.cache, fp) {
            let hit = match self.overlay.as_mut() {
                // Worker mode: uncounted read of frozen-shared ∪ local,
                // logged for deterministic replay at merge.
                Some(ov) => {
                    let hit = ov.local.contains(&f) || cache.contains(f);
                    ov.ops.push(CacheOp::Lookup { fp: f, hit });
                    hit
                }
                None => cache.lookup_unsat(f),
            };
            if self.metrics.is_enabled() {
                // Per-lookup monotonic counters: the end-of-run
                // `cache.publish` gauges are overwritten by whoever
                // publishes last, so these are the only registry view that
                // survives shared registries (and the only one at all for
                // direct in-process checks that never publish).
                self.metrics.incr(if hit { "cache.lookup_hits" } else { "cache.lookup_misses" });
            }
            if hit {
                let duration = started.elapsed();
                let stats = CheckStats { cached: true, ..CheckStats::default() };
                if let Some(g) = qspan {
                    g.finish(vec![
                        ("outcome", "valid (cached)".into()),
                        ("us", (duration.as_micros() as u64).into()),
                    ]);
                }
                self.observe_query("valid (cached)", duration, &stats);
                self.queries.push(QueryStat {
                    label: label.to_string(),
                    outcome: "valid (cached)".into(),
                    duration,
                    stats,
                });
                return SmtResult::Unsat;
            }
        }

        let (r, stats) = if self.incremental {
            self.solve.check(&mut self.ctx, &delta, &self.budget)
        } else {
            check_detailed_with(&mut self.ctx, &asserts, &self.budget, &self.simplify)
        };
        if let (Some(cache), Some(f)) = (&self.cache, fp) {
            if r.is_unsat() {
                match self.overlay.as_mut() {
                    Some(ov) => {
                        ov.local.insert(f);
                        ov.ops.push(CacheOp::Record(f));
                    }
                    None => cache.record_unsat(f),
                }
            }
        }
        let outcome = match &r {
            SmtResult::Unsat => "valid",
            SmtResult::Sat(_) => "counterexample",
            SmtResult::Unknown => "timeout",
        };
        let duration = started.elapsed();
        if let Some(g) = qspan {
            g.finish(vec![
                ("outcome", outcome.into()),
                ("us", (duration.as_micros() as u64).into()),
                ("conflicts", stats.sat.conflicts.into()),
                ("cnf_clauses", stats.cnf_clauses.into()),
            ]);
        }
        self.observe_query(outcome, duration, &stats);
        self.queries.push(QueryStat {
            label: label.to_string(),
            outcome: outcome.into(),
            duration,
            stats,
        });
        r
    }

    /// Resolve the effective obligation pool width for `n_arrays`
    /// independent obligations: `0` means auto (machine parallelism),
    /// always capped at `n_arrays`. Widths below two mean "stay
    /// sequential".
    fn pool_width(&self, n_arrays: usize) -> usize {
        let requested = if self.obl_par == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.obl_par
        };
        requested.min(n_arrays)
    }

    /// The lazily-created obligation pool, grown to at least `members`
    /// threads. Reused across segments/arrays of the same check.
    fn obligation_pool(&mut self, members: usize) -> &WorkerPool {
        if self.obl_pool.as_ref().is_none_or(|p| p.threads() < members) {
            self.obl_pool = Some(WorkerPool::new(members));
        }
        self.obl_pool.as_ref().expect("pool just ensured")
    }

    /// Everything the sequential fallback needs to behave as if the pooled
    /// screen never happened: the term DAG (including the fresh-name
    /// counter), the incremental solver, the committed set and both memo
    /// tables. Taken *before* pre-resolving, restored on any decisive
    /// screen outcome.
    fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            ctx: self.ctx.clone(),
            solve: self.solve.clone(),
            committed: self.committed.clone(),
            canon_memo: self.canon_memo.clone(),
            norm: self.norm.clone(),
            soundness: self.soundness,
        }
    }

    fn restore(&mut self, snap: SessionSnapshot) {
        self.ctx = snap.ctx;
        self.solve = snap.solve;
        self.committed = snap.committed;
        self.canon_memo = snap.canon_memo;
        self.norm = snap.norm;
        self.soundness = snap.soundness;
    }

    /// Fork a pooled worker session: a full replica of the master's solver
    /// state (committed prefix CNF, gate cache, canonicalizer memos) over a
    /// clone of the term DAG, so every master `TermId` resolves identically
    /// in the worker. The worker runs under its own budget slice (child
    /// cancel token), records no trace (the master synthesizes the spans at
    /// merge), uses the deferred cache overlay, and — when a ring is given —
    /// exchanges short prefix-only learnt clauses with its siblings.
    fn fork_worker(&self, budget: Budget, ring: Option<(&Arc<LearntRing>, usize)>) -> Session {
        let mut solve = self.solve.clone();
        if let Some((ring, member)) = ring {
            solve.attach_exchange(
                ring.clone(),
                member,
                pug_sat::exchange::DEFAULT_EXPORT_MAX_LEN,
            );
        }
        Session {
            ctx: self.ctx.clone(),
            budget,
            queries: Vec::new(),
            conc: self.conc.clone(),
            bits: self.bits,
            soundness: self.soundness,
            mode: self.mode,
            solve,
            committed: self.committed.clone(),
            incremental: self.incremental,
            cache: self.cache.clone(),
            canon_memo: self.canon_memo.clone(),
            trace: TraceSpan::disabled(),
            seg_stack: Vec::new(),
            metrics: MetricsRegistry::disabled(),
            simplify: self.simplify.clone(),
            norm: self.norm.clone(),
            normalize: self.normalize,
            obl_par: 1,
            learnt_exchange: false,
            generalized_qelim: self.generalized_qelim,
            overlay: self.cache.as_ref().map(|_| CacheOverlay::default()),
            obl_pool: None,
        }
    }

    /// Feed one query's statistics into the metrics registry.
    fn observe_query(&self, outcome: &str, duration: Duration, stats: &CheckStats) {
        let m = &self.metrics;
        if !m.is_enabled() {
            return;
        }
        m.incr("queries.total");
        match outcome {
            "valid (cached)" => {
                m.incr("queries.cached");
                m.incr("queries.valid");
            }
            "valid (rewrite)" => {
                m.incr("queries.discharged_by_rewrite");
                m.incr("queries.valid");
            }
            "valid" => m.incr("queries.valid"),
            "counterexample" => m.incr("queries.counterexample"),
            _ => m.incr("queries.timeout"),
        }
        m.observe("query_us", duration);
        m.observe("solve_us", stats.solve_time);
        m.add("sat.conflicts", stats.sat.conflicts);
        m.add("sat.propagations", stats.sat.propagations);
        m.add("sat.decisions", stats.sat.decisions);
        m.add("sat.restarts", stats.sat.restarts);
        m.add("sat.learnt_clauses", stats.sat.learnt_clauses);
        m.add("sat.learnts_imported", stats.sat.learnts_imported);
        m.add("sat.vars_eliminated", stats.sat.vars_eliminated);
        m.add("sat.clauses_subsumed", stats.sat.clauses_subsumed);
        m.add("sat.clauses_vivified", stats.sat.clauses_vivified);
        m.add("smt.gates_hashconsed", stats.gates_hashconsed);
        m.add("smt.reduced_assertions", stats.reduced_assertions as u64);
        m.add("smt.clauses_reused", stats.clauses_reused as u64);
        m.add("smt.ack_selects", stats.ack_selects as u64);
        m.set_gauge("smt.cnf_vars", stats.cnf_vars as u64);
        m.set_gauge("smt.cnf_clauses", stats.cnf_clauses as u64);
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // Close any segment scopes left open by an early return (a bug
        // verdict mid-segment) or an error; the sink's structural validator
        // requires every span to close exactly once.
        while let Some(span) = self.seg_stack.pop() {
            span.close();
        }
    }
}

// ---------------------------------------------------------------------------
// Non-parameterized equivalence (§III)
// ---------------------------------------------------------------------------

/// Check equivalence with the §III encoding for a concrete configuration.
pub fn check_equivalence_nonparam(
    src: &KernelUnit,
    tgt: &KernelUnit,
    cfg: &GpuConfig,
    opts: &CheckOptions,
) -> Result<Report, Error> {
    let started = Instant::now();
    let mut sess = Session::new(cfg, opts);
    let enc_s = crate::nonparam::encode_with(&mut sess.ctx, src, cfg, "s", &opts.concretize)?;
    let enc_t = crate::nonparam::encode_with(&mut sess.ctx, tgt, cfg, "t", &opts.concretize)?;

    let mut premises = enc_s.config_constraints.clone();
    premises.extend(enc_s.assumptions.iter().copied());
    premises.extend(enc_t.assumptions.iter().copied());

    let mut outputs: Vec<String> = enc_s.written.clone();
    outputs.extend(enc_t.written.iter().cloned());
    outputs.sort();
    outputs.dedup();

    let mut goals = Vec::new();
    for name in &outputs {
        let k = sess.ctx.fresh_var(&format!("k!{name}"), Sort::BitVec(cfg.bits));
        let fs = enc_s.final_arrays[name];
        let ft = enc_t.final_arrays[name];
        let ss = sess.ctx.mk_select(fs, k);
        let st = sess.ctx.mk_select(ft, k);
        goals.push(sess.ctx.mk_eq(ss, st));
    }
    let goal = sess.ctx.mk_and_many(&goals);

    let verdict = match sess.query("equivalence(nonparam)", &premises, goal) {
        SmtResult::Unsat => Verdict::Verified(Soundness::Sound),
        SmtResult::Unknown => Verdict::Timeout,
        SmtResult::Sat(model) => Verdict::Bug(BugReport::new(
            BugKind::EquivalenceMismatch,
            format!(
                "outputs of `{}` and `{}` differ under the witness configuration",
                src.kernel.name, tgt.kernel.name
            ),
            model,
            &sess.ctx,
        )),
    };
    Ok(sess.take_report(verdict, started))
}

// ---------------------------------------------------------------------------
// Parameterized equivalence (§IV)
// ---------------------------------------------------------------------------

/// Check equivalence with the parameterized encoding (arbitrary thread
/// count; the configuration may be symbolic or partially concretized).
pub fn check_equivalence_param(
    src: &KernelUnit,
    tgt: &KernelUnit,
    cfg: &GpuConfig,
    opts: &CheckOptions,
) -> Result<Report, Error> {
    let started = Instant::now();
    let mut sess = Session::new(cfg, opts);
    let bound = cfg.bind(&mut sess.ctx, "");

    let segs_s = pug_ir::split_segments(&src.kernel.body)?;
    let segs_t = pug_ir::split_segments(&tgt.kernel.body)?;
    let loops = |segs: &[Segment]| segs.iter().any(|s| matches!(s, Segment::Loop { .. }));

    let verdict = if !loops(&segs_s) && !loops(&segs_t) {
        whole_kernel_equiv(&mut sess, src, tgt, &bound)?
    } else {
        lockstep_equiv(&mut sess, src, tgt, &bound, &segs_s, &segs_t)?
    };
    let verdict = match verdict {
        Some(v) => v,
        None => Verdict::Verified(sess.soundness),
    };
    Ok(sess.take_report(verdict, started))
}

fn whole_kernel_equiv(
    sess: &mut Session,
    src: &KernelUnit,
    tgt: &KernelUnit,
    bound: &BoundConfig,
) -> Result<Stop, Error> {
    let bis_s = split_bis(&src.kernel.body)?;
    let bis_t = split_bis(&tgt.kernel.body)?;
    let conc = sess.conc_map();
    let region_s = extract_region(
        &mut sess.ctx,
        src,
        bound,
        &bis_s,
        ExtractOptions {
            tag: "s",
            entry_versions: HashMap::new(),
            extra_locals: vec![],
            region: String::new(),
            concretize: conc,
        },
    )?;
    let conc = sess.conc_map();
    let region_t = extract_region(
        &mut sess.ctx,
        tgt,
        bound,
        &bis_t,
        ExtractOptions {
            tag: "t",
            entry_versions: HashMap::new(),
            extra_locals: vec![],
            region: String::new(),
            concretize: conc,
        },
    )?;

    let mut outputs = src.written_globals();
    outputs.extend(tgt.written_globals());
    outputs.sort();
    outputs.dedup();

    let mut base = bound.constraints.clone();
    base.extend(region_s.outputs.assumptions.iter().copied());
    base.extend(region_t.outputs.assumptions.iter().copied());

    // Every query of this check carries `base` — commit it once.
    sess.commit_prefix(&base);
    compare_regions(sess, bound, &region_s, &region_t, &outputs, &base, &[])
}

/// The term-level plan for one output array's obligations: everything
/// [`check_array`] needs, built by [`resolve_array`] **on the master
/// context** so the fresh-name trajectory (`k!…`, `obs!…`, resolver
/// internals) is identical whether the checks then run sequentially or on
/// pooled workers (worker contexts are clones, so every `TermId` here
/// resolves identically there).
struct ArrayPlan {
    array: String,
    k: TermId,
    out_s: ResolvedOutput,
    out_t: ResolvedOutput,
    prem_s: Vec<TermId>,
    prem_t: Vec<TermId>,
    obs_s: Vec<CoverageObligation>,
    obs_t: Vec<CoverageObligation>,
}

/// Build the [`ArrayPlan`] for `array`: fresh comparison index, one shared
/// observer thread, both sides' CA-chain resolution and the observer-range
/// premises. This is the only part of an array's check that allocates
/// fresh variables; the query goals themselves are built lazily in
/// [`check_array`] from pure (hash-consed, name-free) term construction.
fn resolve_array(
    sess: &mut Session,
    bound: &BoundConfig,
    region_s: &ParamRegion,
    region_t: &ParamRegion,
    array: &str,
) -> ArrayPlan {
    let k = sess.ctx.fresh_var(&format!("k!{array}"), Sort::BitVec(bound.bits));

    // One shared observer per output array: per-block shared memory is
    // compared block-for-block within the observer's (symbolic) block.
    let (out_s, prem_s, obs_s, observer) = {
        let mut r = Resolver::new(&mut sess.ctx, region_s, "s");
        let observer = r.observer(&format!("obs!{array}"));
        let o = r.resolve_output(array, k, observer);
        (o, r.all_premises(), r.obligations, observer)
    };
    let (out_t, prem_t, obs_t) = {
        let mut r = Resolver::new(&mut sess.ctx, region_t, "t");
        let o = r.resolve_output(array, k, observer);
        (o, r.all_premises(), r.obligations)
    };
    // The observer must be a real thread; its range joins every premise
    // set for this array (value, asymmetry, coverage, obligations).
    let observer_range = thread_range(&mut sess.ctx, bound, observer.tid, observer.bid);
    let mut prem_s = prem_s;
    let mut prem_t = prem_t;
    prem_s.push(observer_range);
    prem_t.push(observer_range);
    ArrayPlan { array: array.to_string(), k, out_s, out_t, prem_s, prem_t, obs_s, obs_t }
}

/// Run all query families for one planned array: value, asymmetric
/// writes, output coverage and read-coverage obligations. `Ok(None)`
/// means the array is clean; anything else is decisive for the check.
#[allow(clippy::too_many_arguments)]
fn check_array(
    sess: &mut Session,
    bound: &BoundConfig,
    plan: &ArrayPlan,
    region_s: &ParamRegion,
    region_t: &ParamRegion,
    base: &[TermId],
    extra: &[TermId],
) -> Result<Stop, Error> {
    let ArrayPlan { array, k, out_s, out_t, prem_s, prem_t, obs_s, obs_t } = plan;
    let k = *k;

    // ---- value query: co-covered cells get equal values ----
    if !out_s.insts.is_empty() && !out_t.insts.is_empty() {
        let mut premises = base.to_vec();
        premises.extend(extra.iter().copied());
        premises.extend(prem_s.iter().copied());
        premises.extend(prem_t.iter().copied());
        premises.push(out_s.cover);
        premises.push(out_t.cover);
        let goal = sess.ctx.mk_eq(out_s.value, out_t.value);
        match sess.query(&format!("value[{array}]"), &premises, goal) {
            SmtResult::Unsat => {}
            SmtResult::Unknown => return Ok(Some(Verdict::Timeout)),
            SmtResult::Sat(model) => {
                return Ok(Some(Verdict::Bug(BugReport::new(
                    BugKind::EquivalenceMismatch,
                    format!("kernels write different values to `{array}` at the witness index"),
                    model,
                    &sess.ctx,
                ))))
            }
        }
    }

    if sess.mode == Mode::FastBugHunt {
        return Ok(None);
    }

    // ---- asymmetric writes: one side writes, the other never does ----
    for (name, out, prem, other_writes) in [
        ("s", out_s, prem_s, !out_t.insts.is_empty()),
        ("t", out_t, prem_t, !out_s.insts.is_empty()),
    ] {
        if !out.insts.is_empty() && !other_writes {
            // The other kernel leaves `array[k]` at its entry value.
            let entry = region_s.entries.get(array).copied().unwrap_or_else(|| {
                region_t.entries[array]
            });
            let mut premises = base.to_vec();
            premises.extend(extra.iter().copied());
            premises.extend(prem.iter().copied());
            premises.push(out.cover);
            let old = sess.ctx.mk_select(entry, k);
            let goal = sess.ctx.mk_eq(out.value, old);
            match sess.query(&format!("asym[{array},{name}]"), &premises, goal) {
                SmtResult::Unsat => {}
                SmtResult::Unknown => return Ok(Some(Verdict::Timeout)),
                SmtResult::Sat(model) => {
                    return Ok(Some(Verdict::Bug(BugReport::new(
                        BugKind::EquivalenceMismatch,
                        format!(
                            "kernel `{name}` modifies `{array}` at a cell the other kernel never writes"
                        ),
                        model,
                        &sess.ctx,
                    ))))
                }
            }
        }
    }

    // ---- output coverage: same cell set, via witness correspondences ----
    if !out_s.insts.is_empty() && !out_t.insts.is_empty() {
        for (dir, from, from_prem, to, to_region) in [
            ("s->t", out_s, prem_s, out_t, region_t),
            ("t->s", out_t, prem_t, out_s, region_s),
        ] {
            match coverage_direction(sess, bound, from, from_prem, to, to_region, k, base, extra)? {
                DirectionOutcome::Proven => {}
                DirectionOutcome::Timeout => return Ok(Some(Verdict::Timeout)),
                DirectionOutcome::Unproven(model) => {
                    // A failed witness is not a proof of a bug for
                    // arbitrary kernels, but the model exhibits a cell
                    // covered by one kernel with no witnessed writer in
                    // the other — report it (the paper reports the
                    // analogous non-square-block case as a bug).
                    return Ok(Some(Verdict::Bug(BugReport::new(
                        BugKind::CoverageMismatch,
                        format!(
                            "output coverage of `{array}` differs ({dir}); \
                             no thread correspondence witness covers the shown cell"
                        ),
                        model,
                        &sess.ctx,
                    ))));
                }
            }
        }
    }

    // ---- read coverage obligations (hidden assumptions) ----
    for (tag, obs, prem, region) in
        [("s", obs_s, prem_s, region_s), ("t", obs_t, prem_t, region_t)]
    {
        for ob in obs.iter() {
            match obligation_check(sess, bound, ob, region, prem, base, extra)? {
                DirectionOutcome::Proven => {}
                DirectionOutcome::Timeout => return Ok(Some(Verdict::Timeout)),
                DirectionOutcome::Unproven(model) => {
                    return Ok(Some(Verdict::Bug(BugReport::new(
                        BugKind::CoverageMismatch,
                        format!(
                            "kernel `{tag}` reads `{}` at a cell no thread is witnessed \
                             to write — a hidden configuration assumption is violated \
                             (cf. the non-square Transpose block, paper §IV-B)",
                            ob.array
                        ),
                        model,
                        &sess.ctx,
                    ))));
                }
            }
        }
    }
    Ok(None)
}

/// Compare two extracted regions on the given output arrays.
///
/// With two or more output arrays and an obligation pool width ≥ 2
/// ([`CheckOptions::obligation_parallelism`]), the arrays are *screened*
/// concurrently by pooled worker sessions; any decisive screen outcome
/// falls back to this sequential loop on untouched master state, so the
/// two paths are observationally identical (see
/// [`compare_regions_pooled`]).
#[allow(clippy::too_many_arguments)]
fn compare_regions(
    sess: &mut Session,
    bound: &BoundConfig,
    region_s: &ParamRegion,
    region_t: &ParamRegion,
    outputs: &[String],
    base: &[TermId],
    extra: &[TermId],
) -> Result<Stop, Error> {
    let members = sess.pool_width(outputs.len());
    if members >= 2 {
        return compare_regions_pooled(
            sess, bound, region_s, region_t, outputs, base, extra, members,
        );
    }
    for array in outputs {
        let plan = resolve_array(sess, bound, region_s, region_t, array);
        sess.note_ca_chain(
            &plan.array,
            plan.out_s.insts.len(),
            plan.out_t.insts.len(),
            plan.obs_s.len() + plan.obs_t.len(),
        );
        if let Some(v) = check_array(sess, bound, &plan, region_s, region_t, base, extra)? {
            return Ok(Some(v));
        }
    }
    Ok(None)
}

/// One pooled worker's report for a clean (no-verdict) array.
struct CleanArray {
    queries: Vec<QueryStat>,
    cache_ops: Vec<CacheOp>,
    metrics: Option<MetricsSnapshot>,
    downgraded: bool,
}

/// Message from a pooled worker to the coordinating master.
enum WorkerMsg {
    /// Array `index` screened clean, with its deferred effects.
    Clean { index: usize, out: Box<CleanArray> },
    /// Array `index` hit a decisive outcome (bug, timeout, error or
    /// panic). The payload is irrelevant: the master discards the whole
    /// screen and re-runs sequentially.
    Decisive,
    /// Worker `member` finished (its budget slice is dead).
    Done,
}

/// Immutable inputs shared by every pooled worker.
struct PooledShared {
    bound: BoundConfig,
    region_s: ParamRegion,
    region_t: ParamRegion,
    base: Vec<TermId>,
    extra: Vec<TermId>,
    plans: Vec<ArrayPlan>,
    /// Next unclaimed array index (work stealing by atomic increment).
    next: AtomicUsize,
    /// Raised on the first decisive outcome: idle workers stop pulling.
    abort: AtomicBool,
}

/// The pooled obligation screen: fork one worker [`Session`] per pool
/// member off the master's committed state, race the per-array checks
/// across them, and
///
/// * **all clean** → merge the workers' deferred effects (query stats,
///   cache ops, metrics, soundness downgrades) into the master in array
///   index order — deterministic regardless of scheduling, because each
///   array's outcome depends only on the frozen shared state and the
///   array itself;
/// * **any decisive** (bug / timeout / error / worker panic) → cancel the
///   pool, restore the master to its pre-screen snapshot and run the
///   plain sequential loop, which is authoritative: witnesses, provenance
///   and metrics are bit-identical to a sequential run by construction
///   (injected faults are sticky, so they reproduce identically in the
///   re-run).
#[allow(clippy::too_many_arguments)]
fn compare_regions_pooled(
    sess: &mut Session,
    bound: &BoundConfig,
    region_s: &ParamRegion,
    region_t: &ParamRegion,
    outputs: &[String],
    base: &[TermId],
    extra: &[TermId],
    members: usize,
) -> Result<Stop, Error> {
    let snap = sess.snapshot();
    // Pre-resolve every array on the master, in output order: exactly the
    // fresh-variable trajectory of the sequential loop (`check_array`
    // allocates no fresh names), so fingerprints and witness terms match.
    let plans: Vec<ArrayPlan> =
        outputs.iter().map(|a| resolve_array(sess, bound, region_s, region_t, a)).collect();
    let n_arrays = plans.len();
    let counts: Vec<(usize, usize, usize)> = plans
        .iter()
        .map(|p| (p.out_s.insts.len(), p.out_t.insts.len(), p.obs_s.len() + p.obs_t.len()))
        .collect();

    let ring = (sess.incremental && sess.learnt_exchange)
        .then(|| Arc::new(LearntRing::new(pug_sat::exchange::DEFAULT_RING_CAPACITY)));
    let budgets = sess.budget.split(members);
    let tokens: Vec<CancelToken> = budgets.iter().map(|b| b.cancel.clone()).collect();
    let shared = Arc::new(PooledShared {
        bound: bound.clone(),
        region_s: region_s.clone(),
        region_t: region_t.clone(),
        base: base.to_vec(),
        extra: extra.to_vec(),
        plans,
        next: AtomicUsize::new(0),
        abort: AtomicBool::new(false),
    });
    let metrics_on = sess.metrics.is_enabled();
    let (tx, rx) = channel::<WorkerMsg>();

    let mut jobs: Vec<Box<dyn FnOnce() + Send + 'static>> = Vec::with_capacity(members);
    for (member, budget) in budgets.into_iter().enumerate() {
        let worker = sess.fork_worker(budget, ring.as_ref().map(|r| (r, member)));
        let shared = Arc::clone(&shared);
        let tx = tx.clone();
        jobs.push(Box::new(move || {
            // The unwind guard covers the whole pull loop: whatever
            // happens, `Done` is sent so the master never waits forever.
            let mut worker = worker;
            let _ = catch_unwind(AssertUnwindSafe(|| {
                let fork_soundness = worker.soundness;
                loop {
                    if shared.abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = shared.next.fetch_add(1, Ordering::Relaxed);
                    let Some(plan) = shared.plans.get(i) else { break };
                    worker.queries.clear();
                    worker.soundness = fork_soundness;
                    if let Some(ov) = worker.overlay.as_mut() {
                        ov.ops.clear();
                        ov.local.clear();
                    }
                    worker.metrics =
                        if metrics_on { MetricsRegistry::new() } else { MetricsRegistry::disabled() };
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        check_array(
                            &mut worker,
                            &shared.bound,
                            plan,
                            &shared.region_s,
                            &shared.region_t,
                            &shared.base,
                            &shared.extra,
                        )
                    }));
                    match r {
                        Ok(Ok(None)) => {
                            let out = CleanArray {
                                queries: std::mem::take(&mut worker.queries),
                                cache_ops: worker
                                    .overlay
                                    .as_mut()
                                    .map(|ov| std::mem::take(&mut ov.ops))
                                    .unwrap_or_default(),
                                metrics: metrics_on.then(|| worker.metrics.snapshot()),
                                downgraded: worker.soundness == Soundness::UnderApprox
                                    && fork_soundness != Soundness::UnderApprox,
                            };
                            if tx.send(WorkerMsg::Clean { index: i, out: Box::new(out) }).is_err() {
                                break;
                            }
                        }
                        // Bug/timeout verdict, error, or a panic inside the
                        // check: all decisive — the master re-runs anyway,
                        // so the payload is dropped here.
                        Ok(Ok(Some(_))) | Ok(Err(_)) | Err(_) => {
                            shared.abort.store(true, Ordering::Relaxed);
                            let _ = tx.send(WorkerMsg::Decisive);
                            break;
                        }
                    }
                }
            }));
            let _ = tx.send(WorkerMsg::Done);
        }));
    }
    drop(tx);
    {
        let pool = sess.obligation_pool(members);
        for job in jobs {
            pool.submit(job);
        }
    }

    let mut clean: Vec<Option<Box<CleanArray>>> = (0..n_arrays).map(|_| None).collect();
    let mut decisive = false;
    let mut done = 0usize;
    while done < members {
        match rx.recv() {
            Ok(WorkerMsg::Clean { index, out }) => clean[index] = Some(out),
            Ok(WorkerMsg::Decisive) => {
                if !decisive {
                    decisive = true;
                    for t in &tokens {
                        t.cancel();
                    }
                }
            }
            Ok(WorkerMsg::Done) => done += 1,
            // All senders dropped without `members` Done messages: a pool
            // thread died outside the unwind guard. Treat as decisive.
            Err(_) => {
                decisive = true;
                break;
            }
        }
    }

    if !decisive && clean.iter().all(Option::is_some) {
        // Deterministic merge, in array index order.
        sess.metrics.set_gauge("pool.sessions", members as u64);
        sess.metrics.add("obligations.parallel", n_arrays as u64);
        if let Some(ring) = &ring {
            sess.metrics.add("learnts.exchanged", ring.exported());
            sess.metrics.add("learnts.imported", ring.imported());
        }
        for (i, slot) in clean.into_iter().enumerate() {
            let out = *slot.expect("checked all clean");
            let (is_, it, ob) = counts[i];
            sess.note_ca_chain(&outputs[i], is_, it, ob);
            for op in &out.cache_ops {
                if let Some(cache) = &sess.cache {
                    match *op {
                        CacheOp::Lookup { fp, hit } => cache.note_lookup(fp, hit),
                        CacheOp::Record(fp) => cache.record_unsat(fp),
                    }
                }
            }
            if sess.trace.is_enabled() {
                // Synthetic spans: the workers traced nothing, so the
                // master replays one `query:` span per merged query to
                // keep traces structurally equivalent to sequential runs.
                for q in &out.queries {
                    let g = sess.current_span().child_guard(&format!("query:{}", q.label));
                    g.finish(vec![
                        ("outcome", q.outcome.clone().into()),
                        ("us", (q.duration.as_micros() as u64).into()),
                        ("pooled", 1u64.into()),
                    ]);
                }
            }
            if let Some(snapshot) = &out.metrics {
                sess.metrics.merge_from(snapshot);
            }
            if out.downgraded {
                sess.soundness = Soundness::UnderApprox;
            }
            sess.queries.extend(out.queries);
        }
        return Ok(None);
    }

    // Decisive (or lost) screen: throw it away and answer sequentially on
    // the restored master. Sticky injected faults and real bugs reproduce
    // identically; spurious worker-only failures (budget-slice exhaustion)
    // are absorbed.
    sess.restore(snap);
    sess.metrics.incr("obligations.fallback");
    for array in outputs {
        let plan = resolve_array(sess, bound, region_s, region_t, array);
        sess.note_ca_chain(
            &plan.array,
            plan.out_s.insts.len(),
            plan.out_t.insts.len(),
            plan.obs_s.len() + plan.obs_t.len(),
        );
        if let Some(v) = check_array(sess, bound, &plan, region_s, region_t, base, extra)? {
            return Ok(Some(v));
        }
    }
    Ok(None)
}

enum DirectionOutcome {
    Proven,
    Unproven(pug_smt::Model),
    Timeout,
}

/// Witness correspondences between a reference thread and writer threads.
#[derive(Clone, Copy, Debug)]
enum WitnessKind {
    /// Writer = reference thread.
    Identity,
    /// Writer = reference thread with `tid.x`/`tid.y` swapped, same block —
    /// the transpose correspondence of §IV-B (the tile keeps its block; the
    /// thread roles swap through the reassigned `xIndex`/`yIndex`).
    SwapTid,
    /// Writer = reference thread with x/y swapped on both `tid` and `bid`.
    SwapBoth,
    /// Writer's `tid.x` inverted from the address: for CAs writing at
    /// `c · τ.x` (or `τ.x << c`, or plain `τ.x`), the witness thread has
    /// `tid.x := addr / c` — the reduction correspondence.
    InvertX,
    /// General affine inversion via the Presburger bridge: for CAs writing
    /// at any affine map `c·τ.x + d`, the witness thread is
    /// `tid.x := c⁻¹·(addr − d)` (modular inverse), with a divisibility
    /// side condition when `c` is even. Only tried when the generalized
    /// qelim is enabled; the side condition is conjoined into the cover so
    /// the SMT solver re-validates the inversion in modular arithmetic.
    Affine,
}

const WITNESSES: [WitnessKind; 4] = [
    WitnessKind::Identity,
    WitnessKind::SwapTid,
    WitnessKind::SwapBoth,
    WitnessKind::InvertX,
];

const GENERALIZED_WITNESSES: [WitnessKind; 5] = [
    WitnessKind::Identity,
    WitnessKind::SwapTid,
    WitnessKind::SwapBoth,
    WitnessKind::InvertX,
    WitnessKind::Affine,
];

/// The witness shapes the session may try: the static shapes always, the
/// Presburger-backed affine inversion only when the generalized
/// elimination is usable.
fn witness_kinds(sess: &Session) -> &'static [WitnessKind] {
    if sess.qelim_enabled() {
        &GENERALIZED_WITNESSES
    } else {
        &WITNESSES
    }
}

/// Build the witnessed cover for `insts`: the disjunction over
/// instantiations of `cond ∧ range` with each instantiation's fresh thread
/// replaced by witness terms derived from `reference` (and `addr` for
/// inversion). `canonical_tid_x` is the τ.x the CA addresses are phrased
/// over. Returns `None` when the witness shape does not apply.
fn witness_cover(
    sess: &mut Session,
    bound: &BoundConfig,
    kind: WitnessKind,
    insts: &[Instantiation],
    canonical_tid_x: TermId,
    reference: ThreadRef,
    addr: TermId,
) -> Option<TermId> {
    let mut disj = sess.ctx.mk_false();
    for inst in insts {
        let (wthread, side) = match kind {
            WitnessKind::Identity => (reference, None),
            WitnessKind::SwapTid => (
                ThreadRef {
                    tid: [reference.tid[1], reference.tid[0], reference.tid[2]],
                    bid: reference.bid,
                },
                None,
            ),
            WitnessKind::SwapBoth => (
                ThreadRef {
                    tid: [reference.tid[1], reference.tid[0], reference.tid[2]],
                    bid: [reference.bid[1], reference.bid[0]],
                },
                None,
            ),
            WitnessKind::InvertX => {
                let inv = invert_x(sess, inst.canonical_addr, canonical_tid_x, addr)?;
                (
                    ThreadRef {
                        tid: [inv, reference.tid[1], reference.tid[2]],
                        bid: reference.bid,
                    },
                    None,
                )
            }
            WitnessKind::Affine => {
                let (inv, side) = crate::presburger::invert_affine(
                    &mut sess.ctx,
                    inst.canonical_addr,
                    canonical_tid_x,
                    addr,
                )?;
                (
                    ThreadRef {
                        tid: [inv, reference.tid[1], reference.tid[2]],
                        bid: reference.bid,
                    },
                    side,
                )
            }
        };
        let mut map = HashMap::new();
        for i in 0..3 {
            map.insert(inst.thread.tid[i], wthread.tid[i]);
        }
        for i in 0..2 {
            map.insert(inst.thread.bid[i], wthread.bid[i]);
        }
        let cond_w = sess.ctx.substitute(inst.cond, &map);
        let range_w = thread_range(&mut sess.ctx, bound, wthread.tid, wthread.bid);
        let mut branch = sess.ctx.mk_and(cond_w, range_w);
        if let Some(side) = side {
            branch = sess.ctx.mk_and(branch, side);
        }
        disj = sess.ctx.mk_or(disj, branch);
    }
    Some(disj)
}

/// Invert a canonical CA address `c·τx`, `τx·c`, `τx << c` or `τx` at the
/// concrete read address `addr`, yielding the witness `tid.x`.
fn invert_x(sess: &mut Session, canonical_addr: TermId, tau_x: TermId, addr: TermId) -> Option<TermId> {
    if canonical_addr == tau_x {
        return Some(addr);
    }
    match sess.ctx.op(canonical_addr).clone() {
        Op::BvMul => {
            let a = sess.ctx.args(canonical_addr).to_vec();
            let coeff = if a[0] == tau_x {
                a[1]
            } else if a[1] == tau_x {
                a[0]
            } else {
                return None;
            };
            Some(sess.ctx.mk_bv_udiv(addr, coeff))
        }
        Op::BvShl => {
            let a = sess.ctx.args(canonical_addr).to_vec();
            if a[0] != tau_x {
                return None;
            }
            Some(sess.ctx.mk_bv_lshr(addr, a[1]))
        }
        _ => None,
    }
}

/// Coverage direction check: every cell covered by `from` is covered by
/// `to`, using witness correspondences.
#[allow(clippy::too_many_arguments)]
fn coverage_direction(
    sess: &mut Session,
    bound: &BoundConfig,
    from: &ResolvedOutput,
    from_prem: &[TermId],
    to: &ResolvedOutput,
    to_region: &ParamRegion,
    k: TermId,
    base: &[TermId],
    extra: &[TermId],
) -> Result<DirectionOutcome, Error> {
    let mut last_model = None;
    'insts: for inst in &from.insts {
        for &kind in witness_kinds(sess) {
            let cover_w = witness_cover(
                sess,
                bound,
                kind,
                &to.insts,
                to_region.thread.tid[0],
                inst.thread,
                k,
            );
            let Some(cover_w) = cover_w else { continue };
            let mut premises = base.to_vec();
            premises.extend(extra.iter().copied());
            premises.extend(from_prem.iter().copied());
            premises.push(inst.cond);
            match sess.query(&format!("coverage[{kind:?}]"), &premises, cover_w) {
                SmtResult::Unsat => {
                    sess.note_qelim_witnessed();
                    if matches!(kind, WitnessKind::Affine) {
                        sess.note_qelim_generalized();
                    }
                    continue 'insts;
                }
                SmtResult::Unknown => return Ok(DirectionOutcome::Timeout),
                SmtResult::Sat(m) => last_model = Some(m),
            }
        }
        return Ok(DirectionOutcome::Unproven(last_model.expect("at least one witness ran")));
    }
    Ok(DirectionOutcome::Proven)
}

/// Read-coverage obligation: under the reading context, some witnessed
/// writer covers the read address.
fn obligation_check(
    sess: &mut Session,
    bound: &BoundConfig,
    ob: &CoverageObligation,
    region: &ParamRegion,
    resolver_prem: &[TermId],
    base: &[TermId],
    extra: &[TermId],
) -> Result<DirectionOutcome, Error> {
    let mut last_model = None;
    for &kind in witness_kinds(sess) {
        let cover_w = witness_cover(
            sess,
            bound,
            kind,
            &ob.insts,
            region.thread.tid[0],
            ob.reader,
            ob.addr,
        );
        let Some(cover_w) = cover_w else { continue };
        let mut premises = base.to_vec();
        premises.extend(extra.iter().copied());
        premises.extend(resolver_prem.iter().copied());
        premises.push(ob.guard);
        match sess.query(&format!("read-coverage[{}:{kind:?}]", ob.array), &premises, cover_w) {
            SmtResult::Unsat => {
                sess.note_qelim_witnessed();
                if matches!(kind, WitnessKind::Affine) {
                    sess.note_qelim_generalized();
                }
                return Ok(DirectionOutcome::Proven);
            }
            SmtResult::Unknown => return Ok(DirectionOutcome::Timeout),
            SmtResult::Sat(m) => last_model = Some(m),
        }
    }
    match last_model {
        Some(m) => Ok(DirectionOutcome::Unproven(m)),
        // No applicable witness shape: the obligation is unverified but
        // there is no evidence of a bug — downgrade soundness instead.
        None => {
            sess.note_qelim_dropped(&ob.array);
            sess.soundness = Soundness::UnderApprox;
            Ok(DirectionOutcome::Proven)
        }
    }
}

/// Obligation check for other checkers (postcondition, races): returns
/// `Some(verdict)` when checking must stop.
pub(crate) fn obligation_check_pub(
    sess: &mut Session,
    bound: &BoundConfig,
    ob: &CoverageObligation,
    region: &ParamRegion,
    premises: &[TermId],
) -> Result<Option<Verdict>, Error> {
    match obligation_check(sess, bound, ob, region, premises, &[], &[])? {
        DirectionOutcome::Proven => Ok(None),
        DirectionOutcome::Timeout => Ok(Some(Verdict::Timeout)),
        DirectionOutcome::Unproven(model) => Ok(Some(Verdict::Bug(BugReport::new(
            BugKind::CoverageMismatch,
            format!(
                "a read of `{}` hits a cell no thread is witnessed to write (hidden \
                 configuration assumption violated)",
                ob.array
            ),
            model,
            &sess.ctx,
        )))),
    }
}

// ---------------------------------------------------------------------------
// Lockstep (loop-aligned) equivalence — §IV-E
// ---------------------------------------------------------------------------

fn lockstep_equiv(
    sess: &mut Session,
    src: &KernelUnit,
    tgt: &KernelUnit,
    bound: &BoundConfig,
    segs_s: &[Segment],
    segs_t: &[Segment],
) -> Result<Stop, Error> {
    if segs_s.len() != segs_t.len() {
        return Err(Error::AlignmentFailed {
            detail: format!(
                "segment counts differ: {} vs {}",
                segs_s.len(),
                segs_t.len()
            ),
        });
    }
    let w = bound.bits;
    let sort = Sort::Array { index: w, elem: w };

    // All arrays (globals by name; shared arrays must match by name).
    let mut arrays = src.global_arrays();
    arrays.extend(src.shared_arrays());
    {
        let mut t_arrays = tgt.global_arrays();
        t_arrays.extend(tgt.shared_arrays());
        let mut a = arrays.clone();
        a.sort();
        let mut b = t_arrays;
        b.sort();
        if a != b {
            return Err(Error::AlignmentFailed {
                detail: "kernels declare different array sets; lockstep comparison needs \
                         matching names"
                    .into(),
            });
        }
    }

    // `requires`/`assume` facts are configuration-level and accumulate
    // across segments (they are typically stated at the top of the kernel,
    // i.e. inside segment 0).
    let mut accumulated: Vec<TermId> = bound.constraints.clone();

    for (i, (ss, ts)) in segs_s.iter().zip(segs_t.iter()).enumerate() {
        // One solve-session epoch per segment: later segments never query
        // this segment's region premises again, so carrying their gate
        // clauses forward would only tax every later propagation.
        sess.begin_epoch();
        sess.enter_seg(&format!("bi:{i}"));
        // Segment-entry state: shared between the two kernels (the
        // inductive hypothesis). Kernel-entry shared memory stays
        // uninitialized per kernel.
        let mut entries: HashMap<String, TermId> = HashMap::new();
        for name in &arrays {
            let is_shared_mem = src.shared_arrays().contains(name);
            if i == 0 && is_shared_mem {
                continue; // uninitialized at kernel entry
            }
            let t = sess.ctx.mk_var(&format!("{name}@seg{i}"), sort);
            entries.insert(name.clone(), t);
        }

        match (ss, ts) {
            (Segment::Straight(a), Segment::Straight(b)) => {
                let conc = sess.conc_map();
                let region_s = extract_region(
                    &mut sess.ctx,
                    src,
                    bound,
                    std::slice::from_ref(a),
                    ExtractOptions {
                        tag: &format!("s{i}"),
                        entry_versions: entries.clone(),
                        extra_locals: vec![],
                        region: format!("seg{i}"),
                        concretize: conc,
                    },
                )?;
                let conc = sess.conc_map();
                let region_t = extract_region(
                    &mut sess.ctx,
                    tgt,
                    bound,
                    std::slice::from_ref(b),
                    ExtractOptions {
                        tag: &format!("t{i}"),
                        entry_versions: entries,
                        extra_locals: vec![],
                        region: format!("seg{i}"),
                        concretize: conc,
                    },
                )?;
                let outputs = written_in_regions(&region_s, &region_t);
                accumulated.extend(region_s.outputs.assumptions.iter().copied());
                accumulated.extend(region_t.outputs.assumptions.iter().copied());
                let base = accumulated.clone();
                // `accumulated` only ever grows, so each segment's base is
                // contained in every later segment's queries — safe to
                // commit incrementally (the delta is the new assumptions).
                sess.commit_prefix(&base);
                if let Some(v) =
                    compare_regions(sess, bound, &region_s, &region_t, &outputs, &base, &[])?
                {
                    return Ok(Some(v));
                }
            }
            (
                Segment::Loop { init: i_s, cond: c_s, update: u_s, body: b_s, .. },
                Segment::Loop { init: i_t, cond: c_t, update: u_t, body: b_t, .. },
            ) => {
                let h_s = normalize_header(i_s, c_s, u_s).ok_or_else(|| Error::AlignmentFailed {
                    detail: "source loop header is not in a recognized form".into(),
                })?;
                let h_t = normalize_header(i_t, c_t, u_t).ok_or_else(|| Error::AlignmentFailed {
                    detail: "target loop header is not in a recognized form".into(),
                })?;
                let alignment =
                    align_headers(&h_s, &h_t).ok_or_else(|| Error::AlignmentFailed {
                        detail: format!(
                            "loop headers do not align: {:?} vs {:?}",
                            h_s.space, h_t.space
                        ),
                    })?;
                let mut extra = Vec::new();
                let kvar = sess.ctx.mk_var(&format!("k!seg{i}"), Sort::BitVec(w));
                let params = scalar_params(&[src, tgt]);
                match &alignment {
                    Alignment::SameOrder => {
                        extra.push(space_constraint(sess, bound, &h_s.space, kvar, &params)?);
                    }
                    Alignment::Reversed { pow2_bound } => {
                        // Reversed traversal: sound only for commutative-
                        // associative accumulation, and the bound must be a
                        // power of two (else the iteration sets differ).
                        if !(all_writes_accumulate(b_s, src) && all_writes_accumulate(b_t, tgt)) {
                            return Err(Error::AlignmentFailed {
                                detail: "reversed loop order needs += accumulation bodies".into(),
                            });
                        }
                        sess.soundness = Soundness::UnderApprox;
                        let bterm = lower_config_expr(sess, bound, pow2_bound, &params)?;
                        extra.push(pow2_constraint(sess, bterm));
                        extra.push(space_constraint(
                            sess,
                            bound,
                            &LoopSpace::GeometricUp {
                                start: Expr::Int(1),
                                bound: pow2_bound.clone(),
                                ratio: 2,
                            },
                            kvar,
                            &params,
                        )?);
                    }
                }
                let body_bis_s = split_bis(b_s)?;
                let body_bis_t = split_bis(b_t)?;
                let conc = sess.conc_map();
                let region_s = extract_region(
                    &mut sess.ctx,
                    src,
                    bound,
                    &body_bis_s,
                    ExtractOptions {
                        tag: &format!("s{i}"),
                        entry_versions: entries.clone(),
                        extra_locals: vec![(h_s.var.clone(), kvar, false)],
                        region: format!("seg{i}"),
                        concretize: conc,
                    },
                )?;
                let conc = sess.conc_map();
                let region_t = extract_region(
                    &mut sess.ctx,
                    tgt,
                    bound,
                    &body_bis_t,
                    ExtractOptions {
                        tag: &format!("t{i}"),
                        entry_versions: entries,
                        extra_locals: vec![(h_t.var.clone(), kvar, false)],
                        region: format!("seg{i}"),
                        concretize: conc,
                    },
                )?;
                let outputs = written_in_regions(&region_s, &region_t);
                accumulated.extend(region_s.outputs.assumptions.iter().copied());
                accumulated.extend(region_t.outputs.assumptions.iter().copied());
                let base = accumulated.clone();
                // Commit only `base`; the loop-space `extra` premises are
                // per-segment and must stay retractable.
                sess.commit_prefix(&base);
                if let Some(v) =
                    compare_regions(sess, bound, &region_s, &region_t, &outputs, &base, &extra)?
                {
                    return Ok(Some(v));
                }
            }
            _ => {
                return Err(Error::AlignmentFailed {
                    detail: format!("segment {i} kinds differ (straight vs loop)"),
                })
            }
        }
        sess.exit_seg();
    }
    Ok(None)
}

/// Arrays written in either region (their finals differ from entries).
fn written_in_regions(a: &ParamRegion, b: &ParamRegion) -> Vec<String> {
    let mut out = Vec::new();
    for r in [a, b] {
        for (name, &f) in &r.finals {
            if r.entries.get(name) != Some(&f) {
                out.push(name.clone());
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Syntactic check: every assignment to an array in `body` is `+=`.
fn all_writes_accumulate(body: &[Stmt], unit: &KernelUnit) -> bool {
    fn walk(stmts: &[Stmt], unit: &KernelUnit, ok: &mut bool) {
        for s in stmts {
            match s {
                Stmt::Assign { lhs, op, .. } => {
                    let is_array = matches!(
                        unit.types.vars.get(&lhs.name),
                        Some(VarInfo::GlobalArray { .. })
                            | Some(VarInfo::SharedArray { .. })
                            | Some(VarInfo::LocalArray { .. })
                    );
                    if is_array && *op != Some(BinOp::Add) {
                        *ok = false;
                    }
                }
                Stmt::If { then, els, .. } => {
                    walk(then, unit, ok);
                    walk(els, unit, ok);
                }
                Stmt::For { body, .. } | Stmt::While { body, .. } => walk(body, unit, ok),
                _ => {}
            }
        }
    }
    let mut ok = true;
    walk(body, unit, &mut ok);
    ok
}

/// Names of the scalar kernel parameters of `units` — the only identifiers
/// [`lower_config_expr`] may treat as loop bounds (locals are SSA-renamed
/// by the symbolic lowering and have no stable name to bind to).
pub(crate) fn scalar_params(units: &[&KernelUnit]) -> HashSet<String> {
    let mut out = HashSet::new();
    for u in units {
        for (name, info) in &u.types.vars {
            if matches!(info, VarInfo::Scalar { is_param: true, .. }) {
                out.insert(name.clone());
            }
        }
    }
    out
}

/// Lower a configuration-only expression (loop bounds) to a term.
fn lower_config_expr(
    sess: &mut Session,
    bound: &BoundConfig,
    e: &Expr,
    params: &HashSet<String>,
) -> Result<TermId, Error> {
    let w = bound.bits;
    let t = match e {
        Expr::Int(n) => sess.ctx.mk_bv_const(*n, w),
        Expr::Builtin(Builtin::Bdim(d)) => bound.bdim[dim_ix(*d)],
        Expr::Builtin(Builtin::Gdim(d)) => bound.gdim[dim_ix(*d).min(1)],
        // Scalar kernel parameters are sound bounds: the symbolic lowering
        // (`exec.rs`) binds them as free variables by the same name, so
        // `mk_var` here denotes the identical value. Gated on the
        // generalized qelim so the legacy path keeps its exact behavior.
        Expr::Ident(name) if params.contains(name) && sess.qelim_enabled() => {
            match sess.conc.get(name).copied() {
                Some(v) => sess.ctx.mk_bv_const(v, w),
                None => sess.ctx.mk_var(name, Sort::BitVec(w)),
            }
        }
        Expr::Ident(name) if params.contains(name) => {
            sess.metrics.incr("qelim.residual_dropped");
            return Err(Error::AlignmentFailed {
                detail: format!("loop bound must be configuration-only, found {e:?}"),
            });
        }
        Expr::Binary { op, lhs, rhs } => {
            let a = lower_config_expr(sess, bound, lhs, params)?;
            let b = lower_config_expr(sess, bound, rhs, params)?;
            match op {
                BinOp::Add => sess.ctx.mk_bv_add(a, b),
                BinOp::Sub => sess.ctx.mk_bv_sub(a, b),
                BinOp::Mul => sess.ctx.mk_bv_mul(a, b),
                BinOp::Div => sess.ctx.mk_bv_udiv(a, b),
                BinOp::Rem => sess.ctx.mk_bv_urem(a, b),
                BinOp::Shl => sess.ctx.mk_bv_shl(a, b),
                BinOp::Shr => sess.ctx.mk_bv_lshr(a, b),
                _ => {
                    return Err(Error::AlignmentFailed {
                        detail: format!("unsupported operator in loop bound: {op:?}"),
                    })
                }
            }
        }
        other => {
            return Err(Error::AlignmentFailed {
                detail: format!("loop bound must be configuration-only, found {other:?}"),
            })
        }
    };
    Ok(t)
}

fn dim_ix(d: Dim) -> usize {
    match d {
        Dim::X => 0,
        Dim::Y => 1,
        Dim::Z => 2,
    }
}

/// `b` is a non-zero power of two.
fn pow2_constraint(sess: &mut Session, b: TermId) -> TermId {
    let w = sess.ctx.width(b);
    let zero = sess.ctx.mk_bv_const(0, w);
    let one = sess.ctx.mk_bv_const(1, w);
    let nz = sess.ctx.mk_neq(b, zero);
    let bm1 = sess.ctx.mk_bv_sub(b, one);
    let and = sess.ctx.mk_bv_and(b, bm1);
    let p2 = sess.ctx.mk_eq(and, zero);
    sess.ctx.mk_and(nz, p2)
}

/// Membership constraint `k ∈ space` (shared with the race checker).
pub(crate) fn space_constraint_pub(
    sess: &mut Session,
    bound: &BoundConfig,
    space: &LoopSpace,
    k: TermId,
    params: &HashSet<String>,
) -> Result<TermId, Error> {
    space_constraint(sess, bound, space, k, params)
}

/// Membership constraint `k ∈ space`.
fn space_constraint(
    sess: &mut Session,
    bound: &BoundConfig,
    space: &LoopSpace,
    k: TermId,
    params: &HashSet<String>,
) -> Result<TermId, Error> {
    let w = bound.bits;
    match space {
        LoopSpace::GeometricUp { start, bound: b, ratio: 2 } => {
            if !matches!(start, Expr::Int(1)) {
                return Err(Error::AlignmentFailed {
                    detail: "geometric loops must start at 1".into(),
                });
            }
            let bt = lower_config_expr(sess, bound, b, params)?;
            let zero = sess.ctx.mk_bv_const(0, w);
            let one = sess.ctx.mk_bv_const(1, w);
            let nz = sess.ctx.mk_neq(k, zero);
            let km1 = sess.ctx.mk_bv_sub(k, one);
            let kand = sess.ctx.mk_bv_and(k, km1);
            let pow2 = sess.ctx.mk_eq(kand, zero);
            let lt = sess.ctx.mk_bv_ult(k, bt);
            let a = sess.ctx.mk_and(nz, pow2);
            Ok(sess.ctx.mk_and(a, lt))
        }
        LoopSpace::GeometricDown { start, ratio: 2 } => {
            let st = lower_config_expr(sess, bound, start, params)?;
            let zero = sess.ctx.mk_bv_const(0, w);
            let one = sess.ctx.mk_bv_const(1, w);
            let nz = sess.ctx.mk_neq(k, zero);
            let km1 = sess.ctx.mk_bv_sub(k, one);
            let kand = sess.ctx.mk_bv_and(k, km1);
            let pow2 = sess.ctx.mk_eq(kand, zero);
            let le = sess.ctx.mk_bv_ule(k, st);
            let a = sess.ctx.mk_and(nz, pow2);
            Ok(sess.ctx.mk_and(a, le))
        }
        LoopSpace::LinearUp { start, bound: b, step, inclusive } => {
            let st = lower_config_expr(sess, bound, start, params)?;
            let bt = lower_config_expr(sess, bound, b, params)?;
            let ge = sess.ctx.mk_bv_ule(st, k);
            let ub = if *inclusive {
                sess.ctx.mk_bv_ule(k, bt)
            } else {
                sess.ctx.mk_bv_ult(k, bt)
            };
            let mut c = sess.ctx.mk_and(ge, ub);
            if *step > 1 {
                let stp = sess.ctx.mk_bv_const(*step, w);
                let diff = sess.ctx.mk_bv_sub(k, st);
                let rem = sess.ctx.mk_bv_urem(diff, stp);
                let zero = sess.ctx.mk_bv_const(0, w);
                let aligned = sess.ctx.mk_eq(rem, zero);
                c = sess.ctx.mk_and(c, aligned);
            }
            Ok(c)
        }
        // Symbolic stride (`i += bdim.x` and friends): the membership set
        // is no longer expressible by the monotone qelim machinery — it
        // needs the Presburger stride encoding. When the generalized
        // elimination is off (or failpoint-aborted) this degrades to the
        // pre-Presburger behavior: the obligation is dropped as residual
        // and the caller's rung fails over to the degradation ladder.
        LoopSpace::LinearUpSym { start, bound: b, step, inclusive } => {
            if !sess.qelim_enabled() {
                sess.metrics.incr("qelim.residual_dropped");
                return Err(Error::AlignmentFailed {
                    detail: "symbolic-stride loop needs the generalized (Presburger) \
                             quantifier elimination, which is disabled"
                        .into(),
                });
            }
            let st = lower_config_expr(sess, bound, start, params)?;
            let bt = lower_config_expr(sess, bound, b, params)?;
            let stp = lower_config_expr(sess, bound, step, params)?;
            let c = crate::presburger::stride_membership(
                &mut sess.ctx,
                k,
                st,
                bt,
                stp,
                *inclusive,
            );
            sess.note_qelim_generalized();
            Ok(c)
        }
        other => Err(Error::AlignmentFailed {
            detail: format!("unsupported iteration space {other:?}"),
        }),
    }
}
