//! # pugpara — parameterized verification of GPU kernel programs
//!
//! A from-scratch implementation of **PUGpara** (Li & Gopalakrishnan,
//! *Parameterized Verification of GPU Kernel Programs*, IPPS 2012): an
//! automated symbolic verifier that checks CUDA kernels **for an arbitrary
//! number of threads** and fully symbolic inputs.
//!
//! ## What it checks
//!
//! * **Functional equivalence** of a kernel and its optimized version
//!   ([`equiv::check_equivalence_param`]) — the paper's headline
//!   application, debugging memory-coalescing and bank-conflict-elimination
//!   optimizations. The non-parameterized §III baseline
//!   ([`equiv::check_equivalence_nonparam`]) serializes a concrete thread
//!   count and is the comparison point of the paper's Tables II/III.
//! * **Post-conditions / assertions** ([`postcond`]) — the §III assertion
//!   language with implicitly-quantified specification variables.
//! * **Data races** ([`race`]) — parameterized, two symbolic threads.
//! * **Performance defects** ([`perf`]) — shared-memory bank conflicts and
//!   non-coalesced global accesses.
//!
//! ## How the parameterized encoding works (§IV)
//!
//! Only one symbolic thread is modeled. Each barrier interval yields
//! *conditional assignments* `p(t) ? v[e(t)] := w(t)` ([`param`]); the value
//! of an output cell is resolved by instantiating CAs at fresh thread
//! variables and chaining them across barrier intervals with matching
//! constraints ([`resolve`], the paper's Figures 1–2 and §IV-C). The
//! residual quantified formulas ("no thread wrote this cell") are
//! discharged by witness correspondences or the monotone-map elimination of
//! [`qelim`] (§IV-D); in [`equiv::Mode::FastBugHunt`] they are dropped —
//! reported bugs are then still real, while proofs become
//! under-approximate ([`Soundness::UnderApprox`], §IV-A "Formal Status").
//! Loops preserved by the optimization are compared body-to-body after
//! header alignment (§IV-E).
//!
//! ## Example
//!
//! ```
//! use pugpara::equiv::{check_equivalence_param, CheckOptions};
//! use pugpara::KernelUnit;
//! use pug_ir::GpuConfig;
//!
//! let naive = KernelUnit::load(pug_kernels::transpose::NAIVE).unwrap();
//! let opt = KernelUnit::load(pug_kernels::transpose::OPTIMIZED).unwrap();
//! // Arbitrary number of threads: the configuration stays symbolic.
//! let cfg = GpuConfig::symbolic_2d(8);
//! let report = check_equivalence_param(&naive, &opt, &cfg, &CheckOptions::default()).unwrap();
//! assert!(report.verdict.is_verified());
//! ```

pub mod capabilities;
pub mod equiv;
pub mod error;
pub mod explain;
pub mod kernel;
pub mod nonparam;
pub mod param;
pub mod perf;
pub mod portfolio;
pub mod postcond;
pub mod presburger;
pub mod qelim;
pub mod race;
pub mod resolve;
pub mod runner;
pub mod spec;
pub mod verdict;

pub use equiv::{
    check_equivalence_nonparam, check_equivalence_param, CheckOptions, Mode, QueryStat, Report,
};
pub use error::Error;
pub use explain::{explain_full, explain_report, explain_with, ExplainOptions};
pub use kernel::KernelUnit;
pub use perf::{check_bank_conflicts, check_coalescing, PerfReport};
pub use portfolio::{
    run_portfolio, verify_all, verify_all_on, PortfolioOptions, QueryCache, QueryCacheStats,
    ShardStats, VerifyTask, WorkerPool, DEFAULT_QUERY_CACHE_CAPACITY,
    DEFAULT_QUERY_CACHE_SHARDS,
};
pub use postcond::{check_postcondition_nonparam, check_postcondition_param};
pub use pug_smt::failpoints;
pub use race::check_races;
pub use runner::{
    run_resilient, PassRecord, Provenance, ResilientReport, Rung, RungOutcome, RungRecord,
    RunnerOptions, Watchdog,
};
pub use verdict::{BugKind, BugReport, RaceClass, Soundness, Verdict};
