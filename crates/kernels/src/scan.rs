//! Scan (parallel prefix sum) — the paper's §III recursive-postcondition
//! example: `g_odata[0] = 0 ∧ (0 < i < n−1 ⇒ g_odata[i+1] = g_odata[i] +
//! g_idata[i])`, i.e. an exclusive scan.

/// Naive single-block Hillis–Steele inclusive scan, shifted to exclusive on
/// output. Loop bounds depend on `blockDim.x`, so the parameterized checker
/// needs concretization (exactly the paper's observation that "the
/// reduction kernels contain loops whose upper bounds depend on n").
pub const NAIVE: &str = r#"
__global__ void scanNaive(int *g_odata, int *g_idata) {
    requires(blockDim.x <= 16 && blockDim.y == 1 && blockDim.z == 1);
    __shared__ int temp[blockDim.x];
    __shared__ int temp2[blockDim.x];

    unsigned int tid = threadIdx.x;
    temp[tid] = g_idata[tid];
    __syncthreads();

    for (unsigned int offset = 1; offset < blockDim.x; offset *= 2) {
        if (tid >= offset) {
            temp2[tid] = temp[tid] + temp[tid - offset];
        } else {
            temp2[tid] = temp[tid];
        }
        __syncthreads();
        temp[tid] = temp2[tid];
        __syncthreads();
    }

    if (tid == 0) {
        g_odata[0] = 0;
    }
    if (tid > 0) {
        g_odata[tid] = temp[tid - 1];
    }
}
"#;

/// The same scan with the paper's recursive post-condition (§III).
pub const NAIVE_WITH_POSTCOND: &str = r#"
__global__ void scanNaive(int *g_odata, int *g_idata) {
    requires(blockDim.x <= 16 && blockDim.y == 1 && blockDim.z == 1);
    __shared__ int temp[blockDim.x];
    __shared__ int temp2[blockDim.x];

    unsigned int tid = threadIdx.x;
    temp[tid] = g_idata[tid];
    __syncthreads();

    for (unsigned int offset = 1; offset < blockDim.x; offset *= 2) {
        if (tid >= offset) {
            temp2[tid] = temp[tid] + temp[tid - offset];
        } else {
            temp2[tid] = temp[tid];
        }
        __syncthreads();
        temp[tid] = temp2[tid];
        __syncthreads();
    }

    if (tid == 0) {
        g_odata[0] = 0;
    }
    if (tid > 0) {
        g_odata[tid] = temp[tid - 1];
    }

    int i;
    postcond(g_odata[0] == 0);
    postcond(0 <= i && i + 1 < blockDim.x =>
             g_odata[i + 1] == g_odata[i] + g_idata[i]);
}
"#;
