//! Vector addition — the quickstart kernel: the simplest coalesced,
//! race-free, loop-free kernel, with a seeded off-by-one bug variant.

/// `c[i] = a[i] + b[i]` for every covered element.
pub const KERNEL: &str = r#"
__global__ void vectorAdd(int *c, int *a, int *b, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        c[i] = a[i] + b[i];
    }
}
"#;

/// With the elementwise post-condition.
pub const WITH_POSTCOND: &str = r#"
__global__ void vectorAdd(int *c, int *a, int *b, int n) {
    requires(n <= gridDim.x * blockDim.x);
    requires(gridDim.x * blockDim.x >= gridDim.x);
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        c[i] = a[i] + b[i];
    }
    int j;
    postcond(0 <= j && j < n => c[j] == a[j] + b[j]);
}
"#;

/// Seeded bug: reads `b[i + 1]` — an address bug.
pub const BUGGY: &str = r#"
__global__ void vectorAddBuggy(int *c, int *a, int *b, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        c[i] = a[i] + b[i + 1];
    }
}
"#;
