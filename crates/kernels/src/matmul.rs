//! Matrix multiplication — the CUDA Programming Guide kernel the paper
//! cites for arbitrarily-sized blocks ([8], §IV-E "Symmetry Reduction").

/// Naive matmul: every thread computes one output element from global
/// memory. `wA` is the shared inner dimension (A is hA×wA, B is wA×wB).
pub const NAIVE: &str = r#"
__global__ void matMulNaive(int *C, int *A, int *B, int wA, int wB) {
    requires(wA > 0 && wA <= 8 && wB > 0 && wB <= 8);
    requires(blockDim.z == 1);
    requires((gridDim.x * blockDim.x) / blockDim.x == gridDim.x);
    requires((gridDim.y * blockDim.y) / blockDim.y == gridDim.y);
    requires(gridDim.x * blockDim.x <= 8 && gridDim.y * blockDim.y <= 8);
    int row = blockIdx.y * blockDim.y + threadIdx.y;
    int col = blockIdx.x * blockDim.x + threadIdx.x;

    int acc = 0;
    for (int k = 0; k < wA; k += 1) {
        acc += A[row * wA + k] * B[k * wB + col];
    }
    C[row * wB + col] = acc;
}
"#;

/// Tiled matmul: one shared-memory tile per block and a barrier-separated
/// accumulation loop. The tile loop bound depends on `wA`, so the
/// parameterized path needs concretization of `wA` (the "+C." flag), as the
/// paper does for the loop-bound-dependent kernels.
pub const TILED: &str = r#"
__global__ void matMulTiled(int *C, int *A, int *B, int wA, int wB) {
    requires(wA > 0 && wA <= 8 && wB > 0 && wB <= 8);
    requires(blockDim.z == 1);
    requires((gridDim.x * blockDim.x) / blockDim.x == gridDim.x);
    requires((gridDim.y * blockDim.y) / blockDim.y == gridDim.y);
    requires(gridDim.x * blockDim.x <= 8 && gridDim.y * blockDim.y <= 8);
    requires(blockDim.x == blockDim.y);
    __shared__ int As[blockDim.y][blockDim.x];
    __shared__ int Bs[blockDim.y][blockDim.x];

    int row = blockIdx.y * blockDim.y + threadIdx.y;
    int col = blockIdx.x * blockDim.x + threadIdx.x;

    int acc = 0;
    for (int m = 0; m < wA / blockDim.x; m += 1) {
        As[threadIdx.y][threadIdx.x] = A[row * wA + (m * blockDim.x + threadIdx.x)];
        Bs[threadIdx.y][threadIdx.x] = B[(m * blockDim.x + threadIdx.y) * wB + col];
        __syncthreads();
        for (int k = 0; k < blockDim.x; k += 1) {
            acc += As[threadIdx.y][k] * Bs[k][threadIdx.x];
        }
        __syncthreads();
    }
    C[row * wB + col] = acc;
}
"#;
