//! # pug-kernels — the evaluation corpus
//!
//! Re-implementations of the CUDA SDK 2.0 kernels the paper evaluates on
//! (§II, §V), plus seeded-bug variants for Table III and the
//! hidden-assumption experiments:
//!
//! * **Transpose** — the naive and optimized (coalesced, padded shared
//!   memory) kernels printed verbatim in §II, with address/guard-bug
//!   variants and a non-`requires`d variant exposing the square-block
//!   assumption (§IV-B).
//! * **Reduction** — modulo-arithmetic v0 and strided v1 (the §IV-E pair),
//!   the sequential-addressing v2, and buggy variants.
//! * **Scan**, **Scalar product**, **Matrix multiply**, **Bitonic sort**,
//!   **Vector add** — the remaining kernels named by the paper (GKLEE's
//!   BitonicSort blow-up example, the ACCN power-of-two assumption of the
//!   scalar-product kernel, the SDK matrix-multiply of [8]).
//!
//! Each kernel is a `&str` of CUDA C source accepted by `pug-cuda`.
//! `requires(...)` lines encode the validity assumptions the paper
//! discusses ("valid configurations"): non-degenerate sizes, no index
//! overflow at the model's bit width, square blocks where the optimization
//! demands it.

pub mod bitonic;
pub mod matmul;
pub mod reduction;
pub mod scalar_product;
pub mod scan;
pub mod stride;
pub mod transpose;
pub mod vector_add;

/// A corpus entry: name, source, and whether it is a seeded-bug variant.
#[derive(Clone, Copy, Debug)]
pub struct CorpusEntry {
    pub name: &'static str,
    pub source: &'static str,
    pub buggy: bool,
}

/// Every kernel in the corpus (for parser/typechecker sweep tests).
pub fn all_kernels() -> Vec<CorpusEntry> {
    vec![
        CorpusEntry { name: "transpose_naive", source: transpose::NAIVE, buggy: false },
        CorpusEntry { name: "transpose_optimized", source: transpose::OPTIMIZED, buggy: false },
        CorpusEntry {
            name: "transpose_optimized_unconstrained",
            source: transpose::OPTIMIZED_UNCONSTRAINED,
            buggy: false,
        },
        CorpusEntry { name: "transpose_buggy_addr", source: transpose::BUGGY_ADDR, buggy: true },
        CorpusEntry { name: "transpose_buggy_guard", source: transpose::BUGGY_GUARD, buggy: true },
        CorpusEntry { name: "reduction_v0", source: reduction::V0, buggy: false },
        CorpusEntry { name: "reduction_v1", source: reduction::V1, buggy: false },
        CorpusEntry { name: "reduction_v2", source: reduction::V2, buggy: false },
        CorpusEntry { name: "reduction_buggy_index", source: reduction::BUGGY_INDEX, buggy: true },
        CorpusEntry { name: "reduction_buggy_guard", source: reduction::BUGGY_GUARD, buggy: true },
        CorpusEntry { name: "scan_naive", source: scan::NAIVE, buggy: false },
        CorpusEntry { name: "scalar_product", source: scalar_product::KERNEL, buggy: false },
        CorpusEntry { name: "matmul_naive", source: matmul::NAIVE, buggy: false },
        CorpusEntry { name: "matmul_tiled", source: matmul::TILED, buggy: false },
        CorpusEntry { name: "bitonic_sort", source: bitonic::KERNEL, buggy: false },
        CorpusEntry { name: "grid_stride", source: stride::GRID_STRIDE, buggy: false },
        CorpusEntry {
            name: "grid_stride_reassoc",
            source: stride::GRID_STRIDE_REASSOC,
            buggy: false,
        },
        CorpusEntry { name: "param_race", source: stride::PARAM_RACE, buggy: true },
        CorpusEntry { name: "vector_add", source: vector_add::KERNEL, buggy: false },
        CorpusEntry { name: "vector_add_buggy", source: vector_add::BUGGY, buggy: true },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_corpus_parses_and_typechecks() {
        for e in all_kernels() {
            let kernels = pug_cuda::parse_program(e.source)
                .unwrap_or_else(|err| panic!("{} fails to parse: {err}", e.name));
            for k in &kernels {
                pug_cuda::check_kernel(k)
                    .unwrap_or_else(|err| panic!("{} fails to type-check: {err}", e.name));
            }
        }
    }

    #[test]
    fn corpus_has_bug_pairs() {
        let entries = all_kernels();
        assert!(entries.iter().filter(|e| e.buggy).count() >= 4);
        assert!(entries.len() >= 15);
    }
}
