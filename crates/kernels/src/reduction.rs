//! The Reduction kernels (SDK `reduce0`–`reduce2` lineage; the §IV-E loop
//! pair). All variants sum `blockDim.x` elements per block into
//! `g_odata[blockIdx.x]` through shared memory.
//!
//! `requires(blockDim.x <= 16)` bounds the block so the strided index
//! `2*s*tid.x` cannot wrap at the 8-bit model width (the real kernels rely
//! on the same no-overflow assumption at 32 bits with ≤1024 threads); the
//! bound still leaves the block size and all inputs fully symbolic.

/// v0 — naive: modulo arithmetic in the guard (highly divergent).
pub const V0: &str = r#"
__global__ void reduce0(int *g_odata, int *g_idata) {
    requires(blockDim.x <= 16 && blockDim.y == 1 && blockDim.z == 1);
    __shared__ int sdata[blockDim.x];

    unsigned int i = blockIdx.x * blockDim.x + threadIdx.x;
    sdata[threadIdx.x] = g_idata[i];
    __syncthreads();

    for (unsigned int s = 1; s < blockDim.x; s *= 2) {
        if ((threadIdx.x % (2 * s)) == 0) {
            sdata[threadIdx.x] += sdata[threadIdx.x + s];
        }
        __syncthreads();
    }

    if (threadIdx.x == 0) g_odata[blockIdx.x] = sdata[0];
}
"#;

/// v1 — optimized: strided indexing removes the slow modulo (the paper's
/// §IV-E optimization; loop structure preserved, same ascending header).
pub const V1: &str = r#"
__global__ void reduce1(int *g_odata, int *g_idata) {
    requires(blockDim.x <= 16 && blockDim.y == 1 && blockDim.z == 1);
    __shared__ int sdata[blockDim.x];

    unsigned int i = blockIdx.x * blockDim.x + threadIdx.x;
    sdata[threadIdx.x] = g_idata[i];
    __syncthreads();

    for (unsigned int s = 1; s < blockDim.x; s *= 2) {
        unsigned int index = 2 * s * threadIdx.x;
        if (index < blockDim.x) {
            sdata[index] += sdata[index + s];
        }
        __syncthreads();
    }

    if (threadIdx.x == 0) g_odata[blockIdx.x] = sdata[0];
}
"#;

/// v2 — sequential addressing with a descending header (`s = bdim/2 … 1`).
/// Not iteration-aligned with v0/v1 (different per-round trees); used by
/// the concrete-configuration (non-parameterized) equivalence checks and
/// the race/performance analyses.
pub const V2: &str = r#"
__global__ void reduce2(int *g_odata, int *g_idata) {
    requires(blockDim.x <= 16 && blockDim.y == 1 && blockDim.z == 1);
    __shared__ int sdata[blockDim.x];

    unsigned int i = blockIdx.x * blockDim.x + threadIdx.x;
    sdata[threadIdx.x] = g_idata[i];
    __syncthreads();

    for (unsigned int s = blockDim.x / 2; s > 0; s >>= 1) {
        if (threadIdx.x < s) {
            sdata[threadIdx.x] += sdata[threadIdx.x + s];
        }
        __syncthreads();
    }

    if (threadIdx.x == 0) g_odata[blockIdx.x] = sdata[0];
}
"#;

/// Seeded bug: the strided index uses `2*s*tid.x + 1` — a wrong shared
/// address (Table III class 2).
pub const BUGGY_INDEX: &str = r#"
__global__ void reduceBuggyIndex(int *g_odata, int *g_idata) {
    requires(blockDim.x <= 16 && blockDim.y == 1 && blockDim.z == 1);
    __shared__ int sdata[blockDim.x];

    unsigned int i = blockIdx.x * blockDim.x + threadIdx.x;
    sdata[threadIdx.x] = g_idata[i];
    __syncthreads();

    for (unsigned int s = 1; s < blockDim.x; s *= 2) {
        unsigned int index = 2 * s * threadIdx.x + 1;
        if (index < blockDim.x) {
            sdata[index] += sdata[index + s];
        }
        __syncthreads();
    }

    if (threadIdx.x == 0) g_odata[blockIdx.x] = sdata[0];
}
"#;

/// Seeded bug: the guard admits one stride too many (`<=` instead of `<`) —
/// a wrong conditional guard (Table III class 2).
pub const BUGGY_GUARD: &str = r#"
__global__ void reduceBuggyGuard(int *g_odata, int *g_idata) {
    requires(blockDim.x <= 16 && blockDim.y == 1 && blockDim.z == 1);
    __shared__ int sdata[blockDim.x];

    unsigned int i = blockIdx.x * blockDim.x + threadIdx.x;
    sdata[threadIdx.x] = g_idata[i];
    __syncthreads();

    for (unsigned int s = 1; s < blockDim.x; s *= 2) {
        unsigned int index = 2 * s * threadIdx.x;
        if (index <= blockDim.x) {
            sdata[index] += sdata[index + s];
        }
        __syncthreads();
    }

    if (threadIdx.x == 0) g_odata[blockIdx.x] = sdata[0];
}
"#;

/// Template: [`V0`] with a caller-chosen block bound (the bound that keeps
/// `2*s*tid.x` from wrapping depends on the model bit width: ≤16 at 8 bits,
/// ≤32 at 12, ≤128 at 16, effectively unbounded at 32).
pub fn v0_bounded(max_block: u64) -> String {
    V0.replace("blockDim.x <= 16", &format!("blockDim.x <= {max_block}"))
}

/// Template: [`V1`] with a caller-chosen block bound.
pub fn v1_bounded(max_block: u64) -> String {
    V1.replace("blockDim.x <= 16", &format!("blockDim.x <= {max_block}"))
}

/// Template: [`V2`] with a caller-chosen block bound.
pub fn v2_bounded(max_block: u64) -> String {
    V2.replace("blockDim.x <= 16", &format!("blockDim.x <= {max_block}"))
}

/// Template: [`BUGGY_INDEX`] with a caller-chosen block bound.
pub fn buggy_index_bounded(max_block: u64) -> String {
    BUGGY_INDEX.replace("blockDim.x <= 16", &format!("blockDim.x <= {max_block}"))
}

/// Template: [`BUGGY_GUARD`] with a caller-chosen block bound.
pub fn buggy_guard_bounded(max_block: u64) -> String {
    BUGGY_GUARD.replace("blockDim.x <= 16", &format!("blockDim.x <= {max_block}"))
}

/// The block bound that keeps the strided index wrap-free at `bits`.
pub fn safe_block_bound(bits: u32) -> u64 {
    match bits {
        0..=8 => 16,
        9..=12 => 32,
        13..=16 => 128,
        _ => 16384,
    }
}
