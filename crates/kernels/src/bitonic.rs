//! Bitonic sort — the SDK kernel the paper names as GKLEE's blow-up case
//! ("the BitonicSort kernel (of about 50 lines of code) will cause blow-up
//! when the thread number is greater than 8", §II-A).

/// Single-block bitonic sort of `blockDim.x` shared values. Nested loops
/// with barrier-separated compare-exchange phases; bounds depend on the
/// block size, so every encoding path unrolls under a concrete block.
pub const KERNEL: &str = r#"
__global__ void bitonicSort(int *values) {
    requires(blockDim.x <= 16 && blockDim.y == 1 && blockDim.z == 1);
    requires((blockDim.x & (blockDim.x - 1)) == 0);
    __shared__ int shared[blockDim.x];

    unsigned int tid = threadIdx.x;
    shared[tid] = values[tid];
    __syncthreads();

    for (unsigned int k = 2; k <= blockDim.x; k *= 2) {
        for (unsigned int j = k / 2; j > 0; j /= 2) {
            unsigned int ixj = tid ^ j;
            if (ixj > tid) {
                if ((tid & k) == 0) {
                    if (shared[tid] > shared[ixj]) {
                        int tmp = shared[tid];
                        shared[tid] = shared[ixj];
                        shared[ixj] = tmp;
                    }
                } else {
                    if (shared[tid] < shared[ixj]) {
                        int tmp = shared[tid];
                        shared[tid] = shared[ixj];
                        shared[ixj] = tmp;
                    }
                }
            }
            __syncthreads();
        }
    }

    values[tid] = shared[tid];
}
"#;
