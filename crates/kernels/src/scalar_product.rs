//! Scalar product — the SDK kernel whose `ACCN` (accumulator count) must be
//! a power of two; the paper's §V names this implicit assumption as a
//! configuration bug PUGpara reveals ("using a value of ACCN that is not a
//! power of 2").

/// Per-block dot product: each thread accumulates a strided partial sum
/// into one of `ACCN` accumulators, then a tree reduction combines them.
/// The tree is only correct when `ACCN` (here fixed to `blockDim.x`) is a
/// power of two — stated via `requires`.
pub const KERNEL: &str = r#"
__global__ void scalarProd(int *d_C, int *d_A, int *d_B, int vectorN) {
    requires(blockDim.x <= 16 && blockDim.y == 1 && blockDim.z == 1);
    requires((blockDim.x & (blockDim.x - 1)) == 0);
    __shared__ int accumResult[blockDim.x];

    unsigned int iAccum = threadIdx.x;
    int sum = 0;
    if (iAccum < vectorN) {
        sum = d_A[iAccum] * d_B[iAccum];
    }
    accumResult[iAccum] = sum;
    __syncthreads();

    for (unsigned int stride = blockDim.x / 2; stride > 0; stride >>= 1) {
        if (threadIdx.x < stride) {
            accumResult[threadIdx.x] += accumResult[threadIdx.x + stride];
        }
        __syncthreads();
    }

    if (threadIdx.x == 0) d_C[blockIdx.x] = accumResult[0];
}
"#;

/// The same kernel without the power-of-two requirement: checking it
/// against [`KERNEL`] (or its own spec) exposes the hidden assumption.
pub const UNCONSTRAINED: &str = r#"
__global__ void scalarProdUnconstrained(int *d_C, int *d_A, int *d_B, int vectorN) {
    requires(blockDim.x <= 16 && blockDim.y == 1 && blockDim.z == 1);
    __shared__ int accumResult[blockDim.x];

    unsigned int iAccum = threadIdx.x;
    int sum = 0;
    if (iAccum < vectorN) {
        sum = d_A[iAccum] * d_B[iAccum];
    }
    accumResult[iAccum] = sum;
    __syncthreads();

    for (unsigned int stride = blockDim.x / 2; stride > 0; stride >>= 1) {
        if (threadIdx.x < stride) {
            accumResult[threadIdx.x] += accumResult[threadIdx.x + stride];
        }
        __syncthreads();
    }

    if (threadIdx.x == 0) d_C[blockIdx.x] = accumResult[0];
}
"#;
