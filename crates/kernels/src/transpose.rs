//! The Transpose kernels of paper §II: naive (non-coalesced) and optimized
//! (coalesced reads/writes via a padded shared-memory tile), plus buggy
//! variants used in Table III.
//!
//! The `requires` lines state the validity assumptions the paper discusses:
//! non-degenerate matrix sizes, no index overflow at the model bit width
//! (`width*height/height == width` detects multiplication wrap-around), and
//! — for the optimized kernel — the square-block assumption revealed by
//! PUGpara in §IV-B. [`OPTIMIZED_UNCONSTRAINED`] omits the square-block
//! requirement so the hidden assumption can be rediscovered.
//!
//! `blockDim.* <= 15` bounds the block so the padded tile
//! `block[bdim.x][bdim.x+1]` cannot wrap at the smallest (8-bit) model
//! width — the analogue of the real kernel's implicit shared-memory-size
//! bound, and of the paper's remark that blocks can be downscaled before
//! running PUGpara. Likewise `gridDim.* * blockDim.* <= 100` (with a
//! division-based wrap check) keeps thread coordinates inside the signed
//! range of the smallest model width, as real launches keep them inside
//! 32-bit `int`. The configuration and all inputs stay fully symbolic.

/// Naive transpose (§II listing 1): coalesced reads, scattered writes.
pub const NAIVE: &str = r#"
__global__ void naiveTranspose(int *odata, int *idata, int width, int height) {
    requires(width > 0 && height > 0);
    requires((width * height) / height == width);
    requires(blockDim.x <= 15 && blockDim.y <= 15 && blockDim.z == 1);
    requires((gridDim.x * blockDim.x) / blockDim.x == gridDim.x);
    requires((gridDim.y * blockDim.y) / blockDim.y == gridDim.y);
    requires(gridDim.x * blockDim.x <= 100 && gridDim.y * blockDim.y <= 100);
    int xIndex = blockIdx.x * blockDim.x + threadIdx.x;
    int yIndex = blockIdx.y * blockDim.y + threadIdx.y;
    if (xIndex < width && yIndex < height) {
        int index_in = xIndex + width * yIndex;
        int index_out = yIndex + height * xIndex;
        odata[index_out] = idata[index_in];
    }
}
"#;

/// Naive transpose with the paper's post-condition (§II): every input
/// element lands at its transposed position.
pub const NAIVE_WITH_POSTCOND: &str = r#"
__global__ void naiveTranspose(int *odata, int *idata, int width, int height) {
    requires(width > 0 && height > 0);
    requires((width * height) / height == width);
    requires(blockDim.x <= 15 && blockDim.y <= 15 && blockDim.z == 1);
    requires((gridDim.x * blockDim.x) / blockDim.x == gridDim.x);
    requires((gridDim.y * blockDim.y) / blockDim.y == gridDim.y);
    requires(gridDim.x * blockDim.x <= 100 && gridDim.y * blockDim.y <= 100);
    requires(width <= gridDim.x * blockDim.x);
    requires(height <= gridDim.y * blockDim.y);
    int xIndex = blockIdx.x * blockDim.x + threadIdx.x;
    int yIndex = blockIdx.y * blockDim.y + threadIdx.y;
    if (xIndex < width && yIndex < height) {
        int index_in = xIndex + width * yIndex;
        int index_out = yIndex + height * xIndex;
        odata[index_out] = idata[index_in];
    }
    int i, j;
    postcond(0 <= i && i < width && 0 <= j && j < height =>
             odata[i * height + j] == idata[j * width + i]);
}
"#;

/// Optimized transpose (§II listing 2): reads a tile into padded shared
/// memory (bank-conflict-free), writes coalesced. Requires a square block.
pub const OPTIMIZED: &str = r#"
__global__ void optimizedTranspose(int *odata, int *idata, int width, int height) {
    requires(width > 0 && height > 0);
    requires((width * height) / height == width);
    requires(blockDim.x <= 15 && blockDim.y <= 15 && blockDim.z == 1);
    requires((gridDim.x * blockDim.x) / blockDim.x == gridDim.x);
    requires((gridDim.y * blockDim.y) / blockDim.y == gridDim.y);
    requires(gridDim.x * blockDim.x <= 100 && gridDim.y * blockDim.y <= 100);
    requires(blockDim.x == blockDim.y);
    __shared__ int block[blockDim.x][blockDim.x + 1];

    int xIndex = blockIdx.x * blockDim.x + threadIdx.x;
    int yIndex = blockIdx.y * blockDim.y + threadIdx.y;
    if (xIndex < width && yIndex < height) {
        int index_in = yIndex * width + xIndex;
        block[threadIdx.y][threadIdx.x] = idata[index_in];
    }
    __syncthreads();

    xIndex = blockIdx.y * blockDim.y + threadIdx.x;
    yIndex = blockIdx.x * blockDim.x + threadIdx.y;
    if (xIndex < height && yIndex < width) {
        int index_out = yIndex * height + xIndex;
        odata[index_out] = block[threadIdx.x][threadIdx.y];
    }
}
"#;

/// [`OPTIMIZED`] without `requires(blockDim.x == blockDim.y)`: PUGpara's
/// coverage check rediscovers the hidden square-block assumption (§IV-B),
/// the `*` rows of Table II.
pub const OPTIMIZED_UNCONSTRAINED: &str = r#"
__global__ void optimizedTransposeUnconstrained(int *odata, int *idata, int width, int height) {
    requires(width > 0 && height > 0);
    requires((width * height) / height == width);
    requires(blockDim.x <= 15 && blockDim.y <= 15 && blockDim.z == 1);
    requires((gridDim.x * blockDim.x) / blockDim.x == gridDim.x);
    requires((gridDim.y * blockDim.y) / blockDim.y == gridDim.y);
    requires(gridDim.x * blockDim.x <= 100 && gridDim.y * blockDim.y <= 100);
    __shared__ int block[blockDim.x][blockDim.x + 1];

    int xIndex = blockIdx.x * blockDim.x + threadIdx.x;
    int yIndex = blockIdx.y * blockDim.y + threadIdx.y;
    if (xIndex < width && yIndex < height) {
        int index_in = yIndex * width + xIndex;
        block[threadIdx.y][threadIdx.x] = idata[index_in];
    }
    __syncthreads();

    xIndex = blockIdx.y * blockDim.y + threadIdx.x;
    yIndex = blockIdx.x * blockDim.x + threadIdx.y;
    if (xIndex < height && yIndex < width) {
        int index_out = yIndex * height + xIndex;
        odata[index_out] = block[threadIdx.x][threadIdx.y];
    }
}
"#;

/// Seeded bug (Table III class 2): the output address is off by one —
/// "modifying the addresses of accesses on shared variables".
pub const BUGGY_ADDR: &str = r#"
__global__ void buggyTranspose(int *odata, int *idata, int width, int height) {
    requires(width > 0 && height > 0);
    requires((width * height) / height == width);
    requires(blockDim.x <= 15 && blockDim.y <= 15 && blockDim.z == 1);
    requires((gridDim.x * blockDim.x) / blockDim.x == gridDim.x);
    requires((gridDim.y * blockDim.y) / blockDim.y == gridDim.y);
    requires(gridDim.x * blockDim.x <= 100 && gridDim.y * blockDim.y <= 100);
    __shared__ int block[blockDim.x][blockDim.x + 1];

    int xIndex = blockIdx.x * blockDim.x + threadIdx.x;
    int yIndex = blockIdx.y * blockDim.y + threadIdx.y;
    if (xIndex < width && yIndex < height) {
        int index_in = yIndex * width + xIndex;
        block[threadIdx.y][threadIdx.x] = idata[index_in];
    }
    __syncthreads();

    xIndex = blockIdx.y * blockDim.y + threadIdx.x;
    yIndex = blockIdx.x * blockDim.x + threadIdx.y;
    if (xIndex < height && yIndex < width) {
        int index_out = yIndex * height + xIndex + 1;
        odata[index_out] = block[threadIdx.x][threadIdx.y];
    }
}
"#;

/// Seeded bug (Table III class 2): the tile read swaps the wrong indices —
/// "modifying the guards of conditional statements" / access pattern.
pub const BUGGY_GUARD: &str = r#"
__global__ void buggyGuardTranspose(int *odata, int *idata, int width, int height) {
    requires(width > 0 && height > 0);
    requires((width * height) / height == width);
    requires(blockDim.x <= 15 && blockDim.y <= 15 && blockDim.z == 1);
    requires((gridDim.x * blockDim.x) / blockDim.x == gridDim.x);
    requires((gridDim.y * blockDim.y) / blockDim.y == gridDim.y);
    requires(gridDim.x * blockDim.x <= 100 && gridDim.y * blockDim.y <= 100);
    __shared__ int block[blockDim.x][blockDim.x + 1];

    int xIndex = blockIdx.x * blockDim.x + threadIdx.x;
    int yIndex = blockIdx.y * blockDim.y + threadIdx.y;
    if (xIndex < width && yIndex < height) {
        int index_in = yIndex * width + xIndex;
        block[threadIdx.y][threadIdx.x] = idata[index_in];
    }
    __syncthreads();

    xIndex = blockIdx.y * blockDim.y + threadIdx.x;
    yIndex = blockIdx.x * blockDim.x + threadIdx.y;
    if (xIndex < width && yIndex < height) {
        int index_out = yIndex * height + xIndex;
        odata[index_out] = block[threadIdx.x][threadIdx.y];
    }
}
"#;
