//! Grid-stride copy — a loop whose stride is the (symbolic) block size.
//!
//! The loop header `for (base = 0; base < blockDim.x * 4; base += blockDim.x)`
//! has a *configuration-dependent* step, so its iteration space is not a
//! constant-stride progression: the monotone-map elimination of `qelim`
//! cannot express membership, and without the generalized (Presburger)
//! elimination the `Param` rung must give up on the loop
//! (`LoopSpace::LinearUpSym`). With it, membership is the divisibility
//! constraint `(base − 0) mod blockDim.x == 0` and the rung proves the
//! pair equivalent for *every* block size — the headline rung-improvement
//! row of the PR-10 benchmarks.
//!
//! `blockDim.x <= 16` keeps `blockDim.x * 4` (max 64) and every address
//! (max 3·16+15 = 63) inside the smallest (8-bit) model width, as
//! elsewhere in the corpus. The `__syncthreads()` in the loop body makes
//! it a *barrier loop* — the segment splitter's aligned-loop path, the
//! only one compared header-to-header (barrier-free loops are unrolled
//! and need constant trip counts).
//!
//! [`PARAM_RACE`] is the seeded *potential*-race kernel: the racy write
//! sits in a barrier loop bounded by the scalar parameter `p`, so the
//! race model cannot be replayed concretely (the interpreter's
//! barrier-loop unrolling needs a configuration-only bound) and the race
//! classifies as potential, never provable.

/// Grid-stride copy, canonical operand order `base + threadIdx.x`.
pub const GRID_STRIDE: &str = r#"
__global__ void strideCopy(int *out, int *in) {
    requires(blockDim.x >= 1 && blockDim.x <= 16);
    requires(blockDim.y == 1 && blockDim.z == 1);
    requires(gridDim.x == 1 && gridDim.y == 1);
    for (unsigned int base = 0; base < blockDim.x * 4; base += blockDim.x) {
        out[base + threadIdx.x] = in[base + threadIdx.x];
        __syncthreads();
    }
}
"#;

/// The same copy with reassociated addressing (`threadIdx.x + base`) and a
/// temporary — semantically identical, syntactically distinct, so the
/// equivalence proof has real obligations to discharge.
pub const GRID_STRIDE_REASSOC: &str = r#"
__global__ void strideCopyReassoc(int *out, int *in) {
    requires(blockDim.x >= 1 && blockDim.x <= 16);
    requires(blockDim.y == 1 && blockDim.z == 1);
    requires(gridDim.x == 1 && gridDim.y == 1);
    for (unsigned int base = 0; base < blockDim.x * 4; base += blockDim.x) {
        int v = in[threadIdx.x + base];
        out[threadIdx.x + base] = v;
        __syncthreads();
    }
}
"#;

/// Seeded bug: every thread writes `out[i]` in a barrier loop bounded by
/// the scalar parameter `p` — a real write-write race, but one whose
/// witness schedule cannot be validated by concrete replay (the
/// interpreter cannot unroll a barrier loop with a non-configuration
/// bound), so it must classify as a *potential* race.
pub const PARAM_RACE: &str = r#"
__global__ void paramRace(int *out, int p) {
    requires(blockDim.x >= 2 && blockDim.x <= 16);
    requires(blockDim.y == 1 && blockDim.z == 1);
    requires(gridDim.x == 1 && gridDim.y == 1);
    requires(p >= 1 && p <= 4);
    for (unsigned int i = 0; i < p; i += 1) {
        out[i] = threadIdx.x;
        __syncthreads();
    }
}
"#;
