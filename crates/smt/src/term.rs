//! Hash-consed term DAG for the QF_ABV fragment, with rewriting built into
//! the constructors.
//!
//! Every term lives in a [`Ctx`] and is identified by a [`TermId`]; building
//! the same term twice yields the same id, so structural equality is pointer
//! equality. Constructors apply local simplifications (constant folding,
//! algebraic identities, power-of-two strength reduction) so the encoder can
//! build formulas naively and still hand reasonably small problems to the
//! bit-blaster — this mirrors how PUGpara leans on Z3's preprocessing.

use crate::sort::{mask, to_signed, truncate, Sort};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Identifier of a term inside a [`Ctx`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TermId(pub u32);

impl TermId {
    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interned variable name.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SymbolId(pub u32);

/// Term operators. Argument counts are enforced by the constructors.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// Boolean constant `true`.
    True,
    /// Boolean constant `false`.
    False,
    /// Bit-vector constant (value already truncated to the width).
    BvConst { value: u64, width: u32 },
    /// Free variable (Bool, BitVec or Array sorted).
    Var { name: SymbolId },
    Not,
    And,
    Or,
    Xor,
    Implies,
    /// `ite(cond, then, else)`; branches may be Bool or BitVec.
    Ite,
    /// Equality on Bool or BitVec terms (array equality is rejected;
    /// the verifier compares arrays at a fresh symbolic index instead).
    Eq,
    BvAdd,
    BvSub,
    BvMul,
    BvUdiv,
    BvUrem,
    BvNeg,
    BvAnd,
    BvOr,
    BvXor,
    BvNot,
    BvShl,
    BvLshr,
    BvAshr,
    BvUlt,
    BvUle,
    BvSlt,
    BvSle,
    ZeroExt { by: u32 },
    SignExt { by: u32 },
    Extract { hi: u32, lo: u32 },
    Concat,
    /// `select(array, index)`.
    Select,
    /// `store(array, index, value)`.
    Store,
}

/// A node of the term DAG.
#[derive(Clone, Debug)]
pub struct Node {
    pub op: Op,
    pub args: Vec<TermId>,
    pub sort: Sort,
}

/// Term context: owns the DAG, the hash-cons table and the symbol interner.
///
/// `Clone` preserves `TermId`s verbatim (the DAG is copied index for
/// index), so ids minted in the donor remain valid in the clone — the
/// obligation-parallel path relies on this to ship prebuilt queries into
/// worker contexts.
#[derive(Clone, Default)]
pub struct Ctx {
    nodes: Vec<Node>,
    /// Hash-cons table keyed by a structural hash of `(op, args)`; each
    /// bucket holds the (almost always ≤ 1) terms with that hash. Keying by
    /// hash instead of by `(Op, Vec<TermId>)` means a lookup never clones
    /// the operator or allocates an argument vector: the hit path is
    /// allocation-free.
    table: HashMap<u64, Vec<TermId>>,
    sym_names: Vec<String>,
    sym_table: HashMap<String, SymbolId>,
    var_sorts: HashMap<SymbolId, Sort>,
    fresh_counter: u64,
}

/// FNV-1a, used for the hash-cons key. The keys are tiny (an operator plus
/// at most three term ids), so a short multiply-xor loop beats SipHash.
struct FnvHasher(u64);

impl FnvHasher {
    fn new() -> FnvHasher {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

fn node_hash(op: &Op, args: &[TermId]) -> u64 {
    let mut h = FnvHasher::new();
    op.hash(&mut h);
    for &a in args {
        h.write_u32(a.0);
    }
    h.finish()
}

impl Ctx {
    /// Empty context.
    pub fn new() -> Ctx {
        Ctx::default()
    }

    /// Number of distinct terms created.
    pub fn num_terms(&self) -> usize {
        self.nodes.len()
    }

    /// The node behind a term id.
    #[inline]
    pub fn node(&self, t: TermId) -> &Node {
        &self.nodes[t.index()]
    }

    /// The operator of a term.
    #[inline]
    pub fn op(&self, t: TermId) -> &Op {
        &self.nodes[t.index()].op
    }

    /// The argument list of a term.
    #[inline]
    pub fn args(&self, t: TermId) -> &[TermId] {
        &self.nodes[t.index()].args
    }

    /// The sort of a term.
    #[inline]
    pub fn sort(&self, t: TermId) -> Sort {
        self.nodes[t.index()].sort
    }

    /// Bit width of a bit-vector term.
    #[track_caller]
    pub fn width(&self, t: TermId) -> u32 {
        self.sort(t).bv_width()
    }

    /// The interned name string of a symbol.
    pub fn symbol_name(&self, s: SymbolId) -> &str {
        &self.sym_names[s.0 as usize]
    }

    fn intern(&mut self, name: &str) -> SymbolId {
        if let Some(&s) = self.sym_table.get(name) {
            return s;
        }
        let s = SymbolId(self.sym_names.len() as u32);
        self.sym_names.push(name.to_string());
        self.sym_table.insert(name.to_string(), s);
        s
    }

    fn hashcons(&mut self, op: Op, args: &[TermId], sort: Sort) -> TermId {
        let h = node_hash(&op, args);
        let bucket = self.table.entry(h).or_default();
        for &t in bucket.iter() {
            let n = &self.nodes[t.index()];
            if n.op == op && n.args == args {
                return t;
            }
        }
        let t = TermId(self.nodes.len() as u32);
        bucket.push(t);
        self.nodes.push(Node { op, args: args.to_vec(), sort });
        t
    }

    // ---------------------------------------------------------------- leaves

    /// Boolean constant.
    pub fn mk_bool(&mut self, b: bool) -> TermId {
        let op = if b { Op::True } else { Op::False };
        self.hashcons(op, &[], Sort::Bool)
    }

    /// `true`.
    pub fn mk_true(&mut self) -> TermId {
        self.mk_bool(true)
    }

    /// `false`.
    pub fn mk_false(&mut self) -> TermId {
        self.mk_bool(false)
    }

    /// Bit-vector constant, truncated to `width` bits.
    pub fn mk_bv_const(&mut self, value: u64, width: u32) -> TermId {
        assert!((1..=64).contains(&width), "unsupported width {width}");
        let value = truncate(value, width);
        self.hashcons(Op::BvConst { value, width }, &[], Sort::BitVec(width))
    }

    /// Free variable. Re-declaring the same name must use the same sort.
    #[track_caller]
    pub fn mk_var(&mut self, name: &str, sort: Sort) -> TermId {
        let s = self.intern(name);
        match self.var_sorts.get(&s) {
            Some(&prev) => assert_eq!(
                prev, sort,
                "variable {name} re-declared at a different sort"
            ),
            None => {
                self.var_sorts.insert(s, sort);
            }
        }
        self.hashcons(Op::Var { name: s }, &[], sort)
    }

    /// Fresh variable with a unique generated name based on `prefix`.
    pub fn fresh_var(&mut self, prefix: &str, sort: Sort) -> TermId {
        self.fresh_counter += 1;
        let name = format!("{prefix}!{}", self.fresh_counter);
        self.mk_var(&name, sort)
    }

    /// Constant value when the term is a bit-vector constant.
    pub fn const_bv(&self, t: TermId) -> Option<u64> {
        match self.op(t) {
            Op::BvConst { value, .. } => Some(*value),
            _ => None,
        }
    }

    /// Constant value when the term is a Boolean constant.
    pub fn const_bool(&self, t: TermId) -> Option<bool> {
        match self.op(t) {
            Op::True => Some(true),
            Op::False => Some(false),
            _ => None,
        }
    }

    // --------------------------------------------------------------- boolean

    /// Logical negation.
    pub fn mk_not(&mut self, a: TermId) -> TermId {
        debug_assert!(self.sort(a).is_bool());
        match self.op(a) {
            Op::True => self.mk_false(),
            Op::False => self.mk_true(),
            Op::Not => self.args(a)[0],
            _ => self.hashcons(Op::Not, &[a], Sort::Bool),
        }
    }

    /// Logical conjunction.
    pub fn mk_and(&mut self, a: TermId, b: TermId) -> TermId {
        debug_assert!(self.sort(a).is_bool() && self.sort(b).is_bool());
        match (self.const_bool(a), self.const_bool(b)) {
            (Some(false), _) | (_, Some(false)) => return self.mk_false(),
            (Some(true), _) => return b,
            (_, Some(true)) => return a,
            _ => {}
        }
        if a == b {
            return a;
        }
        if self.is_negation_of(a, b) {
            return self.mk_false();
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.hashcons(Op::And, &[a, b], Sort::Bool)
    }

    /// Conjunction of many terms.
    pub fn mk_and_many(&mut self, ts: &[TermId]) -> TermId {
        let mut acc = self.mk_true();
        for &t in ts {
            acc = self.mk_and(acc, t);
        }
        acc
    }

    /// Logical disjunction.
    pub fn mk_or(&mut self, a: TermId, b: TermId) -> TermId {
        debug_assert!(self.sort(a).is_bool() && self.sort(b).is_bool());
        match (self.const_bool(a), self.const_bool(b)) {
            (Some(true), _) | (_, Some(true)) => return self.mk_true(),
            (Some(false), _) => return b,
            (_, Some(false)) => return a,
            _ => {}
        }
        if a == b {
            return a;
        }
        if self.is_negation_of(a, b) {
            return self.mk_true();
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.hashcons(Op::Or, &[a, b], Sort::Bool)
    }

    /// Disjunction of many terms.
    pub fn mk_or_many(&mut self, ts: &[TermId]) -> TermId {
        let mut acc = self.mk_false();
        for &t in ts {
            acc = self.mk_or(acc, t);
        }
        acc
    }

    /// Exclusive or.
    pub fn mk_xor(&mut self, a: TermId, b: TermId) -> TermId {
        match (self.const_bool(a), self.const_bool(b)) {
            (Some(x), Some(y)) => return self.mk_bool(x ^ y),
            (Some(false), _) => return b,
            (_, Some(false)) => return a,
            (Some(true), _) => return self.mk_not(b),
            (_, Some(true)) => return self.mk_not(a),
            _ => {}
        }
        if a == b {
            return self.mk_false();
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.hashcons(Op::Xor, &[a, b], Sort::Bool)
    }

    /// Implication `a ⇒ b`, rewritten to `¬a ∨ b`.
    pub fn mk_implies(&mut self, a: TermId, b: TermId) -> TermId {
        let na = self.mk_not(a);
        self.mk_or(na, b)
    }

    fn is_negation_of(&self, a: TermId, b: TermId) -> bool {
        matches!(self.op(a), Op::Not if self.args(a)[0] == b)
            || matches!(self.op(b), Op::Not if self.args(b)[0] == a)
    }

    /// If-then-else; branches must have equal (Bool or BitVec) sorts.
    #[track_caller]
    pub fn mk_ite(&mut self, c: TermId, t: TermId, e: TermId) -> TermId {
        debug_assert!(self.sort(c).is_bool());
        let st = self.sort(t);
        assert_eq!(st, self.sort(e), "ite branch sorts differ");
        assert!(!st.is_array(), "ite over arrays is not supported");
        match self.const_bool(c) {
            Some(true) => return t,
            Some(false) => return e,
            None => {}
        }
        if t == e {
            return t;
        }
        if st.is_bool() {
            // ite(c, true, false) = c ; ite(c, false, true) = ¬c
            match (self.const_bool(t), self.const_bool(e)) {
                (Some(true), Some(false)) => return c,
                (Some(false), Some(true)) => return self.mk_not(c),
                (Some(true), None) => return self.mk_or(c, e),
                (Some(false), None) => {
                    let nc = self.mk_not(c);
                    return self.mk_and(nc, e);
                }
                (None, Some(true)) => {
                    let nc = self.mk_not(c);
                    return self.mk_or(nc, t);
                }
                (None, Some(false)) => return self.mk_and(c, t),
                _ => {}
            }
        }
        self.hashcons(Op::Ite, &[c, t, e], st)
    }

    /// Equality on Bool or BitVec terms.
    #[track_caller]
    pub fn mk_eq(&mut self, a: TermId, b: TermId) -> TermId {
        let sa = self.sort(a);
        assert_eq!(sa, self.sort(b), "eq sorts differ");
        assert!(
            !sa.is_array(),
            "array equality must be phrased via a fresh symbolic index"
        );
        if a == b {
            return self.mk_true();
        }
        if let (Some(x), Some(y)) = (self.const_bv(a), self.const_bv(b)) {
            return self.mk_bool(x == y);
        }
        if sa.is_bool() {
            match (self.const_bool(a), self.const_bool(b)) {
                (Some(x), Some(y)) => return self.mk_bool(x == y),
                (Some(true), None) => return b,
                (None, Some(true)) => return a,
                (Some(false), None) => return self.mk_not(b),
                (None, Some(false)) => return self.mk_not(a),
                _ => {}
            }
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.hashcons(Op::Eq, &[a, b], Sort::Bool)
    }

    /// Disequality.
    pub fn mk_neq(&mut self, a: TermId, b: TermId) -> TermId {
        let eq = self.mk_eq(a, b);
        self.mk_not(eq)
    }

    // ------------------------------------------------------------ bit-vector

    #[track_caller]
    fn bv2(&self, a: TermId, b: TermId) -> u32 {
        let w = self.width(a);
        assert_eq!(w, self.width(b), "bit-vector widths differ");
        w
    }

    /// Addition modulo 2^w.
    pub fn mk_bv_add(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv2(a, b);
        match (self.const_bv(a), self.const_bv(b)) {
            (Some(x), Some(y)) => return self.mk_bv_const(x.wrapping_add(y), w),
            (Some(0), _) => return b,
            (_, Some(0)) => return a,
            _ => {}
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.hashcons(Op::BvAdd, &[a, b], Sort::BitVec(w))
    }

    /// Subtraction modulo 2^w.
    pub fn mk_bv_sub(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv2(a, b);
        if a == b {
            return self.mk_bv_const(0, w);
        }
        match (self.const_bv(a), self.const_bv(b)) {
            (Some(x), Some(y)) => return self.mk_bv_const(x.wrapping_sub(y), w),
            (_, Some(0)) => return a,
            _ => {}
        }
        self.hashcons(Op::BvSub, &[a, b], Sort::BitVec(w))
    }

    /// Two's-complement negation.
    pub fn mk_bv_neg(&mut self, a: TermId) -> TermId {
        let w = self.width(a);
        if let Some(x) = self.const_bv(a) {
            return self.mk_bv_const(x.wrapping_neg(), w);
        }
        self.hashcons(Op::BvNeg, &[a], Sort::BitVec(w))
    }

    /// Multiplication modulo 2^w. Constant power-of-two factors are reduced
    /// to shifts (the transpose/reduction kernels are full of `*` by
    /// block-dimension values, and this keeps the blasted circuits small
    /// when those are concretized).
    pub fn mk_bv_mul(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv2(a, b);
        match (self.const_bv(a), self.const_bv(b)) {
            (Some(x), Some(y)) => return self.mk_bv_const(x.wrapping_mul(y), w),
            (Some(0), _) | (_, Some(0)) => return self.mk_bv_const(0, w),
            (Some(1), _) => return b,
            (_, Some(1)) => return a,
            (Some(x), _) if x.is_power_of_two() => {
                let sh = self.mk_bv_const(x.trailing_zeros() as u64, w);
                return self.mk_bv_shl(b, sh);
            }
            (_, Some(y)) if y.is_power_of_two() => {
                let sh = self.mk_bv_const(y.trailing_zeros() as u64, w);
                return self.mk_bv_shl(a, sh);
            }
            _ => {}
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.hashcons(Op::BvMul, &[a, b], Sort::BitVec(w))
    }

    /// Unsigned division; division by zero yields all-ones (SMT-LIB).
    pub fn mk_bv_udiv(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv2(a, b);
        match (self.const_bv(a), self.const_bv(b)) {
            (Some(x), Some(y)) => {
                let r = x.checked_div(y).unwrap_or(mask(w));
                return self.mk_bv_const(r, w);
            }
            (_, Some(1)) => return a,
            (_, Some(y)) if y.is_power_of_two() => {
                let sh = self.mk_bv_const(y.trailing_zeros() as u64, w);
                return self.mk_bv_lshr(a, sh);
            }
            _ => {}
        }
        self.hashcons(Op::BvUdiv, &[a, b], Sort::BitVec(w))
    }

    /// Unsigned remainder; remainder by zero yields the dividend (SMT-LIB).
    pub fn mk_bv_urem(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv2(a, b);
        match (self.const_bv(a), self.const_bv(b)) {
            (Some(x), Some(y)) => {
                let r = if y == 0 { x } else { x % y };
                return self.mk_bv_const(r, w);
            }
            (_, Some(1)) => return self.mk_bv_const(0, w),
            (_, Some(y)) if y.is_power_of_two() => {
                let m = self.mk_bv_const(y - 1, w);
                return self.mk_bv_and(a, m);
            }
            _ => {}
        }
        self.hashcons(Op::BvUrem, &[a, b], Sort::BitVec(w))
    }

    /// Bitwise and.
    pub fn mk_bv_and(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv2(a, b);
        if a == b {
            return a;
        }
        match (self.const_bv(a), self.const_bv(b)) {
            (Some(x), Some(y)) => return self.mk_bv_const(x & y, w),
            (Some(0), _) | (_, Some(0)) => return self.mk_bv_const(0, w),
            (Some(m), _) if m == mask(w) => return b,
            (_, Some(m)) if m == mask(w) => return a,
            _ => {}
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.hashcons(Op::BvAnd, &[a, b], Sort::BitVec(w))
    }

    /// Bitwise or.
    pub fn mk_bv_or(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv2(a, b);
        if a == b {
            return a;
        }
        match (self.const_bv(a), self.const_bv(b)) {
            (Some(x), Some(y)) => return self.mk_bv_const(x | y, w),
            (Some(0), _) => return b,
            (_, Some(0)) => return a,
            (Some(m), _) | (_, Some(m)) if m == mask(w) => return self.mk_bv_const(mask(w), w),
            _ => {}
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.hashcons(Op::BvOr, &[a, b], Sort::BitVec(w))
    }

    /// Bitwise xor.
    pub fn mk_bv_xor(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv2(a, b);
        if a == b {
            return self.mk_bv_const(0, w);
        }
        match (self.const_bv(a), self.const_bv(b)) {
            (Some(x), Some(y)) => return self.mk_bv_const(x ^ y, w),
            (Some(0), _) => return b,
            (_, Some(0)) => return a,
            _ => {}
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.hashcons(Op::BvXor, &[a, b], Sort::BitVec(w))
    }

    /// Bitwise complement.
    pub fn mk_bv_not(&mut self, a: TermId) -> TermId {
        let w = self.width(a);
        if let Some(x) = self.const_bv(a) {
            return self.mk_bv_const(!x, w);
        }
        if matches!(self.op(a), Op::BvNot) {
            return self.args(a)[0];
        }
        self.hashcons(Op::BvNot, &[a], Sort::BitVec(w))
    }

    /// Left shift; shifting by ≥ w yields zero.
    pub fn mk_bv_shl(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv2(a, b);
        match (self.const_bv(a), self.const_bv(b)) {
            (Some(x), Some(y)) => {
                let r = if y >= w as u64 { 0 } else { x << y };
                return self.mk_bv_const(r, w);
            }
            (_, Some(0)) => return a,
            (Some(0), _) => return a,
            (_, Some(y)) if y >= w as u64 => return self.mk_bv_const(0, w),
            _ => {}
        }
        self.hashcons(Op::BvShl, &[a, b], Sort::BitVec(w))
    }

    /// Logical right shift; shifting by ≥ w yields zero.
    pub fn mk_bv_lshr(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv2(a, b);
        match (self.const_bv(a), self.const_bv(b)) {
            (Some(x), Some(y)) => {
                let r = if y >= w as u64 { 0 } else { x >> y };
                return self.mk_bv_const(r, w);
            }
            (_, Some(0)) => return a,
            (Some(0), _) => return a,
            (_, Some(y)) if y >= w as u64 => return self.mk_bv_const(0, w),
            _ => {}
        }
        self.hashcons(Op::BvLshr, &[a, b], Sort::BitVec(w))
    }

    /// Arithmetic right shift; shifting by ≥ w yields the sign fill.
    pub fn mk_bv_ashr(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv2(a, b);
        match (self.const_bv(a), self.const_bv(b)) {
            (Some(x), Some(y)) => {
                let s = to_signed(x, w);
                let sh = y.min(w as u64 - 1) as u32;
                return self.mk_bv_const((s >> sh) as u64, w);
            }
            (_, Some(0)) => return a,
            (Some(0), _) => return a,
            _ => {}
        }
        self.hashcons(Op::BvAshr, &[a, b], Sort::BitVec(w))
    }

    /// Unsigned less-than.
    pub fn mk_bv_ult(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv2(a, b);
        if a == b {
            return self.mk_false();
        }
        match (self.const_bv(a), self.const_bv(b)) {
            (Some(x), Some(y)) => return self.mk_bool(x < y),
            (_, Some(0)) => return self.mk_false(),
            (Some(m), _) if m == mask(w) => return self.mk_false(),
            _ => {}
        }
        self.hashcons(Op::BvUlt, &[a, b], Sort::Bool)
    }

    /// Unsigned less-or-equal.
    pub fn mk_bv_ule(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv2(a, b);
        if a == b {
            return self.mk_true();
        }
        match (self.const_bv(a), self.const_bv(b)) {
            (Some(x), Some(y)) => return self.mk_bool(x <= y),
            (Some(0), _) => return self.mk_true(),
            (_, Some(m)) if m == mask(w) => return self.mk_true(),
            _ => {}
        }
        self.hashcons(Op::BvUle, &[a, b], Sort::Bool)
    }

    /// Signed less-than.
    pub fn mk_bv_slt(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv2(a, b);
        if a == b {
            return self.mk_false();
        }
        if let (Some(x), Some(y)) = (self.const_bv(a), self.const_bv(b)) {
            return self.mk_bool(to_signed(x, w) < to_signed(y, w));
        }
        self.hashcons(Op::BvSlt, &[a, b], Sort::Bool)
    }

    /// Signed less-or-equal.
    pub fn mk_bv_sle(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv2(a, b);
        if a == b {
            return self.mk_true();
        }
        if let (Some(x), Some(y)) = (self.const_bv(a), self.const_bv(b)) {
            return self.mk_bool(to_signed(x, w) <= to_signed(y, w));
        }
        self.hashcons(Op::BvSle, &[a, b], Sort::Bool)
    }

    /// Unsigned greater-than (sugar).
    pub fn mk_bv_ugt(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_bv_ult(b, a)
    }

    /// Unsigned greater-or-equal (sugar).
    pub fn mk_bv_uge(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_bv_ule(b, a)
    }

    /// Zero extension by `by` bits.
    pub fn mk_zero_ext(&mut self, a: TermId, by: u32) -> TermId {
        let w = self.width(a);
        assert!(w + by <= 64, "width overflow");
        if by == 0 {
            return a;
        }
        if let Some(x) = self.const_bv(a) {
            return self.mk_bv_const(x, w + by);
        }
        self.hashcons(Op::ZeroExt { by }, &[a], Sort::BitVec(w + by))
    }

    /// Sign extension by `by` bits.
    pub fn mk_sign_ext(&mut self, a: TermId, by: u32) -> TermId {
        let w = self.width(a);
        assert!(w + by <= 64, "width overflow");
        if by == 0 {
            return a;
        }
        if let Some(x) = self.const_bv(a) {
            return self.mk_bv_const(to_signed(x, w) as u64, w + by);
        }
        self.hashcons(Op::SignExt { by }, &[a], Sort::BitVec(w + by))
    }

    /// Bit extraction `a[hi:lo]`, inclusive on both ends.
    #[track_caller]
    pub fn mk_extract(&mut self, a: TermId, hi: u32, lo: u32) -> TermId {
        let w = self.width(a);
        assert!(lo <= hi && hi < w, "bad extract range [{hi}:{lo}] on width {w}");
        if lo == 0 && hi == w - 1 {
            return a;
        }
        let nw = hi - lo + 1;
        if let Some(x) = self.const_bv(a) {
            return self.mk_bv_const(x >> lo, nw);
        }
        self.hashcons(Op::Extract { hi, lo }, &[a], Sort::BitVec(nw))
    }

    /// Concatenation; `a` supplies the high bits.
    pub fn mk_concat(&mut self, a: TermId, b: TermId) -> TermId {
        let (wa, wb) = (self.width(a), self.width(b));
        assert!(wa + wb <= 64, "width overflow");
        if let (Some(x), Some(y)) = (self.const_bv(a), self.const_bv(b)) {
            return self.mk_bv_const(x << wb | y, wa + wb);
        }
        self.hashcons(Op::Concat, &[a, b], Sort::BitVec(wa + wb))
    }

    // ---------------------------------------------------------------- arrays

    /// Array read.
    #[track_caller]
    pub fn mk_select(&mut self, array: TermId, index: TermId) -> TermId {
        let Sort::Array { index: iw, elem } = self.sort(array) else {
            panic!("select on non-array term");
        };
        assert_eq!(self.width(index), iw, "index width mismatch");
        // select(store(a, i, v), j): resolve when i and j are syntactically
        // equal or both constant — the general case is handled by the
        // store-chain reduction pass before bit-blasting.
        if matches!(self.op(array), Op::Store) {
            let (a, i, v) = {
                let args = self.args(array);
                (args[0], args[1], args[2])
            };
            if i == index {
                return v;
            }
            if let (Some(x), Some(y)) = (self.const_bv(i), self.const_bv(index)) {
                if x != y {
                    return self.mk_select(a, index);
                }
            }
        }
        self.hashcons(Op::Select, &[array, index], Sort::BitVec(elem))
    }

    /// Array write.
    #[track_caller]
    pub fn mk_store(&mut self, array: TermId, index: TermId, value: TermId) -> TermId {
        let sort @ Sort::Array { index: iw, elem } = self.sort(array) else {
            panic!("store on non-array term");
        };
        assert_eq!(self.width(index), iw, "index width mismatch");
        assert_eq!(self.width(value), elem, "value width mismatch");
        self.hashcons(Op::Store, &[array, index, value], sort)
    }

    // ------------------------------------------------------------- utilities

    /// Substitute terms bottom-up: every occurrence of a key of `map` is
    /// replaced by its value. Used by the parameterized encoder to
    /// instantiate the symbolic thread id with fresh per-CA thread variables
    /// (the paper's s₁, s₂, … in Fig. 2).
    pub fn substitute(&mut self, t: TermId, map: &HashMap<TermId, TermId>) -> TermId {
        let mut cache: HashMap<TermId, TermId> = HashMap::new();
        self.substitute_cached(t, map, &mut cache)
    }

    /// [`Ctx::substitute`] with a caller-owned memo table, for applying the
    /// same substitution to many roots.
    pub fn substitute_cached(
        &mut self,
        t: TermId,
        map: &HashMap<TermId, TermId>,
        cache: &mut HashMap<TermId, TermId>,
    ) -> TermId {
        if let Some(&r) = map.get(&t) {
            return r;
        }
        if let Some(&r) = cache.get(&t) {
            return r;
        }
        let node = self.node(t).clone();
        let mut new_args = Vec::with_capacity(node.args.len());
        let mut changed = false;
        for &a in &node.args {
            let na = self.substitute_cached(a, map, cache);
            changed |= na != a;
            new_args.push(na);
        }
        let result = if !changed { t } else { self.rebuild(&node.op, &new_args) };
        cache.insert(t, result);
        result
    }

    /// Rebuild a node through the simplifying constructors.
    pub fn rebuild(&mut self, op: &Op, args: &[TermId]) -> TermId {
        match op {
            Op::True => self.mk_true(),
            Op::False => self.mk_false(),
            Op::BvConst { value, width } => self.mk_bv_const(*value, *width),
            Op::Var { name } => {
                let sort = self.var_sorts[name];
                let n = self.symbol_name(*name).to_string();
                self.mk_var(&n, sort)
            }
            Op::Not => self.mk_not(args[0]),
            Op::And => self.mk_and(args[0], args[1]),
            Op::Or => self.mk_or(args[0], args[1]),
            Op::Xor => self.mk_xor(args[0], args[1]),
            Op::Implies => self.mk_implies(args[0], args[1]),
            Op::Ite => self.mk_ite(args[0], args[1], args[2]),
            Op::Eq => self.mk_eq(args[0], args[1]),
            Op::BvAdd => self.mk_bv_add(args[0], args[1]),
            Op::BvSub => self.mk_bv_sub(args[0], args[1]),
            Op::BvMul => self.mk_bv_mul(args[0], args[1]),
            Op::BvUdiv => self.mk_bv_udiv(args[0], args[1]),
            Op::BvUrem => self.mk_bv_urem(args[0], args[1]),
            Op::BvNeg => self.mk_bv_neg(args[0]),
            Op::BvAnd => self.mk_bv_and(args[0], args[1]),
            Op::BvOr => self.mk_bv_or(args[0], args[1]),
            Op::BvXor => self.mk_bv_xor(args[0], args[1]),
            Op::BvNot => self.mk_bv_not(args[0]),
            Op::BvShl => self.mk_bv_shl(args[0], args[1]),
            Op::BvLshr => self.mk_bv_lshr(args[0], args[1]),
            Op::BvAshr => self.mk_bv_ashr(args[0], args[1]),
            Op::BvUlt => self.mk_bv_ult(args[0], args[1]),
            Op::BvUle => self.mk_bv_ule(args[0], args[1]),
            Op::BvSlt => self.mk_bv_slt(args[0], args[1]),
            Op::BvSle => self.mk_bv_sle(args[0], args[1]),
            Op::ZeroExt { by } => self.mk_zero_ext(args[0], *by),
            Op::SignExt { by } => self.mk_sign_ext(args[0], *by),
            Op::Extract { hi, lo } => self.mk_extract(args[0], *hi, *lo),
            Op::Concat => self.mk_concat(args[0], args[1]),
            Op::Select => self.mk_select(args[0], args[1]),
            Op::Store => self.mk_store(args[0], args[1], args[2]),
        }
    }

    /// All free variables (including array variables) in `t`.
    pub fn free_vars(&self, t: TermId) -> Vec<TermId> {
        let mut out = Vec::new();
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![t];
        while let Some(x) = stack.pop() {
            if seen[x.index()] {
                continue;
            }
            seen[x.index()] = true;
            if matches!(self.op(x), Op::Var { .. }) {
                out.push(x);
            }
            stack.extend_from_slice(self.args(x));
        }
        out.sort();
        out
    }

    /// Number of DAG nodes reachable from `t` (a size metric used by the
    /// benchmark harness to report encoding sizes).
    pub fn dag_size(&self, t: TermId) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![t];
        let mut n = 0;
        while let Some(x) = stack.pop() {
            if seen[x.index()] {
                continue;
            }
            seen[x.index()] = true;
            n += 1;
            stack.extend_from_slice(self.args(x));
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedups() {
        let mut c = Ctx::new();
        let x = c.mk_var("x", Sort::BitVec(8));
        let y = c.mk_var("y", Sort::BitVec(8));
        let a = c.mk_bv_add(x, y);
        let b = c.mk_bv_add(y, x); // commutative normalization
        assert_eq!(a, b);
    }

    #[test]
    fn constant_folding() {
        let mut c = Ctx::new();
        let a = c.mk_bv_const(200, 8);
        let b = c.mk_bv_const(100, 8);
        let s = c.mk_bv_add(a, b);
        assert_eq!(c.const_bv(s), Some(44)); // 300 mod 256
        let m = c.mk_bv_mul(a, b);
        assert_eq!(c.const_bv(m), Some(truncate(200 * 100, 8)));
    }

    #[test]
    fn bool_identities() {
        let mut c = Ctx::new();
        let p = c.mk_var("p", Sort::Bool);
        let np = c.mk_not(p);
        let t = c.mk_true();
        assert_eq!(c.mk_and(p, t), p);
        assert_eq!(c.mk_and(p, np), c.mk_false());
        assert_eq!(c.mk_or(p, np), c.mk_true());
        assert_eq!(c.mk_not(np), p);
        let q = c.mk_var("q", Sort::Bool);
        let imp = c.mk_implies(p, q);
        // p ⇒ q becomes ¬p ∨ q
        assert!(matches!(c.op(imp), Op::Or));
    }

    #[test]
    fn mul_by_power_of_two_becomes_shift() {
        let mut c = Ctx::new();
        let x = c.mk_var("x", Sort::BitVec(16));
        let four = c.mk_bv_const(4, 16);
        let m = c.mk_bv_mul(x, four);
        assert!(matches!(c.op(m), Op::BvShl));
        let d = c.mk_bv_udiv(x, four);
        assert!(matches!(c.op(d), Op::BvLshr));
        let r = c.mk_bv_urem(x, four);
        assert!(matches!(c.op(r), Op::BvAnd));
    }

    #[test]
    fn select_over_store_resolution() {
        let mut c = Ctx::new();
        let arr = c.mk_var("a", Sort::Array { index: 8, elem: 8 });
        let i = c.mk_var("i", Sort::BitVec(8));
        let v = c.mk_var("v", Sort::BitVec(8));
        let st = c.mk_store(arr, i, v);
        assert_eq!(c.mk_select(st, i), v);
        let c0 = c.mk_bv_const(0, 8);
        let c1 = c.mk_bv_const(1, 8);
        let st2 = c.mk_store(arr, c0, v);
        let sel = c.mk_select(st2, c1);
        // distinct constant indices skip the store
        assert!(matches!(c.op(sel), Op::Select));
        assert_eq!(c.args(sel)[0], arr);
    }

    #[test]
    fn substitution_instantiates_thread_ids() {
        let mut c = Ctx::new();
        let tid = c.mk_var("tid", Sort::BitVec(8));
        let s1 = c.mk_var("s1", Sort::BitVec(8));
        let one = c.mk_bv_const(1, 8);
        let addr = c.mk_bv_add(tid, one); // tid + 1
        let map = HashMap::from([(tid, s1)]);
        let inst = c.mk_bv_add(s1, one);
        assert_eq!(c.substitute(addr, &map), inst);
    }

    #[test]
    fn free_vars_collects_all() {
        let mut c = Ctx::new();
        let x = c.mk_var("x", Sort::BitVec(8));
        let y = c.mk_var("y", Sort::BitVec(8));
        let arr = c.mk_var("a", Sort::Array { index: 8, elem: 8 });
        let sel = c.mk_select(arr, x);
        let t = c.mk_bv_add(sel, y);
        let fv = c.free_vars(t);
        assert_eq!(fv.len(), 3);
        assert!(fv.contains(&x) && fv.contains(&y) && fv.contains(&arr));
    }

    #[test]
    #[should_panic(expected = "re-declared")]
    fn sort_clash_panics() {
        let mut c = Ctx::new();
        c.mk_var("x", Sort::BitVec(8));
        c.mk_var("x", Sort::Bool);
    }

    #[test]
    fn ite_simplifications() {
        let mut c = Ctx::new();
        let p = c.mk_var("p", Sort::Bool);
        let x = c.mk_var("x", Sort::BitVec(8));
        let y = c.mk_var("y", Sort::BitVec(8));
        let t = c.mk_true();
        assert_eq!(c.mk_ite(t, x, y), x);
        assert_eq!(c.mk_ite(p, x, x), x);
        let tt = c.mk_true();
        let ff = c.mk_false();
        assert_eq!(c.mk_ite(p, tt, ff), p);
    }

    #[test]
    fn shift_saturation() {
        let mut c = Ctx::new();
        let x = c.mk_var("x", Sort::BitVec(8));
        let big = c.mk_bv_const(9, 8);
        let shl = c.mk_bv_shl(x, big);
        let lshr = c.mk_bv_lshr(x, big);
        assert_eq!(c.const_bv(shl), Some(0));
        assert_eq!(c.const_bv(lshr), Some(0));
    }
}
