//! Array elimination: store-chain reduction followed by Ackermann expansion.
//!
//! PUGpara's verification conditions mention arrays in two ways: symbolic
//! input arrays (`idata`, …) that are *only read*, and output arrays built by
//! chains of `store`s (one per serialized thread in the non-parameterized
//! encoding, one per conditional assignment in the parameterized one).
//!
//! This pass rewrites
//!
//! ```text
//! select(store(a, i, v), j)  →  ite(i = j, v, select(a, j))
//! ```
//!
//! until every `select` sits on a base array variable, replaces each distinct
//! `select(A, i)` by a fresh bit-vector variable, and adds the Ackermann
//! congruence constraints `i_m = i_n ⇒ v_m = v_n` for every pair of reads of
//! the same base array. The result is a pure QF_BV problem for the
//! bit-blaster, plus enough bookkeeping to reconstruct array values in
//! counterexample models.
//!
//! The pass is *incremental*: an [`IncrementalReducer`] keeps its rewrite
//! cache, its read-variable memo and a per-array high-water mark of already
//! emitted congruence pairs across calls, so a [`crate::SolveSession`]
//! feeding it one obligation at a time pays only for the new reads — the
//! quadratic pair closure extends monotonically instead of being recomputed
//! per query.

use crate::term::{Ctx, Op, TermId};
use pug_sat::Budget;
use std::collections::HashMap;

/// Transform steps between budget polls in the rewriting pass.
const BUDGET_POLL_INTERVAL: u64 = 256;

/// Result of one-shot array elimination.
pub struct ArrayReduction {
    /// The rewritten, array-free assertions (Ackermann constraints included).
    pub assertions: Vec<TermId>,
    /// Per base array variable: the (index term, fresh value variable) pairs
    /// introduced for its reads. Index terms are array-free.
    pub base_selects: HashMap<TermId, Vec<(TermId, TermId)>>,
    /// True when the pass was cut short by the budget (deadline, cancel
    /// token or term-node cap). The assertions are then incomplete and the
    /// caller must answer `Unknown`.
    pub interrupted: bool,
}

/// Result of one incremental [`IncrementalReducer::reduce`] call.
pub struct ReduceDelta {
    /// Rewritten (array-free) forms of the input assertions, in order.
    pub assertions: Vec<TermId>,
    /// Ackermann congruence constraints newly due for reads discovered by
    /// this call. These are valid array axioms — a session may assert them
    /// permanently even when the input assertions themselves are
    /// retractable.
    pub congruence: Vec<TermId>,
    /// True when this call was cut short by the budget; the delta is then
    /// incomplete and the caller must answer `Unknown`.
    pub interrupted: bool,
}

/// Eliminate arrays from `assertions` (see module docs), without limits.
pub fn reduce_arrays(ctx: &mut Ctx, assertions: &[TermId]) -> ArrayReduction {
    reduce_arrays_budgeted(ctx, assertions, &Budget::unlimited())
}

/// [`reduce_arrays`] honouring a budget: store-chain expansion is quadratic
/// in chain length and Ackermann expansion quadratic in read count, so on
/// adversarial inputs the rewrite itself can exhaust time or blow up the
/// hash-consed term DAG (`Budget::max_term_nodes`) long before bit-blasting.
pub fn reduce_arrays_budgeted(
    ctx: &mut Ctx,
    assertions: &[TermId],
    budget: &Budget,
) -> ArrayReduction {
    let mut pass = IncrementalReducer::new();
    let delta = pass.reduce(ctx, assertions, budget);
    let mut out = delta.assertions;
    out.extend(delta.congruence);
    ArrayReduction {
        assertions: out,
        base_selects: pass.base_selects,
        interrupted: delta.interrupted,
    }
}

/// Persistent store-chain / Ackermann pass (see module docs).
///
/// An aborted call leaves the reducer in a *consistent* state: rewrite
/// results are only cached when fully computed, and the congruence
/// high-water mark only advances for arrays whose pair closure was emitted
/// completely, so a later call under a fresh budget redoes exactly the
/// unfinished work (re-emitted pairs hash-cons to the same terms and are
/// harmless to re-assert).
#[derive(Clone, Default)]
pub struct IncrementalReducer {
    cache: HashMap<TermId, TermId>,
    /// Memo: (base array, index) → fresh value variable.
    select_vars: HashMap<(TermId, TermId), TermId>,
    base_selects: HashMap<TermId, Vec<(TermId, TermId)>>,
    /// Per base array: number of leading reads in `base_selects` whose
    /// congruence pairs (against every earlier read) were already emitted.
    congruence_done: HashMap<TermId, usize>,
    budget: Budget,
    steps: u64,
    aborted: bool,
}

impl IncrementalReducer {
    /// Fresh reducer with empty caches.
    pub fn new() -> IncrementalReducer {
        IncrementalReducer::default()
    }

    /// Whether the most recent `reduce` call was cut short by its budget.
    pub fn aborted(&self) -> bool {
        self.aborted
    }

    /// All reads of base arrays discovered so far (for model reconstruction).
    pub fn base_selects(&self) -> &HashMap<TermId, Vec<(TermId, TermId)>> {
        &self.base_selects
    }

    /// Rewrite a batch of assertions, extending the persistent caches.
    pub fn reduce(&mut self, ctx: &mut Ctx, assertions: &[TermId], budget: &Budget) -> ReduceDelta {
        self.budget = budget.clone();
        self.aborted = false;
        let out: Vec<TermId> = assertions.iter().map(|&t| self.transform(ctx, t)).collect();

        // Ackermann congruence: pair every read discovered by this call with
        // every earlier read of the same base array (and with each other).
        let mut congruence = Vec::new();
        // Deterministic emission order: hash-map order would permute the
        // congruence terms (and every TermId allocated for them) from run to
        // run, which permutes the CNF and with it the witness models.
        let mut arrays: Vec<TermId> = self.base_selects.keys().copied().collect();
        arrays.sort_unstable();
        'arrays: for array in arrays {
            let done = self.congruence_done.get(&array).copied().unwrap_or(0);
            let len = self.base_selects[&array].len();
            for n in done..len {
                if self.aborted
                    || budget.interrupted()
                    || budget.term_nodes_exhausted(ctx.num_terms())
                {
                    self.aborted = true;
                    break 'arrays;
                }
                for m in 0..n {
                    let (im, vm) = self.base_selects[&array][m];
                    let (in_, vn) = self.base_selects[&array][n];
                    let idx_eq = ctx.mk_eq(im, in_);
                    let val_eq = ctx.mk_eq(vm, vn);
                    let c = ctx.mk_implies(idx_eq, val_eq);
                    if ctx.const_bool(c) != Some(true) {
                        congruence.push(c);
                    }
                }
            }
            self.congruence_done.insert(array, len);
        }
        ReduceDelta { assertions: out, congruence, interrupted: self.aborted }
    }

    fn transform(&mut self, ctx: &mut Ctx, t: TermId) -> TermId {
        if let Some(&r) = self.cache.get(&t) {
            return r;
        }
        if self.aborted {
            return t;
        }
        self.steps += 1;
        if self.steps.is_multiple_of(BUDGET_POLL_INTERVAL)
            && (self.budget.interrupted() || self.budget.term_nodes_exhausted(ctx.num_terms()))
        {
            // Collapse the recursion; the reduction is flagged interrupted so
            // the answer becomes Unknown.
            self.aborted = true;
            return t;
        }
        let node = ctx.node(t).clone();
        let result = match node.op {
            Op::Select => {
                let idx = self.transform(ctx, node.args[1]);
                self.expand_select(ctx, node.args[0], idx)
            }
            Op::Store => {
                unreachable!("store outside a select reached the array pass")
            }
            _ => {
                let mut args = Vec::with_capacity(node.args.len());
                let mut changed = false;
                for &a in &node.args {
                    let na = self.transform(ctx, a);
                    changed |= na != a;
                    args.push(na);
                }
                if changed {
                    ctx.rebuild(&node.op, &args)
                } else {
                    t
                }
            }
        };
        // Never memoize a result computed from an aborted (partially
        // rewritten) subterm: the cache must stay poison-free so a later
        // call under a fresh budget can redo the work correctly.
        if !self.aborted {
            self.cache.insert(t, result);
        }
        result
    }

    /// Resolve `select(array, idx)` where `idx` is already array-free.
    fn expand_select(&mut self, ctx: &mut Ctx, array: TermId, idx: TermId) -> TermId {
        match ctx.op(array).clone() {
            Op::Store => {
                let (base, i, v) = {
                    let a = ctx.args(array);
                    (a[0], a[1], a[2])
                };
                let i = self.transform(ctx, i);
                let v = self.transform(ctx, v);
                let cond = ctx.mk_eq(idx, i);
                // Short-circuit on syntactic (dis)equality folded by mk_eq.
                match ctx.const_bool(cond) {
                    Some(true) => v,
                    Some(false) => self.expand_select(ctx, base, idx),
                    None => {
                        let els = self.expand_select(ctx, base, idx);
                        ctx.mk_ite(cond, v, els)
                    }
                }
            }
            Op::Var { .. } => {
                if let Some(&var) = self.select_vars.get(&(array, idx)) {
                    return var;
                }
                let crate::sort::Sort::Array { elem, .. } = ctx.sort(array) else {
                    unreachable!("select base is not array-sorted");
                };
                // Named by the (array, index) pair rather than gensym'd: the
                // same read always maps to the same select var (Ackermann
                // consistency across repeated reductions), and reducing does
                // not bump the ctx-global fresh counter — so the names of
                // *later* fresh vars, which do enter query fingerprints,
                // stay identical across runs that issue different numbers of
                // queries (e.g. FastBugHunt vs Prove sharing a query cache).
                let name = format!("sel!{}!{}", array.index(), idx.index());
                let var = ctx.mk_var(&name, crate::sort::Sort::BitVec(elem));
                self.select_vars.insert((array, idx), var);
                self.base_selects.entry(array).or_default().push((idx, var));
                var
            }
            Op::Ite => {
                // ite over arrays is rejected by Ctx, so this is unreachable,
                // but keep a clear panic in case the invariant ever changes.
                unreachable!("ite over arrays is not supported")
            }
            op => unreachable!("unexpected array operator {op:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::Sort;

    fn setup() -> (Ctx, TermId, TermId) {
        let mut c = Ctx::new();
        let arr = c.mk_var("A", Sort::Array { index: 8, elem: 8 });
        let k = c.mk_var("k", Sort::BitVec(8));
        (c, arr, k)
    }

    #[test]
    fn store_chain_becomes_ite() {
        let (mut c, arr, k) = setup();
        let i0 = c.mk_bv_const(0, 8);
        let i1 = c.mk_bv_const(1, 8);
        let v0 = c.mk_var("v0", Sort::BitVec(8));
        let v1 = c.mk_var("v1", Sort::BitVec(8));
        let s1 = c.mk_store(arr, i0, v0);
        let s2 = c.mk_store(s1, i1, v1);
        let read = c.mk_select(s2, k);
        let zero = c.mk_bv_const(0, 8);
        let assertion = c.mk_eq(read, zero);
        let red = reduce_arrays(&mut c, &[assertion]);
        // one read of the base array (at k), store chain resolved into ite
        assert_eq!(red.base_selects[&arr].len(), 1);
        // no Select/Store ops remain anywhere in the output
        for &a in &red.assertions {
            let mut stack = vec![a];
            while let Some(t) = stack.pop() {
                assert!(
                    !matches!(c.op(t), Op::Select | Op::Store),
                    "array op survived reduction"
                );
                stack.extend_from_slice(c.args(t));
            }
        }
    }

    #[test]
    fn ackermann_constraints_added() {
        let (mut c, arr, k) = setup();
        let j = c.mk_var("j", Sort::BitVec(8));
        let r1 = c.mk_select(arr, k);
        let r2 = c.mk_select(arr, j);
        let a = c.mk_eq(r1, r2);
        let before = 1;
        let red = reduce_arrays(&mut c, &[a]);
        // two reads → one congruence constraint
        assert_eq!(red.base_selects[&arr].len(), 2);
        assert_eq!(red.assertions.len(), before + 1);
    }

    #[test]
    fn identical_selects_share_one_variable() {
        let (mut c, arr, k) = setup();
        let r1 = c.mk_select(arr, k);
        let r2 = c.mk_select(arr, k);
        assert_eq!(r1, r2);
        let a = c.mk_eq(r1, r2); // trivially true
        let red = reduce_arrays(&mut c, &[a]);
        assert!(red.base_selects.get(&arr).is_none_or(|v| v.len() <= 1));
    }

    #[test]
    fn incremental_congruence_extends_monotonically() {
        let (mut c, arr, k) = setup();
        let j = c.mk_var("j", Sort::BitVec(8));
        let l = c.mk_var("l", Sort::BitVec(8));
        let r1 = c.mk_select(arr, k);
        let r2 = c.mk_select(arr, j);
        let zero = c.mk_bv_const(0, 8);
        let a1 = c.mk_eq(r1, zero);
        let a2 = c.mk_eq(r2, zero);
        let mut red = IncrementalReducer::new();
        let d1 = red.reduce(&mut c, &[a1, a2], &Budget::unlimited());
        // two reads → one pair
        assert_eq!(d1.congruence.len(), 1);
        // A third read later pairs only against the two earlier reads.
        let r3 = c.mk_select(arr, l);
        let a3 = c.mk_eq(r3, zero);
        let d2 = red.reduce(&mut c, &[a3], &Budget::unlimited());
        assert_eq!(d2.congruence.len(), 2);
        assert_eq!(red.base_selects()[&arr].len(), 3);
        // Re-reducing an already seen assertion adds nothing.
        let d3 = red.reduce(&mut c, &[a1], &Budget::unlimited());
        assert!(d3.congruence.is_empty());
        assert_eq!(d3.assertions.len(), 1);
    }
}
