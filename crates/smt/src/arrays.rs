//! Array elimination: store-chain reduction followed by Ackermann expansion.
//!
//! PUGpara's verification conditions mention arrays in two ways: symbolic
//! input arrays (`idata`, …) that are *only read*, and output arrays built by
//! chains of `store`s (one per serialized thread in the non-parameterized
//! encoding, one per conditional assignment in the parameterized one).
//!
//! This pass rewrites
//!
//! ```text
//! select(store(a, i, v), j)  →  ite(i = j, v, select(a, j))
//! ```
//!
//! until every `select` sits on a base array variable, replaces each distinct
//! `select(A, i)` by a fresh bit-vector variable, and adds the Ackermann
//! congruence constraints `i_m = i_n ⇒ v_m = v_n` for every pair of reads of
//! the same base array. The result is a pure QF_BV problem for the
//! bit-blaster, plus enough bookkeeping to reconstruct array values in
//! counterexample models.

use crate::term::{Ctx, Op, TermId};
use pug_sat::Budget;
use std::collections::HashMap;

/// Transform steps between budget polls in the rewriting pass.
const BUDGET_POLL_INTERVAL: u64 = 256;

/// Result of array elimination.
pub struct ArrayReduction {
    /// The rewritten, array-free assertions (Ackermann constraints included).
    pub assertions: Vec<TermId>,
    /// Per base array variable: the (index term, fresh value variable) pairs
    /// introduced for its reads. Index terms are array-free.
    pub base_selects: HashMap<TermId, Vec<(TermId, TermId)>>,
    /// True when the pass was cut short by the budget (deadline, cancel
    /// token or term-node cap). The assertions are then incomplete and the
    /// caller must answer `Unknown`.
    pub interrupted: bool,
}

/// Eliminate arrays from `assertions` (see module docs), without limits.
pub fn reduce_arrays(ctx: &mut Ctx, assertions: &[TermId]) -> ArrayReduction {
    reduce_arrays_budgeted(ctx, assertions, &Budget::unlimited())
}

/// [`reduce_arrays`] honouring a budget: store-chain expansion is quadratic
/// in chain length and Ackermann expansion quadratic in read count, so on
/// adversarial inputs the rewrite itself can exhaust time or blow up the
/// hash-consed term DAG (`Budget::max_term_nodes`) long before bit-blasting.
pub fn reduce_arrays_budgeted(
    ctx: &mut Ctx,
    assertions: &[TermId],
    budget: &Budget,
) -> ArrayReduction {
    let mut pass = Pass {
        cache: HashMap::new(),
        select_vars: HashMap::new(),
        base_selects: HashMap::new(),
        budget: budget.clone(),
        steps: 0,
        aborted: false,
    };
    let mut out: Vec<TermId> = assertions.iter().map(|&t| pass.transform(ctx, t)).collect();

    // Ackermann congruence for every pair of reads of the same base array.
    'pairs: for reads in pass.base_selects.values() {
        for m in 0..reads.len() {
            if pass.aborted || budget.interrupted() || budget.term_nodes_exhausted(ctx.num_terms())
            {
                pass.aborted = true;
                break 'pairs;
            }
            for n in (m + 1)..reads.len() {
                let (im, vm) = reads[m];
                let (in_, vn) = reads[n];
                let idx_eq = ctx.mk_eq(im, in_);
                let val_eq = ctx.mk_eq(vm, vn);
                let c = ctx.mk_implies(idx_eq, val_eq);
                if ctx.const_bool(c) != Some(true) {
                    out.push(c);
                }
            }
        }
    }
    ArrayReduction {
        assertions: out,
        base_selects: pass.base_selects,
        interrupted: pass.aborted,
    }
}

struct Pass {
    cache: HashMap<TermId, TermId>,
    /// Memo: (base array, index) → fresh value variable.
    select_vars: HashMap<(TermId, TermId), TermId>,
    base_selects: HashMap<TermId, Vec<(TermId, TermId)>>,
    budget: Budget,
    steps: u64,
    aborted: bool,
}

impl Pass {
    fn transform(&mut self, ctx: &mut Ctx, t: TermId) -> TermId {
        if let Some(&r) = self.cache.get(&t) {
            return r;
        }
        if self.aborted {
            return t;
        }
        self.steps += 1;
        if self.steps.is_multiple_of(BUDGET_POLL_INTERVAL)
            && (self.budget.interrupted() || self.budget.term_nodes_exhausted(ctx.num_terms()))
        {
            // Collapse the recursion; partial rewrites stay cached but the
            // reduction is flagged interrupted so the answer becomes Unknown.
            self.aborted = true;
            return t;
        }
        let node = ctx.node(t).clone();
        let result = match node.op {
            Op::Select => {
                let idx = self.transform(ctx, node.args[1]);
                self.expand_select(ctx, node.args[0], idx)
            }
            Op::Store => {
                unreachable!("store outside a select reached the array pass")
            }
            _ => {
                let mut args = Vec::with_capacity(node.args.len());
                let mut changed = false;
                for &a in &node.args {
                    let na = self.transform(ctx, a);
                    changed |= na != a;
                    args.push(na);
                }
                if changed {
                    ctx.rebuild(&node.op, &args)
                } else {
                    t
                }
            }
        };
        self.cache.insert(t, result);
        result
    }

    /// Resolve `select(array, idx)` where `idx` is already array-free.
    fn expand_select(&mut self, ctx: &mut Ctx, array: TermId, idx: TermId) -> TermId {
        match ctx.op(array).clone() {
            Op::Store => {
                let (base, i, v) = {
                    let a = ctx.args(array);
                    (a[0], a[1], a[2])
                };
                let i = self.transform(ctx, i);
                let v = self.transform(ctx, v);
                let cond = ctx.mk_eq(idx, i);
                // Short-circuit on syntactic (dis)equality folded by mk_eq.
                match ctx.const_bool(cond) {
                    Some(true) => v,
                    Some(false) => self.expand_select(ctx, base, idx),
                    None => {
                        let els = self.expand_select(ctx, base, idx);
                        ctx.mk_ite(cond, v, els)
                    }
                }
            }
            Op::Var { .. } => {
                if let Some(&var) = self.select_vars.get(&(array, idx)) {
                    return var;
                }
                let crate::sort::Sort::Array { elem, .. } = ctx.sort(array) else {
                    unreachable!("select base is not array-sorted");
                };
                let var = ctx.fresh_var("sel", crate::sort::Sort::BitVec(elem));
                self.select_vars.insert((array, idx), var);
                self.base_selects.entry(array).or_default().push((idx, var));
                var
            }
            Op::Ite => {
                // ite over arrays is rejected by Ctx, so this is unreachable,
                // but keep a clear panic in case the invariant ever changes.
                unreachable!("ite over arrays is not supported")
            }
            op => unreachable!("unexpected array operator {op:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::Sort;

    fn setup() -> (Ctx, TermId, TermId) {
        let mut c = Ctx::new();
        let arr = c.mk_var("A", Sort::Array { index: 8, elem: 8 });
        let k = c.mk_var("k", Sort::BitVec(8));
        (c, arr, k)
    }

    #[test]
    fn store_chain_becomes_ite() {
        let (mut c, arr, k) = setup();
        let i0 = c.mk_bv_const(0, 8);
        let i1 = c.mk_bv_const(1, 8);
        let v0 = c.mk_var("v0", Sort::BitVec(8));
        let v1 = c.mk_var("v1", Sort::BitVec(8));
        let s1 = c.mk_store(arr, i0, v0);
        let s2 = c.mk_store(s1, i1, v1);
        let read = c.mk_select(s2, k);
        let zero = c.mk_bv_const(0, 8);
        let assertion = c.mk_eq(read, zero);
        let red = reduce_arrays(&mut c, &[assertion]);
        // one read of the base array (at k), store chain resolved into ite
        assert_eq!(red.base_selects[&arr].len(), 1);
        // no Select/Store ops remain anywhere in the output
        for &a in &red.assertions {
            let mut stack = vec![a];
            while let Some(t) = stack.pop() {
                assert!(
                    !matches!(c.op(t), Op::Select | Op::Store),
                    "array op survived reduction"
                );
                stack.extend_from_slice(c.args(t));
            }
        }
    }

    #[test]
    fn ackermann_constraints_added() {
        let (mut c, arr, k) = setup();
        let j = c.mk_var("j", Sort::BitVec(8));
        let r1 = c.mk_select(arr, k);
        let r2 = c.mk_select(arr, j);
        let a = c.mk_eq(r1, r2);
        let before = 1;
        let red = reduce_arrays(&mut c, &[a]);
        // two reads → one congruence constraint
        assert_eq!(red.base_selects[&arr].len(), 2);
        assert_eq!(red.assertions.len(), before + 1);
    }

    #[test]
    fn identical_selects_share_one_variable() {
        let (mut c, arr, k) = setup();
        let r1 = c.mk_select(arr, k);
        let r2 = c.mk_select(arr, k);
        assert_eq!(r1, r2);
        let a = c.mk_eq(r1, r2); // trivially true
        let red = reduce_arrays(&mut c, &[a]);
        assert!(red.base_selects.get(&arr).is_none_or(|v| v.len() <= 1));
    }
}
