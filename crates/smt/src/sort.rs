//! Sorts of the QF_ABV fragment the verifier emits.

use std::fmt;

/// The sort (type) of a term.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Sort {
    /// Propositional.
    Bool,
    /// Fixed-width bit-vector; widths 1..=64 are supported.
    BitVec(u32),
    /// Array from `BitVec(index)` to `BitVec(elem)`. PUGpara models every
    /// shared/global memory as such a map (the paper works over Z3's
    /// bit-vector arrays the same way).
    Array { index: u32, elem: u32 },
}

impl Sort {
    /// Bit-vector width, panicking on non-bit-vector sorts.
    #[track_caller]
    pub fn bv_width(self) -> u32 {
        match self {
            Sort::BitVec(w) => w,
            other => panic!("expected a bit-vector sort, got {other:?}"),
        }
    }

    /// True for [`Sort::Bool`].
    pub fn is_bool(self) -> bool {
        self == Sort::Bool
    }

    /// True for [`Sort::BitVec`].
    pub fn is_bv(self) -> bool {
        matches!(self, Sort::BitVec(_))
    }

    /// True for [`Sort::Array`].
    pub fn is_array(self) -> bool {
        matches!(self, Sort::Array { .. })
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Bool => write!(f, "Bool"),
            Sort::BitVec(w) => write!(f, "(_ BitVec {w})"),
            Sort::Array { index, elem } => {
                write!(f, "(Array (_ BitVec {index}) (_ BitVec {elem}))")
            }
        }
    }
}

/// Mask selecting the low `w` bits of a `u64`.
#[inline]
pub fn mask(w: u32) -> u64 {
    debug_assert!((1..=64).contains(&w));
    if w == 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

/// Truncate `v` to `w` bits.
#[inline]
pub fn truncate(v: u64, w: u32) -> u64 {
    v & mask(w)
}

/// Interpret the low `w` bits of `v` as a signed value.
#[inline]
pub fn to_signed(v: u64, w: u32) -> i64 {
    let v = truncate(v, w);
    if w == 64 {
        v as i64
    } else if v >> (w - 1) & 1 == 1 {
        (v | !mask(w)) as i64
    } else {
        v as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks() {
        assert_eq!(mask(1), 1);
        assert_eq!(mask(8), 0xff);
        assert_eq!(mask(64), u64::MAX);
        assert_eq!(truncate(0x1ff, 8), 0xff);
    }

    #[test]
    fn signed_interpretation() {
        assert_eq!(to_signed(0xff, 8), -1);
        assert_eq!(to_signed(0x7f, 8), 127);
        assert_eq!(to_signed(0x80, 8), -128);
        assert_eq!(to_signed(u64::MAX, 64), -1);
    }

    #[test]
    fn display() {
        assert_eq!(Sort::BitVec(16).to_string(), "(_ BitVec 16)");
        assert_eq!(Sort::Array { index: 8, elem: 8 }.to_string(), "(Array (_ BitVec 8) (_ BitVec 8))");
    }
}
