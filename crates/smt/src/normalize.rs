//! Equality-saturation-lite term canonicalization.
//!
//! The simplifying constructors in [`crate::term`] are *local*: they fold
//! constants, order the two operands of a commutative node, and reduce
//! strength, but they only ever look one level deep. Two obligations that
//! differ by an associativity regrouping (`(a+b)+c` vs `a+(b+c)`), an `ite`
//! condition polarity, or a store-chain permutation therefore hash-cons to
//! *different* nodes, miss the cross-rung `QueryCache`, and blast to
//! different CNF.
//!
//! This module closes that gap with a memoized bottom-up pass in the
//! egg-smol `TermDag` style: terms are rewritten to one canonical
//! representative per equivalence class (for the rule families below)
//! before fingerprinting and bit-blasting. The rules are deliberately a
//! strict subset of full equality saturation — each one is a directed,
//! terminating rewrite whose soundness is fuzzed against the reference
//! interpreter in `tests/normalize_props.rs`:
//!
//! * **AC chains** (`∧ ∨ ⊕ + * & | ^`): nested same-operator chains are
//!   flattened into their full operand multiset, constants are folded
//!   first (so the constructors' identity/annihilator rules fire), and the
//!   rest re-folded in `TermId` order — one canonical association for
//!   every permutation/regrouping of the same operands. Idempotent chains
//!   (`∧ ∨ & |`) drop duplicate operands and annihilate on a complementary
//!   pair *anywhere* in the chain; cancellative chains (`⊕`) cancel
//!   identical operands pairwise and absorb negations (`¬x ≡ x ⊕ ⊤`,
//!   `~x ≡ x ⊕ −1`) into one accumulated constant. Strength-reduced
//!   factors (`x << k` for `x · 2ᵏ`) are re-expanded while flattening `*`
//!   chains so the power-of-two rejoins the constant fold no matter where
//!   the constructors' local reduction fired.
//! * **`ite` normalization**: `ite(¬c, a, b) → ite(c, b, a)` (condition
//!   polarity), with branch dedup and constant-branch collapse delegated
//!   to the constructor.
//! * **Store chains**: writes fully shadowed by an outer write to the same
//!   (syntactic) address are dropped, and maximal runs of pairwise-distinct
//!   *constant*-address writes are sorted by address value. Symbolic
//!   addresses act as reorder barriers — commuting across them is only
//!   sound when the addresses are provably distinct.
//! * Everything the constructors already do (constant folding, `x*2ⁿ →
//!   x<<n`, `x+0 → x`, `x^x → 0`, pairwise commutative ordering) re-fires
//!   on every rebuilt node.
//!
//! On top of the per-term pass, [`facts_refute`] does one round of bounded
//! fact propagation across a whole assert set: asserted conjuncts (and
//! constants pinned by asserted equalities) are substituted into the
//! negated goal, so obligations that follow *syntactically* from their
//! premises collapse to `⊥` and are discharged with **zero SAT calls**.

use crate::term::{Ctx, Op, TermId};
use pug_sat::failpoints;
use std::collections::{HashMap, HashSet};

/// Counters for one normalizer's lifetime (one verification session).
#[derive(Clone, Copy, Debug, Default)]
pub struct NormalizeStats {
    /// Terms whose canonical form differs from the input node.
    pub rewritten: u64,
    /// Distinct nodes visited (memo entries).
    pub visited: u64,
}

/// Memoized canonicalizer. The term DAG is append-only and every rule is
/// deterministic, so memo entries never go stale — one normalizer serves a
/// whole session (the same `Ctx`) across all of its queries.
#[derive(Clone, Default)]
pub struct Normalizer {
    memo: HashMap<TermId, TermId>,
    pub stats: NormalizeStats,
}

impl Normalizer {
    pub fn new() -> Normalizer {
        Normalizer::default()
    }

    /// Canonical form of `t`. Idempotent: `normalize(normalize(t)) ==
    /// normalize(t)` (fuzzed in `tests/normalize_props.rs`).
    pub fn normalize(&mut self, ctx: &mut Ctx, t: TermId) -> TermId {
        // Iterative post-order so deep store/arithmetic chains cannot
        // overflow the stack.
        let mut stack = vec![t];
        while let Some(&cur) = stack.last() {
            if self.memo.contains_key(&cur) {
                stack.pop();
                continue;
            }
            let args: Vec<TermId> = ctx.args(cur).to_vec();
            let mut pending = false;
            for &a in &args {
                if !self.memo.contains_key(&a) {
                    stack.push(a);
                    pending = true;
                }
            }
            if pending {
                continue;
            }
            let n = self.rewrite(ctx, cur, &args);
            self.stats.visited += 1;
            if n != cur {
                self.stats.rewritten += 1;
            }
            self.memo.insert(cur, n);
            stack.pop();
        }
        self.memo[&t]
    }

    /// Canonicalize one node whose children are already canonical.
    fn rewrite(&mut self, ctx: &mut Ctx, t: TermId, args: &[TermId]) -> TermId {
        let nargs: Vec<TermId> = args.iter().map(|a| self.memo[a]).collect();
        let op = ctx.op(t).clone();
        match op {
            Op::And
            | Op::Or
            | Op::Xor
            | Op::BvAdd
            | Op::BvMul
            | Op::BvAnd
            | Op::BvOr
            | Op::BvXor => rewrite_ac(ctx, &op, &nargs),
            // `x << k` is the constructors' strength-reduced spelling of
            // `x · 2ᵏ`: route it through the multiplication chain so both
            // spellings share one canonical form (`k < w` is guaranteed —
            // the constructor folds wider shifts to the zero literal).
            Op::BvShl if ctx.const_bv(nargs[1]).is_some() => {
                let k = ctx.const_bv(nargs[1]).expect("guarded by the match arm");
                let w = ctx.width(t);
                let f = ctx.mk_bv_const(1u64 << k, w);
                rewrite_ac(ctx, &Op::BvMul, &[nargs[0], f])
            }
            Op::Ite => {
                let (mut c, mut a, mut b) = (nargs[0], nargs[1], nargs[2]);
                if matches!(ctx.op(c), Op::Not) {
                    c = ctx.args(c)[0];
                    std::mem::swap(&mut a, &mut b);
                }
                ctx.mk_ite(c, a, b)
            }
            Op::Store => rewrite_store(ctx, nargs[0], nargs[1], nargs[2]),
            _ => {
                if nargs == args {
                    t
                } else {
                    ctx.rebuild(&op, &nargs)
                }
            }
        }
    }
}

/// One-off normalization with a throwaway memo (tests, small terms).
pub fn normalize(ctx: &mut Ctx, t: TermId) -> TermId {
    Normalizer::new().normalize(ctx, t)
}

/// Failpoint-guarded normalization: `None` when the `smt::normalize` site
/// is armed with a non-panic fault — the caller must degrade to the
/// un-normalized term (sound either way; the two are equivalence-preserving
/// rewrites of each other) instead of poisoning the session.
pub fn try_normalize(norm: &mut Normalizer, ctx: &mut Ctx, t: TermId) -> Option<TermId> {
    if failpoints::trip("smt::normalize").is_some() {
        return None;
    }
    Some(norm.normalize(ctx, t))
}

fn is_const(ctx: &Ctx, t: TermId) -> bool {
    matches!(ctx.op(t), Op::True | Op::False | Op::BvConst { .. })
}

/// Flatten a same-operator chain into its operand multiset and re-fold in
/// canonical order: constants first (the constructors fold them pairwise
/// into one, then apply identity/annihilator rules), the rest ascending by
/// `TermId`. Every permutation and regrouping of the same operands reaches
/// the same fold, so commuted/reassociated twins become one node.
///
/// The naive fold alone is *not* canonical: the constructors' local rules
/// (`x∧x → x`, `x∧¬x → ⊥`, `x·2ᵏ → x≪k`) fire in one grouping and not in
/// another, so duplicates, complements and strength-reduced factors are
/// handled over the whole multiset here before folding.
fn rewrite_ac(ctx: &mut Ctx, op: &Op, nargs: &[TermId]) -> TermId {
    // ⊕ is cancellative, not idempotent — it gets its own normal form.
    match op {
        Op::Xor => return rewrite_xor_bool(ctx, nargs),
        Op::BvXor => return rewrite_xor_bv(ctx, nargs),
        _ => {}
    }
    let mut leaves: Vec<TermId> = Vec::new();
    let mut work: Vec<TermId> = nargs.to_vec();
    while let Some(x) = work.pop() {
        if ctx.op(x) == op {
            work.extend(ctx.args(x).iter().copied());
        } else if *op == Op::BvMul
            && matches!(ctx.op(x), Op::BvShl)
            && ctx.const_bv(ctx.args(x)[1]).is_some()
        {
            // Strength-reduced factor: `t << k ≡ t · 2ᵏ`. Re-expand so the
            // power-of-two rejoins the constant fold (and `t`, which may
            // itself be a `*` chain, keeps flattening).
            let base = ctx.args(x)[0];
            let k = ctx.const_bv(ctx.args(x)[1]).expect("guarded above");
            let w = ctx.width(x);
            work.push(base);
            leaves.push(ctx.mk_bv_const(1u64 << k, w));
        } else {
            leaves.push(x);
        }
    }
    if matches!(op, Op::And | Op::Or | Op::BvAnd | Op::BvOr) {
        // Idempotent: duplicate operands collapse no matter where they sit.
        leaves.sort_unstable();
        leaves.dedup();
        // A complementary pair anywhere in the chain annihilates it.
        let set: HashSet<TermId> = leaves.iter().copied().collect();
        let contradict = leaves.iter().any(|&l| match ctx.op(l) {
            Op::Not | Op::BvNot => set.contains(&ctx.args(l)[0]),
            _ => false,
        });
        if contradict {
            return match op {
                Op::And => ctx.mk_false(),
                Op::Or => ctx.mk_true(),
                Op::BvAnd => {
                    let w = ctx.width(leaves[0]);
                    ctx.mk_bv_const(0, w)
                }
                _ => {
                    let w = ctx.width(leaves[0]);
                    let m = crate::sort::mask(w);
                    ctx.mk_bv_const(m, w)
                }
            };
        }
    }
    // `(not-a-constant, id)`: constants sort to the front, the rest by id.
    leaves.sort_unstable_by_key(|&l| (!is_const(ctx, l), l));
    let mut acc = leaves[0];
    for &l in &leaves[1..] {
        acc = apply_ac(ctx, op, acc, l);
    }
    acc
}

/// Canonical form for a Boolean `⊕` chain: negations are `⊕ ⊤` and fold
/// into one parity bit, identical operands cancel pairwise, and the parity
/// resurfaces as a single outer `¬`. Expanding a `¬` can uncover a nested
/// `⊕` chain, so flattening and expansion run in one worklist.
fn rewrite_xor_bool(ctx: &mut Ctx, nargs: &[TermId]) -> TermId {
    let mut flip = false;
    let mut rest: Vec<TermId> = Vec::new();
    let mut work: Vec<TermId> = nargs.to_vec();
    while let Some(l) = work.pop() {
        match ctx.op(l) {
            Op::Xor => work.extend(ctx.args(l).iter().copied()),
            Op::True => flip = !flip,
            Op::False => {}
            Op::Not => {
                flip = !flip;
                work.push(ctx.args(l)[0]);
            }
            _ => rest.push(l),
        }
    }
    rest.sort_unstable();
    let kept = cancel_pairs(&rest);
    let Some((&first, more)) = kept.split_first() else {
        return ctx.mk_bool(flip);
    };
    let mut acc = first;
    for &l in more {
        acc = ctx.mk_xor(acc, l);
    }
    if flip {
        ctx.mk_not(acc)
    } else {
        acc
    }
}

/// Canonical form for a bit-vector `^` chain: complements are `^ −1` and
/// constants accumulate into one value, identical operands cancel
/// pairwise, and an all-ones accumulator resurfaces as a single outer `~`.
fn rewrite_xor_bv(ctx: &mut Ctx, nargs: &[TermId]) -> TermId {
    let w = ctx.width(nargs[0]);
    let m = crate::sort::mask(w);
    let mut cval = 0u64;
    let mut rest: Vec<TermId> = Vec::new();
    let mut work: Vec<TermId> = nargs.to_vec();
    while let Some(l) = work.pop() {
        match ctx.op(l) {
            Op::BvXor => work.extend(ctx.args(l).iter().copied()),
            Op::BvConst { value, .. } => cval ^= *value,
            Op::BvNot => {
                cval ^= m;
                work.push(ctx.args(l)[0]);
            }
            _ => rest.push(l),
        }
    }
    cval &= m;
    let flip = cval == m && w > 0;
    if flip {
        cval = 0;
    }
    rest.sort_unstable();
    let mut kept = cancel_pairs(&rest);
    if cval != 0 || kept.is_empty() {
        kept.insert(0, ctx.mk_bv_const(cval, w));
    }
    let mut acc = kept[0];
    for &l in &kept[1..] {
        acc = ctx.mk_bv_xor(acc, l);
    }
    if flip {
        ctx.mk_bv_not(acc)
    } else {
        acc
    }
}

/// Drop pairs of identical adjacent entries from a sorted slice — the
/// multiset modulo `x ⊕ x = identity`.
fn cancel_pairs(sorted: &[TermId]) -> Vec<TermId> {
    let mut kept = Vec::with_capacity(sorted.len());
    let mut i = 0;
    while i < sorted.len() {
        if i + 1 < sorted.len() && sorted[i] == sorted[i + 1] {
            i += 2;
        } else {
            kept.push(sorted[i]);
            i += 1;
        }
    }
    kept
}

fn apply_ac(ctx: &mut Ctx, op: &Op, a: TermId, b: TermId) -> TermId {
    match op {
        Op::And => ctx.mk_and(a, b),
        Op::Or => ctx.mk_or(a, b),
        Op::Xor => ctx.mk_xor(a, b),
        Op::BvAdd => ctx.mk_bv_add(a, b),
        Op::BvMul => ctx.mk_bv_mul(a, b),
        Op::BvAnd => ctx.mk_bv_and(a, b),
        Op::BvOr => ctx.mk_bv_or(a, b),
        Op::BvXor => ctx.mk_bv_xor(a, b),
        _ => unreachable!("not an AC operator: {op:?}"),
    }
}

/// Canonicalize a store chain whose children are already canonical.
fn rewrite_store(ctx: &mut Ctx, arr: TermId, idx: TermId, val: TermId) -> TermId {
    // Collect the chain outermost-first down to the non-store base.
    let mut writes: Vec<(TermId, TermId)> = vec![(idx, val)];
    let mut base = arr;
    while matches!(ctx.op(base), Op::Store) {
        let a = ctx.args(base);
        let (b, i, v) = (a[0], a[1], a[2]);
        writes.push((i, v));
        base = b;
    }
    // Shadowed-write elimination: an outer write to the same syntactic
    // address wins regardless of anything written in between.
    let mut seen: HashSet<TermId> = HashSet::new();
    writes.retain(|&(i, _)| seen.insert(i));
    // Innermost-first for the rebuild; sort maximal runs of constant
    // addresses (pairwise distinct after dedup, hence commuting) by value.
    writes.reverse();
    let mut out: Vec<(TermId, TermId)> = Vec::with_capacity(writes.len());
    let mut run: Vec<(TermId, TermId)> = Vec::new();
    for w in writes {
        if ctx.const_bv(w.0).is_some() {
            run.push(w);
        } else {
            flush_run(ctx, &mut run, &mut out);
            out.push(w);
        }
    }
    flush_run(ctx, &mut run, &mut out);
    let mut acc = base;
    for (i, v) in out {
        acc = ctx.mk_store(acc, i, v);
    }
    acc
}

fn flush_run(ctx: &Ctx, run: &mut Vec<(TermId, TermId)>, out: &mut Vec<(TermId, TermId)>) {
    run.sort_unstable_by_key(|&(i, _)| ctx.const_bv(i).expect("run holds constant addresses"));
    out.append(run);
}

/// One round of bounded fact propagation across an assert set: does the
/// premise set *syntactically* refute `neg_goal`?
///
/// Facts are the premises' top-level conjuncts. Every fact is true in
/// every model of the set, so substituting `fact → ⊤` (and `g → ⊥` for a
/// fact `¬g`, and `x → c` for a fact `x = c`) into the remaining asserts
/// preserves their value in every model. If the negated goal collapses to
/// `⊥` under that substitution — or the facts contradict each other
/// outright — the whole set is unsatisfiable and the obligation is valid
/// with zero SAT calls.
///
/// Returns `true` only on a *definite* refutation; `false` means "solve
/// it", never "satisfiable".
pub fn facts_refute(ctx: &mut Ctx, premises: &[TermId], neg_goal: TermId) -> bool {
    if ctx.const_bool(neg_goal) == Some(false) {
        return true;
    }
    if premises.iter().any(|&p| ctx.const_bool(p) == Some(false)) {
        // Contradictory premises: the set is unsat (the obligation holds
        // vacuously); the caller surfaces this as a rewrite discharge.
        return true;
    }
    let tru = ctx.mk_true();
    let fls = ctx.mk_false();
    // Split conjunctions into individual facts.
    let mut facts: Vec<TermId> = Vec::new();
    let mut work: Vec<TermId> = premises.to_vec();
    while let Some(f) = work.pop() {
        match ctx.op(f) {
            Op::And => work.extend(ctx.args(f).iter().copied()),
            Op::True => {}
            _ => facts.push(f),
        }
    }
    // fact → ⊤, ¬g → g ↦ ⊥, x = const → x ↦ const. A conflicting binding
    // is a direct premise contradiction: refuted.
    let mut map: HashMap<TermId, TermId> = HashMap::new();
    let bind = |map: &mut HashMap<TermId, TermId>, k: TermId, v: TermId| -> bool {
        match map.insert(k, v) {
            Some(old) => old != v,
            None => false,
        }
    };
    for &f in &facts {
        if bind(&mut map, f, tru) {
            return true;
        }
        match ctx.op(f) {
            Op::Not => {
                let g = ctx.args(f)[0];
                if bind(&mut map, g, fls) {
                    return true;
                }
            }
            Op::Eq => {
                let (a, b) = (ctx.args(f)[0], ctx.args(f)[1]);
                match (is_const(ctx, a), is_const(ctx, b)) {
                    (true, false) if bind(&mut map, b, a) => return true,
                    (false, true) if bind(&mut map, a, b) => return true,
                    _ => {}
                }
            }
            _ => {}
        }
    }
    if map.is_empty() {
        return false;
    }
    let propagated = ctx.substitute(neg_goal, &map);
    ctx.const_bool(propagated) == Some(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::Sort;

    #[test]
    fn reassociated_sums_share_one_canonical_form() {
        let mut c = Ctx::new();
        let x = c.mk_var("x", Sort::BitVec(8));
        let y = c.mk_var("y", Sort::BitVec(8));
        let z = c.mk_var("z", Sort::BitVec(8));
        let xy = c.mk_bv_add(x, y);
        let l = c.mk_bv_add(xy, z);
        let yz = c.mk_bv_add(y, z);
        let r = c.mk_bv_add(x, yz);
        assert_ne!(l, r, "constructors alone must not merge regroupings");
        let nl = normalize(&mut c, l);
        let nr = normalize(&mut c, r);
        assert_eq!(nl, nr);
    }

    #[test]
    fn ite_polarity_is_canonical() {
        let mut c = Ctx::new();
        let p = c.mk_var("p", Sort::Bool);
        let x = c.mk_var("x", Sort::BitVec(8));
        let y = c.mk_var("y", Sort::BitVec(8));
        let np = c.mk_not(p);
        let a = c.mk_ite(np, x, y);
        let b = c.mk_ite(p, y, x);
        let na = normalize(&mut c, a);
        let nb = normalize(&mut c, b);
        assert_eq!(na, nb);
    }

    #[test]
    fn shadowed_and_permuted_stores_merge() {
        let mut c = Ctx::new();
        let arr = c.mk_var("a", Sort::Array { index: 8, elem: 8 });
        let (i0, i1) = (c.mk_bv_const(0, 8), c.mk_bv_const(1, 8));
        let (v0, v1, v2) = (c.mk_bv_const(10, 8), c.mk_bv_const(11, 8), c.mk_bv_const(12, 8));
        // store(store(store(a,0,10),1,11),0,12): the inner write to 0 is dead.
        let s1 = c.mk_store(arr, i0, v0);
        let s2 = c.mk_store(s1, i1, v1);
        let l = c.mk_store(s2, i0, v2);
        // store(store(a,1,11),0,12): same function.
        let t1 = c.mk_store(arr, i1, v1);
        let r = c.mk_store(t1, i0, v2);
        let nl = normalize(&mut c, l);
        let nr = normalize(&mut c, r);
        assert_eq!(nl, nr);
    }

    #[test]
    fn facts_refute_discharges_an_implied_disjunct() {
        let mut c = Ctx::new();
        let p = c.mk_var("p", Sort::Bool);
        let q = c.mk_var("q", Sort::Bool);
        let r = c.mk_var("r", Sort::Bool);
        // premises: p, q  —  goal: r ∨ (p ∧ q); ¬goal must collapse.
        let pq = c.mk_and(p, q);
        let goal = c.mk_or(r, pq);
        let ng = c.mk_not(goal);
        assert!(facts_refute(&mut c, &[p, q], ng));
        // p alone does not refute it.
        assert!(!facts_refute(&mut c, &[p], ng));
    }
}
