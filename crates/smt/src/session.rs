//! Incremental solving: a persistent [`SolveSession`] that keeps one
//! [`Solver`] + one [`BitBlaster`] + one [`IncrementalReducer`] alive across
//! the many obligations of a verification run.
//!
//! PUGpara's parameterized encoding turns one kernel pair into many SMT
//! queries that share the same barrier-interval premises. A session splits
//! each query into
//!
//! * a **committed prefix** ([`SolveSession::commit`]) — premises contained
//!   in every future query of the run. These are reduced, blasted and added
//!   as *permanent* clauses exactly once; and
//! * a **retractable goal** ([`SolveSession::check`]) — the per-obligation
//!   delta. Its clauses are guarded by a fresh assumption literal `g`
//!   (each goal clause is asserted as `¬g ∨ lit`), the query is solved
//!   under the assumption `g`, and afterwards `g` is *retired* with the
//!   permanent unit `¬g`, which satisfies every guard clause so level-0
//!   simplification can delete them.
//!
//! Obligation N+1 therefore pays only for its delta and inherits the CNF,
//! the Ackermann read closure and all learned clauses from obligations
//! 1..N. Ackermann congruence constraints are valid array axioms, so even
//! the ones triggered by a retractable goal are committed permanently.
//!
//! Budget semantics are per query: conflict / propagation / clause-byte
//! caps are offset by the session's cumulative counters at query entry, so
//! a cap of 1000 conflicts means 1000 conflicts *for this query*, exactly
//! as in the one-shot path. A budget abort during *encoding* of permanent
//! clauses poisons the session (the permanent CNF may be incomplete —
//! every later answer is `Unknown`); an abort during *search* does not.

use crate::arrays::IncrementalReducer;
use crate::bitblast::BitBlaster;
use crate::eval::Env;
use crate::model::Model;
use crate::solver::{build_model, CheckStats, SmtResult};
use crate::sort::Sort;
use crate::term::{Ctx, Op, TermId};
use pug_sat::{Budget, SolveResult, Solver, Stats};
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::time::Instant;

/// Persistent incremental solver state (see module docs).
///
/// `Clone` is a full clause-level replica: the committed prefix CNF, the
/// blaster's structural-hash gate cache and the reducer's select/congruence
/// memos all carry over, so a clone replays the shared prefix without
/// re-normalizing, re-reducing or re-blasting anything. This is the basis
/// of [`SolveSession::replica`].
#[derive(Clone)]
pub struct SolveSession {
    sat: Solver,
    blaster: BitBlaster,
    reducer: IncrementalReducer,
    /// Original (pre-reduction) committed terms, in commit order.
    committed: Vec<TermId>,
    committed_set: HashSet<TermId>,
    /// True once a committed term was non-trivial (so an empty goal must
    /// still be solved rather than answered `Sat` syntactically).
    committed_live: bool,
    /// Set when encoding of *permanent* clauses was cut short by a budget:
    /// the clause set may be incomplete, so every later answer is Unknown.
    poisoned: bool,
}

impl Default for SolveSession {
    fn default() -> SolveSession {
        SolveSession::new()
    }
}

impl SolveSession {
    /// Fresh session with an empty committed prefix.
    pub fn new() -> SolveSession {
        SolveSession::with_config(pug_sat::SimplifyConfig::default())
    }

    /// Fresh session with an explicit SAT pre/inprocessing configuration.
    /// Assumption guard variables are frozen automatically at each solve, so
    /// BVE never eliminates a live guard; retired guards become eligible
    /// once their permanent `¬g` unit is on the trail.
    pub fn with_config(simplify: pug_sat::SimplifyConfig) -> SolveSession {
        let mut sat = Solver::new();
        sat.set_simplify_config(simplify);
        let blaster = BitBlaster::new(&mut sat);
        SolveSession {
            sat,
            blaster,
            reducer: IncrementalReducer::new(),
            committed: Vec::new(),
            committed_set: HashSet::new(),
            committed_live: false,
            poisoned: false,
        }
    }

    /// True once a mid-encode budget abort has invalidated the session.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// A full clause-level replica of this session: committed prefix CNF,
    /// learnt clauses, gate cache and reducer memos are all carried over,
    /// so the replica starts exactly where the donor stands without
    /// re-blasting anything. Used to fan independent obligations across an
    /// obligation pool; replicas stay bit-compatible with the donor (same
    /// variable numbering for every prefix variable).
    pub fn replica(&self) -> SolveSession {
        self.clone()
    }

    /// Number of SAT variables allocated so far — the **prefix high-water
    /// mark** for a replica forked right now: any variable a later query
    /// allocates (guards, goal gates) sits at or above this index.
    pub fn num_vars(&self) -> usize {
        self.sat.num_vars()
    }

    /// Join this session to a learnt-clause exchange ring as `member`.
    /// The prefix high-water mark is captured *now*, so only clauses over
    /// already-allocated (prefix) variables will be exported; clauses up to
    /// `max_len` literals qualify. Import happens at restart boundaries.
    pub fn attach_exchange(
        &mut self,
        ring: std::sync::Arc<pug_sat::LearntRing>,
        member: usize,
        max_len: usize,
    ) {
        let mark = self.sat.num_vars() as u32;
        self.sat.set_exchange(pug_sat::Exchange::new(ring, member, mark, max_len));
    }

    /// Is `t` already part of the committed prefix?
    pub fn is_committed(&self, t: TermId) -> bool {
        self.committed_set.contains(&t)
    }

    /// The committed prefix, in commit order.
    pub fn committed(&self) -> &[TermId] {
        &self.committed
    }

    /// Number of live clauses currently in the solver (a measure of how
    /// much encoding later queries inherit).
    pub fn num_clauses(&self) -> usize {
        self.sat.num_clauses()
    }

    /// Add `terms` to the committed prefix: reduce, blast and assert them
    /// as permanent clauses. Only terms contained in **every** future query
    /// of this session may be committed — committing anything else changes
    /// later verdicts. Already committed terms are skipped.
    pub fn commit(&mut self, ctx: &mut Ctx, terms: &[TermId], budget: &Budget) {
        if self.poisoned {
            return;
        }
        let mut live: Vec<TermId> = Vec::new();
        for &t in terms {
            if !self.committed_set.insert(t) {
                continue;
            }
            self.committed.push(t);
            if ctx.const_bool(t) != Some(true) {
                live.push(t);
            }
        }
        if live.is_empty() || !self.sat.is_ok() {
            // Nothing non-trivial to add, or the prefix is already
            // unsatisfiable (every later query stays Unsat regardless).
            self.committed_live |= !live.is_empty();
            return;
        }
        self.committed_live = true;
        let delta = self.reducer.reduce(ctx, &live, budget);
        if delta.interrupted {
            self.poisoned = true;
            return;
        }
        self.blaster.set_budget(budget);
        for &a in delta.assertions.iter().chain(delta.congruence.iter()) {
            match ctx.const_bool(a) {
                Some(true) => {}
                Some(false) => {
                    let f = self.blaster.lit_false();
                    self.sat.add_clause(&[f]);
                }
                None => self.blaster.assert_term(ctx, &mut self.sat, a),
            }
        }
        if self.blaster.aborted() {
            self.poisoned = true;
        }
    }

    /// Per-query budget: offset cumulative caps by the session's counters
    /// at query entry, so caps keep their one-shot per-query meaning.
    fn query_budget(&self, budget: &Budget) -> Budget {
        let mut b = budget.clone();
        let s = self.sat.stats();
        if let Some(m) = b.max_conflicts {
            b.max_conflicts = Some(m.saturating_add(s.conflicts));
        }
        if let Some(m) = b.max_propagations {
            b.max_propagations = Some(m.saturating_add(s.propagations));
        }
        if let Some(m) = b.max_clause_bytes {
            b.max_clause_bytes = Some(m.saturating_add(self.sat.clause_db_bytes()));
        }
        b
    }

    /// Decide satisfiability of `committed prefix ∧ asserts`. The asserts
    /// are retractable: their clauses are guarded by a fresh assumption
    /// literal and retired after the answer, so they do not constrain later
    /// queries. Congruence axioms for any *new* array reads they introduce
    /// are committed permanently (they are valid axioms).
    pub fn check(&mut self, ctx: &mut Ctx, asserts: &[TermId], budget: &Budget) -> (SmtResult, CheckStats) {
        let mut stats = CheckStats { clauses_reused: self.sat.num_clauses(), ..CheckStats::default() };

        // Fault-injection parity with `check_detailed`: the same site trips
        // in both paths, so the fault smokes exercise sessions identically.
        if pug_sat::failpoints::trip("smt::check").is_some() {
            return (SmtResult::Unknown, stats);
        }
        if self.poisoned {
            return (SmtResult::Unknown, stats);
        }

        // Trivial cases after constructor-level rewriting.
        let mut live: Vec<TermId> = Vec::new();
        for &a in asserts {
            match ctx.const_bool(a) {
                Some(true) => continue,
                Some(false) => return (SmtResult::Unsat, stats),
                None => live.push(a),
            }
        }
        if live.is_empty() && !self.committed_live {
            return (SmtResult::Sat(Model::new(Env::new())), stats);
        }
        if !self.sat.is_ok() {
            // The committed prefix is unsatisfiable; it is contained in
            // every query, so every query is too.
            return (SmtResult::Unsat, stats);
        }

        let qbudget = self.query_budget(budget);

        let selects_before: usize = self.reducer.base_selects().values().map(Vec::len).sum();
        let t0 = Instant::now();
        let delta = self.reducer.reduce(ctx, &live, &qbudget);
        stats.reduce_time = t0.elapsed();
        stats.reduced_assertions = delta.assertions.len() + delta.congruence.len();
        let selects_after: usize = self.reducer.base_selects().values().map(Vec::len).sum();
        stats.ack_selects = selects_after - selects_before;
        if delta.interrupted {
            // Nothing permanent was asserted (the congruence high-water mark
            // only advances on completion), so the session stays healthy.
            return (SmtResult::Unknown, stats);
        }

        let t1 = Instant::now();
        let gates_before = self.blaster.gates_hashconsed();
        self.blaster.set_budget(&qbudget);
        // New Ackermann congruence axioms: permanent.
        for &a in &delta.congruence {
            if ctx.const_bool(a) != Some(true) {
                self.blaster.assert_term(ctx, &mut self.sat, a);
            }
        }
        // Goal assertions: guarded by a fresh assumption literal.
        let guard = self.sat.new_var();
        let mut goal_unsat = false;
        for &a in &delta.assertions {
            match ctx.const_bool(a) {
                Some(true) => {}
                Some(false) => goal_unsat = true,
                None => {
                    let l = self.blaster.bool_lit(ctx, &mut self.sat, a);
                    self.sat.add_clause(&[guard.neg(), l]);
                }
            }
        }
        stats.blast_time = t1.elapsed();
        stats.cnf_vars = self.sat.num_vars();
        stats.cnf_clauses = self.sat.num_clauses();
        stats.gates_hashconsed = self.blaster.gates_hashconsed() - gates_before;
        if self.blaster.aborted() {
            // Permanent congruence clauses may be missing — poison.
            self.poisoned = true;
            self.sat.add_clause(&[guard.neg()]);
            return (SmtResult::Unknown, stats);
        }
        if goal_unsat {
            self.sat.add_clause(&[guard.neg()]);
            self.sat.simplify();
            return (SmtResult::Unsat, stats);
        }

        let t2 = Instant::now();
        let snap = self.sat.stats();
        let result = self.sat.solve_with(&[guard.pos()], &qbudget);
        stats.solve_time = t2.elapsed();
        stats.sat = stats_delta(self.sat.stats(), snap);

        let r = match result {
            SolveResult::Unsat => SmtResult::Unsat,
            SolveResult::Unknown => SmtResult::Unknown,
            SolveResult::Sat => {
                let mut original: Vec<TermId> = self.committed.clone();
                original.extend_from_slice(&live);
                let mut reduced = delta.assertions.clone();
                reduced.extend_from_slice(&delta.congruence);
                let model = build_model(
                    ctx,
                    &original,
                    &reduced,
                    self.reducer.base_selects(),
                    &self.blaster,
                    &self.sat,
                );
                #[cfg(debug_assertions)]
                for &a in live.iter().chain(self.committed.iter()) {
                    debug_assert!(
                        model.eval_bool(ctx, a),
                        "session model does not satisfy assertion: {}",
                        crate::smtlib::term_to_string(ctx, a)
                    );
                }
                SmtResult::Sat(model)
            }
        };
        // Retire the guard: the permanent unit ¬g satisfies every guard
        // clause of this query, and the immediate level-0 simplification
        // deletes them (and strengthens learnt clauses mentioning g), so
        // later queries do not pay watch-list drag for dead clauses.
        self.sat.add_clause(&[guard.neg()]);
        self.sat.simplify();
        (r, stats)
    }
}

fn stats_delta(after: Stats, before: Stats) -> Stats {
    Stats {
        conflicts: after.conflicts.saturating_sub(before.conflicts),
        propagations: after.propagations.saturating_sub(before.propagations),
        decisions: after.decisions.saturating_sub(before.decisions),
        restarts: after.restarts.saturating_sub(before.restarts),
        learnt_clauses: after.learnt_clauses.saturating_sub(before.learnt_clauses),
        deleted_clauses: after.deleted_clauses.saturating_sub(before.deleted_clauses),
        vars_eliminated: after.vars_eliminated.saturating_sub(before.vars_eliminated),
        clauses_subsumed: after.clauses_subsumed.saturating_sub(before.clauses_subsumed),
        clauses_vivified: after.clauses_vivified.saturating_sub(before.clauses_vivified),
        learnts_imported: after.learnts_imported.saturating_sub(before.learnts_imported),
    }
}

// ---------------------------------------------------------------------------
// Canonical fingerprints for the cross-rung query cache
// ---------------------------------------------------------------------------

/// Two independently seeded FNV-1a streams giving a 128-bit structural hash;
/// collisions at 128 bits are negligible for a per-batch cache.
struct Fnv128 {
    a: u64,
    b: u64,
}

impl Fnv128 {
    fn new() -> Fnv128 {
        Fnv128 { a: 0xcbf2_9ce4_8422_2325, b: 0x6c62_272e_07bb_0142 }
    }

    fn finish128(&self) -> u128 {
        (self.a as u128) << 64 | self.b as u128
    }
}

impl Hasher for Fnv128 {
    fn finish(&self) -> u64 {
        self.a
    }

    fn write(&mut self, bytes: &[u8]) {
        for &x in bytes {
            self.a ^= x as u64;
            self.a = self.a.wrapping_mul(0x100_0000_01b3);
            self.b ^= x as u64;
            self.b = self.b.wrapping_mul(0x3f7_be91_a8f9);
        }
    }
}

fn hash_sort(h: &mut Fnv128, s: Sort) {
    match s {
        Sort::Bool => h.write_u32(0),
        Sort::BitVec(w) => {
            h.write_u32(1);
            h.write_u32(w);
        }
        Sort::Array { index, elem } => {
            h.write_u32(2);
            h.write_u32(index);
            h.write_u32(elem);
        }
    }
}

/// Context-independent structural hash of a term: variables hash by *name*
/// (and sort), everything else by operator and child hashes, so the same
/// formula built in two different [`Ctx`]s — e.g. by two portfolio rungs
/// encoding the same kernel pair — gets the same hash.
pub fn canonical_hash(ctx: &Ctx, t: TermId, memo: &mut HashMap<TermId, u128>) -> u128 {
    let mut stack = vec![t];
    while let Some(&x) = stack.last() {
        if memo.contains_key(&x) {
            stack.pop();
            continue;
        }
        let mut ready = true;
        for &a in ctx.args(x) {
            if !memo.contains_key(&a) {
                stack.push(a);
                ready = false;
            }
        }
        if !ready {
            continue;
        }
        stack.pop();
        let mut h = Fnv128::new();
        match ctx.op(x) {
            Op::Var { name } => {
                h.write_u8(1);
                h.write(ctx.symbol_name(*name).as_bytes());
            }
            op => {
                h.write_u8(2);
                op.hash(&mut h);
            }
        }
        hash_sort(&mut h, ctx.sort(x));
        for &a in ctx.args(x) {
            h.write_u128(memo[&a]);
        }
        memo.insert(x, h.finish128());
    }
    memo[&t]
}

/// Canonical fingerprint of an assert *set*: order- and duplication-
/// insensitive combination of the per-assert [`canonical_hash`]es. Two
/// queries with equal fingerprints assert the same set of formulas and
/// therefore have the same SAT answer.
pub fn assert_fingerprint(ctx: &Ctx, asserts: &[TermId], memo: &mut HashMap<TermId, u128>) -> u128 {
    let mut hashes: Vec<u128> = asserts.iter().map(|&a| canonical_hash(ctx, a, memo)).collect();
    hashes.sort_unstable();
    hashes.dedup();
    let mut h = Fnv128::new();
    h.write_usize(hashes.len());
    for x in hashes {
        h.write_u128(x);
    }
    h.finish128()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::check_detailed;

    fn ctx() -> Ctx {
        Ctx::new()
    }

    #[test]
    fn committed_prefix_shared_across_queries() {
        let mut c = ctx();
        let x = c.mk_var("x", Sort::BitVec(8));
        let y = c.mk_var("y", Sort::BitVec(8));
        let ten = c.mk_bv_const(10, 8);
        let five = c.mk_bv_const(5, 8);
        let prefix = c.mk_bv_ult(x, five); // x < 5
        let mut s = SolveSession::new();
        s.commit(&mut c, &[prefix], &Budget::unlimited());
        let clauses_after_commit = s.num_clauses();

        // Query 1: x < 5 ∧ x ≥ 10 is unsat.
        let g1 = c.mk_bv_ule(ten, x);
        let (r1, st1) = s.check(&mut c, &[g1], &Budget::unlimited());
        assert!(r1.is_unsat());
        assert!(st1.clauses_reused >= clauses_after_commit);

        // Query 2: x < 5 ∧ y = x is sat, and the model respects the prefix.
        let g2 = c.mk_eq(y, x);
        let (r2, _) = s.check(&mut c, &[g2], &Budget::unlimited());
        match r2 {
            SmtResult::Sat(m) => {
                assert!(m.eval_bv(&c, x) < 5);
                assert_eq!(m.eval_bv(&c, x), m.eval_bv(&c, y));
            }
            other => panic!("expected sat, got {other:?}"),
        }

        // Query 3: retired goals must not leak — x = 12 alone would clash
        // with query 1's goal but only the prefix is permanent.
        let twelve = c.mk_bv_const(12, 8);
        let g3 = c.mk_eq(x, twelve);
        let (r3, _) = s.check(&mut c, &[g3], &Budget::unlimited());
        assert!(r3.is_unsat(), "x < 5 ∧ x = 12 is unsat");
        let four = c.mk_bv_const(4, 8);
        let g4 = c.mk_eq(x, four);
        let (r4, _) = s.check(&mut c, &[g4], &Budget::unlimited());
        assert!(r4.is_sat(), "x < 5 ∧ x = 4 is sat; earlier goals retired");
    }

    #[test]
    fn unsat_prefix_makes_every_query_unsat() {
        let mut c = ctx();
        let f = c.mk_false();
        let x = c.mk_var("x", Sort::BitVec(8));
        let zero = c.mk_bv_const(0, 8);
        let mut s = SolveSession::new();
        s.commit(&mut c, &[f], &Budget::unlimited());
        let g = c.mk_eq(x, zero);
        let (r, _) = s.check(&mut c, &[g], &Budget::unlimited());
        assert!(r.is_unsat());
        let (r2, _) = s.check(&mut c, &[], &Budget::unlimited());
        assert!(r2.is_unsat());
    }

    #[test]
    fn empty_session_empty_query_is_sat() {
        let mut c = ctx();
        let mut s = SolveSession::new();
        let (r, _) = s.check(&mut c, &[], &Budget::unlimited());
        assert!(r.is_sat());
        let t = c.mk_true();
        let (r2, _) = s.check(&mut c, &[t], &Budget::unlimited());
        assert!(r2.is_sat());
    }

    #[test]
    fn search_budget_exhaustion_does_not_poison() {
        // PHP(5,4) as a single assert set: hard enough that a one-conflict
        // budget gives Unknown; the session must stay usable afterwards.
        let mut c = ctx();
        let n = 5usize;
        let m = 4usize;
        let mut asserts = Vec::new();
        let p: Vec<Vec<TermId>> = (0..n)
            .map(|i| (0..m).map(|j| c.mk_var(&format!("p{i}_{j}"), Sort::Bool)).collect())
            .collect();
        for row in &p {
            let any = c.mk_or_many(row);
            asserts.push(any);
        }
        for h in 0..m {
            for (i, pi) in p.iter().enumerate() {
                for pj in &p[i + 1..] {
                    let a = c.mk_and(pi[h], pj[h]);
                    let no = c.mk_not(a);
                    asserts.push(no);
                }
            }
        }
        let conj = c.mk_and_many(&asserts);
        let mut s = SolveSession::new();
        let (r, _) = s.check(&mut c, &[conj], &Budget::with_conflicts(1));
        assert!(r.is_unknown());
        assert!(!s.poisoned());
        let (r2, _) = s.check(&mut c, &[conj], &Budget::unlimited());
        assert!(r2.is_unsat());
    }

    #[test]
    fn per_query_conflict_caps_are_offset() {
        // After a query that burns conflicts, a fresh query with a conflict
        // cap must still get its full per-query allowance (an easy query
        // must not inherit exhaustion from a hard one).
        let mut c = ctx();
        let x = c.mk_var("x", Sort::BitVec(8));
        let y = c.mk_var("y", Sort::BitVec(8));
        let prod = c.mk_bv_mul(x, y);
        let big = c.mk_bv_const(143, 8);
        let one = c.mk_bv_const(1, 8);
        let eq = c.mk_eq(prod, big);
        let nx = c.mk_bv_ult(one, x);
        let ny = c.mk_bv_ult(one, y);
        let mut s = SolveSession::new();
        let hard = c.mk_and_many(&[eq, nx, ny]);
        let (r1, _) = s.check(&mut c, &[hard], &Budget::unlimited());
        assert!(r1.is_sat()); // 11 * 13
        let zero = c.mk_bv_const(0, 8);
        let easy = c.mk_eq(x, zero);
        let (r2, _) = s.check(&mut c, &[easy], &Budget::with_conflicts(100));
        assert!(r2.is_sat(), "easy query got {r2:?} under an offset conflict cap");
    }

    #[test]
    fn session_agrees_with_one_shot_on_arrays() {
        let mut c = ctx();
        let arr = c.mk_var("A", Sort::Array { index: 8, elem: 8 });
        let i = c.mk_var("i", Sort::BitVec(8));
        let j = c.mk_var("j", Sort::BitVec(8));
        let ri = c.mk_select(arr, i);
        let rj = c.mk_select(arr, j);
        let prem = c.mk_eq(i, j);
        let neq = c.mk_neq(ri, rj);

        let mut s = SolveSession::new();
        s.commit(&mut c, &[prem], &Budget::unlimited());
        let (r, _) = s.check(&mut c, &[neq], &Budget::unlimited());
        let (r1, _) = check_detailed(&mut c, &[prem, neq], &Budget::unlimited());
        // i = j forces A[i] = A[j] via the Ackermann axiom — both unsat.
        assert!(r.is_unsat());
        assert!(r1.is_unsat());

        // Reads discovered by a retractable goal stay usable later.
        let seven = c.mk_bv_const(7, 8);
        let g2 = c.mk_eq(ri, seven);
        let (r2, _) = s.check(&mut c, &[g2], &Budget::unlimited());
        match r2 {
            SmtResult::Sat(m) => assert_eq!(m.eval_bv(&c, ri), 7),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn canonical_hash_is_ctx_independent() {
        let mk = |c: &mut Ctx| {
            let x = c.mk_var("x", Sort::BitVec(8));
            let y = c.mk_var("y", Sort::BitVec(8));
            let s = c.mk_bv_add(x, y);
            let z = c.mk_bv_const(3, 8);
            c.mk_eq(s, z)
        };
        let mut c1 = ctx();
        // Pad c1 with unrelated terms so the TermIds differ between contexts.
        let _ = c1.mk_var("pad", Sort::Bool);
        let t1 = mk(&mut c1);
        let mut c2 = ctx();
        let t2 = mk(&mut c2);
        assert_ne!(t1, t2, "test needs differing term ids");
        let mut m1 = HashMap::new();
        let mut m2 = HashMap::new();
        assert_eq!(canonical_hash(&c1, t1, &mut m1), canonical_hash(&c2, t2, &mut m2));
        assert_eq!(
            assert_fingerprint(&c1, &[t1], &mut m1),
            assert_fingerprint(&c2, &[t2], &mut m2)
        );
        // Different formulas get different fingerprints.
        let w = c1.mk_var("w", Sort::BitVec(8));
        let z = c1.mk_bv_const(3, 8);
        let other = c1.mk_eq(w, z);
        assert_ne!(
            assert_fingerprint(&c1, &[t1], &mut m1),
            assert_fingerprint(&c1, &[other], &mut m1)
        );
    }

    #[test]
    fn fingerprint_is_order_and_duplicate_insensitive() {
        let mut c = ctx();
        let x = c.mk_var("x", Sort::Bool);
        let y = c.mk_var("y", Sort::Bool);
        let mut m = HashMap::new();
        let f1 = assert_fingerprint(&c, &[x, y], &mut m);
        let f2 = assert_fingerprint(&c, &[y, x, y], &mut m);
        assert_eq!(f1, f2);
    }
}
