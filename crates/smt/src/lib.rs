//! # pug-smt — bit-vector + array SMT layer
//!
//! The SMT solver substrate of the PUGpara reproduction (the paper used Z3;
//! see DESIGN.md §2 for the substitution argument). Pipeline:
//!
//! 1. **Terms** ([`term::Ctx`]): hash-consed QF_ABV DAG with simplifying
//!    constructors (constant folding, algebraic identities, power-of-two
//!    strength reduction).
//! 2. **Array elimination** ([`arrays`]): store-chain reduction
//!    `select(store(a,i,v),j) → ite(i=j,v,select(a,j))` plus Ackermann
//!    expansion of base-array reads.
//! 3. **Bit-blasting** ([`bitblast`]): Tseitin encoding of the remaining
//!    QF_BV formula into CNF.
//! 4. **CDCL** ([`pug_sat`]): the from-scratch SAT core, with resource
//!    budgets that surface as the paper's "T.O" entries.
//!
//! Counterexamples come back as [`Model`]s over the *original* variables,
//! with array values reconstructed from the Ackermann reads — the verifier
//! uses these to print bug witnesses (offending thread ids, configuration
//! and input values).
//!
//! ## Example
//!
//! ```
//! use pug_smt::{check, Budget, Ctx, SmtResult, Sort};
//!
//! let mut ctx = Ctx::new();
//! let x = ctx.mk_var("x", Sort::BitVec(8));
//! let seven = ctx.mk_bv_const(7, 8);
//! let lt = ctx.mk_bv_ult(x, seven);
//! let gt = ctx.mk_bv_ult(seven, x);
//! // x < 7 and 7 < x cannot hold together
//! assert!(matches!(check(&mut ctx, &[lt, gt], &Budget::unlimited()), SmtResult::Unsat));
//! ```

pub mod arrays;
pub mod bitblast;
pub mod eval;
pub mod model;
pub mod normalize;
pub mod session;
pub mod smtlib;
pub mod sort;
pub mod term;

mod solver;

pub use eval::{Env, Value};
pub use model::Model;
pub use normalize::Normalizer;
pub use pug_sat::failpoints;
pub use pug_sat::{Budget, CancelToken, LearntRing, ResourceBudget, SimplifyConfig};
pub use session::{assert_fingerprint, canonical_hash, SolveSession};
pub use solver::{check, check_detailed, check_detailed_with, check_valid, CheckStats, SmtResult};
pub use sort::Sort;
pub use term::{Ctx, Op, TermId};
