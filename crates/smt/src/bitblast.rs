//! Tseitin bit-blasting of (array-free) terms into CNF over `pug-sat`.
//!
//! Bit-vectors are encoded LSB-first as vectors of literals. Circuits:
//! ripple-carry adders, shift-add multipliers, barrel shifters, restoring
//! long division (matching SMT-LIB division-by-zero semantics) and
//! carry-based unsigned comparison.

use crate::term::{Ctx, Op, TermId};
use pug_sat::{Budget, Lit, Solver};
use std::collections::HashMap;

/// Terms blasted between budget polls. Each poll costs an `Instant::now`
/// plus an atomic load, so it stays off the per-gate path.
const BUDGET_POLL_INTERVAL: u64 = 256;

/// Structural-hashing key for a Tseitin gate: the kind plus its operand
/// literals *after* commutativity/polarity normalization, so equivalent
/// gates anywhere in the circuit share one output variable (AIG-style).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum GateKey {
    /// Operands sorted ascending.
    And(Lit, Lit),
    /// Operands polarity-normalized to positive and sorted; the caller
    /// re-applies the folded-out negations to the output.
    Xor(Lit, Lit),
    /// Condition normalized positive (swapping the branches), then-branch
    /// normalized positive (negating the output).
    Mux(Lit, Lit, Lit),
}

/// Incremental bit-blaster bound to one SAT solver instance.
///
/// `Clone` (used by the obligation-parallel session replicas) carries the
/// full structural-hash gate cache and term caches, so a replica reuses
/// every gate the donor already encoded instead of re-blasting.
#[derive(Clone)]
pub struct BitBlaster {
    bool_cache: HashMap<TermId, Lit>,
    bv_cache: HashMap<TermId, Vec<Lit>>,
    /// Structural gate cache. Entries stay valid even across budget aborts:
    /// the key is the (already-encoded) operand literals and the defining
    /// clauses are added before insertion, so a hit never depends on state
    /// an abort could have skipped.
    gate_cache: HashMap<GateKey, Lit>,
    gates_hashconsed: u64,
    true_lit: Lit,
    /// Budget honoured during encoding (deadline, cancellation, clause-DB
    /// byte cap). Defaults to unlimited.
    budget: Budget,
    steps: u64,
    aborted: bool,
}

impl BitBlaster {
    /// Create a blaster; allocates the distinguished constant-true variable.
    pub fn new(solver: &mut Solver) -> BitBlaster {
        let t = solver.new_var().pos();
        solver.add_clause(&[t]);
        BitBlaster {
            bool_cache: HashMap::new(),
            bv_cache: HashMap::new(),
            gate_cache: HashMap::new(),
            gates_hashconsed: 0,
            true_lit: t,
            budget: Budget::unlimited(),
            steps: 0,
            aborted: false,
        }
    }

    /// Number of gate constructions answered from the structural cache
    /// (each one saved a fresh variable and its defining clauses).
    pub fn gates_hashconsed(&self) -> u64 {
        self.gates_hashconsed
    }

    /// Honour `budget` while encoding: large circuits (wide multipliers /
    /// dividers over many threads) can blow past a deadline before the SAT
    /// search even starts, so the blaster itself polls the deadline, the
    /// cancellation token and the clause-DB byte cap.
    pub fn set_budget(&mut self, budget: &Budget) {
        self.budget = budget.clone();
    }

    /// True once encoding was cut short by the budget. The CNF handed to the
    /// solver is then incomplete and the only sound answer is `Unknown`.
    pub fn aborted(&self) -> bool {
        self.aborted
    }

    /// Budget poll shared by the two encoding entry points. On exhaustion
    /// the recursion collapses: every further term maps to a constant dummy
    /// that is *not* cached, so a later retry under a fresh budget re-encodes
    /// correctly.
    fn out_of_budget(&mut self, solver: &Solver) -> bool {
        if self.aborted {
            return true;
        }
        self.steps += 1;
        if self.steps.is_multiple_of(BUDGET_POLL_INTERVAL)
            && (self.budget.interrupted()
                || self.budget.clause_bytes_exhausted(solver.clause_db_bytes()))
        {
            self.aborted = true;
        }
        self.aborted
    }

    /// The literal fixed to true.
    pub fn lit_true(&self) -> Lit {
        self.true_lit
    }

    /// The literal fixed to false.
    pub fn lit_false(&self) -> Lit {
        !self.true_lit
    }

    fn lit_of_bool(&self, b: bool) -> Lit {
        if b {
            self.true_lit
        } else {
            !self.true_lit
        }
    }

    /// Assert a Boolean term.
    pub fn assert_term(&mut self, ctx: &Ctx, solver: &mut Solver, t: TermId) {
        let l = self.bool_lit(ctx, solver, t);
        solver.add_clause(&[l]);
    }

    /// Literal encoding a Boolean term.
    pub fn bool_lit(&mut self, ctx: &Ctx, solver: &mut Solver, t: TermId) -> Lit {
        debug_assert!(ctx.sort(t).is_bool(), "bool_lit on non-Bool term");
        if let Some(&l) = self.bool_cache.get(&t) {
            return l;
        }
        if self.out_of_budget(solver) {
            return self.true_lit; // dummy; caller must consult `aborted()`
        }
        let args = ctx.args(t).to_vec();
        let l = match ctx.op(t).clone() {
            Op::True => self.true_lit,
            Op::False => !self.true_lit,
            Op::Var { .. } => solver.new_var().pos(),
            Op::Not => {
                let a = self.bool_lit(ctx, solver, args[0]);
                !a
            }
            Op::And => {
                let a = self.bool_lit(ctx, solver, args[0]);
                let b = self.bool_lit(ctx, solver, args[1]);
                self.and_gate(solver, a, b)
            }
            Op::Or => {
                let a = self.bool_lit(ctx, solver, args[0]);
                let b = self.bool_lit(ctx, solver, args[1]);
                self.or_gate(solver, a, b)
            }
            Op::Xor => {
                let a = self.bool_lit(ctx, solver, args[0]);
                let b = self.bool_lit(ctx, solver, args[1]);
                self.xor_gate(solver, a, b)
            }
            Op::Implies => {
                let a = self.bool_lit(ctx, solver, args[0]);
                let b = self.bool_lit(ctx, solver, args[1]);
                self.or_gate(solver, !a, b)
            }
            Op::Ite => {
                let c = self.bool_lit(ctx, solver, args[0]);
                let a = self.bool_lit(ctx, solver, args[1]);
                let b = self.bool_lit(ctx, solver, args[2]);
                self.mux_gate(solver, c, a, b)
            }
            Op::Eq => {
                if ctx.sort(args[0]).is_bool() {
                    let a = self.bool_lit(ctx, solver, args[0]);
                    let b = self.bool_lit(ctx, solver, args[1]);
                    !self.xor_gate(solver, a, b)
                } else {
                    let a = self.bv_lits(ctx, solver, args[0]);
                    let b = self.bv_lits(ctx, solver, args[1]);
                    self.bv_eq(solver, &a, &b)
                }
            }
            Op::BvUlt => {
                let a = self.bv_lits(ctx, solver, args[0]);
                let b = self.bv_lits(ctx, solver, args[1]);
                self.bv_ult(solver, &a, &b)
            }
            Op::BvUle => {
                let a = self.bv_lits(ctx, solver, args[0]);
                let b = self.bv_lits(ctx, solver, args[1]);
                let gt = self.bv_ult(solver, &b, &a);
                !gt
            }
            Op::BvSlt => {
                let a = self.bv_lits(ctx, solver, args[0]);
                let b = self.bv_lits(ctx, solver, args[1]);
                let (fa, fb) = (self.flip_msb(&a), self.flip_msb(&b));
                self.bv_ult(solver, &fa, &fb)
            }
            Op::BvSle => {
                let a = self.bv_lits(ctx, solver, args[0]);
                let b = self.bv_lits(ctx, solver, args[1]);
                let (fa, fb) = (self.flip_msb(&a), self.flip_msb(&b));
                let gt = self.bv_ult(solver, &fb, &fa);
                !gt
            }
            op => unreachable!("non-Boolean operator {op:?} at Bool sort"),
        };
        if !self.aborted {
            // A result built on top of dummy sub-encodings must not persist.
            self.bool_cache.insert(t, l);
        }
        l
    }

    /// LSB-first literal vector encoding a bit-vector term.
    pub fn bv_lits(&mut self, ctx: &Ctx, solver: &mut Solver, t: TermId) -> Vec<Lit> {
        debug_assert!(ctx.sort(t).is_bv(), "bv_lits on non-BitVec term");
        if let Some(ls) = self.bv_cache.get(&t) {
            return ls.clone();
        }
        let w = ctx.width(t) as usize;
        if self.out_of_budget(solver) {
            return vec![self.lit_false(); w]; // dummy; caller checks `aborted()`
        }
        let args = ctx.args(t).to_vec();
        let ls: Vec<Lit> = match ctx.op(t).clone() {
            Op::BvConst { value, .. } => {
                (0..w).map(|i| self.lit_of_bool(value >> i & 1 == 1)).collect()
            }
            Op::Var { .. } => (0..w).map(|_| solver.new_var().pos()).collect(),
            Op::Ite => {
                let c = self.bool_lit(ctx, solver, args[0]);
                let a = self.bv_lits(ctx, solver, args[1]);
                let b = self.bv_lits(ctx, solver, args[2]);
                (0..w).map(|i| self.mux_gate(solver, c, a[i], b[i])).collect()
            }
            Op::BvAdd => {
                let a = self.bv_lits(ctx, solver, args[0]);
                let b = self.bv_lits(ctx, solver, args[1]);
                self.adder(solver, &a, &b, self.lit_false()).0
            }
            Op::BvSub => {
                let a = self.bv_lits(ctx, solver, args[0]);
                let b = self.bv_lits(ctx, solver, args[1]);
                let nb: Vec<Lit> = b.iter().map(|&l| !l).collect();
                self.adder(solver, &a, &nb, self.lit_true()).0
            }
            Op::BvNeg => {
                // -a = ¬a + 1
                let a = self.bv_lits(ctx, solver, args[0]);
                let na: Vec<Lit> = a.iter().map(|&l| !l).collect();
                let zeros = vec![self.lit_false(); w];
                self.adder(solver, &na, &zeros, self.lit_true()).0
            }
            Op::BvMul => {
                let a = self.bv_lits(ctx, solver, args[0]);
                let b = self.bv_lits(ctx, solver, args[1]);
                self.multiplier(solver, &a, &b)
            }
            Op::BvUdiv => {
                let a = self.bv_lits(ctx, solver, args[0]);
                let b = self.bv_lits(ctx, solver, args[1]);
                self.divider(solver, &a, &b).0
            }
            Op::BvUrem => {
                let a = self.bv_lits(ctx, solver, args[0]);
                let b = self.bv_lits(ctx, solver, args[1]);
                self.divider(solver, &a, &b).1
            }
            Op::BvAnd => {
                let a = self.bv_lits(ctx, solver, args[0]);
                let b = self.bv_lits(ctx, solver, args[1]);
                (0..w).map(|i| self.and_gate(solver, a[i], b[i])).collect()
            }
            Op::BvOr => {
                let a = self.bv_lits(ctx, solver, args[0]);
                let b = self.bv_lits(ctx, solver, args[1]);
                (0..w).map(|i| self.or_gate(solver, a[i], b[i])).collect()
            }
            Op::BvXor => {
                let a = self.bv_lits(ctx, solver, args[0]);
                let b = self.bv_lits(ctx, solver, args[1]);
                (0..w).map(|i| self.xor_gate(solver, a[i], b[i])).collect()
            }
            Op::BvNot => {
                let a = self.bv_lits(ctx, solver, args[0]);
                a.iter().map(|&l| !l).collect()
            }
            Op::BvShl => {
                let a = self.bv_lits(ctx, solver, args[0]);
                let s = self.bv_lits(ctx, solver, args[1]);
                self.barrel_shift(solver, &a, &s, ShiftKind::Left)
            }
            Op::BvLshr => {
                let a = self.bv_lits(ctx, solver, args[0]);
                let s = self.bv_lits(ctx, solver, args[1]);
                self.barrel_shift(solver, &a, &s, ShiftKind::LogicalRight)
            }
            Op::BvAshr => {
                let a = self.bv_lits(ctx, solver, args[0]);
                let s = self.bv_lits(ctx, solver, args[1]);
                self.barrel_shift(solver, &a, &s, ShiftKind::ArithRight)
            }
            Op::ZeroExt { .. } => {
                let mut a = self.bv_lits(ctx, solver, args[0]);
                a.resize(w, self.lit_false());
                a
            }
            Op::SignExt { .. } => {
                let mut a = self.bv_lits(ctx, solver, args[0]);
                let msb = *a.last().expect("non-empty bit-vector");
                a.resize(w, msb);
                a
            }
            Op::Extract { hi, lo } => {
                let a = self.bv_lits(ctx, solver, args[0]);
                a[lo as usize..=hi as usize].to_vec()
            }
            Op::Concat => {
                let hi = self.bv_lits(ctx, solver, args[0]);
                let lo = self.bv_lits(ctx, solver, args[1]);
                let mut out = lo;
                out.extend_from_slice(&hi);
                out
            }
            Op::Select | Op::Store => {
                unreachable!("arrays must be eliminated before bit-blasting")
            }
            op => unreachable!("non-bit-vector operator {op:?} at BitVec sort"),
        };
        debug_assert_eq!(ls.len(), w);
        if !self.aborted {
            self.bv_cache.insert(t, ls.clone());
        }
        ls
    }

    // -------------------------------------------------------- model reading

    /// Model value of a bit-vector term after a `Sat` answer. Returns 0 for
    /// terms never handed to the blaster (they are unconstrained).
    pub fn model_bv(&self, solver: &Solver, t: TermId) -> u64 {
        match self.bv_cache.get(&t) {
            Some(ls) => ls
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &l)| acc | (u64::from(solver.model_lit(l)) << i)),
            None => 0,
        }
    }

    /// Model value of a Boolean term after a `Sat` answer.
    pub fn model_bool(&self, solver: &Solver, t: TermId) -> bool {
        match self.bool_cache.get(&t) {
            Some(&l) => solver.model_lit(l),
            None => false,
        }
    }

    // ------------------------------------------------------------- gates

    fn fresh(&self, solver: &mut Solver) -> Lit {
        solver.new_var().pos()
    }

    fn and_gate(&mut self, solver: &mut Solver, a: Lit, b: Lit) -> Lit {
        if a == self.lit_false() || b == self.lit_false() {
            return self.lit_false();
        }
        if a == self.lit_true() {
            return b;
        }
        if b == self.lit_true() {
            return a;
        }
        if a == b {
            return a;
        }
        if a == !b {
            return self.lit_false();
        }
        let key = GateKey::And(a.min(b), a.max(b));
        if let Some(&g) = self.gate_cache.get(&key) {
            self.gates_hashconsed += 1;
            return g;
        }
        let g = self.fresh(solver);
        solver.add_clause(&[!g, a]);
        solver.add_clause(&[!g, b]);
        solver.add_clause(&[g, !a, !b]);
        self.gate_cache.insert(key, g);
        g
    }

    fn or_gate(&mut self, solver: &mut Solver, a: Lit, b: Lit) -> Lit {
        let g = self.and_gate(solver, !a, !b);
        !g
    }

    fn xor_gate(&mut self, solver: &mut Solver, a: Lit, b: Lit) -> Lit {
        if a == self.lit_false() {
            return b;
        }
        if b == self.lit_false() {
            return a;
        }
        if a == self.lit_true() {
            return !b;
        }
        if b == self.lit_true() {
            return !a;
        }
        if a == b {
            return self.lit_false();
        }
        if a == !b {
            return self.lit_true();
        }
        // xor(¬x, y) = ¬xor(x, y): fold operand negations into the output
        // so all four polarity combinations share one gate.
        let flip = !a.is_positive() ^ !b.is_positive();
        let x = if a.is_positive() { a } else { !a };
        let y = if b.is_positive() { b } else { !b };
        let key = GateKey::Xor(x.min(y), x.max(y));
        if let Some(&g) = self.gate_cache.get(&key) {
            self.gates_hashconsed += 1;
            return if flip { !g } else { g };
        }
        let g = self.fresh(solver);
        solver.add_clause(&[!g, x, y]);
        solver.add_clause(&[!g, !x, !y]);
        solver.add_clause(&[g, !x, y]);
        solver.add_clause(&[g, x, !y]);
        self.gate_cache.insert(key, g);
        if flip {
            !g
        } else {
            g
        }
    }

    /// `mux(c, a, b)`: `a` when `c`, else `b`.
    fn mux_gate(&mut self, solver: &mut Solver, c: Lit, a: Lit, b: Lit) -> Lit {
        if a == b {
            return a;
        }
        if c == self.lit_true() {
            return a;
        }
        if c == self.lit_false() {
            return b;
        }
        // Constant-branch absorption: collapse to a single AND/OR gate
        // (which the structural cache then shares).
        if a == self.lit_true() {
            return self.or_gate(solver, c, b);
        }
        if a == self.lit_false() {
            return self.and_gate(solver, !c, b);
        }
        if b == self.lit_true() {
            return self.or_gate(solver, !c, a);
        }
        if b == self.lit_false() {
            return self.and_gate(solver, c, a);
        }
        // mux(c, a, ¬a) = ¬(c ⊕ a)
        if a == !b {
            let x = self.xor_gate(solver, c, a);
            return !x;
        }
        // mux(¬c, a, b) = mux(c, b, a); mux(c, ¬a, ¬b) = ¬mux(c, a, b).
        let (c, a, b) = if c.is_positive() { (c, a, b) } else { (!c, b, a) };
        let (a, b, flip) = if a.is_positive() { (a, b, false) } else { (!a, !b, true) };
        let key = GateKey::Mux(c, a, b);
        if let Some(&g) = self.gate_cache.get(&key) {
            self.gates_hashconsed += 1;
            return if flip { !g } else { g };
        }
        let g = self.fresh(solver);
        solver.add_clause(&[!c, !a, g]);
        solver.add_clause(&[!c, a, !g]);
        solver.add_clause(&[c, !b, g]);
        solver.add_clause(&[c, b, !g]);
        // Redundant but propagation-strengthening clauses.
        solver.add_clause(&[!a, !b, g]);
        solver.add_clause(&[a, b, !g]);
        self.gate_cache.insert(key, g);
        if flip {
            !g
        } else {
            g
        }
    }

    fn full_adder(&mut self, solver: &mut Solver, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
        let axb = self.xor_gate(solver, a, b);
        let sum = self.xor_gate(solver, axb, cin);
        let c1 = self.and_gate(solver, a, b);
        let c2 = self.and_gate(solver, axb, cin);
        let cout = self.or_gate(solver, c1, c2);
        (sum, cout)
    }

    /// Ripple-carry adder; returns (sum bits, carry out).
    fn adder(&mut self, solver: &mut Solver, a: &[Lit], b: &[Lit], cin: Lit) -> (Vec<Lit>, Lit) {
        debug_assert_eq!(a.len(), b.len());
        let mut carry = cin;
        let mut out = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let (s, c) = self.full_adder(solver, a[i], b[i], carry);
            out.push(s);
            carry = c;
        }
        (out, carry)
    }

    /// Shift-add multiplier, truncated to the operand width.
    fn multiplier(&mut self, solver: &mut Solver, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let w = a.len();
        let mut acc = vec![self.lit_false(); w];
        for i in 0..w {
            // addend = (b << i) masked by a[i], truncated to w bits
            if a[i] == self.lit_false() {
                continue;
            }
            let addend: Vec<Lit> = (0..w)
                .map(|j| {
                    if j < i {
                        self.lit_false()
                    } else {
                        self.and_gate(solver, a[i], b[j - i])
                    }
                })
                .collect();
            acc = self.adder(solver, &acc, &addend, self.lit_false()).0;
        }
        acc
    }

    /// Restoring long division; returns (quotient, remainder). For a zero
    /// divisor this yields all-ones quotient and the dividend as remainder,
    /// matching SMT-LIB `bvudiv`/`bvurem`.
    fn divider(&mut self, solver: &mut Solver, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Vec<Lit>) {
        let w = a.len();
        // Remainder register is w+1 bits so the trial subtract cannot wrap.
        let mut r: Vec<Lit> = vec![self.lit_false(); w + 1];
        let mut bx: Vec<Lit> = b.to_vec();
        bx.push(self.lit_false());
        let mut q = vec![self.lit_false(); w];
        for i in (0..w).rev() {
            // r = (r << 1) | a[i]
            let mut r2 = Vec::with_capacity(w + 1);
            r2.push(a[i]);
            r2.extend_from_slice(&r[..w]);
            // trial subtract: r2 - bx
            let nb: Vec<Lit> = bx.iter().map(|&l| !l).collect();
            let (diff, carry) = self.adder(solver, &r2, &nb, self.lit_true());
            // carry == 1 ⟺ r2 >= bx
            q[i] = carry;
            r = (0..w + 1).map(|j| self.mux_gate(solver, carry, diff[j], r2[j])).collect();
        }
        (q, r[..w].to_vec())
    }

    fn flip_msb(&self, a: &[Lit]) -> Vec<Lit> {
        let mut out = a.to_vec();
        let last = out.len() - 1;
        out[last] = !out[last];
        out
    }

    /// `a < b` unsigned: no carry out of `a + ¬b + 1`.
    fn bv_ult(&mut self, solver: &mut Solver, a: &[Lit], b: &[Lit]) -> Lit {
        let nb: Vec<Lit> = b.iter().map(|&l| !l).collect();
        let (_, carry) = self.adder(solver, a, &nb, self.lit_true());
        !carry
    }

    fn bv_eq(&mut self, solver: &mut Solver, a: &[Lit], b: &[Lit]) -> Lit {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = self.lit_true();
        for i in 0..a.len() {
            let x = self.xor_gate(solver, a[i], b[i]);
            acc = self.and_gate(solver, acc, !x);
        }
        acc
    }

    fn barrel_shift(
        &mut self,
        solver: &mut Solver,
        a: &[Lit],
        s: &[Lit],
        kind: ShiftKind,
    ) -> Vec<Lit> {
        let w = a.len();
        let fill_base = match kind {
            ShiftKind::ArithRight => a[w - 1],
            _ => self.lit_false(),
        };
        let mut cur = a.to_vec();
        #[allow(clippy::needless_range_loop)] // `k` is the shift exponent, not just an index
        for k in 0..s.len() {
            let dist = 1usize << k.min(31);
            let shifted: Vec<Lit> = (0..w)
                .map(|j| match kind {
                    ShiftKind::Left => {
                        if k >= 31 || dist > j {
                            self.lit_false()
                        } else {
                            cur[j - dist]
                        }
                    }
                    ShiftKind::LogicalRight | ShiftKind::ArithRight => {
                        if k >= 31 || j + dist >= w {
                            fill_base_or(fill_base, kind, self)
                        } else {
                            cur[j + dist]
                        }
                    }
                })
                .collect();
            cur = (0..w).map(|j| self.mux_gate(solver, s[k], shifted[j], cur[j])).collect();
        }
        cur
    }
}

fn fill_base_or(fill: Lit, kind: ShiftKind, bb: &BitBlaster) -> Lit {
    match kind {
        ShiftKind::ArithRight => fill,
        _ => bb.lit_false(),
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ShiftKind {
    Left,
    LogicalRight,
    ArithRight,
}
