//! The check pipeline: rewrite → array elimination → bit-blast → CDCL.

use crate::arrays::reduce_arrays_budgeted;
use crate::bitblast::BitBlaster;
use crate::eval::{Env, Value};
use crate::model::{default_value, Model};
use crate::sort::Sort;
use crate::term::{Ctx, TermId};
pub use pug_sat::Budget;
use pug_sat::{SolveResult, Solver};

/// Outcome of an SMT query.
#[derive(Clone, Debug)]
pub enum SmtResult {
    /// Satisfiable, with a model of the free variables.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
    /// Budget exhausted — surfaced as "T.O" by the benchmark harness.
    Unknown,
}

impl SmtResult {
    /// True for [`SmtResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SmtResult::Sat(_))
    }

    /// True for [`SmtResult::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, SmtResult::Unsat)
    }

    /// True for [`SmtResult::Unknown`].
    pub fn is_unknown(&self) -> bool {
        matches!(self, SmtResult::Unknown)
    }
}

/// Size/effort statistics for one `check` call, reported by the benchmark
/// harness alongside times (the paper reports only times; the clause counts
/// make the blow-up of the non-parameterized encoding visible directly).
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckStats {
    /// CNF variables after bit-blasting.
    pub cnf_vars: usize,
    /// CNF clauses after bit-blasting.
    pub cnf_clauses: usize,
    /// Assertions after array elimination (incl. Ackermann constraints).
    pub reduced_assertions: usize,
    /// Base-array reads Ackermannized for this query. One-shot checks
    /// report the query's total; session checks report the *delta* this
    /// query added to the persistent reducer, so summing over queries
    /// gives a meaningful counter either way.
    pub ack_selects: usize,
    /// SAT-solver statistics (per query, even inside a session).
    pub sat: pug_sat::Stats,
    /// Tseitin gates answered from the blaster's structural cache for this
    /// query (each hit saved a fresh variable plus its defining clauses).
    pub gates_hashconsed: u64,
    /// Time spent in array elimination for this query.
    pub reduce_time: std::time::Duration,
    /// Time spent bit-blasting for this query.
    pub blast_time: std::time::Duration,
    /// Time spent in CDCL search for this query.
    pub solve_time: std::time::Duration,
    /// Answer came from the cross-rung query cache — no solving at all.
    pub cached: bool,
    /// Obligation collapsed to `⊥` under canonicalization + fact
    /// propagation (`pug_smt::normalize`) — valid with zero SAT calls.
    pub discharged_by_rewrite: bool,
    /// Clauses already in the solver when the query began (incremental
    /// prefix + learned clauses inherited from earlier obligations).
    pub clauses_reused: usize,
}

/// Decide satisfiability of the conjunction of `assertions`.
pub fn check(ctx: &mut Ctx, assertions: &[TermId], budget: &Budget) -> SmtResult {
    check_detailed(ctx, assertions, budget).0
}

/// [`check`] plus encoding statistics.
pub fn check_detailed(
    ctx: &mut Ctx,
    assertions: &[TermId],
    budget: &Budget,
) -> (SmtResult, CheckStats) {
    check_detailed_with(ctx, assertions, budget, &pug_sat::SimplifyConfig::default())
}

/// [`check_detailed`] with an explicit SAT pre/inprocessing configuration
/// (the differential suites run simplification on vs. off through here).
pub fn check_detailed_with(
    ctx: &mut Ctx,
    assertions: &[TermId],
    budget: &Budget,
    simplify: &pug_sat::SimplifyConfig,
) -> (SmtResult, CheckStats) {
    let mut stats = CheckStats::default();

    // Fault injection: Panic aborts here; the other faults degrade to the
    // budget-exhausted answer.
    if pug_sat::failpoints::trip("smt::check").is_some() {
        return (SmtResult::Unknown, stats);
    }

    // Trivial cases after constructor-level rewriting.
    let mut live: Vec<TermId> = Vec::new();
    for &a in assertions {
        match ctx.const_bool(a) {
            Some(true) => continue,
            Some(false) => return (SmtResult::Unsat, stats),
            None => live.push(a),
        }
    }
    if live.is_empty() {
        return (SmtResult::Sat(Model::new(Env::new())), stats);
    }

    // Rewriting can blow up the term DAG (store chains, Ackermann pairs)
    // before any CNF exists, so it runs under the same budget.
    let t0 = std::time::Instant::now();
    let reduction = reduce_arrays_budgeted(ctx, &live, budget);
    stats.reduce_time = t0.elapsed();
    stats.reduced_assertions = reduction.assertions.len();
    stats.ack_selects = reduction.base_selects.values().map(Vec::len).sum();
    if reduction.interrupted {
        return (SmtResult::Unknown, stats);
    }

    let t1 = std::time::Instant::now();
    let mut sat = Solver::new();
    sat.set_simplify_config(simplify.clone());
    let mut blaster = BitBlaster::new(&mut sat);
    blaster.set_budget(budget);
    for &a in &reduction.assertions {
        match ctx.const_bool(a) {
            Some(true) => continue,
            Some(false) => return (SmtResult::Unsat, stats),
            None => blaster.assert_term(ctx, &mut sat, a),
        }
    }
    stats.blast_time = t1.elapsed();
    stats.cnf_vars = sat.num_vars();
    stats.cnf_clauses = sat.num_clauses();
    stats.gates_hashconsed = blaster.gates_hashconsed();
    if blaster.aborted() {
        // The CNF is truncated; solving it would be unsound either way.
        return (SmtResult::Unknown, stats);
    }

    let t2 = std::time::Instant::now();
    let result = sat.solve(budget);
    stats.solve_time = t2.elapsed();
    stats.sat = sat.stats();
    let r = match result {
        SolveResult::Unsat => SmtResult::Unsat,
        SolveResult::Unknown => SmtResult::Unknown,
        SolveResult::Sat => {
            let model = build_model(
                ctx,
                &live,
                &reduction.assertions,
                &reduction.base_selects,
                &blaster,
                &sat,
            );
            #[cfg(debug_assertions)]
            for &a in &live {
                debug_assert!(
                    model.eval_bool(ctx, a),
                    "model does not satisfy assertion: {}",
                    crate::smtlib::term_to_string(ctx, a)
                );
            }
            SmtResult::Sat(model)
        }
    };
    (r, stats)
}

pub(crate) fn build_model(
    ctx: &Ctx,
    original: &[TermId],
    reduced: &[TermId],
    base_selects: &std::collections::HashMap<TermId, Vec<(TermId, TermId)>>,
    blaster: &BitBlaster,
    sat: &Solver,
) -> Model {
    let mut env = Env::new();

    // Scalar variables: everything free in the reduced assertions, plus any
    // scalar free in the original assertions (possibly simplified away —
    // those are unconstrained and default to zero).
    let mut scalars: Vec<TermId> = Vec::new();
    for &a in reduced {
        scalars.extend(ctx.free_vars(a));
    }
    for &a in original {
        scalars.extend(ctx.free_vars(a));
    }
    for reads in base_selects.values() {
        for &(idx, val) in reads {
            scalars.extend(ctx.free_vars(idx));
            scalars.push(val);
        }
    }
    scalars.sort();
    scalars.dedup();
    for v in scalars {
        match ctx.sort(v) {
            Sort::Bool => {
                env.insert(v, Value::Bool(blaster.model_bool(sat, v)));
            }
            Sort::BitVec(w) => {
                env.insert(v, Value::Bv(blaster.model_bv(sat, v), w));
            }
            Sort::Array { .. } => {} // handled below
        }
    }

    // Array variables: reconstruct entries from the Ackermann reads.
    for (&arr, reads) in base_selects {
        let Sort::Array { index, elem } = ctx.sort(arr) else { unreachable!() };
        let mut entries = std::collections::HashMap::new();
        for &(idx, val) in reads {
            let i = crate::eval::eval(ctx, idx, &env).as_bv();
            let v = env.get(&val).map(|v| v.as_bv()).unwrap_or(0);
            entries.insert(i, v);
        }
        env.insert(
            arr,
            Value::Array { entries, default: 0, index_width: index, elem_width: elem },
        );
    }

    // Arrays mentioned in the original assertions but never read after
    // reduction get an empty default interpretation.
    for &a in original {
        for v in ctx.free_vars(a) {
            if ctx.sort(v).is_array() {
                env.entry(v).or_insert_with(|| default_value(ctx, v));
            }
        }
    }

    // Drop internal fresh select variables from the reported model: they are
    // folded into the array interpretations.
    let internal: std::collections::HashSet<TermId> = base_selects
        .values()
        .flat_map(|reads| reads.iter().map(|&(_, val)| val))
        .collect();
    env.retain(|t, _| !internal.contains(t));

    Model::new(env)
}

/// Convenience wrapper asserting the negation of `goal` under `premises`:
/// returns `Unsat` when the implication `premises ⇒ goal` is valid, or a
/// countermodel when it is not. This is the shape of every PUGpara
/// verification condition.
pub fn check_valid(
    ctx: &mut Ctx,
    premises: &[TermId],
    goal: TermId,
    budget: &Budget,
) -> SmtResult {
    let mut asserts = premises.to_vec();
    let ng = ctx.mk_not(goal);
    asserts.push(ng);
    check(ctx, &asserts, budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Ctx {
        Ctx::new()
    }

    #[test]
    fn trivially_true_is_sat() {
        let mut c = ctx();
        let t = c.mk_true();
        assert!(check(&mut c, &[t], &Budget::unlimited()).is_sat());
        assert!(check(&mut c, &[], &Budget::unlimited()).is_sat());
    }

    #[test]
    fn trivially_false_is_unsat() {
        let mut c = ctx();
        let f = c.mk_false();
        assert!(check(&mut c, &[f], &Budget::unlimited()).is_unsat());
    }

    #[test]
    fn simple_bv_equation() {
        let mut c = ctx();
        let x = c.mk_var("x", Sort::BitVec(8));
        let five = c.mk_bv_const(5, 8);
        let three = c.mk_bv_const(3, 8);
        let sum = c.mk_bv_add(x, three);
        let eq = c.mk_eq(sum, five);
        match check(&mut c, &[eq], &Budget::unlimited()) {
            SmtResult::Sat(m) => assert_eq!(m.eval_bv(&c, x), 2),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn unsat_bv_constraint() {
        let mut c = ctx();
        let x = c.mk_var("x", Sort::BitVec(8));
        let zero = c.mk_bv_const(0, 8);
        let lt = c.mk_bv_ult(x, zero); // nothing is < 0
        assert!(check(&mut c, &[lt], &Budget::unlimited()).is_unsat());
    }

    #[test]
    fn array_roundtrip_model() {
        let mut c = ctx();
        let a = c.mk_var("A", Sort::Array { index: 8, elem: 8 });
        let i = c.mk_var("i", Sort::BitVec(8));
        let read = c.mk_select(a, i);
        let seven = c.mk_bv_const(7, 8);
        let eq = c.mk_eq(read, seven);
        match check(&mut c, &[eq], &Budget::unlimited()) {
            SmtResult::Sat(m) => {
                // Evaluating the original select under the model yields 7.
                assert_eq!(m.eval_bv(&c, read), 7);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn check_valid_proves_commutativity() {
        let mut c = ctx();
        let x = c.mk_var("x", Sort::BitVec(8));
        let y = c.mk_var("y", Sort::BitVec(8));
        // (x + y) * (x + y) == x*x + 2xy + y*y  (mod 256)
        let s = c.mk_bv_add(x, y);
        let lhs = c.mk_bv_mul(s, s);
        let xx = c.mk_bv_mul(x, x);
        let xy = c.mk_bv_mul(x, y);
        let two = c.mk_bv_const(2, 8);
        let xy2 = c.mk_bv_mul(two, xy);
        let yy = c.mk_bv_mul(y, y);
        let t1 = c.mk_bv_add(xx, xy2);
        let rhs = c.mk_bv_add(t1, yy);
        let goal = c.mk_eq(lhs, rhs);
        assert!(check_valid(&mut c, &[], goal, &Budget::unlimited()).is_unsat());
    }
}
