//! SMT-LIB 2 printing — for debugging encodings and for cross-checking
//! queries against external solvers by hand.

use crate::sort::Sort;
use crate::term::{Ctx, Op, TermId};
use std::collections::HashMap;
use std::fmt::Write;

/// Render one term as an SMT-LIB 2 s-expression.
pub fn term_to_string(ctx: &Ctx, t: TermId) -> String {
    let mut out = String::new();
    write_term(ctx, t, &mut out);
    out
}

fn write_term(ctx: &Ctx, t: TermId, out: &mut String) {
    let args = ctx.args(t);
    match ctx.op(t) {
        Op::True => out.push_str("true"),
        Op::False => out.push_str("false"),
        Op::BvConst { value, width } => {
            let _ = write!(out, "(_ bv{value} {width})");
        }
        Op::Var { name } => out.push_str(&sanitize(ctx.symbol_name(*name))),
        Op::Not => write_app(ctx, "not", args, out),
        Op::And => write_app(ctx, "and", args, out),
        Op::Or => write_app(ctx, "or", args, out),
        Op::Xor => write_app(ctx, "xor", args, out),
        Op::Implies => write_app(ctx, "=>", args, out),
        Op::Ite => write_app(ctx, "ite", args, out),
        Op::Eq => write_app(ctx, "=", args, out),
        Op::BvAdd => write_app(ctx, "bvadd", args, out),
        Op::BvSub => write_app(ctx, "bvsub", args, out),
        Op::BvMul => write_app(ctx, "bvmul", args, out),
        Op::BvUdiv => write_app(ctx, "bvudiv", args, out),
        Op::BvUrem => write_app(ctx, "bvurem", args, out),
        Op::BvNeg => write_app(ctx, "bvneg", args, out),
        Op::BvAnd => write_app(ctx, "bvand", args, out),
        Op::BvOr => write_app(ctx, "bvor", args, out),
        Op::BvXor => write_app(ctx, "bvxor", args, out),
        Op::BvNot => write_app(ctx, "bvnot", args, out),
        Op::BvShl => write_app(ctx, "bvshl", args, out),
        Op::BvLshr => write_app(ctx, "bvlshr", args, out),
        Op::BvAshr => write_app(ctx, "bvashr", args, out),
        Op::BvUlt => write_app(ctx, "bvult", args, out),
        Op::BvUle => write_app(ctx, "bvule", args, out),
        Op::BvSlt => write_app(ctx, "bvslt", args, out),
        Op::BvSle => write_app(ctx, "bvsle", args, out),
        Op::ZeroExt { by } => {
            let _ = write!(out, "((_ zero_extend {by}) ");
            write_term(ctx, args[0], out);
            out.push(')');
        }
        Op::SignExt { by } => {
            let _ = write!(out, "((_ sign_extend {by}) ");
            write_term(ctx, args[0], out);
            out.push(')');
        }
        Op::Extract { hi, lo } => {
            let _ = write!(out, "((_ extract {hi} {lo}) ");
            write_term(ctx, args[0], out);
            out.push(')');
        }
        Op::Concat => write_app(ctx, "concat", args, out),
        Op::Select => write_app(ctx, "select", args, out),
        Op::Store => write_app(ctx, "store", args, out),
    }
}

fn write_app(ctx: &Ctx, name: &str, args: &[TermId], out: &mut String) {
    out.push('(');
    out.push_str(name);
    for &a in args {
        out.push(' ');
        write_term(ctx, a, out);
    }
    out.push(')');
}

fn sanitize(name: &str) -> String {
    if name.chars().all(|c| c.is_ascii_alphanumeric() || "_.!$".contains(c)) {
        name.to_string()
    } else {
        format!("|{name}|")
    }
}

/// Render a full `(set-logic …) … (check-sat)` script asserting the given
/// terms, declaring every free variable.
pub fn to_script(ctx: &Ctx, assertions: &[TermId]) -> String {
    let mut out = String::from("(set-logic QF_ABV)\n");
    let mut declared: HashMap<TermId, ()> = HashMap::new();
    for &a in assertions {
        for v in ctx.free_vars(a) {
            if declared.insert(v, ()).is_none() {
                let name = term_to_string(ctx, v);
                let sort = match ctx.sort(v) {
                    Sort::Bool => "Bool".to_string(),
                    s => s.to_string(),
                };
                let _ = writeln!(out, "(declare-const {name} {sort})");
            }
        }
    }
    for &a in assertions {
        let _ = writeln!(out, "(assert {})", term_to_string(ctx, a));
    }
    out.push_str("(check-sat)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_sexpr() {
        let mut c = Ctx::new();
        let x = c.mk_var("x", Sort::BitVec(8));
        let one = c.mk_bv_const(1, 8);
        let t = c.mk_bv_add(x, one);
        let s = term_to_string(&c, t);
        assert!(s.contains("bvadd"));
        assert!(s.contains("(_ bv1 8)"));
    }

    #[test]
    fn script_declares_vars() {
        let mut c = Ctx::new();
        let x = c.mk_var("x", Sort::BitVec(8));
        let zero = c.mk_bv_const(0, 8);
        let a = c.mk_eq(x, zero);
        let script = to_script(&c, &[a]);
        assert!(script.contains("(declare-const x (_ BitVec 8))"));
        assert!(script.contains("(check-sat)"));
    }

    #[test]
    fn odd_names_are_quoted() {
        assert_eq!(sanitize("a b"), "|a b|");
        assert_eq!(sanitize("sel!1"), "sel!1");
    }
}
