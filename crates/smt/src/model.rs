//! Counterexample models.

use crate::eval::{eval, Env, Value};
use crate::term::{Ctx, Op, TermId};
use std::fmt::Write;

/// A satisfying assignment for the free variables of a query, including
/// reconstructed array values. Used by the verifier to print bug witnesses
/// (thread ids, configuration values and input elements).
#[derive(Clone, Debug, Default)]
pub struct Model {
    values: Env,
}

impl Model {
    pub(crate) fn new(values: Env) -> Model {
        Model { values }
    }

    /// Raw value of a variable term, if the model constrains it.
    pub fn get(&self, var: TermId) -> Option<&Value> {
        self.values.get(&var)
    }

    /// Evaluate an arbitrary term of the original query under this model.
    /// Unbound variables default to zero/false/empty-array, which is a valid
    /// completion because the solver left them unconstrained.
    pub fn eval(&self, ctx: &Ctx, t: TermId) -> Value {
        let mut env = self.values.clone();
        for v in ctx.free_vars(t) {
            env.entry(v).or_insert_with(|| default_value(ctx, v));
        }
        eval(ctx, t, &env)
    }

    /// Evaluate a term expected to be a bit-vector, returning its value.
    pub fn eval_bv(&self, ctx: &Ctx, t: TermId) -> u64 {
        self.eval(ctx, t).as_bv()
    }

    /// Evaluate a term expected to be Boolean.
    pub fn eval_bool(&self, ctx: &Ctx, t: TermId) -> bool {
        self.eval(ctx, t).as_bool()
    }

    /// Iterate over (variable term, value) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&TermId, &Value)> {
        self.values.iter()
    }

    /// Human-readable rendering, sorted by variable name.
    pub fn render(&self, ctx: &Ctx) -> String {
        let mut lines: Vec<String> = self
            .values
            .iter()
            .map(|(&t, v)| {
                let name = match ctx.op(t) {
                    Op::Var { name } => ctx.symbol_name(*name).to_string(),
                    _ => format!("{t:?}"),
                };
                match v {
                    Value::Bool(b) => format!("  {name} = {b}"),
                    Value::Bv(x, w) => format!("  {name} = {x} [{w}b]"),
                    Value::Array { entries, default, .. } => {
                        let mut es: Vec<(&u64, &u64)> = entries.iter().collect();
                        es.sort();
                        let mut s = format!("  {name} = [");
                        for (i, (k, v)) in es.iter().enumerate() {
                            if i > 0 {
                                s.push_str(", ");
                            }
                            let _ = write!(s, "{k}→{v}");
                        }
                        let _ = write!(s, "; else {default}]");
                        s
                    }
                }
            })
            .collect();
        lines.sort();
        lines.join("\n")
    }
}

pub(crate) fn default_value(ctx: &Ctx, v: TermId) -> Value {
    match ctx.sort(v) {
        crate::sort::Sort::Bool => Value::Bool(false),
        crate::sort::Sort::BitVec(w) => Value::Bv(0, w),
        crate::sort::Sort::Array { index, elem } => Value::Array {
            entries: Default::default(),
            default: 0,
            index_width: index,
            elem_width: elem,
        },
    }
}
