//! Concrete term evaluation.
//!
//! Used for (1) evaluating terms under a model returned by the solver and
//! (2) differential testing of the bit-blaster against these reference
//! semantics.

use crate::sort::{mask, to_signed, truncate, Sort};
use crate::term::{Ctx, Op, TermId};
use std::collections::HashMap;

/// A concrete value: Boolean, bit-vector or array.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    Bool(bool),
    /// Bit-vector value (truncated) together with its width.
    Bv(u64, u32),
    /// Array value: explicit entries plus a default for unlisted indices.
    Array { entries: HashMap<u64, u64>, default: u64, index_width: u32, elem_width: u32 },
}

impl Value {
    /// The Boolean payload, panicking on other values.
    #[track_caller]
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            other => panic!("expected Bool, got {other:?}"),
        }
    }

    /// The bit-vector payload, panicking on other values.
    #[track_caller]
    pub fn as_bv(&self) -> u64 {
        match self {
            Value::Bv(v, _) => *v,
            other => panic!("expected BitVec, got {other:?}"),
        }
    }

    fn array_get(&self, idx: u64) -> u64 {
        match self {
            Value::Array { entries, default, .. } => *entries.get(&idx).unwrap_or(default),
            other => panic!("expected Array, got {other:?}"),
        }
    }

    fn array_set(&self, idx: u64, val: u64) -> Value {
        match self {
            Value::Array { entries, default, index_width, elem_width } => {
                let mut e = entries.clone();
                e.insert(idx, val);
                Value::Array {
                    entries: e,
                    default: *default,
                    index_width: *index_width,
                    elem_width: *elem_width,
                }
            }
            other => panic!("expected Array, got {other:?}"),
        }
    }
}

/// An environment mapping variable terms to concrete values.
pub type Env = HashMap<TermId, Value>;

/// Evaluate `t` under `env`. Panics when a free variable has no binding —
/// callers are expected to supply complete environments.
pub fn eval(ctx: &Ctx, t: TermId, env: &Env) -> Value {
    let mut cache: HashMap<TermId, Value> = HashMap::new();
    eval_cached(ctx, t, env, &mut cache)
}

fn eval_cached(ctx: &Ctx, t: TermId, env: &Env, cache: &mut HashMap<TermId, Value>) -> Value {
    if let Some(v) = cache.get(&t) {
        return v.clone();
    }
    let result = eval_node(ctx, t, env, cache);
    cache.insert(t, result.clone());
    result
}

fn eval_node(ctx: &Ctx, t: TermId, env: &Env, cache: &mut HashMap<TermId, Value>) -> Value {
    let op = ctx.op(t).clone();
    let args = ctx.args(t).to_vec();
    let bv = |cache: &mut HashMap<TermId, Value>, i: usize| -> u64 {
        eval_cached(ctx, args[i], env, cache).as_bv()
    };
    let bl = |cache: &mut HashMap<TermId, Value>, i: usize| -> bool {
        eval_cached(ctx, args[i], env, cache).as_bool()
    };
    let w = match ctx.sort(t) {
        Sort::BitVec(w) => w,
        _ => 0,
    };
    match op {
        Op::True => Value::Bool(true),
        Op::False => Value::Bool(false),
        Op::BvConst { value, width } => Value::Bv(value, width),
        Op::Var { .. } => match env.get(&t) {
            Some(v) => v.clone(),
            None => panic!("unbound variable {}", crate::smtlib::term_to_string(ctx, t)),
        },
        Op::Not => Value::Bool(!bl(cache, 0)),
        Op::And => Value::Bool(bl(cache, 0) && bl(cache, 1)),
        Op::Or => Value::Bool(bl(cache, 0) || bl(cache, 1)),
        Op::Xor => Value::Bool(bl(cache, 0) ^ bl(cache, 1)),
        Op::Implies => Value::Bool(!bl(cache, 0) || bl(cache, 1)),
        Op::Ite => {
            if bl(cache, 0) {
                eval_cached(ctx, args[1], env, cache)
            } else {
                eval_cached(ctx, args[2], env, cache)
            }
        }
        Op::Eq => {
            let a = eval_cached(ctx, args[0], env, cache);
            let b = eval_cached(ctx, args[1], env, cache);
            Value::Bool(a == b)
        }
        Op::BvAdd => Value::Bv(truncate(bv(cache, 0).wrapping_add(bv(cache, 1)), w), w),
        Op::BvSub => Value::Bv(truncate(bv(cache, 0).wrapping_sub(bv(cache, 1)), w), w),
        Op::BvMul => Value::Bv(truncate(bv(cache, 0).wrapping_mul(bv(cache, 1)), w), w),
        Op::BvUdiv => {
            let (a, b) = (bv(cache, 0), bv(cache, 1));
            Value::Bv(a.checked_div(b).unwrap_or(mask(w)), w)
        }
        Op::BvUrem => {
            let (a, b) = (bv(cache, 0), bv(cache, 1));
            Value::Bv(if b == 0 { a } else { a % b }, w)
        }
        Op::BvNeg => Value::Bv(truncate(bv(cache, 0).wrapping_neg(), w), w),
        Op::BvAnd => Value::Bv(bv(cache, 0) & bv(cache, 1), w),
        Op::BvOr => Value::Bv(bv(cache, 0) | bv(cache, 1), w),
        Op::BvXor => Value::Bv(bv(cache, 0) ^ bv(cache, 1), w),
        Op::BvNot => Value::Bv(truncate(!bv(cache, 0), w), w),
        Op::BvShl => {
            let (a, s) = (bv(cache, 0), bv(cache, 1));
            Value::Bv(if s >= w as u64 { 0 } else { truncate(a << s, w) }, w)
        }
        Op::BvLshr => {
            let (a, s) = (bv(cache, 0), bv(cache, 1));
            Value::Bv(if s >= w as u64 { 0 } else { a >> s }, w)
        }
        Op::BvAshr => {
            let (a, s) = (bv(cache, 0), bv(cache, 1));
            let aw = ctx.width(ctx.args(t)[0]);
            let sh = s.min(aw as u64 - 1) as u32;
            Value::Bv(truncate((to_signed(a, aw) >> sh) as u64, w), w)
        }
        Op::BvUlt => Value::Bool(bv(cache, 0) < bv(cache, 1)),
        Op::BvUle => Value::Bool(bv(cache, 0) <= bv(cache, 1)),
        Op::BvSlt => {
            let aw = ctx.width(args[0]);
            Value::Bool(to_signed(bv(cache, 0), aw) < to_signed(bv(cache, 1), aw))
        }
        Op::BvSle => {
            let aw = ctx.width(args[0]);
            Value::Bool(to_signed(bv(cache, 0), aw) <= to_signed(bv(cache, 1), aw))
        }
        Op::ZeroExt { .. } => Value::Bv(bv(cache, 0), w),
        Op::SignExt { .. } => {
            let aw = ctx.width(args[0]);
            Value::Bv(truncate(to_signed(bv(cache, 0), aw) as u64, w), w)
        }
        Op::Extract { hi, lo } => Value::Bv(truncate(bv(cache, 0) >> lo, hi - lo + 1), w),
        Op::Concat => {
            let bw = ctx.width(args[1]);
            Value::Bv(bv(cache, 0) << bw | bv(cache, 1), w)
        }
        Op::Select => {
            let arr = eval_cached(ctx, args[0], env, cache);
            let idx = bv(cache, 1);
            Value::Bv(truncate(arr.array_get(idx), w), w)
        }
        Op::Store => {
            let arr = eval_cached(ctx, args[0], env, cache);
            let idx = bv(cache, 1);
            let val = bv(cache, 2);
            arr.array_set(idx, val)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv8(ctx: &mut Ctx, name: &str) -> TermId {
        ctx.mk_var(name, Sort::BitVec(8))
    }

    #[test]
    fn arithmetic_semantics() {
        let mut c = Ctx::new();
        let x = bv8(&mut c, "x");
        let y = bv8(&mut c, "y");
        let sum = c.mk_bv_add(x, y);
        let env = Env::from([(x, Value::Bv(200, 8)), (y, Value::Bv(100, 8))]);
        assert_eq!(eval(&c, sum, &env), Value::Bv(44, 8));
    }

    #[test]
    fn div_by_zero_semantics() {
        let mut c = Ctx::new();
        let x = bv8(&mut c, "x");
        let y = bv8(&mut c, "y");
        let d = c.mk_bv_udiv(x, y);
        let r = c.mk_bv_urem(x, y);
        let env = Env::from([(x, Value::Bv(42, 8)), (y, Value::Bv(0, 8))]);
        assert_eq!(eval(&c, d, &env), Value::Bv(0xff, 8));
        assert_eq!(eval(&c, r, &env), Value::Bv(42, 8));
    }

    #[test]
    fn array_store_select() {
        let mut c = Ctx::new();
        let a = c.mk_var("a", Sort::Array { index: 8, elem: 8 });
        let i = bv8(&mut c, "i");
        let v = bv8(&mut c, "v");
        let j = bv8(&mut c, "j");
        let stored = c.mk_store(a, i, v);
        let read = c.mk_select(stored, j);
        let arr = Value::Array {
            entries: HashMap::from([(3, 7)]),
            default: 0,
            index_width: 8,
            elem_width: 8,
        };
        // j == i: sees the stored value
        let env = Env::from([
            (a, arr.clone()),
            (i, Value::Bv(5, 8)),
            (v, Value::Bv(9, 8)),
            (j, Value::Bv(5, 8)),
        ]);
        assert_eq!(eval(&c, read, &env), Value::Bv(9, 8));
        // j != i: sees the original array
        let env2 = Env::from([
            (a, arr),
            (i, Value::Bv(5, 8)),
            (v, Value::Bv(9, 8)),
            (j, Value::Bv(3, 8)),
        ]);
        assert_eq!(eval(&c, read, &env2), Value::Bv(7, 8));
    }

    #[test]
    fn signed_comparison() {
        let mut c = Ctx::new();
        let x = bv8(&mut c, "x");
        let y = bv8(&mut c, "y");
        let slt = c.mk_bv_slt(x, y);
        let env = Env::from([(x, Value::Bv(0xff, 8)), (y, Value::Bv(1, 8))]); // -1 < 1
        assert_eq!(eval(&c, slt, &env), Value::Bool(true));
    }
}
