//! Property-based tests of the term layer: the simplifying constructors
//! must preserve semantics, hash-consing must canonicalize, and
//! substitution must commute with evaluation.

use pug_smt::{Ctx, Env, Sort, TermId, Value};
use pug_testutil::TestRng;

/// A small expression AST we can both build as terms and evaluate directly.
#[derive(Clone, Debug)]
enum E {
    Var(u8),
    Const(u64),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Shl(Box<E>, Box<E>),
    Lshr(Box<E>, Box<E>),
    Not(Box<E>),
    Neg(Box<E>),
    Ite(Box<E>, Box<E>, Box<E>),
}

/// Random expression of bounded depth (property-style generation on a
/// deterministic seed; every failure reproduces from the case number).
fn arb_expr(rng: &mut TestRng, depth: usize) -> E {
    if depth == 0 || rng.gen_bool(0.3) {
        return if rng.gen_bool(0.5) {
            E::Var(rng.gen_range(0u8..3))
        } else {
            E::Const(rng.gen_u64())
        };
    }
    let sub = |rng: &mut TestRng| Box::new(arb_expr(rng, depth - 1));
    match rng.gen_range(0u32..11) {
        0 => E::Add(sub(rng), sub(rng)),
        1 => E::Sub(sub(rng), sub(rng)),
        2 => E::Mul(sub(rng), sub(rng)),
        3 => E::And(sub(rng), sub(rng)),
        4 => E::Or(sub(rng), sub(rng)),
        5 => E::Xor(sub(rng), sub(rng)),
        6 => E::Shl(sub(rng), sub(rng)),
        7 => E::Lshr(sub(rng), sub(rng)),
        8 => E::Not(sub(rng)),
        9 => E::Neg(sub(rng)),
        _ => E::Ite(sub(rng), sub(rng), sub(rng)),
    }
}

const W: u32 = 8;

fn build(ctx: &mut Ctx, e: &E) -> TermId {
    match e {
        E::Var(i) => ctx.mk_var(&format!("v{i}"), Sort::BitVec(W)),
        E::Const(c) => ctx.mk_bv_const(*c, W),
        E::Add(a, b) => {
            let (x, y) = (build(ctx, a), build(ctx, b));
            ctx.mk_bv_add(x, y)
        }
        E::Sub(a, b) => {
            let (x, y) = (build(ctx, a), build(ctx, b));
            ctx.mk_bv_sub(x, y)
        }
        E::Mul(a, b) => {
            let (x, y) = (build(ctx, a), build(ctx, b));
            ctx.mk_bv_mul(x, y)
        }
        E::And(a, b) => {
            let (x, y) = (build(ctx, a), build(ctx, b));
            ctx.mk_bv_and(x, y)
        }
        E::Or(a, b) => {
            let (x, y) = (build(ctx, a), build(ctx, b));
            ctx.mk_bv_or(x, y)
        }
        E::Xor(a, b) => {
            let (x, y) = (build(ctx, a), build(ctx, b));
            ctx.mk_bv_xor(x, y)
        }
        E::Shl(a, b) => {
            let (x, y) = (build(ctx, a), build(ctx, b));
            ctx.mk_bv_shl(x, y)
        }
        E::Lshr(a, b) => {
            let (x, y) = (build(ctx, a), build(ctx, b));
            ctx.mk_bv_lshr(x, y)
        }
        E::Not(a) => {
            let x = build(ctx, a);
            ctx.mk_bv_not(x)
        }
        E::Neg(a) => {
            let x = build(ctx, a);
            ctx.mk_bv_neg(x)
        }
        E::Ite(c, a, b) => {
            let cv = build(ctx, c);
            let zero = ctx.mk_bv_const(0, W);
            let cond = ctx.mk_neq(cv, zero);
            let (x, y) = (build(ctx, a), build(ctx, b));
            ctx.mk_ite(cond, x, y)
        }
    }
}

/// Direct (reference) evaluation of the little AST.
fn reference(e: &E, vars: &[u64; 3]) -> u64 {
    let m = |v: u64| v & 0xff;
    match e {
        E::Var(i) => vars[*i as usize % 3],
        E::Const(c) => m(*c),
        E::Add(a, b) => m(reference(a, vars).wrapping_add(reference(b, vars))),
        E::Sub(a, b) => m(reference(a, vars).wrapping_sub(reference(b, vars))),
        E::Mul(a, b) => m(reference(a, vars).wrapping_mul(reference(b, vars))),
        E::And(a, b) => reference(a, vars) & reference(b, vars),
        E::Or(a, b) => reference(a, vars) | reference(b, vars),
        E::Xor(a, b) => reference(a, vars) ^ reference(b, vars),
        E::Shl(a, b) => {
            let s = reference(b, vars);
            if s >= 8 {
                0
            } else {
                m(reference(a, vars) << s)
            }
        }
        E::Lshr(a, b) => {
            let s = reference(b, vars);
            if s >= 8 {
                0
            } else {
                reference(a, vars) >> s
            }
        }
        E::Not(a) => m(!reference(a, vars)),
        E::Neg(a) => m(reference(a, vars).wrapping_neg()),
        E::Ite(c, a, b) => {
            if reference(c, vars) != 0 {
                reference(a, vars)
            } else {
                reference(b, vars)
            }
        }
    }
}

/// The simplifying constructors preserve concrete semantics.
#[test]
fn constructors_preserve_semantics() {
    let mut rng = TestRng::seed_from_u64(0xc0ffee);
    for case in 0..256u32 {
        let e = arb_expr(&mut rng, 4);
        let vars = [rng.gen_u64() & 0xff, rng.gen_u64() & 0xff, rng.gen_u64() & 0xff];
        let mut ctx = Ctx::new();
        let t = build(&mut ctx, &e);
        let env: Env = (0..3)
            .map(|i| {
                let v = ctx.mk_var(&format!("v{i}"), Sort::BitVec(W));
                (v, Value::Bv(vars[i], W))
            })
            .collect();
        let got = pug_smt::eval::eval(&ctx, t, &env).as_bv();
        assert_eq!(got, reference(&e, &vars), "case {case}: {e:?}");
    }
}

/// Hash-consing: building the same expression twice yields one TermId.
#[test]
fn hash_consing_is_canonical() {
    let mut rng = TestRng::seed_from_u64(0xcafe);
    for case in 0..256u32 {
        let e = arb_expr(&mut rng, 4);
        let mut ctx = Ctx::new();
        let a = build(&mut ctx, &e);
        let b = build(&mut ctx, &e);
        assert_eq!(a, b, "case {case}: {e:?}");
    }
}

/// Substitution commutes with evaluation: eval(t[x→c]) == eval(t) with
/// x bound to c.
#[test]
fn substitution_commutes_with_eval() {
    let mut rng = TestRng::seed_from_u64(0xbeef);
    for case in 0..256u32 {
        let e = arb_expr(&mut rng, 4);
        let vars = [rng.gen_u64() & 0xff, rng.gen_u64() & 0xff, rng.gen_u64() & 0xff];
        let mut ctx = Ctx::new();
        let t = build(&mut ctx, &e);
        // substitute v0 by its constant
        let v0 = ctx.mk_var("v0", Sort::BitVec(W));
        let c0 = ctx.mk_bv_const(vars[0], W);
        let map = std::collections::HashMap::from([(v0, c0)]);
        let t2 = ctx.substitute(t, &map);
        let env: Env = (0..3)
            .map(|i| {
                let v = ctx.mk_var(&format!("v{i}"), Sort::BitVec(W));
                (v, Value::Bv(vars[i], W))
            })
            .collect();
        let a = pug_smt::eval::eval(&ctx, t, &env).as_bv();
        let b = pug_smt::eval::eval(&ctx, t2, &env).as_bv();
        assert_eq!(a, b, "case {case}: {e:?}");
    }
}

/// dag_size is positive and monotone under wrapping in an operation.
#[test]
fn dag_size_sane() {
    let mut rng = TestRng::seed_from_u64(0xd46);
    for case in 0..256u32 {
        let e = arb_expr(&mut rng, 4);
        let mut ctx = Ctx::new();
        let t = build(&mut ctx, &e);
        let n = ctx.dag_size(t);
        assert!(n >= 1, "case {case}");
        let one = ctx.mk_bv_const(1, W);
        let t2 = ctx.mk_bv_add(t, one);
        // adding a fresh node can only grow (or keep, if simplified) the DAG
        assert!(ctx.dag_size(t2) + 1 >= n, "case {case}: {e:?}");
    }
}
