//! Property-based tests of the term layer: the simplifying constructors
//! must preserve semantics, hash-consing must canonicalize, and
//! substitution must commute with evaluation.

use proptest::prelude::*;
use pug_smt::{Ctx, Env, Sort, TermId, Value};

/// A small expression AST we can both build as terms and evaluate directly.
#[derive(Clone, Debug)]
enum E {
    Var(u8),
    Const(u64),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Shl(Box<E>, Box<E>),
    Lshr(Box<E>, Box<E>),
    Not(Box<E>),
    Neg(Box<E>),
    Ite(Box<E>, Box<E>, Box<E>),
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![(0u8..3).prop_map(E::Var), any::<u64>().prop_map(E::Const)];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Shl(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Lshr(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| E::Not(Box::new(a))),
            inner.clone().prop_map(|a| E::Neg(Box::new(a))),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, a, b)| E::Ite(
                Box::new(c),
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

const W: u32 = 8;

fn build(ctx: &mut Ctx, e: &E) -> TermId {
    match e {
        E::Var(i) => ctx.mk_var(&format!("v{i}"), Sort::BitVec(W)),
        E::Const(c) => ctx.mk_bv_const(*c, W),
        E::Add(a, b) => {
            let (x, y) = (build(ctx, a), build(ctx, b));
            ctx.mk_bv_add(x, y)
        }
        E::Sub(a, b) => {
            let (x, y) = (build(ctx, a), build(ctx, b));
            ctx.mk_bv_sub(x, y)
        }
        E::Mul(a, b) => {
            let (x, y) = (build(ctx, a), build(ctx, b));
            ctx.mk_bv_mul(x, y)
        }
        E::And(a, b) => {
            let (x, y) = (build(ctx, a), build(ctx, b));
            ctx.mk_bv_and(x, y)
        }
        E::Or(a, b) => {
            let (x, y) = (build(ctx, a), build(ctx, b));
            ctx.mk_bv_or(x, y)
        }
        E::Xor(a, b) => {
            let (x, y) = (build(ctx, a), build(ctx, b));
            ctx.mk_bv_xor(x, y)
        }
        E::Shl(a, b) => {
            let (x, y) = (build(ctx, a), build(ctx, b));
            ctx.mk_bv_shl(x, y)
        }
        E::Lshr(a, b) => {
            let (x, y) = (build(ctx, a), build(ctx, b));
            ctx.mk_bv_lshr(x, y)
        }
        E::Not(a) => {
            let x = build(ctx, a);
            ctx.mk_bv_not(x)
        }
        E::Neg(a) => {
            let x = build(ctx, a);
            ctx.mk_bv_neg(x)
        }
        E::Ite(c, a, b) => {
            let cv = build(ctx, c);
            let zero = ctx.mk_bv_const(0, W);
            let cond = ctx.mk_neq(cv, zero);
            let (x, y) = (build(ctx, a), build(ctx, b));
            ctx.mk_ite(cond, x, y)
        }
    }
}

/// Direct (reference) evaluation of the little AST.
fn reference(e: &E, vars: &[u64; 3]) -> u64 {
    let m = |v: u64| v & 0xff;
    match e {
        E::Var(i) => vars[*i as usize % 3],
        E::Const(c) => m(*c),
        E::Add(a, b) => m(reference(a, vars).wrapping_add(reference(b, vars))),
        E::Sub(a, b) => m(reference(a, vars).wrapping_sub(reference(b, vars))),
        E::Mul(a, b) => m(reference(a, vars).wrapping_mul(reference(b, vars))),
        E::And(a, b) => reference(a, vars) & reference(b, vars),
        E::Or(a, b) => reference(a, vars) | reference(b, vars),
        E::Xor(a, b) => reference(a, vars) ^ reference(b, vars),
        E::Shl(a, b) => {
            let s = reference(b, vars);
            if s >= 8 {
                0
            } else {
                m(reference(a, vars) << s)
            }
        }
        E::Lshr(a, b) => {
            let s = reference(b, vars);
            if s >= 8 {
                0
            } else {
                reference(a, vars) >> s
            }
        }
        E::Not(a) => m(!reference(a, vars)),
        E::Neg(a) => m(reference(a, vars).wrapping_neg()),
        E::Ite(c, a, b) => {
            if reference(c, vars) != 0 {
                reference(a, vars)
            } else {
                reference(b, vars)
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The simplifying constructors preserve concrete semantics.
    #[test]
    fn constructors_preserve_semantics(e in arb_expr(), vars in [any::<u64>(); 3]) {
        let vars = [vars[0] & 0xff, vars[1] & 0xff, vars[2] & 0xff];
        let mut ctx = Ctx::new();
        let t = build(&mut ctx, &e);
        let env: Env = (0..3)
            .map(|i| {
                let v = ctx.mk_var(&format!("v{i}"), Sort::BitVec(W));
                (v, Value::Bv(vars[i], W))
            })
            .collect();
        let got = pug_smt::eval::eval(&ctx, t, &env).as_bv();
        prop_assert_eq!(got, reference(&e, &vars));
    }

    /// Hash-consing: building the same expression twice yields one TermId.
    #[test]
    fn hash_consing_is_canonical(e in arb_expr()) {
        let mut ctx = Ctx::new();
        let a = build(&mut ctx, &e);
        let b = build(&mut ctx, &e);
        prop_assert_eq!(a, b);
    }

    /// Substitution commutes with evaluation: eval(t[x→c]) == eval(t) with
    /// x bound to c.
    #[test]
    fn substitution_commutes_with_eval(e in arb_expr(), vars in [any::<u64>(); 3]) {
        let vars = [vars[0] & 0xff, vars[1] & 0xff, vars[2] & 0xff];
        let mut ctx = Ctx::new();
        let t = build(&mut ctx, &e);
        // substitute v0 by its constant
        let v0 = ctx.mk_var("v0", Sort::BitVec(W));
        let c0 = ctx.mk_bv_const(vars[0], W);
        let map = std::collections::HashMap::from([(v0, c0)]);
        let t2 = ctx.substitute(t, &map);
        let env: Env = (0..3)
            .map(|i| {
                let v = ctx.mk_var(&format!("v{i}"), Sort::BitVec(W));
                (v, Value::Bv(vars[i], W))
            })
            .collect();
        let a = pug_smt::eval::eval(&ctx, t, &env).as_bv();
        let b = pug_smt::eval::eval(&ctx, t2, &env).as_bv();
        prop_assert_eq!(a, b);
    }

    /// dag_size is positive and monotone under wrapping in an operation.
    #[test]
    fn dag_size_sane(e in arb_expr()) {
        let mut ctx = Ctx::new();
        let t = build(&mut ctx, &e);
        let n = ctx.dag_size(t);
        prop_assert!(n >= 1);
        let one = ctx.mk_bv_const(1, W);
        let t2 = ctx.mk_bv_add(t, one);
        // adding a fresh node can only grow (or keep, if simplified) the DAG
        prop_assert!(ctx.dag_size(t2) + 1 >= n);
    }
}
