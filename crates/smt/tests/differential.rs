//! Differential testing of the full SMT pipeline (rewrite → array
//! elimination → bit-blast → CDCL) against the reference evaluator.
//!
//! Strategy: generate random terms, pick random concrete inputs, compute the
//! expected value with `eval`, then assert `term == expected` and check the
//! solver (a) finds it satisfiable and (b) returns a model under which the
//! original term evaluates to the expected value. Also assert
//! `term != expected` under fully fixed inputs and expect Unsat.

use pug_smt::{check, Budget, Ctx, Env, SmtResult, Sort, TermId, Value};
use pug_testutil::TestRng;

struct Gen {
    rng: TestRng,
    vars: Vec<(TermId, u64)>,
    width: u32,
}

impl Gen {
    fn new(seed: u64, width: u32, ctx: &mut Ctx, nvars: usize) -> Gen {
        let mut rng = TestRng::seed_from_u64(seed);
        let vars = (0..nvars)
            .map(|i| {
                let v = ctx.mk_var(&format!("v{i}_{width}_{seed}"), Sort::BitVec(width));
                let val = rng.gen_u64() & pug_smt::sort::mask(width);
                (v, val)
            })
            .collect();
        Gen { rng, vars, width }
    }

    fn env(&self) -> Env {
        self.vars.iter().map(|&(v, x)| (v, Value::Bv(x, self.width))).collect()
    }

    /// Random bit-vector term of bounded depth.
    fn bv_term(&mut self, ctx: &mut Ctx, depth: usize) -> TermId {
        if depth == 0 || self.rng.gen_bool(0.3) {
            return if self.rng.gen_bool(0.5) {
                self.vars[self.rng.gen_range(0..self.vars.len())].0
            } else {
                let v = self.rng.gen_u64();
                ctx.mk_bv_const(v, self.width)
            };
        }
        let a = self.bv_term(ctx, depth - 1);
        let b = self.bv_term(ctx, depth - 1);
        match self.rng.gen_range(0..14) {
            0 => ctx.mk_bv_add(a, b),
            1 => ctx.mk_bv_sub(a, b),
            2 => ctx.mk_bv_mul(a, b),
            3 => ctx.mk_bv_udiv(a, b),
            4 => ctx.mk_bv_urem(a, b),
            5 => ctx.mk_bv_and(a, b),
            6 => ctx.mk_bv_or(a, b),
            7 => ctx.mk_bv_xor(a, b),
            8 => ctx.mk_bv_shl(a, b),
            9 => ctx.mk_bv_lshr(a, b),
            10 => ctx.mk_bv_ashr(a, b),
            11 => ctx.mk_bv_not(a),
            12 => ctx.mk_bv_neg(a),
            _ => {
                let c = self.bool_term(ctx, depth - 1);
                ctx.mk_ite(c, a, b)
            }
        }
    }

    /// Random Boolean term of bounded depth.
    fn bool_term(&mut self, ctx: &mut Ctx, depth: usize) -> TermId {
        if depth == 0 {
            let a = self.bv_term(ctx, 0);
            let b = self.bv_term(ctx, 0);
            return ctx.mk_bv_ult(a, b);
        }
        match self.rng.gen_range(0..7) {
            0 => {
                let a = self.bv_term(ctx, depth - 1);
                let b = self.bv_term(ctx, depth - 1);
                ctx.mk_bv_ult(a, b)
            }
            1 => {
                let a = self.bv_term(ctx, depth - 1);
                let b = self.bv_term(ctx, depth - 1);
                ctx.mk_bv_sle(a, b)
            }
            2 => {
                let a = self.bv_term(ctx, depth - 1);
                let b = self.bv_term(ctx, depth - 1);
                ctx.mk_eq(a, b)
            }
            3 => {
                let a = self.bool_term(ctx, depth - 1);
                let b = self.bool_term(ctx, depth - 1);
                ctx.mk_and(a, b)
            }
            4 => {
                let a = self.bool_term(ctx, depth - 1);
                let b = self.bool_term(ctx, depth - 1);
                ctx.mk_or(a, b)
            }
            5 => {
                let a = self.bool_term(ctx, depth - 1);
                ctx.mk_not(a)
            }
            _ => {
                let a = self.bool_term(ctx, depth - 1);
                let b = self.bool_term(ctx, depth - 1);
                ctx.mk_xor(a, b)
            }
        }
    }

    /// Constraints pinning every variable to its concrete value.
    fn pin_vars(&self, ctx: &mut Ctx) -> Vec<TermId> {
        self.vars
            .iter()
            .map(|&(v, x)| {
                let c = ctx.mk_bv_const(x, self.width);
                ctx.mk_eq(v, c)
            })
            .collect()
    }
}

fn run_width(width: u32, rounds: u64) {
    let mut ctx = Ctx::new();
    for seed in 0..rounds {
        let mut g = Gen::new(seed * 7919 + width as u64, width, &mut ctx, 3);
        let t = g.bv_term(&mut ctx, 3);
        let expected = pug_smt::eval::eval(&ctx, t, &g.env()).as_bv();
        let expected_c = ctx.mk_bv_const(expected, width);

        // (a) t == expected is satisfiable, and any model is consistent.
        let eq = ctx.mk_eq(t, expected_c);
        match check(&mut ctx, &[eq], &Budget::unlimited()) {
            SmtResult::Sat(m) => {
                let got = m.eval_bv(&ctx, t);
                let want = m.eval_bv(&ctx, expected_c);
                assert_eq!(got, want, "model does not satisfy assertion (w={width}, seed={seed})");
            }
            other => panic!("expected Sat for w={width} seed={seed}, got {other:?}"),
        }

        // (b) under pinned inputs, t != expected is unsatisfiable.
        let mut asserts = g.pin_vars(&mut ctx);
        let neq = ctx.mk_neq(t, expected_c);
        asserts.push(neq);
        let r = check(&mut ctx, &asserts, &Budget::unlimited());
        assert!(
            r.is_unsat(),
            "pinned disequality must be Unsat (w={width}, seed={seed}), got {r:?}"
        );
    }
}

#[test]
fn differential_width_4() {
    run_width(4, 60);
}

#[test]
fn differential_width_8() {
    run_width(8, 40);
}

#[test]
fn differential_width_13() {
    run_width(13, 25);
}

#[test]
fn differential_width_32() {
    run_width(32, 12);
}

#[test]
fn differential_bool_formulas() {
    let mut ctx = Ctx::new();
    for seed in 0..40u64 {
        let mut g = Gen::new(seed + 10_000, 6, &mut ctx, 3);
        let t = g.bool_term(&mut ctx, 3);
        let expected = pug_smt::eval::eval(&ctx, t, &g.env()).as_bool();
        let mut asserts = g.pin_vars(&mut ctx);
        let lit = if expected { ctx.mk_not(t) } else { t };
        asserts.push(lit);
        let r = check(&mut ctx, &asserts, &Budget::unlimited());
        assert!(r.is_unsat(), "bool formula mismatch at seed {seed}: {r:?}");
    }
}

#[test]
fn arrays_differential() {
    // Random store chains + symbolic reads, cross-checked against eval.
    let mut ctx = Ctx::new();
    let w = 8;
    for seed in 0..30u64 {
        let mut rng = TestRng::seed_from_u64(seed + 999);
        let arr = ctx.mk_var(&format!("arr{seed}"), Sort::Array { index: w, elem: w });
        let base_entries: std::collections::HashMap<u64, u64> =
            (0..4).map(|_| (rng.gen_range(0..16), rng.gen_range(0..256))).collect();
        let mut cur = arr;
        let mut writes = Vec::new();
        for _ in 0..rng.gen_range(1..5) {
            let i = rng.gen_range(0..16u64);
            let v = rng.gen_range(0..256u64);
            let it = ctx.mk_bv_const(i, w);
            let vt = ctx.mk_bv_const(v, w);
            cur = ctx.mk_store(cur, it, vt);
            writes.push((i, v));
        }
        let k = ctx.mk_var(&format!("k{seed}"), Sort::BitVec(w));
        let kv = rng.gen_range(0..16u64);
        let read = ctx.mk_select(cur, k);

        let env: Env = Env::from([
            (
                arr,
                Value::Array {
                    entries: base_entries.clone(),
                    default: 0,
                    index_width: w,
                    elem_width: w,
                },
            ),
            (k, Value::Bv(kv, w)),
        ]);
        let expected = pug_smt::eval::eval(&ctx, read, &env).as_bv();

        // Pin k, pin the base array entries via select constraints, then
        // assert the read differs from the expected value: must be Unsat.
        let kc = ctx.mk_bv_const(kv, w);
        let mut asserts = vec![ctx.mk_eq(k, kc)];
        for (&i, &v) in &base_entries {
            let it = ctx.mk_bv_const(i, w);
            let vt = ctx.mk_bv_const(v, w);
            let sel = ctx.mk_select(arr, it);
            asserts.push(ctx.mk_eq(sel, vt));
        }
        // If kv hits an unpinned base index the default is unconstrained, so
        // only run the Unsat direction when kv is covered by a write or pin.
        let covered = writes.iter().any(|&(i, _)| i == kv) || base_entries.contains_key(&kv);
        if covered {
            let ec = ctx.mk_bv_const(expected, w);
            let neq = ctx.mk_neq(read, ec);
            asserts.push(neq);
            let r = check(&mut ctx, &asserts, &Budget::unlimited());
            assert!(r.is_unsat(), "array read mismatch at seed {seed}: {r:?}");
        }
    }
}
