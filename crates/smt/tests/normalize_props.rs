//! Property-based tests of the canonicalization pass (`pug_smt::normalize`).
//!
//! Every rule family — AC chains, constant folding / strength reduction,
//! `ite` normalization, store-chain normalization — is fuzzed against the
//! reference interpreter in `pug_smt::eval`: for ≥200 random well-sorted
//! terms per family, the canonical form must (1) evaluate identically to
//! the input under random assignments, (2) be a fixpoint of the pass
//! (idempotence), and (3) coincide for commuted/reassociated/permuted
//! twins of the same term.

use pug_smt::eval::eval;
use pug_smt::normalize::normalize;
use pug_smt::{Ctx, Env, Sort, TermId, Value};
use pug_testutil::TestRng;
use std::collections::HashMap;

const W: u32 = 8;
const CASES: u32 = 256; // per rule family — the issue floor is 200
const ENVS: usize = 4; // random assignments checked per term

/// The fixed variable pool every fuzzed term draws from.
struct Vars {
    bv: Vec<TermId>,
    bools: Vec<TermId>,
    arr: TermId,
}

fn mk_vars(ctx: &mut Ctx) -> Vars {
    Vars {
        bv: (0..4).map(|i| ctx.mk_var(&format!("v{i}"), Sort::BitVec(W))).collect(),
        bools: (0..3).map(|i| ctx.mk_var(&format!("p{i}"), Sort::Bool)).collect(),
        arr: ctx.mk_var("a", Sort::Array { index: W, elem: W }),
    }
}

/// A complete random assignment for the pool (eval panics on unbound vars).
fn random_env(rng: &mut TestRng, vars: &Vars) -> Env {
    let mut env = Env::new();
    for &v in &vars.bv {
        env.insert(v, Value::Bv(rng.gen_u64() & 0xff, W));
    }
    for &p in &vars.bools {
        env.insert(p, Value::Bool(rng.gen_bool(0.5)));
    }
    let mut entries = HashMap::new();
    for _ in 0..4 {
        entries.insert(rng.gen_u64() & 0xff, rng.gen_u64() & 0xff);
    }
    env.insert(
        vars.arr,
        Value::Array { entries, default: rng.gen_u64() & 0xff, index_width: W, elem_width: W },
    );
    env
}

/// The two core properties every rule family must satisfy: the canonical
/// form is semantically identical under random assignments, and it is a
/// fixpoint of the pass. Returns the canonical form for twin checks.
fn check_sound_and_idempotent(
    ctx: &mut Ctx,
    t: TermId,
    vars: &Vars,
    rng: &mut TestRng,
    case: u32,
) -> TermId {
    let n = normalize(ctx, t);
    let n2 = normalize(ctx, n);
    assert_eq!(n, n2, "case {case}: normalize must be idempotent");
    for _ in 0..ENVS {
        let env = random_env(rng, vars);
        assert_eq!(
            eval(ctx, t, &env),
            eval(ctx, n, &env),
            "case {case}: canonical form changed the term's value"
        );
    }
    n
}

/// Random right-to-left association of `items` under an AC operator —
/// each call picks a different grouping of the same operand list.
fn fold_random(ctx: &mut Ctx, rng: &mut TestRng, op: u32, items: &[TermId]) -> TermId {
    if items.len() == 1 {
        return items[0];
    }
    let split = rng.gen_range(1..items.len());
    let l = fold_random(ctx, rng, op, &items[..split]);
    let r = fold_random(ctx, rng, op, &items[split..]);
    apply_bv_ac(ctx, op, l, r)
}

fn apply_bv_ac(ctx: &mut Ctx, op: u32, a: TermId, b: TermId) -> TermId {
    match op {
        0 => ctx.mk_bv_add(a, b),
        1 => ctx.mk_bv_mul(a, b),
        2 => ctx.mk_bv_and(a, b),
        3 => ctx.mk_bv_or(a, b),
        _ => ctx.mk_bv_xor(a, b),
    }
}

/// Fisher–Yates on the deterministic test rng.
fn shuffle(rng: &mut TestRng, items: &mut [TermId]) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

// --- Rule family 1: AC chains --------------------------------------------

/// Permuted + reassociated bit-vector AC chains normalize to one node and
/// keep their value.
#[test]
fn ac_bv_twins_share_canonical_form() {
    let mut rng = TestRng::seed_from_u64(0xac_b1);
    for case in 0..CASES {
        let mut ctx = Ctx::new();
        let vars = mk_vars(&mut ctx);
        let op = rng.gen_range(0u32..5);
        let n_leaves = rng.gen_range(3usize..=6);
        let mut leaves: Vec<TermId> = (0..n_leaves)
            .map(|_| {
                if rng.gen_bool(0.3) {
                    ctx.mk_bv_const(rng.gen_u64() & 0xff, W)
                } else {
                    vars.bv[rng.gen_range(0..vars.bv.len())]
                }
            })
            .collect();
        let a = fold_random(&mut ctx, &mut rng, op, &leaves);
        shuffle(&mut rng, &mut leaves);
        let b = fold_random(&mut ctx, &mut rng, op, &leaves);
        let na = check_sound_and_idempotent(&mut ctx, a, &vars, &mut rng, case);
        let nb = check_sound_and_idempotent(&mut ctx, b, &vars, &mut rng, case);
        assert_eq!(na, nb, "case {case}: twins must share one canonical form (op {op})");
    }
}

/// Same property for the Boolean AC operators (`∧ ∨ ⊕`).
#[test]
fn ac_bool_twins_share_canonical_form() {
    let mut rng = TestRng::seed_from_u64(0xac_b001);
    for case in 0..CASES {
        let mut ctx = Ctx::new();
        let vars = mk_vars(&mut ctx);
        let op = rng.gen_range(0u32..3);
        let n_leaves = rng.gen_range(3usize..=6);
        let mut leaves: Vec<TermId> = (0..n_leaves)
            .map(|_| {
                let p = vars.bools[rng.gen_range(0..vars.bools.len())];
                if rng.gen_bool(0.3) {
                    ctx.mk_not(p)
                } else {
                    p
                }
            })
            .collect();
        let fold = |ctx: &mut Ctx, rng: &mut TestRng, items: &[TermId]| -> TermId {
            let mut acc = items[0];
            for &l in &items[1..] {
                acc = match op {
                    0 => ctx.mk_and(acc, l),
                    1 => ctx.mk_or(acc, l),
                    _ => ctx.mk_xor(acc, l),
                };
                let _ = rng; // grouping is linear here; permutation is the twin
            }
            acc
        };
        let a = fold(&mut ctx, &mut rng, &leaves);
        shuffle(&mut rng, &mut leaves);
        let b = fold(&mut ctx, &mut rng, &leaves);
        let na = check_sound_and_idempotent(&mut ctx, a, &vars, &mut rng, case);
        let nb = check_sound_and_idempotent(&mut ctx, b, &vars, &mut rng, case);
        assert_eq!(na, nb, "case {case}: boolean twins must share one canonical form (op {op})");
    }
}

// --- Rule family 2: constant folding / strength reduction ----------------

/// Constant-heavy random expressions stay semantically identical under
/// normalization, and chains whose operands are all constants collapse to
/// a literal.
#[test]
fn const_folding_preserves_value_and_closes() {
    let mut rng = TestRng::seed_from_u64(0xc0_157);
    for case in 0..CASES {
        let mut ctx = Ctx::new();
        let vars = mk_vars(&mut ctx);
        // Random expression over {+ * & | ^ << - ¬} with ~60% constant leaves.
        let t = arb_bv_expr(&mut ctx, &mut rng, &vars, 4, 0.6);
        check_sound_and_idempotent(&mut ctx, t, &vars, &mut rng, case);

        // Fully-constant chains must fold to a single literal.
        let op = rng.gen_range(0u32..5);
        let consts: Vec<TermId> =
            (0..rng.gen_range(3usize..=5)).map(|_| ctx.mk_bv_const(rng.gen_u64() & 0xff, W)).collect();
        let chain = fold_random(&mut ctx, &mut rng, op, &consts);
        let n = normalize(&mut ctx, chain);
        assert!(
            ctx.const_bv(n).is_some(),
            "case {case}: all-constant chain must fold to a literal"
        );
    }
}

/// `x * 2ⁿ` and `x << n` share a canonical form (strength reduction),
/// wherever the multiplication sits in a larger chain.
#[test]
fn strength_reduction_is_canonical() {
    let mut rng = TestRng::seed_from_u64(0x57_0e26);
    for case in 0..CASES {
        let mut ctx = Ctx::new();
        let vars = mk_vars(&mut ctx);
        let x = vars.bv[rng.gen_range(0..vars.bv.len())];
        let y = vars.bv[rng.gen_range(0..vars.bv.len())];
        let sh = rng.gen_range(1u64..4);
        let pw = ctx.mk_bv_const(1 << sh, W);
        let shc = ctx.mk_bv_const(sh, W);
        let mul = ctx.mk_bv_mul(x, pw);
        let shl = ctx.mk_bv_shl(x, shc);
        let a = ctx.mk_bv_add(mul, y);
        let b = ctx.mk_bv_add(y, shl);
        let na = check_sound_and_idempotent(&mut ctx, a, &vars, &mut rng, case);
        let nb = check_sound_and_idempotent(&mut ctx, b, &vars, &mut rng, case);
        assert_eq!(na, nb, "case {case}: x*{} and x<<{sh} must canonicalize together", 1u64 << sh);
    }
}

fn arb_bv_expr(ctx: &mut Ctx, rng: &mut TestRng, vars: &Vars, depth: usize, p_const: f64) -> TermId {
    if depth == 0 || rng.gen_bool(0.25) {
        return if rng.gen_bool(p_const) {
            ctx.mk_bv_const(rng.gen_u64() & 0xff, W)
        } else {
            vars.bv[rng.gen_range(0..vars.bv.len())]
        };
    }
    let a = arb_bv_expr(ctx, rng, vars, depth - 1, p_const);
    let b = arb_bv_expr(ctx, rng, vars, depth - 1, p_const);
    match rng.gen_range(0u32..8) {
        0 => ctx.mk_bv_add(a, b),
        1 => ctx.mk_bv_mul(a, b),
        2 => ctx.mk_bv_and(a, b),
        3 => ctx.mk_bv_or(a, b),
        4 => ctx.mk_bv_xor(a, b),
        5 => ctx.mk_bv_shl(a, b),
        6 => ctx.mk_bv_sub(a, b),
        _ => ctx.mk_bv_not(a),
    }
}

// --- Rule family 3: ite normalization ------------------------------------

/// `ite(¬c, a, b)` and `ite(c, b, a)` share a canonical form, including
/// when nested, and normalization never changes the selected value.
#[test]
fn ite_polarity_twins_share_canonical_form() {
    let mut rng = TestRng::seed_from_u64(0x17e);
    for case in 0..CASES {
        let mut ctx = Ctx::new();
        let vars = mk_vars(&mut ctx);
        // A random (possibly nested) ite with a randomly-negated condition.
        let (a, b) = build_ite_twins(&mut ctx, &mut rng, &vars, 2);
        let na = check_sound_and_idempotent(&mut ctx, a, &vars, &mut rng, case);
        let nb = check_sound_and_idempotent(&mut ctx, b, &vars, &mut rng, case);
        assert_eq!(na, nb, "case {case}: polarity twins must share one canonical form");
    }
}

/// Build `ite(¬c, x, y)` and its flipped twin `ite(c, y, x)` where the
/// branches themselves recursively contain twinned ites.
fn build_ite_twins(
    ctx: &mut Ctx,
    rng: &mut TestRng,
    vars: &Vars,
    depth: usize,
) -> (TermId, TermId) {
    let (x, x2, y, y2) = if depth > 0 && rng.gen_bool(0.5) {
        let (x, x2) = build_ite_twins(ctx, rng, vars, depth - 1);
        let (y, y2) = build_ite_twins(ctx, rng, vars, depth - 1);
        (x, x2, y, y2)
    } else {
        let x = vars.bv[rng.gen_range(0..vars.bv.len())];
        let y = if rng.gen_bool(0.3) {
            ctx.mk_bv_const(rng.gen_u64() & 0xff, W)
        } else {
            vars.bv[rng.gen_range(0..vars.bv.len())]
        };
        (x, x, y, y)
    };
    let c = vars.bools[rng.gen_range(0..vars.bools.len())];
    let nc = ctx.mk_not(c);
    if rng.gen_bool(0.5) {
        (ctx.mk_ite(nc, x, y), ctx.mk_ite(c, y2, x2))
    } else {
        (ctx.mk_ite(c, x, y), ctx.mk_ite(nc, y2, x2))
    }
}

// --- Rule family 4: store-chain normalization ----------------------------

/// Random store chains: permuting distinct constant-address writes and
/// shadowing earlier writes to the same address both normalize away, and
/// a `select` over the chain reads the same value before and after.
#[test]
fn store_chain_twins_share_canonical_form() {
    let mut rng = TestRng::seed_from_u64(0x5702e);
    for case in 0..CASES {
        let mut ctx = Ctx::new();
        let vars = mk_vars(&mut ctx);

        // Innermost-first write list: constant addresses (sortable), one
        // optional symbolic barrier, occasional shadowing duplicates.
        let n_writes = rng.gen_range(3usize..=6);
        let mut writes: Vec<(TermId, TermId)> = Vec::new();
        for _ in 0..n_writes {
            let addr = if rng.gen_bool(0.2) {
                vars.bv[rng.gen_range(0..vars.bv.len())]
            } else {
                ctx.mk_bv_const(rng.gen_range(0u64..4), W)
            };
            let val = if rng.gen_bool(0.5) {
                ctx.mk_bv_const(rng.gen_u64() & 0xff, W)
            } else {
                vars.bv[rng.gen_range(0..vars.bv.len())]
            };
            writes.push((addr, val));
        }

        // Twin: swap one adjacent pair of *distinct constant* addresses —
        // the only reorder the pass itself is allowed to perform.
        let mut twin = writes.clone();
        for i in 0..twin.len() - 1 {
            let (a0, a1) = (twin[i].0, twin[i + 1].0);
            match (ctx.const_bv(a0), ctx.const_bv(a1)) {
                (Some(c0), Some(c1)) if c0 != c1 => {
                    twin.swap(i, i + 1);
                    break;
                }
                _ => {}
            }
        }

        let chain = |ctx: &mut Ctx, ws: &[(TermId, TermId)]| -> TermId {
            let mut acc = vars.arr;
            for &(i, v) in ws {
                acc = ctx.mk_store(acc, i, v);
            }
            acc
        };
        let a = chain(&mut ctx, &writes);
        let b = chain(&mut ctx, &twin);

        // Compare through a select so the family is bv-valued for eval.
        let j = vars.bv[rng.gen_range(0..vars.bv.len())];
        let ra = ctx.mk_select(a, j);
        let rb = ctx.mk_select(b, j);
        let na = check_sound_and_idempotent(&mut ctx, ra, &vars, &mut rng, case);
        let nb = check_sound_and_idempotent(&mut ctx, rb, &vars, &mut rng, case);
        assert_eq!(na, nb, "case {case}: store twins must share one canonical form");

        // The array chain itself also canonicalizes soundly: its canonical
        // form reads identically at every probed index.
        let nchain = normalize(&mut ctx, a);
        for _ in 0..ENVS {
            let env = random_env(&mut rng, &vars);
            let idx = rng.gen_u64() & 0xff;
            let i = ctx.mk_bv_const(idx, W);
            let before = ctx.mk_select(a, i);
            let after = ctx.mk_select(nchain, i);
            assert_eq!(
                eval(&ctx, before, &env),
                eval(&ctx, after, &env),
                "case {case}: canonical chain must read identically at {idx}"
            );
        }
    }
}

/// An outer write to the same syntactic address shadows the inner one:
/// the canonical chain is strictly shorter and still reads identically.
#[test]
fn shadowed_writes_are_eliminated() {
    let mut rng = TestRng::seed_from_u64(0x5ad0);
    for case in 0..CASES {
        let mut ctx = Ctx::new();
        let vars = mk_vars(&mut ctx);
        let addr = ctx.mk_bv_const(rng.gen_range(0u64..4), W);
        let v1 = ctx.mk_bv_const(rng.gen_u64() & 0xff, W);
        let v2 = ctx.mk_bv_const(rng.gen_u64() & 0xff, W);
        let mid = if rng.gen_bool(0.5) {
            let other = ctx.mk_bv_const(4 + rng.gen_range(0u64..4), W);
            let ov = vars.bv[rng.gen_range(0..vars.bv.len())];
            let s = ctx.mk_store(vars.arr, addr, v1);
            ctx.mk_store(s, other, ov)
        } else {
            ctx.mk_store(vars.arr, addr, v1)
        };
        let t = ctx.mk_store(mid, addr, v2);
        let n = normalize(&mut ctx, t);
        assert!(
            store_depth(&ctx, n) < store_depth(&ctx, t),
            "case {case}: the shadowed write must be dropped"
        );
        for _ in 0..ENVS {
            let env = random_env(&mut rng, &vars);
            let idx = rng.gen_u64() & 0xff;
            let i = ctx.mk_bv_const(idx, W);
            let before = ctx.mk_select(t, i);
            let after = ctx.mk_select(n, i);
            assert_eq!(eval(&ctx, before, &env), eval(&ctx, after, &env), "case {case}");
        }
    }
}

fn store_depth(ctx: &Ctx, mut t: TermId) -> usize {
    let mut d = 0;
    while matches!(ctx.op(t), pug_smt::Op::Store) {
        d += 1;
        t = ctx.args(t)[0];
    }
    d
}
