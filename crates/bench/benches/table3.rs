//! `cargo bench` entry for Table III (buggy-version equivalence).
//!
//! Quick grid with a short per-cell budget; the `repro-tables` binary runs
//! the full grid. Override the budget with `PUG_BENCH_TIMEOUT` (seconds).

use pug_bench::{render_rows, table3_rows};
use std::time::Duration;

fn main() {
    let timeout = std::env::var("PUG_BENCH_TIMEOUT")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(Duration::from_secs)
        .unwrap_or(Duration::from_secs(15));
    let rows = table3_rows(timeout, true);
    println!(
        "{}",
        render_rows(
            &format!("Table III (quick grid, {}s budget) — buggy versions", timeout.as_secs()),
            &rows
        )
    );
}
