//! Microbenchmarks for the solver substrates: the CDCL core and the
//! bit-blaster. These calibrate the reproduction's "hardware": absolute
//! table times scale with these numbers. (Plain timing harness — the
//! workspace builds offline, so no criterion.)

use pug_sat::{Budget, Lit, SolveResult, Solver, Var};
use pug_smt::{check, Ctx, SmtResult, Sort};
use pug_testutil::{bench, TestRng};

/// Pigeonhole PHP(n+1, n): classic resolution-hard UNSAT family.
fn pigeonhole() {
    for holes in [4usize, 5, 6] {
        bench(&format!("sat/pigeonhole/{holes}"), 10, || {
            let pigeons = holes + 1;
            let mut s = Solver::new();
            let p: Vec<Vec<Var>> =
                (0..pigeons).map(|_| (0..holes).map(|_| s.new_var()).collect()).collect();
            for row in &p {
                let clause: Vec<Lit> = row.iter().map(|v| v.pos()).collect();
                s.add_clause(&clause);
            }
            #[allow(clippy::needless_range_loop)] // h/i/j symmetry reads better indexed
            for h in 0..holes {
                for i in 0..pigeons {
                    for j in (i + 1)..pigeons {
                        s.add_clause(&[p[i][h].neg(), p[j][h].neg()]);
                    }
                }
            }
            assert_eq!(s.solve(&Budget::unlimited()), SolveResult::Unsat);
        });
    }
}

/// Random satisfiable 3-SAT near the phase transition.
fn random_3sat() {
    bench("sat/random-3sat-120v", 10, || {
        let mut rng = TestRng::seed_from_u64(42);
        let nv = 120usize;
        let nc = (nv as f64 * 4.0) as usize;
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..nv).map(|_| s.new_var()).collect();
        for _ in 0..nc {
            let clause: Vec<Lit> = (0..3)
                .map(|_| Lit::new(vars[rng.gen_range(0..nv)], rng.gen_bool(0.5)))
                .collect();
            s.add_clause(&clause);
        }
        let _ = s.solve(&Budget::with_conflicts(200_000));
    });
}

/// Bit-vector multiplication commutativity at the paper's widths — the
/// dominant circuit in the transpose/reduction encodings.
fn bv_mul_commutes() {
    for bits in [8u32, 12, 16] {
        bench(&format!("smt/mul-commutes/{bits}"), 10, || {
            let mut ctx = Ctx::new();
            let x = ctx.mk_var("x", Sort::BitVec(bits));
            let y = ctx.mk_var("y", Sort::BitVec(bits));
            let xy = ctx.mk_bv_mul(x, y);
            let yx = ctx.mk_bv_mul(y, x);
            // hash-consing makes these identical; force a real query via
            // (x*y) + 1 != (y*x) + 1 with an opaque reshuffle
            let one = ctx.mk_bv_const(1, bits);
            let a = ctx.mk_bv_add(xy, one);
            let z = ctx.mk_var("z", Sort::BitVec(bits));
            let b2 = ctx.mk_bv_add(yx, one);
            let eqz = ctx.mk_eq(z, b2);
            let neq = ctx.mk_neq(a, z);
            let r = check(&mut ctx, &[eqz, neq], &pug_sat::Budget::unlimited());
            assert!(matches!(r, SmtResult::Unsat));
        });
    }
}

/// Division-circuit round trip: (a / b) * b + (a % b) == a.
fn bv_divmod_identity() {
    bench("smt/divmod-identity-8b", 10, || {
        let mut ctx = Ctx::new();
        let a = ctx.mk_var("a", Sort::BitVec(8));
        let d = ctx.mk_var("d", Sort::BitVec(8));
        let zero = ctx.mk_bv_const(0, 8);
        let nz = ctx.mk_neq(d, zero);
        let q = ctx.mk_bv_udiv(a, d);
        let r = ctx.mk_bv_urem(a, d);
        let qb = ctx.mk_bv_mul(q, d);
        let sum = ctx.mk_bv_add(qb, r);
        let neq = ctx.mk_neq(sum, a);
        let res = check(&mut ctx, &[nz, neq], &pug_sat::Budget::unlimited());
        assert!(matches!(res, SmtResult::Unsat));
    });
}

fn main() {
    pigeonhole();
    random_3sat();
    bv_mul_commutes();
    bv_divmod_identity();
}
