//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Prove vs fast bug hunting** (§IV-D) — time to find a seeded bug
//!    with and without the coverage query families.
//! 2. **Concretization (+C.)** (§V) — the parameterized transpose at
//!    growing bit widths, with and without pinned matrix sizes.
//! 3. **Encoding growth** — non-parameterized encoding size (CNF vars and
//!    clauses) as a function of n, the quantitative form of the paper's
//!    "explodes in complexity when confronted with a growing number of
//!    threads".

use pugpara::equiv::{check_equivalence_nonparam, check_equivalence_param, CheckOptions};
use pugpara::KernelUnit;
use pug_ir::GpuConfig;
use std::time::Duration;

fn timeout() -> Duration {
    std::env::var("PUG_BENCH_TIMEOUT")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(Duration::from_secs)
        .unwrap_or(Duration::from_secs(20))
}

fn main() {
    ablation_modes();
    ablation_concretization();
    ablation_encoding_growth();
}

fn ablation_modes() {
    println!("== Ablation 1: Prove vs FastBugHunt (seeded transpose address bug, 8b) ==");
    let naive = KernelUnit::load(pug_kernels::transpose::NAIVE).unwrap();
    let buggy = KernelUnit::load(pug_kernels::transpose::BUGGY_ADDR).unwrap();
    let cfg = GpuConfig::symbolic_2d(8);
    for (label, opts) in [
        ("prove mode   ", CheckOptions::with_timeout(timeout())),
        ("fast bug hunt", CheckOptions::with_timeout(timeout()).fast_bug_hunt()),
    ] {
        match check_equivalence_param(&naive, &buggy, &cfg, &opts) {
            Ok(r) => println!(
                "  {label}: {:>8.3}s solver time, {} queries, verdict: {}",
                r.solver_time().as_secs_f64(),
                r.queries.len(),
                r.verdict
            ),
            Err(e) => println!("  {label}: error {e}"),
        }
    }
    println!();
}

fn ablation_concretization() {
    println!("== Ablation 2: concretization (+C.) on the parameterized transpose ==");
    let naive = KernelUnit::load(pug_kernels::transpose::NAIVE).unwrap();
    let opt = KernelUnit::load(pug_kernels::transpose::OPTIMIZED).unwrap();
    for bits in [8u32, 12, 16] {
        let cfg = GpuConfig::symbolic_2d(bits);
        for (label, opts) in [
            ("-C.", CheckOptions::with_timeout(timeout())),
            (
                "+C.",
                CheckOptions::with_timeout(timeout())
                    .concretized("width", 8)
                    .concretized("height", 8),
            ),
        ] {
            match check_equivalence_param(&naive, &opt, &cfg, &opts) {
                Ok(r) => println!(
                    "  {bits:>2}b {label}: {:>8.3}s, verdict: {}",
                    r.solver_time().as_secs_f64(),
                    r.verdict
                ),
                Err(e) => println!("  {bits:>2}b {label}: error {e}"),
            }
        }
    }
    println!();
}

fn ablation_encoding_growth() {
    println!("== Ablation 3: non-parameterized encoding growth with n (transpose 8b) ==");
    let naive = KernelUnit::load(pug_kernels::transpose::NAIVE).unwrap();
    let opt = KernelUnit::load(pug_kernels::transpose::OPTIMIZED).unwrap();
    for n in [4u64, 16] {
        let (bx, by) = pug_bench::cells::transpose_block(n);
        let cfg = GpuConfig::concrete_2d(8, bx, by);
        let opts = CheckOptions::with_timeout(timeout())
            .concretized("width", bx)
            .concretized("height", by);
        match check_equivalence_nonparam(&naive, &opt, &cfg, &opts) {
            Ok(r) => {
                let q = r.queries.first();
                let (vars, clauses) = q.map(|q| (q.stats.cnf_vars, q.stats.cnf_clauses)).unwrap_or((0, 0));
                println!(
                    "  n={n:>3}: {:>8.3}s, CNF {vars} vars / {clauses} clauses, verdict: {}",
                    r.solver_time().as_secs_f64(),
                    r.verdict
                );
            }
            Err(e) => println!("  n={n:>3}: error {e}"),
        }
    }
    println!("  (parameterized, for comparison)");
    let cfg = GpuConfig::symbolic_2d(8);
    if let Ok(r) = check_equivalence_param(&naive, &opt, &cfg, &CheckOptions::with_timeout(timeout())) {
        let q = r.queries.first();
        let (vars, clauses) = q.map(|q| (q.stats.cnf_vars, q.stats.cnf_clauses)).unwrap_or((0, 0));
        println!(
            "  param: {:>8.3}s, first-query CNF {vars} vars / {clauses} clauses, verdict: {}",
            r.solver_time().as_secs_f64(),
            r.verdict
        );
    }
}
