//! `cargo bench` entry for Table II (bug-free equivalence).
//!
//! Runs the quick grid with a short per-cell budget so a full
//! `cargo bench --workspace` stays tractable on small machines; use the
//! `repro-tables` binary for the full grid with the paper's longer budget.
//! Override the budget with `PUG_BENCH_TIMEOUT` (seconds).

use pug_bench::{render_rows, table2_rows};
use std::time::Duration;

fn main() {
    let timeout = std::env::var("PUG_BENCH_TIMEOUT")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(Duration::from_secs)
        .unwrap_or(Duration::from_secs(15));
    let rows = table2_rows(timeout, true);
    println!(
        "{}",
        render_rows(
            &format!(
                "Table II (quick grid, {}s budget) — bug-free equivalence",
                timeout.as_secs()
            ),
            &rows
        )
    );
}
