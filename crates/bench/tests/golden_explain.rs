//! Golden snapshots for the verdict-explanation renderer.
//!
//! Each case runs a real verification and pins the *stable* explain
//! rendering (`ExplainOptions::stable()` — no times, no counts on
//! budget-limited rungs) against `tests/golden_explain/<name>.txt`. The
//! narrative is part of the tool's user interface: a reworded residue
//! story, a lost ladder rung, or a dropped witness is a regression even
//! when the verdict is still right.
//!
//! Covered: every corpus pair of the racing grid (a sound Param proof, a
//! deadline-driven NonParam fallback, three bug classes), a FastBugHunt
//! bug found with every stronger rung exhausted, a budget-exhausted
//! Unknown, and an auxiliary-pass narrative.
//!
//! To refresh after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p pug-bench --test golden_explain
//! ```
//!
//! then review the diff like any other code change.

use pug_bench::explain_corpus;
use pugpara::failpoints::{self, Fault};
use pugpara::runner::{run_resilient, RunnerOptions};
use pugpara::{explain_with, ExplainOptions, KernelUnit};
use pug_ir::GpuConfig;
use std::fs;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

struct Scope(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Scope {
    fn armed(sites: &[(&str, Fault)]) -> Scope {
        let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        failpoints::reset();
        for &(site, fault) in sites {
            failpoints::arm(site, fault);
        }
        Scope(guard)
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        failpoints::reset();
    }
}

/// Every golden case name, in one place: the corpus pair slugs plus the
/// scenario cases. The orphan check walks this list.
const CORPUS_CASES: &[&str] = &[
    "transpose_c_8b",
    "transpose_c_16b",
    "reduction_v0_v1_8b",
    "transpose_bug_16b",
    "reduction_bug_8b",
    "vectoradd_bug_8b",
];
const SCENARIO_CASES: &[&str] = &[
    "param_proof",
    "stride_param_proof",
    "fastbughunt_bug",
    "budget_exhausted_unknown",
    "aux_passes",
];

/// Grid pair name -> snapshot file stem.
fn slug(name: &str) -> String {
    let mut out = String::new();
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('_') && !out.is_empty() {
            out.push('_');
        }
    }
    out.trim_end_matches('_').to_string()
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden_explain")
        .join(format!("{name}.txt"))
}

/// Compare (or, under `UPDATE_GOLDEN=1`, record) one snapshot.
fn check_golden(name: &str, actual: &str) -> Result<(), String> {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, actual).unwrap();
        return Ok(());
    }
    let expected = fs::read_to_string(&path).map_err(|e| {
        format!("{name}: cannot read {} ({e}); run with UPDATE_GOLDEN=1 to record", path.display())
    })?;
    if expected != actual {
        return Err(format!(
            "{name}: narrative drifted from golden file {}\n--- expected\n{expected}\n--- actual\n{actual}",
            path.display()
        ));
    }
    Ok(())
}

fn stable(report: &pugpara::ResilientReport) -> String {
    explain_with(report, &ExplainOptions::stable())
}

/// All six corpus pairs of the racing grid, ladder narratives only (no
/// auxiliary passes: on the deadline-bound rows their budgeted queries
/// are not run-to-run stable).
#[test]
fn corpus_pair_narratives_match_golden_files() {
    let _scope = Scope::armed(&[]);
    let corpus = explain_corpus(false, false);
    assert_eq!(corpus.len(), CORPUS_CASES.len(), "grid size drifted — update CORPUS_CASES");
    let mut failures = Vec::new();
    for (name, report) in &corpus {
        let stem = slug(name);
        assert!(
            CORPUS_CASES.contains(&stem.as_str()),
            "pair {name} (slug {stem}) missing from CORPUS_CASES"
        );
        if let Err(e) = check_golden(&stem, &stable(report)) {
            failures.push(e);
        }
    }
    assert!(failures.is_empty(), "{} golden mismatches:\n{}", failures.len(), failures.join("\n"));
}

/// A sound parameterized proof: identical kernels, Param answers first.
#[test]
fn param_proof_narrative_matches_golden() {
    let _scope = Scope::armed(&[]);
    let naive = KernelUnit::load(pug_kernels::transpose::NAIVE).unwrap();
    let report =
        run_resilient(&naive, &naive, &GpuConfig::symbolic_2d(8), &RunnerOptions::default());
    assert!(report.verdict.is_verified(), "{}", report.provenance.render());
    check_golden("param_proof", &stable(&report)).unwrap();
}

/// A sound parameterized proof that *needs* the generalized (Presburger)
/// quantifier elimination: the grid-stride pair's write coverage is a
/// symbolic-stride residue the monotone eliminator gives up on, so this
/// narrative pins the elimination's contribution to the residue story.
#[test]
fn stride_param_proof_narrative_matches_golden() {
    let _scope = Scope::armed(&[]);
    let src = KernelUnit::load(pug_kernels::stride::GRID_STRIDE).unwrap();
    let tgt = KernelUnit::load(pug_kernels::stride::GRID_STRIDE_REASSOC).unwrap();
    let report = run_resilient(&src, &tgt, &GpuConfig::symbolic_1d(8), &RunnerOptions::default());
    assert!(report.verdict.is_verified(), "{}", report.provenance.render());
    assert!(report.provenance.soundness_note.is_none(), "{}", report.provenance.render());
    check_golden("stride_param_proof", &stable(&report)).unwrap();
}

/// FastBugHunt finds the bug with every stronger rung exhausted: the
/// narrative must walk the failed ladder and still render the witness.
#[test]
fn fastbughunt_bug_narrative_matches_golden() {
    let _scope = Scope::armed(&[
        ("runner::param", Fault::BudgetExhausted),
        ("runner::param_c", Fault::BudgetExhausted),
        ("runner::nonparam", Fault::BudgetExhausted),
    ]);
    let naive = KernelUnit::load(pug_kernels::transpose::NAIVE).unwrap();
    let buggy = KernelUnit::load(pug_kernels::transpose::BUGGY_ADDR).unwrap();
    let report =
        run_resilient(&naive, &buggy, &GpuConfig::symbolic_2d(8), &RunnerOptions::default());
    assert!(report.verdict.is_bug(), "{}", report.provenance.render());
    check_golden("fastbughunt_bug", &stable(&report)).unwrap();
}

/// Every rung exhausted: the narrative must state the Unknown honestly.
#[test]
fn budget_exhausted_narrative_matches_golden() {
    let _scope = Scope::armed(&[
        ("runner::param", Fault::BudgetExhausted),
        ("runner::param_c", Fault::BudgetExhausted),
        ("runner::nonparam", Fault::BudgetExhausted),
        ("runner::fastbughunt", Fault::BudgetExhausted),
    ]);
    let naive = KernelUnit::load(pug_kernels::transpose::NAIVE).unwrap();
    let report =
        run_resilient(&naive, &naive, &GpuConfig::symbolic_2d(8), &RunnerOptions::default());
    assert!(report.verdict.is_timeout(), "{}", report.provenance.render());
    check_golden("budget_exhausted_unknown", &stable(&report)).unwrap();
}

/// Auxiliary passes in the narrative, on a pair cheap enough that every
/// pass answers well inside any budget.
#[test]
fn aux_pass_narrative_matches_golden() {
    let _scope = Scope::armed(&[]);
    let ok = KernelUnit::load(pug_kernels::vector_add::KERNEL).unwrap();
    let buggy = KernelUnit::load(pug_kernels::vector_add::BUGGY).unwrap();
    let opts = RunnerOptions::default().with_aux_passes();
    let report = run_resilient(&ok, &buggy, &GpuConfig::symbolic_1d(8), &opts);
    assert!(!report.provenance.passes.is_empty(), "aux passes did not run");
    check_golden("aux_passes", &stable(&report)).unwrap();
}

/// Meta-check: no orphaned golden files for deleted cases.
#[test]
fn no_orphaned_golden_files() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden_explain");
    let Ok(entries) = fs::read_dir(&dir) else {
        return; // nothing recorded yet
    };
    for entry in entries {
        let path = entry.unwrap().path();
        let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
        assert!(
            CORPUS_CASES.contains(&stem.as_str()) || SCENARIO_CASES.contains(&stem.as_str()),
            "orphaned golden file {} — delete it or re-add its case",
            path.display()
        );
    }
}
