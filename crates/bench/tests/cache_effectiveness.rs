//! Cache-effectiveness regression vs the committed PR 7 baseline
//! (`BENCH_pr7.json`, the last pre-canonicalization bench run).
//!
//! Canonicalization changes the cross-rung `QueryCache` economics in one
//! direction only: obligations that collapse under rewriting are
//! discharged *before* the cache lookup, so they stop generating misses
//! (and occasionally stop generating hits — a row discharged in both the
//! hunt and the prove phase never touches the cache at all). The
//! measurable claims, asserted here against a fresh quick-grid run:
//!
//! * no common row's incremental miss count grows;
//! * at least one row's miss count strictly shrinks;
//! * the aggregate hit *rate* over the common rows strictly improves;
//! * at least one obligation is discharged by rewriting alone.

use std::time::Duration;

/// Per-row incremental cache metrics parsed out of a bench JSON document
/// (the crate's hand-rolled format; same text-scan approach as the
/// baseline wall-clock gate).
#[derive(Debug, PartialEq)]
struct RowCache {
    name: String,
    hits: u64,
    misses: u64,
    discharged: u64,
}

fn field(block: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\": ");
    let at = block.find(&tag)?;
    let num = &block[at + tag.len()..];
    let end = num.find(|c: char| !c.is_ascii_digit()).unwrap_or(num.len());
    num[..end].parse().ok()
}

fn parse_row_caches(json: &str) -> Vec<RowCache> {
    let mut out = Vec::new();
    for chunk in json.split("\"name\": \"").skip(1) {
        let Some(name_end) = chunk.find('"') else { continue };
        let name = chunk[..name_end].to_string();
        let Some(inc_at) = chunk.find("\"incremental\": {") else { continue };
        let block_end = chunk[inc_at..].find('}').map(|e| inc_at + e).unwrap_or(chunk.len());
        let block = &chunk[inc_at..block_end];
        let (Some(hits), Some(misses)) =
            (field(block, "cache_hits"), field(block, "cache_misses"))
        else {
            continue;
        };
        // Absent in pre-PR8 documents: those rows could not discharge.
        let discharged = field(block, "discharged_by_rewrite").unwrap_or(0);
        out.push(RowCache { name, hits, misses, discharged });
    }
    out
}

#[test]
fn canonicalization_improves_cache_effectiveness_vs_pr7_baseline() {
    let baseline_json = include_str!("../../../BENCH_pr7.json");
    let baseline = parse_row_caches(baseline_json);
    assert!(!baseline.is_empty(), "baseline has no parsable rows");

    let report = pug_bench::bench_json_report(Duration::from_secs(60), true);
    let fresh = parse_row_caches(&report.json);
    assert!(!fresh.is_empty(), "fresh run has no parsable rows:\n{}", report.json);

    let mut old_hits = 0u64;
    let mut old_lookups = 0u64;
    let mut new_hits = 0u64;
    let mut new_lookups = 0u64;
    let mut discharged = 0u64;
    let mut any_fewer_misses = false;
    let mut common = 0usize;
    for new in &fresh {
        let Some(old) = baseline.iter().find(|r| r.name == new.name) else {
            continue; // the quick grid drops the heavyweight row
        };
        common += 1;
        assert!(
            new.misses <= old.misses,
            "{}: canonicalization added cache misses ({} -> {})",
            new.name,
            old.misses,
            new.misses
        );
        if new.misses < old.misses {
            any_fewer_misses = true;
        }
        old_hits += old.hits;
        old_lookups += old.hits + old.misses;
        new_hits += new.hits;
        new_lookups += new.hits + new.misses;
        discharged += new.discharged;
    }
    assert!(common >= 4, "only {common} rows in common with the baseline");
    assert!(
        any_fewer_misses,
        "no row's miss count shrank — rewriting discharged nothing the cache used to miss"
    );
    assert!(discharged >= 1, "expected at least one rewrite-discharged obligation");

    // Aggregate hit rate strictly improves: discharges remove former
    // misses from the lookup stream (measured on the committed corpus:
    // 4/44 -> 3/29).
    let old_rate = old_hits as f64 / old_lookups.max(1) as f64;
    let new_rate = new_hits as f64 / new_lookups.max(1) as f64;
    assert!(
        new_rate > old_rate,
        "aggregate hit rate did not improve: {old_hits}/{old_lookups} -> {new_hits}/{new_lookups}"
    );
}
