//! Individual table cells: one equivalence check each, with the paper's
//! outcome notation.

use pugpara::equiv::{check_equivalence_nonparam, check_equivalence_param, CheckOptions};
use pugpara::failpoints::{self, Fault};
use pugpara::runner::{panic_message, Watchdog};
use pugpara::{KernelUnit, Verdict};
use pug_ir::{Extent, GpuConfig};
use pug_smt::CancelToken;
use std::cell::RefCell;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Outcome of one cell, rendered in the paper's notation: SMT seconds,
/// `s*` when the checker (correctly) reports non-equivalence, `T.O` on
/// budget exhaustion.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Equivalence verified (SMT time).
    Verified(Duration),
    /// Non-equivalence / bug reported (SMT time) — the `*` cells.
    Starred(Duration),
    /// Budget exhausted.
    Timeout,
    /// Checker error (e.g. alignment failure) — not expected in the grid.
    Error(String),
    /// The checker panicked; the cell was isolated and the run continued.
    Crash(String),
}

impl Outcome {
    fn from_report(r: &pugpara::Report) -> Outcome {
        let t = r.solver_time();
        match &r.verdict {
            Verdict::Verified(_) => Outcome::Verified(t),
            Verdict::Bug(_) => Outcome::Starred(t),
            Verdict::Timeout => Outcome::Timeout,
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Verified(d) => write!(f, "{:.2}", d.as_secs_f64()),
            Outcome::Starred(d) => write!(f, "{:.2}*", d.as_secs_f64()),
            Outcome::Timeout => write!(f, "T.O"),
            Outcome::Error(e) => write!(f, "ERR({e})"),
            Outcome::Crash(_) => write!(f, "CRASH"),
        }
    }
}

thread_local! {
    /// Cancel token of the cell currently inside [`run_cell`], picked up by
    /// [`opts`] so the watchdog can interrupt the solver cooperatively.
    static ACTIVE_TOKEN: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

fn opts(timeout: Duration) -> CheckOptions {
    let mut o = CheckOptions::with_timeout(timeout);
    if let Some(token) = ACTIVE_TOKEN.with(|t| t.borrow().clone()) {
        o = o.with_cancel(token);
    }
    o
}

/// Fault boundary for one table cell.
///
/// The cell body runs under [`catch_unwind`], with a [`Watchdog`] armed
/// slightly past the solver's own deadline: if the checker hangs between
/// budget polls, the watchdog trips the cell's [`CancelToken`] and the cell
/// resolves as `T.O`; if it panics, the payload is captured and the cell
/// resolves as `CRASH`. Either way the remaining cells still run — one bad
/// cell no longer kills `repro-tables`.
pub fn run_cell<F>(timeout: Duration, f: F) -> Outcome
where
    F: FnOnce() -> Outcome,
{
    let token = CancelToken::new();
    // Grace period: the in-band deadline should fire first; the watchdog is
    // the backstop for code stuck between cooperative polls.
    let _watchdog = Watchdog::arm(token.clone(), timeout + timeout / 4 + Duration::from_secs(1));
    ACTIVE_TOKEN.with(|t| *t.borrow_mut() = Some(token));
    let result = catch_unwind(AssertUnwindSafe(|| {
        match failpoints::trip("bench::cell") {
            // `Panic` unwinds out of `trip` itself, exercising the boundary.
            Some(Fault::BudgetExhausted) => return Outcome::Timeout,
            Some(Fault::SpuriousUnknown) => return Outcome::Timeout,
            _ => {}
        }
        f()
    }));
    ACTIVE_TOKEN.with(|t| *t.borrow_mut() = None);
    match result {
        Ok(outcome) => outcome,
        Err(payload) => Outcome::Crash(panic_message(&*payload)),
    }
}

/// Map the paper's thread counts to 2-D transpose blocks: 4 → 2×2,
/// 8 → 4×2 (non-square: the `*` rows), 16 → 4×4, 32 → 8×4 (non-square).
pub fn transpose_block(n: u64) -> (u64, u64) {
    match n {
        4 => (2, 2),
        8 => (4, 2),
        16 => (4, 4),
        32 => (8, 4),
        64 => (8, 8),
        144 => (12, 12),
        196 => (14, 14),
        other => {
            let side = (other as f64).sqrt() as u64;
            if side * side == other {
                (side, side)
            } else {
                (other / 2, 2)
            }
        }
    }
}

/// Transpose, non-parameterized, n threads (§III baseline). Uses the
/// unconstrained optimized kernel so non-square blocks are (correctly)
/// reported as non-equivalent — the paper's `*` entries.
pub fn transpose_nonparam(bits: u32, n: u64, concretize: bool, timeout: Duration) -> Outcome {
    let naive = KernelUnit::load(pug_kernels::transpose::NAIVE).expect("corpus parses");
    let opt = KernelUnit::load(pug_kernels::transpose::OPTIMIZED_UNCONSTRAINED)
        .expect("corpus parses");
    let (bx, by) = transpose_block(n);
    let cfg = GpuConfig::concrete_2d(bits, bx, by);
    let mut o = opts(timeout);
    if concretize {
        o = o.concretized("width", bx).concretized("height", by);
    }
    match check_equivalence_nonparam(&naive, &opt, &cfg, &o) {
        Ok(r) => Outcome::from_report(&r),
        Err(e) => Outcome::Error(e.to_string()),
    }
}

/// Transpose, parameterized (§IV): symbolic 2-D configuration; "+C." pins
/// the matrix sizes.
pub fn transpose_param(bits: u32, concretize: bool, timeout: Duration) -> Outcome {
    let naive = KernelUnit::load(pug_kernels::transpose::NAIVE).expect("corpus parses");
    let opt = KernelUnit::load(pug_kernels::transpose::OPTIMIZED).expect("corpus parses");
    let cfg = GpuConfig::symbolic_2d(bits);
    let mut o = opts(timeout);
    if concretize {
        o = o.concretized("width", 8).concretized("height", 8);
    }
    match check_equivalence_param(&naive, &opt, &cfg, &o) {
        Ok(r) => Outcome::from_report(&r),
        Err(e) => Outcome::Error(e.to_string()),
    }
}

fn reduction_pair(bits: u32, buggy: bool) -> (KernelUnit, KernelUnit) {
    let bound = pug_kernels::reduction::safe_block_bound(bits);
    let v0 = KernelUnit::load(&pug_kernels::reduction::v0_bounded(bound)).expect("corpus parses");
    // The seeded *index* bug corrupts the output sum, so both encoders can
    // see it. (The guard bug writes out of bounds without reaching
    // `sdata[0]`: only the parameterized coverage check detects it — see
    // the integration tests.)
    let other = if buggy {
        pug_kernels::reduction::buggy_index_bounded(bound)
    } else {
        pug_kernels::reduction::v1_bounded(bound)
    };
    (v0, KernelUnit::load(&other).expect("corpus parses"))
}

/// Reduction (v0 vs v1), non-parameterized, n-thread block. The loop bound
/// depends on n, so the formula grows in both the unroll depth and the
/// store-chain length — the paper's "generic method blows up on n" rows.
pub fn reduction_nonparam(bits: u32, n: u64, timeout: Duration) -> Outcome {
    let (v0, v1) = reduction_pair(bits, false);
    let cfg = GpuConfig::concrete_1d(bits, n);
    match check_equivalence_nonparam(&v0, &v1, &cfg, &opts(timeout)) {
        Ok(r) => Outcome::from_report(&r),
        Err(e) => Outcome::Error(e.to_string()),
    }
}

/// Reduction v0 vs v2 (sequential addressing), non-parameterized. Unlike
/// v0/v1 — whose unrolled reduction trees are *identical* terms, letting
/// the rewriter discharge the goal syntactically — v0 and v2 build
/// different trees over the same inputs, so the solver must actually prove
/// the sums equal; the cost grows steeply with n.
pub fn reduction_v2_nonparam(bits: u32, n: u64, timeout: Duration) -> Outcome {
    let bound = pug_kernels::reduction::safe_block_bound(bits);
    let v0 = KernelUnit::load(&pug_kernels::reduction::v0_bounded(bound)).expect("corpus parses");
    let v2 = KernelUnit::load(&pug_kernels::reduction::v2_bounded(bound)).expect("corpus parses");
    let cfg = GpuConfig::concrete_1d(bits, n);
    match check_equivalence_nonparam(&v0, &v2, &cfg, &opts(timeout)) {
        Ok(r) => Outcome::from_report(&r),
        Err(e) => Outcome::Error(e.to_string()),
    }
}

/// Reduction, parameterized via loop alignment (§IV-E). "+C." pins the
/// block size (the paper's downscaling remark) while inputs stay symbolic.
pub fn reduction_param(bits: u32, concretize: bool, timeout: Duration) -> Outcome {
    let (v0, v1) = reduction_pair(bits, false);
    let cfg = if concretize {
        GpuConfig {
            bits,
            bdim: [Extent::Const(8), Extent::Const(1), Extent::Const(1)],
            gdim: [Extent::Sym, Extent::Const(1)],
        }
    } else {
        GpuConfig::symbolic_1d(bits)
    };
    match check_equivalence_param(&v0, &v1, &cfg, &opts(timeout)) {
        Ok(r) => Outcome::from_report(&r),
        Err(e) => Outcome::Error(e.to_string()),
    }
}

/// Buggy transpose (seeded address bug), non-parameterized.
pub fn transpose_buggy_nonparam(bits: u32, n: u64, timeout: Duration) -> Outcome {
    let naive = KernelUnit::load(pug_kernels::transpose::NAIVE).expect("corpus parses");
    let buggy = KernelUnit::load(pug_kernels::transpose::BUGGY_ADDR).expect("corpus parses");
    let (bx, by) = transpose_block(n);
    let cfg = GpuConfig::concrete_2d(bits, bx, by);
    match check_equivalence_nonparam(&naive, &buggy, &cfg, &opts(timeout)) {
        Ok(r) => Outcome::from_report(&r),
        Err(e) => Outcome::Error(e.to_string()),
    }
}

/// Buggy transpose, parameterized (fast bug hunting, §IV-D).
pub fn transpose_buggy_param(bits: u32, timeout: Duration) -> Outcome {
    let naive = KernelUnit::load(pug_kernels::transpose::NAIVE).expect("corpus parses");
    let buggy = KernelUnit::load(pug_kernels::transpose::BUGGY_ADDR).expect("corpus parses");
    let cfg = GpuConfig::symbolic_2d(bits);
    match check_equivalence_param(&naive, &buggy, &cfg, &opts(timeout).fast_bug_hunt()) {
        Ok(r) => Outcome::from_report(&r),
        Err(e) => Outcome::Error(e.to_string()),
    }
}

/// Buggy reduction (seeded guard bug), non-parameterized.
pub fn reduction_buggy_nonparam(bits: u32, n: u64, timeout: Duration) -> Outcome {
    let (v0, buggy) = reduction_pair(bits, true);
    let cfg = GpuConfig::concrete_1d(bits, n);
    match check_equivalence_nonparam(&v0, &buggy, &cfg, &opts(timeout)) {
        Ok(r) => Outcome::from_report(&r),
        Err(e) => Outcome::Error(e.to_string()),
    }
}

/// Buggy reduction, parameterized.
pub fn reduction_buggy_param(bits: u32, timeout: Duration) -> Outcome {
    let (v0, buggy) = reduction_pair(bits, true);
    let cfg = GpuConfig::symbolic_1d(bits);
    match check_equivalence_param(&v0, &buggy, &cfg, &opts(timeout)) {
        Ok(r) => Outcome::from_report(&r),
        Err(e) => Outcome::Error(e.to_string()),
    }
}
