//! `repro-tables --trace PATH` / `--explain` — the observability surface.
//!
//! * [`trace_smoke`] runs one traced equivalence check (the transpose
//!   pair with concretized dimensions, auxiliary passes on), writes the
//!   JSONL event stream to a file, re-parses it, and structurally
//!   validates the span tree — the CI-facing proof that the exporter and
//!   the parser agree and that every span closes exactly once.
//! * [`explain_rows`] runs the racing grid's kernel pairs through the
//!   sequential ladder and renders each [`ResilientReport`] as a verdict
//!   narrative via [`pugpara::explain_report`].

use pug_ir::GpuConfig;
use pug_obs::{parse_jsonl, validate, MetricsRegistry, TraceSink};
use pugpara::runner::{run_resilient, ResilientReport, RunnerOptions};
use pugpara::KernelUnit;
use std::time::Duration;

/// The explain corpus: the racing grid's pairs, run sequentially.
/// `aux_passes` adds the race/bank-conflict/coalescing passes to each
/// narrative; the golden snapshot suite runs without them (on the hard
/// transpose rows their budgeted queries sit near the deadline boundary,
/// so their summaries are not run-to-run stable).
pub fn explain_corpus(quick: bool, aux_passes: bool) -> Vec<(String, ResilientReport)> {
    crate::portfolio::grid(quick)
        .into_iter()
        .map(|p| {
            let opts = if aux_passes { p.opts.with_aux_passes() } else { p.opts };
            let report = run_resilient(&p.src, &p.tgt, &p.cfg, &opts);
            (p.name.to_string(), report)
        })
        .collect()
}

/// Render the explain narrative (with times) for every corpus pair. Runs
/// with the obligation pool enabled and a live registry so each narrative
/// ends with the `parallelism:` section (pool engagement, learnt-exchange
/// traffic, cache sharding).
pub fn explain_rows(quick: bool) -> String {
    let mut out = String::new();
    for p in crate::portfolio::grid(quick) {
        let metrics = MetricsRegistry::new();
        let opts = p
            .opts
            .with_aux_passes()
            .with_metrics(metrics.clone())
            .with_obligation_parallelism(4);
        let report = run_resilient(&p.src, &p.tgt, &p.cfg, &opts);
        out.push_str(&format!("=== {} ===\n", p.name));
        out.push_str(&pugpara::explain_full(
            &report,
            &metrics.snapshot(),
            &pugpara::ExplainOptions::default(),
        ));
        out.push('\n');
    }
    out
}

/// Run one fully traced verification, write the JSONL stream to `path`,
/// re-parse and validate it, and return a human-readable summary. `Err`
/// means the trace was structurally broken — CI fails on it.
pub fn trace_smoke(path: &str) -> Result<String, String> {
    let load = |s: &str| KernelUnit::load(s).expect("bundled kernel loads");
    let src = load(pug_kernels::transpose::NAIVE);
    let tgt = load(pug_kernels::transpose::OPTIMIZED);
    let cfg = GpuConfig::symbolic_2d(8);

    let sink = TraceSink::recording();
    let metrics = MetricsRegistry::new();
    let opts = RunnerOptions {
        rung_timeout: Some(Duration::from_secs(2)),
        concretize: [("width".to_string(), 8), ("height".to_string(), 8)]
            .into_iter()
            .collect(),
        ..RunnerOptions::default()
    }
    .with_trace(sink.clone())
    .with_metrics(metrics.clone())
    .with_aux_passes();
    let report = run_resilient(&src, &tgt, &cfg, &opts);

    let jsonl = sink.to_jsonl();
    std::fs::write(path, &jsonl).map_err(|e| format!("cannot write {path}: {e}"))?;

    // Round-trip: what we wrote must parse back and form a well-shaped
    // span tree (balanced opens/closes, strictly increasing sequence).
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot re-read {path}: {e}"))?;
    let events = parse_jsonl(&text)?;
    let summary = validate(&events)?;
    if sink.is_truncated() {
        return Err("trace sink overflowed its event cap during the smoke".into());
    }

    let queries = metrics.snapshot().counter("queries.total");
    let mut out = format!(
        "trace smoke: verdict `{}`, {} events -> {path}\n\
         span tree: {} spans, {} points, max depth {} — structurally valid\n",
        report.verdict,
        events.len(),
        summary.spans,
        summary.points,
        summary.max_depth,
    );
    out.push_str(&format!("metrics: {queries} queries recorded\n"));
    out.push_str("\nmetrics snapshot:\n");
    out.push_str(&metrics.render());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_smoke_round_trips() {
        let path = std::env::temp_dir().join("pug-trace-smoke-test.jsonl");
        let summary = trace_smoke(path.to_str().unwrap()).expect("smoke validates");
        assert!(summary.contains("structurally valid"));
        assert!(summary.contains("queries.total"));
        let _ = std::fs::remove_file(path);
    }
}
