//! Assembling and rendering the paper's Tables II and III.

use crate::cells::{self, Outcome};
use std::time::Duration;

/// One rendered table row.
#[derive(Clone, Debug)]
pub struct TableRow {
    pub kernel: String,
    pub cells: Vec<(String, Outcome)>,
}

/// Run one labeled cell inside the [`cells::run_cell`] fault boundary.
fn cell(
    label: &str,
    timeout: Duration,
    f: impl FnOnce() -> Outcome,
) -> (String, Outcome) {
    (label.to_string(), cells::run_cell(timeout, f))
}

/// Table II — equivalence checking of *bug-free* kernels.
///
/// Columns follow the paper: non-parameterized at n = 4, 8, 16(+C.),
/// 32(+C.), then parameterized −C. and +C. `quick` limits the grid to the
/// cheap rows/columns (for `cargo bench` runs on small machines).
pub fn table2_rows(timeout: Duration, quick: bool) -> Vec<TableRow> {
    let mut rows = Vec::new();
    let transpose_bits: &[u32] = if quick { &[8, 16] } else { &[8, 16, 32] };
    for &bits in transpose_bits {
        let mut cells_row = vec![
            cell("n=4", timeout, || cells::transpose_nonparam(bits, 4, false, timeout)),
            cell("n=8", timeout, || cells::transpose_nonparam(bits, 8, false, timeout)),
            cell("n=16(+C.)", timeout, || cells::transpose_nonparam(bits, 16, true, timeout)),
        ];
        if !quick {
            cells_row
                .push(cell("n=32(+C.)", timeout, || cells::transpose_nonparam(bits, 32, true, timeout)));
        }
        cells_row.push(cell("param -C.", timeout, || cells::transpose_param(bits, false, timeout)));
        cells_row.push(cell("param +C.", timeout, || cells::transpose_param(bits, true, timeout)));
        rows.push(TableRow { kernel: format!("Transpose ({bits}b)"), cells: cells_row });
    }
    let reduction_bits: &[u32] = &[8, 12];
    for &bits in reduction_bits {
        let mut cells_row = vec![
            cell("n=4", timeout, || cells::reduction_nonparam(bits, 4, timeout)),
            cell("n=8", timeout, || cells::reduction_nonparam(bits, 8, timeout)),
        ];
        if !quick {
            cells_row.push(cell("n=16", timeout, || cells::reduction_nonparam(bits, 16, timeout)));
        }
        cells_row.push(cell("param -C.", timeout, || cells::reduction_param(bits, false, timeout)));
        cells_row.push(cell("param +C.", timeout, || cells::reduction_param(bits, true, timeout)));
        rows.push(TableRow { kernel: format!("Reduction ({bits}b)"), cells: cells_row });
    }
    rows
}

/// Table III — equivalence checking of *buggy* kernel versions.
pub fn table3_rows(timeout: Duration, quick: bool) -> Vec<TableRow> {
    let mut rows = Vec::new();
    let transpose_bits: &[u32] = if quick { &[16] } else { &[16, 32] };
    for &bits in transpose_bits {
        rows.push(TableRow {
            kernel: format!("Transpose ({bits}b)"),
            cells: vec![
                cell("n=4", timeout, || cells::transpose_buggy_nonparam(bits, 4, timeout)),
                cell("n=8", timeout, || cells::transpose_buggy_nonparam(bits, 8, timeout)),
                cell("n=16", timeout, || cells::transpose_buggy_nonparam(bits, 16, timeout)),
                cell("param", timeout, || cells::transpose_buggy_param(bits, timeout)),
            ],
        });
    }
    let reduction_bits: &[u32] = if quick { &[8] } else { &[8, 16, 32] };
    for &bits in reduction_bits {
        rows.push(TableRow {
            kernel: format!("Reduction ({bits}b)"),
            cells: vec![
                cell("n=4", timeout, || cells::reduction_buggy_nonparam(bits, 4, timeout)),
                cell("n=8", timeout, || cells::reduction_buggy_nonparam(bits, 8, timeout)),
                cell("n=16", timeout, || cells::reduction_buggy_nonparam(bits, 16, timeout)),
                cell("param", timeout, || cells::reduction_buggy_param(bits, timeout)),
            ],
        });
    }
    rows
}

/// Render rows as fixed-width text in the paper's layout, re-printing the
/// header whenever the column set changes (the transpose and reduction
/// sub-tables have different n columns, as in the paper). Bug-expected
/// tables (Table III) read `s*` as "bug found in s seconds".
pub fn render_rows(title: &str, rows: &[TableRow]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let mut last_header: Option<Vec<String>> = None;
    for row in rows {
        let header: Vec<String> = row.cells.iter().map(|(c, _)| c.clone()).collect();
        if last_header.as_ref() != Some(&header) {
            out.push_str(&format!("{:<18}", "Kernel"));
            for c in &header {
                out.push_str(&format!("{c:>14}"));
            }
            out.push('\n');
            out.push_str(&"-".repeat(18 + 14 * header.len()));
            out.push('\n');
            last_header = Some(header);
        }
        out.push_str(&format!("{:<18}", row.kernel));
        for (_, o) in &row.cells {
            out.push_str(&format!("{:>14}", o.to_string()));
        }
        out.push('\n');
    }
    out
}

/// Scaling experiment: the non-parameterized blow-up in n, against the
/// constant-size parameterized check — the quantitative form of the paper's
/// "PUG explodes in complexity when confronted with a growing number of
/// threads" / "GKLEE … exceeding resources at about 2K threads". Run at 16
/// bits where blocks up to 128 threads stay wrap-free.
pub fn scaling_rows(timeout: Duration) -> Vec<TableRow> {
    vec![
        // v0 vs v2: structurally different reduction trees — the solver must
        // prove the sums equal, with cost growing steeply in n.
        TableRow {
            kernel: "Reduce v0/v2 (8b)".into(),
            cells: vec![
                cell("n=4", timeout, || cells::reduction_v2_nonparam(8, 4, timeout)),
                cell("n=8", timeout, || cells::reduction_v2_nonparam(8, 8, timeout)),
                cell("n=16", timeout, || cells::reduction_v2_nonparam(8, 16, timeout)),
                cell("param v0/v1", timeout, || cells::reduction_param(8, false, timeout)),
            ],
        },
        // Transpose with *symbolic* matrix sizes: store-chain resolution
        // cannot fold the addresses, so the chain depth (= n) hits the solver.
        TableRow {
            kernel: "Transpose -C (8b)".into(),
            cells: vec![
                cell("n=4", timeout, || cells::transpose_nonparam(8, 4, false, timeout)),
                cell("n=16", timeout, || cells::transpose_nonparam(8, 16, false, timeout)),
                cell("n=64", timeout, || cells::transpose_nonparam(8, 64, false, timeout)),
                cell("n=144", timeout, || cells::transpose_nonparam(8, 144, false, timeout)),
                cell("param -C.", timeout, || cells::transpose_param(8, false, timeout)),
            ],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_cheapest_cells() {
        // One cheap cell per family keeps the harness wired end-to-end.
        let t = Duration::from_secs(60);
        let a = cells::transpose_nonparam(8, 4, true, t);
        assert!(matches!(a, Outcome::Verified(_)), "transpose n=4: {a}");
        let b = cells::reduction_param(8, false, t);
        assert!(matches!(b, Outcome::Verified(_)), "reduction param: {b}");
        let c = cells::transpose_buggy_param(8, t);
        assert!(matches!(c, Outcome::Starred(_)), "buggy transpose: {c}");
    }

    #[test]
    fn rendering_layout() {
        let rows = vec![TableRow {
            kernel: "Demo".into(),
            cells: vec![
                ("n=4".into(), Outcome::Verified(Duration::from_millis(120))),
                ("param".into(), Outcome::Timeout),
            ],
        }];
        let s = render_rows("Table X", &rows);
        assert!(s.contains("Demo"));
        assert!(s.contains("0.12"));
        assert!(s.contains("T.O"));
    }

    #[test]
    fn cell_boundary_catches_panics() {
        let o = cells::run_cell(Duration::from_secs(5), || panic!("seeded cell panic"));
        assert_eq!(o.to_string(), "CRASH");
        assert!(matches!(o, Outcome::Crash(m) if m.contains("seeded cell panic")));
    }

    #[test]
    fn block_mapping_matches_paper() {
        assert_eq!(cells::transpose_block(4), (2, 2));
        assert_eq!(cells::transpose_block(8), (4, 2)); // non-square → `*`
        assert_eq!(cells::transpose_block(16), (4, 4));
        assert_eq!(cells::transpose_block(32), (8, 4)); // non-square → `*`
    }
}
