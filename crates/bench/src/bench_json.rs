//! Machine-readable incremental-vs-one-shot benchmark (`--bench-json`).
//!
//! Each row is a verification *scenario* — one or more `check_equivalence_param`
//! phases over a kernel pair, modelling how the resilient runner and the
//! portfolio actually issue obligations. Ladder rows run the degradation
//! ladder's FastBugHunt screen followed by a full proof: the two phases
//! overlap on every value obligation, which is exactly the duplication the
//! cross-rung [`QueryCache`] exists to eliminate. Single-phase rows measure
//! the raw session against the one-shot path with no obligation overlap
//! (including rows where the persistent session is *slower* — easy queries
//! pay the session's larger live CNF without earning anything back; the
//! grid keeps them for honesty).
//!
//! Every scenario runs three times: once through the persistent
//! [`pug_smt::SolveSession`] backend with a shared per-row [`QueryCache`]
//! (`CheckOptions::default()`, what the runner/portfolio entry points use),
//! once through the one-shot `check_detailed` path
//! (`CheckOptions::one_shot()`, no cache), and once incrementally with the
//! intra-rung obligation pool (`with_obligation_parallelism(4)`) — the
//! `obl_par` object, with a `pool` sibling recording sessions forked,
//! learnt-exchange traffic and per-shard cache hits. Per-stage timings
//! (reduce / blast / solve), cache hit rates and clause reuse go out as
//! JSON so the repo has a perf trajectory later PRs can diff. Phase-for-
//! phase verdict agreement between the three modes is the correctness
//! smoke: the caller exits non-zero when any row diverges.
//!
//! A second, smaller grid (`rung_rows`) measures what the generalized
//! (Presburger) quantifier elimination buys: each pair runs through the
//! resilient runner's degradation ladder with the elimination on and off,
//! and the `rows_rung_improved` headline counts the rows whose answering
//! rung got strictly stronger (e.g. a fully parameterized `Param` proof
//! instead of a `NonParam(n=4)` fallback) while the verdict stayed
//! identical. The caller gates on that count staying ≥ 1.

use pugpara::equiv::{check_equivalence_param, CheckOptions, Mode, Report};
use pugpara::runner::{run_resilient, Rung, RunnerOptions};
use pugpara::{KernelUnit, QueryCache, Soundness, Verdict};
use pug_ir::GpuConfig;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Options factory handed to a row: yields fresh, identically-configured
/// [`CheckOptions`] for each phase of the scenario (mode set per phase;
/// incremental/one-shot and the shared cache fixed per run).
type MkOpts<'a> = &'a dyn Fn(Mode) -> CheckOptions;

/// A scenario body: runs its phases with options from the factory and
/// returns one report per phase (`None` = the check errored).
type RowRun = Box<dyn Fn(MkOpts) -> Vec<Option<Report>>>;

/// One benchmark row: a named scenario returning one report per phase.
struct RowSpec {
    name: &'static str,
    run: RowRun,
}

fn load(src: &str) -> KernelUnit {
    KernelUnit::load(src).expect("corpus parses")
}

/// FastBugHunt screen, then a full proof — the runner's ladder order. The
/// prove phase re-issues every value obligation the hunt already
/// discharged; with the shared cache those come back as hits.
fn ladder(
    src: &'static str,
    tgt: &'static str,
    cfg: GpuConfig,
    conc: &'static [(&'static str, u64)],
) -> RowRun {
    Box::new(move |mk| {
        let src = load(src);
        let tgt = load(tgt);
        let with_conc = |mut o: CheckOptions| {
            for &(name, val) in conc {
                o = o.concretized(name, val);
            }
            o
        };
        let hunt =
            check_equivalence_param(&src, &tgt, &cfg, &with_conc(mk(Mode::FastBugHunt))).ok();
        let prove = check_equivalence_param(&src, &tgt, &cfg, &with_conc(mk(Mode::Prove))).ok();
        vec![hunt, prove]
    })
}

fn rows(quick: bool) -> Vec<RowSpec> {
    let mut rows: Vec<RowSpec> = Vec::new();
    if !quick {
        // The heavyweight row: height stays symbolic, so the hunt's value
        // query is a hard multi-second search the prove phase gets for free.
        rows.push(RowSpec {
            name: "transpose+W/hunt+prove/8b",
            run: ladder(
                pug_kernels::transpose::NAIVE,
                pug_kernels::transpose::OPTIMIZED,
                GpuConfig::symbolic_2d(8),
                &[("width", 16)],
            ),
        });
    }
    rows.push(RowSpec {
        name: "transpose+C/hunt+prove/12b",
        run: ladder(
            pug_kernels::transpose::NAIVE,
            pug_kernels::transpose::OPTIMIZED,
            GpuConfig::symbolic_2d(12),
            &[("width", 16), ("height", 16)],
        ),
    });
    rows.push(RowSpec {
        name: "transpose-unconstrained/hunt+prove/8b",
        run: ladder(
            pug_kernels::transpose::NAIVE,
            pug_kernels::transpose::OPTIMIZED_UNCONSTRAINED,
            GpuConfig::symbolic_2d(8),
            &[],
        ),
    });
    rows.push(RowSpec {
        name: "scalar_product/hunt+prove/8b",
        run: ladder(
            pug_kernels::scalar_product::KERNEL,
            pug_kernels::scalar_product::KERNEL,
            GpuConfig::symbolic_1d(8),
            &[],
        ),
    });
    // Single-phase rows: no obligation overlap, so these measure the bare
    // session (easy many-query rows are where it is at its weakest).
    rows.push(RowSpec {
        name: "reduction/param/12b",
        run: Box::new(|mk| {
            let bound = pug_kernels::reduction::safe_block_bound(12);
            let v0 = load(&pug_kernels::reduction::v0_bounded(bound));
            let v1 = load(&pug_kernels::reduction::v1_bounded(bound));
            let cfg = GpuConfig::symbolic_1d(12);
            vec![check_equivalence_param(&v0, &v1, &cfg, &mk(Mode::Prove)).ok()]
        }),
    });
    rows.push(RowSpec {
        name: "reduction-buggy/param/12b",
        run: Box::new(|mk| {
            let bound = pug_kernels::reduction::safe_block_bound(12);
            let v0 = load(&pug_kernels::reduction::v0_bounded(bound));
            let buggy = load(&pug_kernels::reduction::buggy_index_bounded(bound));
            let cfg = GpuConfig::symbolic_1d(12);
            vec![check_equivalence_param(&v0, &buggy, &cfg, &mk(Mode::Prove)).ok()]
        }),
    });
    rows
}

/// One rung-improvement row: a kernel pair pushed through the resilient
/// runner's degradation ladder twice — once with the generalized
/// (Presburger) quantifier elimination on (the default) and once with
/// [`RunnerOptions::no_generalized_qelim`] — comparing which rung answers.
/// An *improved* row is one where the verdicts agree but the elimination
/// lets a stronger rung answer (e.g. `Param` instead of `NonParam(n=4)`),
/// i.e. the proof got strictly more general at no soundness cost.
struct RungSpec {
    name: &'static str,
    src: &'static str,
    tgt: &'static str,
    cfg: GpuConfig,
}

fn rung_rows() -> Vec<RungSpec> {
    vec![
        // The symbolic-stride loop pair: without the generalized
        // elimination the Param rung fails (residual ∀-formula dropped)
        // and the ladder falls back to a concrete n; with it the loop's
        // write coverage becomes a stride-membership fact and the fully
        // parameterized rung answers.
        RungSpec {
            name: "grid-stride/rung/8b",
            src: pug_kernels::stride::GRID_STRIDE,
            tgt: pug_kernels::stride::GRID_STRIDE_REASSOC,
            cfg: GpuConfig::symbolic_1d(8),
        },
        // Control row: already answered by Param either way — the
        // elimination must not perturb pairs that never needed it.
        RungSpec {
            name: "scalar_product/rung/8b",
            src: pug_kernels::scalar_product::KERNEL,
            tgt: pug_kernels::scalar_product::KERNEL,
            cfg: GpuConfig::symbolic_1d(8),
        },
    ]
}

/// Ladder position of the answering rung: lower is stronger (closer to
/// the fully parameterized proof). `None` (no rung answered) ranks last.
fn rung_rank(r: Option<&Rung>) -> u8 {
    match r {
        Some(Rung::Param) => 0,
        Some(Rung::ParamConcretized) => 1,
        Some(Rung::NonParam { .. }) => 2,
        Some(Rung::FastBugHunt) => 3,
        None => 4,
    }
}

/// Aggregated metrics of one mode's run of one row (all phases).
#[derive(Default)]
struct ModeMetrics {
    /// Per-phase verdict classes joined with `+`, e.g. `clean+verified`.
    verdict: String,
    wall: Duration,
    solver: Duration,
    reduce: Duration,
    blast: Duration,
    solve: Duration,
    queries: usize,
    cached_queries: usize,
    /// Obligations the canonicalization pass collapsed to `⊥` — valid
    /// with zero SAT calls and zero cache traffic.
    discharged_by_rewrite: usize,
    conflicts: u64,
    clauses_reused: usize,
    cache_hits: usize,
    cache_misses: usize,
    vars_eliminated: u64,
    clauses_subsumed: u64,
    clauses_vivified: u64,
    gates_hashconsed: u64,
}

fn verdict_class(v: Option<&Verdict>) -> &'static str {
    match v {
        Some(Verdict::Verified(Soundness::Sound)) => "verified",
        Some(Verdict::Verified(_)) => "clean",
        Some(Verdict::Bug(_)) => "bug",
        Some(Verdict::Timeout) => "timeout",
        None => "error",
    }
}

/// Pool-engagement numbers of one pooled run of one row (all phases),
/// harvested from a live [`MetricsRegistry`] and the shared cache's shard
/// counters.
#[derive(Default)]
struct PoolMetrics {
    sessions: u64,
    obligations_parallel: u64,
    obligations_fallback: u64,
    learnts_exchanged: u64,
    learnts_imported: u64,
    shard_hits: Vec<u64>,
    cache_contended: u64,
}

fn run_mode(spec: &RowSpec, timeout: Duration, incremental: bool) -> ModeMetrics {
    run_mode_pooled(spec, timeout, incremental, 0).0
}

/// Run a row with an explicit obligation-pool width (`0` = plain
/// sequential dispatch) and collect the pool counters alongside the usual
/// per-mode metrics.
fn run_mode_pooled(
    spec: &RowSpec,
    timeout: Duration,
    incremental: bool,
    pool: usize,
) -> (ModeMetrics, PoolMetrics) {
    let cache = incremental.then(QueryCache::new);
    let registry = (pool > 0).then(pug_obs::MetricsRegistry::new);
    let mk = |mode: Mode| {
        let mut o = CheckOptions::with_timeout(timeout);
        o.mode = mode;
        if !incremental {
            o = o.one_shot();
        }
        if let Some(c) = &cache {
            o = o.with_query_cache(c.clone());
        }
        if pool > 0 {
            o = o.with_obligation_parallelism(pool);
        }
        if let Some(r) = &registry {
            o = o.with_metrics(r.clone());
        }
        o
    };
    let started = Instant::now();
    let reports = (spec.run)(&mk);
    let mut m = ModeMetrics { wall: started.elapsed(), ..ModeMetrics::default() };
    for (i, report) in reports.iter().enumerate() {
        if i > 0 {
            m.verdict.push('+');
        }
        m.verdict.push_str(verdict_class(report.as_ref().map(|r| &r.verdict)));
        if let Some(r) = report {
            m.solver += r.solver_time();
            m.queries += r.queries.len();
            for q in &r.queries {
                m.reduce += q.stats.reduce_time;
                m.blast += q.stats.blast_time;
                m.solve += q.stats.solve_time;
                m.conflicts += q.stats.sat.conflicts;
                m.clauses_reused += q.stats.clauses_reused;
                m.vars_eliminated += q.stats.sat.vars_eliminated;
                m.clauses_subsumed += q.stats.sat.clauses_subsumed;
                m.clauses_vivified += q.stats.sat.clauses_vivified;
                m.gates_hashconsed += q.stats.gates_hashconsed;
                if q.stats.cached {
                    m.cached_queries += 1;
                }
                if q.stats.discharged_by_rewrite {
                    m.discharged_by_rewrite += 1;
                }
            }
        }
    }
    if let Some(c) = &cache {
        m.cache_hits = c.hits();
        m.cache_misses = c.misses();
    }
    let mut p = PoolMetrics::default();
    if let Some(r) = &registry {
        let snap = r.snapshot();
        p.sessions = snap.gauge("pool.sessions").unwrap_or(0);
        p.obligations_parallel = snap.counter("obligations.parallel");
        p.obligations_fallback = snap.counter("obligations.fallback");
        p.learnts_exchanged = snap.counter("learnts.exchanged");
        p.learnts_imported = snap.counter("learnts.imported");
    }
    if pool > 0 {
        if let Some(c) = &cache {
            for s in c.shard_stats() {
                p.shard_hits.push(s.hits);
                p.cache_contended += s.contended;
            }
        }
    }
    (m, p)
}

fn json_mode(out: &mut String, key: &str, m: &ModeMetrics) {
    let _ = write!(
        out,
        "    \"{key}\": {{\"verdict\": \"{}\", \"wall_secs\": {:.3}, \
         \"solver_secs\": {:.3}, \"reduce_secs\": {:.3}, \"blast_secs\": {:.3}, \
         \"solve_secs\": {:.3}, \"queries\": {}, \"cached_queries\": {}, \
         \"discharged_by_rewrite\": {}, \
         \"conflicts\": {}, \"clauses_reused\": {}, \"cache_hits\": {}, \
         \"cache_misses\": {}, \"vars_eliminated\": {}, \"clauses_subsumed\": {}, \
         \"clauses_vivified\": {}, \"gates_hashconsed\": {}}}",
        m.verdict,
        m.wall.as_secs_f64(),
        m.solver.as_secs_f64(),
        m.reduce.as_secs_f64(),
        m.blast.as_secs_f64(),
        m.solve.as_secs_f64(),
        m.queries,
        m.cached_queries,
        m.discharged_by_rewrite,
        m.conflicts,
        m.clauses_reused,
        m.cache_hits,
        m.cache_misses,
        m.vars_eliminated,
        m.clauses_subsumed,
        m.clauses_vivified,
        m.gates_hashconsed,
    );
}

/// The pool-engagement object emitted next to `obl_par`: how wide the
/// obligation pool actually got, exchange traffic, and per-shard cache
/// hits (only shards that saw traffic, as `[index, hits]` pairs, to keep
/// the document readable).
fn json_pool(out: &mut String, p: &PoolMetrics) {
    let shard_hits: Vec<String> = p
        .shard_hits
        .iter()
        .enumerate()
        .filter(|(_, h)| **h > 0)
        .map(|(i, h)| format!("[{i}, {h}]"))
        .collect();
    let _ = write!(
        out,
        "    \"pool\": {{\"sessions\": {}, \"obligations_parallel\": {}, \
         \"obligations_fallback\": {}, \"learnts_exchanged\": {}, \
         \"learnts_imported\": {}, \"cache_contended\": {}, \
         \"shard_hits\": [{}]}}",
        p.sessions,
        p.obligations_parallel,
        p.obligations_fallback,
        p.learnts_exchanged,
        p.learnts_imported,
        p.cache_contended,
        shard_hits.join(", "),
    );
}

/// Result of the benchmark: the JSON document plus the headline numbers the
/// caller prints and gates on.
pub struct BenchJsonReport {
    pub json: String,
    pub rows_total: usize,
    pub rows_agreeing: usize,
    /// Rung-improvement rows whose answering rung got strictly stronger
    /// with the generalized quantifier elimination on, verdicts agreeing.
    pub rows_rung_improved: usize,
    /// Σ one-shot wall / Σ incremental wall across rows.
    pub aggregate_speedup: f64,
    /// Per-row (name, incremental wall seconds) — the numbers the baseline
    /// regression gate compares.
    pub row_walls: Vec<(String, f64)>,
}

/// Extract `(name, incremental wall_secs)` pairs from a bench JSON document
/// (this crate's own hand-rolled format; no JSON dependency needed).
fn parse_row_walls(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for chunk in json.split("\"name\": \"").skip(1) {
        let Some(name_end) = chunk.find('"') else { continue };
        let name = &chunk[..name_end];
        let Some(inc_at) = chunk.find("\"incremental\": {") else { continue };
        let rest = &chunk[inc_at..];
        let Some(wall_at) = rest.find("\"wall_secs\": ") else { continue };
        let num = &rest[wall_at + "\"wall_secs\": ".len()..];
        let end = num
            .find(|c: char| c != '.' && !c.is_ascii_digit())
            .unwrap_or(num.len());
        if let Ok(v) = num[..end].parse::<f64>() {
            out.push((name.to_string(), v));
        }
    }
    out
}

/// Gate a fresh run against a committed baseline document. A row regresses
/// when its incremental wall exceeds `old × 1.10 + 0.05 s` — the absolute
/// floor keeps millisecond-scale rows from tripping the gate on scheduler
/// noise. Rows absent from either side are reported but not gated (the
/// quick grid drops the heavyweight row). Returns a per-row summary, or the
/// list of regressions.
pub fn baseline_gate(report: &BenchJsonReport, baseline_json: &str) -> Result<String, String> {
    let old_rows = parse_row_walls(baseline_json);
    if old_rows.is_empty() {
        return Err("baseline has no parsable rows".into());
    }
    let mut summary = String::new();
    let mut regressions = Vec::new();
    let mut old_sum = 0.0f64;
    let mut new_sum = 0.0f64;
    for (name, new_wall) in &report.row_walls {
        let Some((_, old_wall)) = old_rows.iter().find(|(n, _)| n == name) else {
            let _ = writeln!(summary, "  {name:<40} {new_wall:>7.3}s (not in baseline)");
            continue;
        };
        old_sum += old_wall;
        new_sum += new_wall;
        let allowed = old_wall * 1.10 + 0.05;
        let speedup = old_wall / new_wall.max(1e-9);
        let _ = writeln!(
            summary,
            "  {name:<40} {old_wall:>7.3}s -> {new_wall:>7.3}s  ({speedup:.2}x)"
        );
        if *new_wall > allowed {
            regressions.push(format!(
                "{name}: {new_wall:.3}s vs baseline {old_wall:.3}s (allowed {allowed:.3}s)"
            ));
        }
    }
    let _ = writeln!(
        summary,
        "  {:<40} {old_sum:>7.3}s -> {new_sum:>7.3}s  ({:.2}x)",
        "aggregate (common rows)",
        old_sum / new_sum.max(1e-9)
    );
    if regressions.is_empty() {
        Ok(summary)
    } else {
        Err(format!("{}\nregressions:\n  {}", summary, regressions.join("\n  ")))
    }
}

/// Run the incremental-vs-one-shot grid and render it as JSON.
pub fn bench_json_report(timeout: Duration, quick: bool) -> BenchJsonReport {
    let specs = rows(quick);
    let mut json = String::from("{\n  \"bench\": \"pr10-generalized-qelim\",\n");
    let _ = writeln!(json, "  \"timeout_secs\": {},", timeout.as_secs());
    let _ = writeln!(json, "  \"quick\": {quick},");
    json.push_str("  \"rows\": [\n");

    let mut agree = 0usize;
    let mut inc_wall = Duration::ZERO;
    let mut one_wall = Duration::ZERO;
    let mut row_walls = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        eprintln!("bench-json: {} (incremental)", spec.name);
        let inc = run_mode(spec, timeout, true);
        eprintln!("bench-json: {} (one-shot)", spec.name);
        let one = run_mode(spec, timeout, false);
        eprintln!("bench-json: {} (obligation pool=4)", spec.name);
        let (par, pool) = run_mode_pooled(spec, timeout, true, 4);
        let rows_agree = inc.verdict == one.verdict && inc.verdict == par.verdict;
        if rows_agree {
            agree += 1;
        }
        row_walls.push((spec.name.to_string(), inc.wall.as_secs_f64()));
        inc_wall += inc.wall;
        one_wall += one.wall;
        let speedup = one.wall.as_secs_f64() / inc.wall.as_secs_f64().max(1e-9);

        json.push_str("  {\n");
        let _ = writeln!(json, "    \"name\": \"{}\",", spec.name);
        let _ = writeln!(json, "    \"agree\": {rows_agree},");
        let _ = writeln!(json, "    \"speedup\": {speedup:.2},");
        json_mode(&mut json, "incremental", &inc);
        json.push_str(",\n");
        json_mode(&mut json, "one_shot", &one);
        json.push_str(",\n");
        json_mode(&mut json, "obl_par", &par);
        json.push_str(",\n");
        json_pool(&mut json, &pool);
        json.push('\n');
        json.push_str(if i + 1 == specs.len() { "  }\n" } else { "  },\n" });
    }

    json.push_str("  ],\n");

    // Rung-improvement grid: the answering rung with the generalized
    // elimination on vs off. Verdict classes must agree on every row; the
    // headline counts the rows where agreement holds *and* the answering
    // rung got strictly stronger.
    json.push_str("  \"rung_rows\": [\n");
    let rung_specs = rung_rows();
    let mut rung_improved = 0usize;
    for (i, spec) in rung_specs.iter().enumerate() {
        eprintln!("bench-json: {} (qelim on/off)", spec.name);
        let src = load(spec.src);
        let tgt = load(spec.tgt);
        let started = Instant::now();
        let on = run_resilient(&src, &tgt, &spec.cfg, &RunnerOptions::default());
        let on_wall = started.elapsed();
        let started = Instant::now();
        let off =
            run_resilient(&src, &tgt, &spec.cfg, &RunnerOptions::default().no_generalized_qelim());
        let off_wall = started.elapsed();
        // Agreement compares the *outcome* (clean / bug / timeout), not the
        // soundness decoration: a stronger answering rung upgrades
        // `Verified(Downgraded)` to `Verified(Sound)`, and that upgrade is
        // precisely what an improved row reports — it must not read as a
        // divergence.
        let outcome = |v: &Verdict| match verdict_class(Some(v)) {
            "verified" | "clean" => "clean",
            other => other,
        };
        let agree = outcome(&on.verdict) == outcome(&off.verdict);
        let improved = agree
            && rung_rank(on.provenance.answered_by.as_ref())
                < rung_rank(off.provenance.answered_by.as_ref());
        if improved {
            rung_improved += 1;
        }
        let rung_str = |r: Option<&Rung>| match r {
            Some(r) => r.to_string(),
            None => "none".into(),
        };
        json.push_str("  {\n");
        let _ = writeln!(json, "    \"name\": \"{}\",", spec.name);
        let _ = writeln!(json, "    \"agree\": {agree},");
        let _ = writeln!(json, "    \"improved\": {improved},");
        let _ = writeln!(
            json,
            "    \"qelim_on\": {{\"rung\": \"{}\", \"verdict\": \"{}\", \"wall_secs\": {:.3}}},",
            rung_str(on.provenance.answered_by.as_ref()),
            verdict_class(Some(&on.verdict)),
            on_wall.as_secs_f64(),
        );
        let _ = writeln!(
            json,
            "    \"qelim_off\": {{\"rung\": \"{}\", \"verdict\": \"{}\", \"wall_secs\": {:.3}}}",
            rung_str(off.provenance.answered_by.as_ref()),
            verdict_class(Some(&off.verdict)),
            off_wall.as_secs_f64(),
        );
        json.push_str(if i + 1 == rung_specs.len() { "  }\n" } else { "  },\n" });
    }

    let aggregate = one_wall.as_secs_f64() / inc_wall.as_secs_f64().max(1e-9);
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"rows_total\": {},", specs.len());
    let _ = writeln!(json, "  \"rows_agreeing\": {agree},");
    let _ = writeln!(json, "  \"rows_rung_improved\": {rung_improved},");
    let _ = writeln!(json, "  \"aggregate_speedup\": {aggregate:.2}");
    json.push_str("}\n");

    BenchJsonReport {
        json,
        rows_total: specs.len(),
        rows_agreeing: agree,
        rows_rung_improved: rung_improved,
        aggregate_speedup: aggregate,
        row_walls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_agrees_and_is_valid_jsonish() {
        let r = bench_json_report(Duration::from_secs(60), true);
        assert_eq!(r.rows_agreeing, r.rows_total, "{}", r.json);
        // The elimination must buy at least one strictly stronger answering
        // rung (the grid-stride row) with the verdict preserved.
        assert!(r.rows_rung_improved >= 1, "{}", r.json);
        // Sanity on the hand-rolled JSON: balanced braces/brackets, no NaN.
        assert_eq!(r.json.matches('{').count(), r.json.matches('}').count());
        assert_eq!(r.json.matches('[').count(), r.json.matches(']').count());
        assert!(!r.json.contains("NaN"));
        // The document round-trips through the baseline parser, so a fresh
        // run can always be gated against this file once committed.
        let walls = parse_row_walls(&r.json);
        assert_eq!(walls.len(), r.row_walls.len());
        for ((n1, w1), (n2, w2)) in walls.iter().zip(r.row_walls.iter()) {
            assert_eq!(n1, n2);
            assert!((w1 - w2).abs() < 0.001, "{n1}: {w1} vs {w2}");
        }
    }

    #[test]
    fn baseline_gate_flags_regressions_with_absolute_floor() {
        let baseline = r#"{
  "rows": [
  {
    "name": "fast-row",
    "incremental": {"verdict": "verified", "wall_secs": 0.010},
    "one_shot": {"verdict": "verified", "wall_secs": 0.020}
  },
  {
    "name": "slow-row",
    "incremental": {"verdict": "verified", "wall_secs": 2.000},
    "one_shot": {"verdict": "verified", "wall_secs": 4.000}
  }
  ]
}"#;
        let mk = |walls: &[(&str, f64)]| BenchJsonReport {
            json: String::new(),
            rows_total: walls.len(),
            rows_agreeing: walls.len(),
            rows_rung_improved: 1,
            aggregate_speedup: 1.0,
            row_walls: walls.iter().map(|&(n, w)| (n.to_string(), w)).collect(),
        };
        // Small absolute slowdowns on millisecond rows stay under the floor.
        let ok = mk(&[("fast-row", 0.055), ("slow-row", 1.0)]);
        assert!(baseline_gate(&ok, baseline).is_ok());
        // A >10% (+floor) regression on a real row trips the gate.
        let bad = mk(&[("fast-row", 0.010), ("slow-row", 2.5)]);
        let err = baseline_gate(&bad, baseline).unwrap_err();
        assert!(err.contains("slow-row"), "{err}");
        // Rows missing from the baseline are reported, never gated.
        let new_row = mk(&[("brand-new", 9.9)]);
        assert!(baseline_gate(&new_row, baseline).is_ok());
    }
}
