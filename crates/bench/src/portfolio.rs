//! `repro-tables --portfolio` — sequential ladder vs portfolio racing.
//!
//! Runs the same degradation ladder twice per kernel pair: descending
//! sequentially ([`run_resilient`]) and racing all rungs concurrently
//! ([`run_portfolio`]), then reports verdict agreement and the wall-clock
//! ratio. The interesting rows are the ones where upper rungs *time out*:
//! there the sequential ladder pays the sum of every deadline on the way
//! down while racing pays only the longest one — deadline-bound waiting
//! overlaps even on a single core. Rows whose first rung answers
//! immediately show a ratio near 1: racing never wins by much when there
//! is nothing to overlap, it only has to not lose.
//!
//! The grid doubles as the portfolio acceptance harness: every row's
//! racing verdict must equal its sequential verdict (same rung, same
//! soundness level), and the batch demo shows [`verify_all`] returning
//! input-ordered results with per-task provenance.

use crate::cells::Outcome;
use pug_ir::GpuConfig;
use pug_sat::failpoints::{self, Fault};
use pugpara::portfolio::{run_portfolio, verify_all, PortfolioOptions, VerifyTask};
use pugpara::runner::{run_resilient, ResilientReport, RunnerOptions};
use pugpara::{KernelUnit, Soundness, Verdict};
use std::time::{Duration, Instant};

/// One kernel pair of the comparison grid, with its ladder policy. Shared
/// with the observability harness (`observe`), which explains and traces
/// the same corpus the racing comparison runs.
pub(crate) struct GridPair {
    pub(crate) name: &'static str,
    pub(crate) src: KernelUnit,
    pub(crate) tgt: KernelUnit,
    pub(crate) cfg: GpuConfig,
    pub(crate) opts: RunnerOptions,
    /// Equivalence rows are the speedup target; bug rows only have to
    /// agree on the verdict.
    pub(crate) equivalence: bool,
}

/// One finished comparison row.
pub struct RaceRow {
    pub name: String,
    pub equivalence: bool,
    pub seq: ResilientReport,
    pub seq_wall: Duration,
    pub race: ResilientReport,
    pub race_wall: Duration,
}

impl RaceRow {
    /// Verdict + soundness + answering rung all agree.
    pub fn verdicts_match(&self) -> bool {
        verdict_label(&self.seq) == verdict_label(&self.race)
            && self.seq.provenance.answered_by == self.race.provenance.answered_by
    }

    /// Sequential wall-clock over racing wall-clock.
    pub fn speedup(&self) -> f64 {
        self.seq_wall.as_secs_f64() / self.race_wall.as_secs_f64().max(1e-9)
    }
}

/// Short verdict label in the tables' notation: `ok` / `ok~` (verified,
/// under-approximate) / `s*` (bug, correctly reported) / `T.O`.
pub fn verdict_label(r: &ResilientReport) -> String {
    match &r.verdict {
        Verdict::Verified(Soundness::Sound) => "ok".into(),
        Verdict::Verified(Soundness::UnderApprox) => "ok~".into(),
        Verdict::Bug(_) => "s*".into(),
        Verdict::Timeout => "T.O".into(),
    }
}

/// The comparison grid. The two transpose −C. rows are the headline: the
/// fully-symbolic Param rung needs ~19 s at 8 bits (T.O beyond) and the
/// NonParam(144) fallback is far over any small deadline, so with a
/// per-rung deadline the sequential ladder burns `2 × rung_timeout`
/// before NonParam(4) answers — racing overlaps both waits. The remaining
/// rows answer on the first rung and pin the ratio floor near 1.
pub(crate) fn grid(quick: bool) -> Vec<GridPair> {
    let load = |s: &str| KernelUnit::load(s).expect("bundled kernel loads");
    let hard = |timeout_secs: u64| RunnerOptions {
        rung_timeout: Some(Duration::from_secs(timeout_secs)),
        fallback_ns: vec![144, 4],
        ..RunnerOptions::default()
    };
    let mut pairs = vec![GridPair {
        name: "Transpose -C. (8b)",
        src: load(pug_kernels::transpose::NAIVE),
        tgt: load(pug_kernels::transpose::OPTIMIZED),
        cfg: GpuConfig::symbolic_2d(8),
        opts: hard(6),
        equivalence: true,
    }];
    if !quick {
        pairs.push(GridPair {
            name: "Transpose -C. (16b)",
            src: load(pug_kernels::transpose::NAIVE),
            tgt: load(pug_kernels::transpose::OPTIMIZED),
            cfg: GpuConfig::symbolic_2d(16),
            opts: hard(4),
            equivalence: true,
        });
    }
    pairs.extend([
        GridPair {
            name: "Reduction v0/v1 (8b)",
            src: load(pug_kernels::reduction::V0),
            tgt: load(pug_kernels::reduction::V1),
            cfg: GpuConfig::symbolic_1d(8),
            opts: RunnerOptions::default(),
            equivalence: true,
        },
        GridPair {
            name: "Transpose bug (16b)",
            src: load(pug_kernels::transpose::NAIVE),
            tgt: load(pug_kernels::transpose::BUGGY_ADDR),
            cfg: GpuConfig::symbolic_2d(16),
            opts: RunnerOptions::default(),
            equivalence: false,
        },
        GridPair {
            name: "Reduction bug (8b)",
            src: load(pug_kernels::reduction::V0),
            tgt: load(pug_kernels::reduction::BUGGY_INDEX),
            cfg: GpuConfig::symbolic_1d(8),
            opts: RunnerOptions::default(),
            equivalence: false,
        },
        GridPair {
            name: "VectorAdd bug (8b)",
            src: load(pug_kernels::vector_add::KERNEL),
            tgt: load(pug_kernels::vector_add::BUGGY),
            cfg: GpuConfig::symbolic_1d(8),
            opts: RunnerOptions::default(),
            equivalence: false,
        },
    ]);
    pairs
}

/// Run every grid pair sequentially, then racing, under identical ladder
/// options.
pub fn portfolio_rows(quick: bool) -> Vec<RaceRow> {
    grid(quick)
        .into_iter()
        .map(|p| {
            let t0 = Instant::now();
            let seq = run_resilient(&p.src, &p.tgt, &p.cfg, &p.opts);
            let seq_wall = t0.elapsed();
            let t1 = Instant::now();
            let race =
                run_portfolio(&p.src, &p.tgt, &p.cfg, &PortfolioOptions::with_runner(p.opts));
            let race_wall = t1.elapsed();
            RaceRow { name: p.name.to_string(), equivalence: p.equivalence, seq, seq_wall, race, race_wall }
        })
        .collect()
}

/// Render the comparison table plus the two acceptance summary lines.
pub fn render_race_rows(rows: &[RaceRow]) -> String {
    let mut out = String::from(
        "Sequential ladder vs portfolio racing (same rungs, same budgets)\n",
    );
    out.push_str(&format!(
        "{:<22}{:>12}{:>12}{:>18}{:>10}{:>10}\n",
        "Pair", "seq (s)", "race (s)", "answered by", "speedup", "verdicts"
    ));
    out.push_str(&"-".repeat(22 + 12 + 12 + 18 + 10 + 10));
    out.push('\n');
    for r in rows {
        let answered = match r.race.provenance.answered_by {
            Some(rung) => rung.to_string(),
            None => "—".into(),
        };
        out.push_str(&format!(
            "{:<22}{:>8.2} {:<3}{:>8.2} {:<3}{:>18}{:>9.2}x{:>10}\n",
            r.name,
            r.seq_wall.as_secs_f64(),
            verdict_label(&r.seq),
            r.race_wall.as_secs_f64(),
            verdict_label(&r.race),
            answered,
            r.speedup(),
            if r.verdicts_match() { "match" } else { "DIVERGED" },
        ));
    }
    let matched = rows.iter().filter(|r| r.verdicts_match()).count();
    out.push_str(&format!("\nverdict agreement: {matched}/{} rows identical\n", rows.len()));
    let eq_speedups: Vec<f64> =
        rows.iter().filter(|r| r.equivalence).map(|r| r.speedup()).collect();
    if let Some(best) =
        eq_speedups.iter().cloned().reduce(f64::max)
    {
        out.push_str(&format!(
            "equivalence-row racing speedup: best {best:.2}x (deadline-bound rows), {} rows measured\n",
            eq_speedups.len()
        ));
    }
    out
}

/// Batch mode demo: one [`verify_all`] call over the headline pairs,
/// results in input order with per-task provenance and abandoned-rung cost.
pub fn batch_demo() -> String {
    let load = |s: &str| KernelUnit::load(s).expect("bundled kernel loads");
    let tasks = vec![
        VerifyTask::new(
            "transpose naive/opt",
            load(pug_kernels::transpose::NAIVE),
            load(pug_kernels::transpose::OPTIMIZED),
            GpuConfig::symbolic_2d(8),
        ),
        VerifyTask::new(
            "transpose naive/buggy",
            load(pug_kernels::transpose::NAIVE),
            load(pug_kernels::transpose::BUGGY_ADDR),
            GpuConfig::symbolic_2d(8),
        ),
        VerifyTask::new(
            "reduction v0/v1",
            load(pug_kernels::reduction::V0),
            load(pug_kernels::reduction::V1),
            GpuConfig::symbolic_1d(8),
        ),
        VerifyTask::new(
            "vector-add ok/buggy",
            load(pug_kernels::vector_add::KERNEL),
            load(pug_kernels::vector_add::BUGGY),
            GpuConfig::symbolic_1d(8),
        ),
    ];
    let t0 = Instant::now();
    let reports = verify_all(&tasks, &PortfolioOptions::default());
    let wall = t0.elapsed();
    let mut out = format!(
        "Batch portfolio: {} tasks over one worker pool, {:.2} s wall\n",
        tasks.len(),
        wall.as_secs_f64()
    );
    for (task, r) in tasks.iter().zip(&reports) {
        let answered = match r.provenance.answered_by {
            Some(rung) => rung.to_string(),
            None => "—".into(),
        };
        out.push_str(&format!(
            "  {:<24} {:<4} by {:<16} abandoned-rung cost {:.2} s\n",
            task.name,
            verdict_label(r),
            answered,
            r.provenance.abandoned_cost().as_secs_f64(),
        ));
    }
    out
}

/// Fault-injection smoke for racing mode: arm each injectable fault, run
/// the quick batch, and demand every task still resolves exactly as the
/// degradation contract says — crashes cost one rung, injected exhaustion
/// never spreads to siblings, and only a solver-wide unknown fault may
/// push a task to T.O. Returns the number of failed scenarios.
pub fn portfolio_fault_smoke() -> usize {
    let load = |s: &str| KernelUnit::load(s).expect("bundled kernel loads");
    let tasks = vec![
        VerifyTask::new(
            "transpose self",
            load(pug_kernels::transpose::NAIVE),
            load(pug_kernels::transpose::NAIVE),
            GpuConfig::symbolic_2d(8),
        ),
        VerifyTask::new(
            "transpose naive/buggy",
            load(pug_kernels::transpose::NAIVE),
            load(pug_kernels::transpose::BUGGY_ADDR),
            GpuConfig::symbolic_2d(8),
        ),
        VerifyTask::new(
            "reduction v0/buggy",
            load(pug_kernels::reduction::V0),
            load(pug_kernels::reduction::BUGGY_INDEX),
            GpuConfig::symbolic_1d(8),
        ),
    ];
    // `all_answer`: every task must still reach a definitive verdict
    // through some surviving rung. That bar only applies to *rung-level*
    // faults; a solver-wide fault (every rung runs the same solver) leaves
    // no rung able to conclude, and the contract degrades to "every task
    // still resolves, with the fault recorded per rung".
    let scenarios: &[(&str, Fault, bool)] = &[
        ("runner::param", Fault::Panic, true),
        ("runner::param", Fault::BudgetExhausted, true),
        ("runner::nonparam", Fault::BudgetExhausted, true),
        ("sat::solve", Fault::Panic, false),
        ("smt::check", Fault::SpuriousUnknown, false),
    ];
    std::panic::set_hook(Box::new(|_| {})); // injected panics render as outcomes
    let mut failures = 0;
    for &(site, fault, all_answer) in scenarios {
        failpoints::reset();
        failpoints::arm(site, fault);
        let reports = verify_all(&tasks, &PortfolioOptions::default());
        failpoints::reset();
        let answered = reports.iter().filter(|r| r.provenance.answered_by.is_some()).count();
        let ok = reports.len() == tasks.len() && (!all_answer || answered == tasks.len());
        println!(
            "fault {site} = {fault:?}: {}/{} tasks resolved, {answered} answered — {}",
            reports.len(),
            tasks.len(),
            if ok { "ok" } else { "UNEXPECTED" }
        );
        if !ok {
            for (task, r) in tasks.iter().zip(&reports) {
                println!("  {}:\n{}", task.name, r.provenance.render());
            }
            failures += 1;
        }
    }
    let _ = std::panic::take_hook();
    failures
}

/// Map a racing report onto the tables' per-cell [`Outcome`] notation (for
/// ad-hoc reuse of the table renderer).
pub fn outcome_of(r: &ResilientReport) -> Outcome {
    match &r.verdict {
        Verdict::Verified(_) => Outcome::Verified(r.elapsed),
        Verdict::Bug(_) => Outcome::Starred(r.elapsed),
        Verdict::Timeout => Outcome::Timeout,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_agrees_and_labels_render() {
        // One deadline-bound row + the cheap rows: verdicts must agree and
        // the renderer must carry the acceptance summary.
        let rows = portfolio_rows(true);
        assert!(rows.iter().all(|r| r.verdicts_match()), "{}", render_race_rows(&rows));
        let table = render_race_rows(&rows);
        assert!(table.contains("verdict agreement"));
        assert!(table.contains("match"));
        assert!(!table.contains("DIVERGED"));
    }

    #[test]
    fn batch_demo_reports_every_task() {
        let demo = batch_demo();
        assert!(demo.contains("transpose naive/opt"));
        assert!(demo.contains("vector-add ok/buggy"));
        assert!(demo.contains("s*"), "buggy pairs must report bugs:\n{demo}");
    }
}
