//! # pug-bench — the evaluation harness
//!
//! Regenerates the paper's evaluation (§V): **Table II** (equivalence
//! checking of bug-free SDK kernels, non-parameterized at n = 4…32 vs
//! parameterized, with and without concretization "+C.") and **Table III**
//! (the same comparison on seeded-bug versions). Every cell is one
//! [`cells::Outcome`]: SMT time on success, `*`-marked time when the
//! checker (correctly) reports non-equivalence, or `T.O` on budget
//! exhaustion — exactly the notation of the paper's tables.
//!
//! Absolute times differ from the paper's 2012 laptop + Z3; the *shape*
//! (parameterized ≪ non-parameterized, blow-up in n and bit width,
//! concretization rescuing hard instances) is the reproduction target. See
//! EXPERIMENTS.md for the side-by-side record.

pub mod bench_json;
pub mod cells;
pub mod observe;
pub mod portfolio;
pub mod tables;

pub use bench_json::{baseline_gate, bench_json_report, BenchJsonReport};
pub use cells::Outcome;
pub use observe::{explain_corpus, explain_rows, trace_smoke};
pub use portfolio::{batch_demo, portfolio_fault_smoke, portfolio_rows, render_race_rows, RaceRow};
pub use tables::{render_rows, scaling_rows, table2_rows, table3_rows, TableRow};
