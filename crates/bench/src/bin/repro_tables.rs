//! `repro-tables` — regenerate the paper's Tables II and III.
//!
//! ```text
//! repro-tables [--table 2|3|all] [--timeout SECS] [--quick]
//! ```
//!
//! Prints each table in the paper's layout: per-cell SMT time in seconds,
//! `s*` for (correctly) detected non-equivalence, `T.O` for budget
//! exhaustion. The paper used a 5-minute timeout on a 2012 laptop with Z3;
//! the default here is 60 s per cell with the built-in solver.

use pug_bench::{render_rows, table2_rows, table3_rows};
use std::time::Duration;

struct Args {
    table: String,
    timeout: Duration,
    quick: bool,
}

fn parse_args() -> Args {
    let mut args = Args { table: "all".into(), timeout: Duration::from_secs(60), quick: false };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--table" => args.table = it.next().unwrap_or_else(|| usage("missing table")),
            "--timeout" => {
                let v = it.next().unwrap_or_else(|| usage("missing timeout"));
                let secs: u64 = v.parse().unwrap_or_else(|_| usage("bad timeout"));
                args.timeout = Duration::from_secs(secs);
            }
            "--quick" => args.quick = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    args
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: repro-tables [--table 2|3|scaling|all] [--timeout SECS] [--quick]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn main() {
    let args = parse_args();
    println!(
        "PUGpara reproduction — per-cell SMT time (s); `s*` = non-equivalence \
         reported; T.O = over {}s budget\n",
        args.timeout.as_secs()
    );
    if args.table == "2" || args.table == "all" {
        let rows = table2_rows(args.timeout, args.quick);
        println!(
            "{}",
            render_rows("Table II — equivalence checking of bug-free SDK kernels", &rows)
        );
        println!(
            "(paper: Transpose n=8/32 are `*` — non-square blocks are not equivalent; \
             Reduction's generic method blows up on n; param columns finish fast)\n"
        );
    }
    if args.table == "scaling" || args.table == "all" {
        let rows = pug_bench::scaling_rows(args.timeout);
        println!(
            "{}",
            render_rows(
                "Scaling — non-parameterized blow-up in n vs constant parameterized check",
                &rows
            )
        );
        println!();
    }
    if args.table == "3" || args.table == "all" {
        let rows = table3_rows(args.timeout, args.quick);
        println!(
            "{}",
            render_rows("Table III — equivalence checking of buggy kernel versions", &rows)
        );
        println!(
            "(every cell should be `s*`: the seeded bug is found; the parameterized \
             column stays fast while the non-parameterized times grow with n)"
        );
    }
}
