//! `repro-tables` — regenerate the paper's Tables II and III.
//!
//! ```text
//! repro-tables [--table 2|3|all] [--timeout SECS] [--quick] [--fault-injection]
//! ```
//!
//! Prints each table in the paper's layout: per-cell SMT time in seconds,
//! `s*` for (correctly) detected non-equivalence, `T.O` for budget
//! exhaustion. The paper used a 5-minute timeout on a 2012 laptop with Z3;
//! the default here is 60 s per cell with the built-in solver.

use pug_bench::{render_rows, table2_rows, table3_rows, Outcome};
use pug_sat::failpoints::{self, Fault};
use std::time::Duration;

struct Args {
    table: String,
    timeout: Duration,
    quick: bool,
    fault_injection: bool,
    portfolio: bool,
    bench_json: Option<String>,
    baseline: Option<String>,
    trace: Option<String>,
    explain: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        table: "all".into(),
        timeout: Duration::from_secs(60),
        quick: false,
        fault_injection: false,
        portfolio: false,
        bench_json: None,
        baseline: None,
        trace: None,
        explain: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--table" => args.table = it.next().unwrap_or_else(|| usage("missing table")),
            "--timeout" => {
                let v = it.next().unwrap_or_else(|| usage("missing timeout"));
                let secs: u64 = v.parse().unwrap_or_else(|_| usage("bad timeout"));
                args.timeout = Duration::from_secs(secs);
            }
            "--quick" => args.quick = true,
            "--fault-injection" => args.fault_injection = true,
            "--portfolio" => args.portfolio = true,
            "--bench-json" => {
                args.bench_json = Some(it.next().unwrap_or_else(|| usage("missing path")))
            }
            "--baseline" => {
                args.baseline = Some(it.next().unwrap_or_else(|| usage("missing path")))
            }
            "--trace" => args.trace = Some(it.next().unwrap_or_else(|| usage("missing path"))),
            "--explain" => args.explain = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    args
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: repro-tables [--table 2|3|scaling|all] [--timeout SECS] [--quick] \
         [--fault-injection] [--portfolio] [--bench-json PATH] [--baseline PATH] \
         [--trace PATH] [--explain]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// Smoke-test the fault boundaries: arm each injectable fault in turn, run
/// a quick table grid, and demand that every cell still resolves — panics
/// as `CRASH`, injected exhaustion as `T.O`, the rest normally. Exits
/// non-zero if any grid comes back short.
fn fault_injection_smoke(timeout: Duration) {
    let scenarios: &[(&str, Fault)] = &[
        ("sat::solve", Fault::Panic),
        ("smt::check", Fault::SpuriousUnknown),
        ("bench::cell", Fault::BudgetExhausted),
    ];
    // Silence the default panic hook's backtrace spam: injected panics are
    // expected and rendered as CRASH cells.
    std::panic::set_hook(Box::new(|_| {}));
    let mut failures = 0;
    for &(site, fault) in scenarios {
        failpoints::reset();
        failpoints::arm(site, fault);
        let rows = table3_rows(timeout, true);
        failpoints::reset();
        let total: usize = rows.iter().map(|r| r.cells.len()).sum();
        let crashed = rows
            .iter()
            .flat_map(|r| &r.cells)
            .filter(|(_, o)| matches!(o, Outcome::Crash(_)))
            .count();
        let timed_out = rows
            .iter()
            .flat_map(|r| &r.cells)
            .filter(|(_, o)| matches!(o, Outcome::Timeout))
            .count();
        // Cells whose queries are discharged syntactically never reach the
        // faulted site, so demand the injected effect *somewhere* (and, for
        // the unconditional per-cell fault, everywhere) — the hard
        // requirement is that every cell resolved at all.
        let ok = match fault {
            Fault::Panic => crashed > 0,
            Fault::SpuriousUnknown => timed_out > 0 && crashed == 0,
            Fault::BudgetExhausted => timed_out == total && crashed == 0,
        };
        println!(
            "fault {site} = {fault:?}: {total} cells completed \
             ({crashed} CRASH, {timed_out} T.O) — {}",
            if ok { "ok" } else { "UNEXPECTED" }
        );
        if !ok {
            println!("{}", render_rows("grid under fault", &rows));
            failures += 1;
        }
    }
    let _ = std::panic::take_hook();
    if failures > 0 {
        eprintln!("fault-injection smoke: {failures} scenario(s) failed");
        std::process::exit(1);
    }
    println!("fault-injection smoke: all faults survived, every cell resolved");
}

fn main() {
    let args = parse_args();
    if let Some(path) = &args.trace {
        // Trace smoke: one fully traced verification, JSONL export,
        // re-parse, structural validation. CI fails on a broken trace.
        match pug_bench::trace_smoke(path) {
            Ok(summary) => println!("{summary}"),
            Err(e) => {
                eprintln!("trace smoke: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if args.explain {
        // Verdict narratives for the racing grid's corpus pairs.
        print!("{}", pug_bench::explain_rows(args.quick));
        return;
    }
    if let Some(path) = &args.bench_json {
        // Incremental-vs-one-shot grid: per-stage timings + cache stats as
        // JSON; verdict divergence between the two solving modes is a
        // correctness failure (this doubles as the CI perf smoke).
        let report = pug_bench::bench_json_report(args.timeout, args.quick);
        if let Err(e) = std::fs::write(path, &report.json) {
            eprintln!("bench-json: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "bench-json: {} rows, {} agreeing, {} rung-improved, aggregate speedup {:.2}x -> {path}",
            report.rows_total,
            report.rows_agreeing,
            report.rows_rung_improved,
            report.aggregate_speedup
        );
        if report.rows_agreeing != report.rows_total {
            eprintln!(
                "bench-json: verdict divergence between incremental and one-shot paths"
            );
            std::process::exit(1);
        }
        if report.rows_rung_improved == 0 {
            // The generalized quantifier elimination must buy at least one
            // strictly stronger answering rung with the verdict preserved.
            eprintln!("bench-json: no rung-improvement row — generalized qelim earned nothing");
            std::process::exit(1);
        }
        if let Some(baseline_path) = &args.baseline {
            // Perf-regression gate: each row's incremental wall must stay
            // within 10% (+50 ms absolute floor) of the committed baseline.
            let baseline = match std::fs::read_to_string(baseline_path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("bench-json: cannot read baseline {baseline_path}: {e}");
                    std::process::exit(1);
                }
            };
            match pug_bench::baseline_gate(&report, &baseline) {
                Ok(summary) => {
                    println!("bench-json: baseline {baseline_path}");
                    print!("{summary}");
                }
                Err(detail) => {
                    eprintln!("bench-json: perf regression vs {baseline_path}\n{detail}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }
    if args.portfolio {
        if args.fault_injection {
            let failures = pug_bench::portfolio_fault_smoke();
            if failures > 0 {
                eprintln!("portfolio fault-injection smoke: {failures} scenario(s) failed");
                std::process::exit(1);
            }
            println!("portfolio fault-injection smoke: all faults survived, every task resolved");
            return;
        }
        let rows = pug_bench::portfolio_rows(args.quick);
        println!("{}", pug_bench::render_race_rows(&rows));
        println!("{}", pug_bench::batch_demo());
        if rows.iter().any(|r| !r.verdicts_match()) {
            eprintln!("portfolio: racing diverged from the sequential ladder");
            std::process::exit(1);
        }
        return;
    }
    if args.fault_injection {
        fault_injection_smoke(args.timeout);
        return;
    }
    println!(
        "PUGpara reproduction — per-cell SMT time (s); `s*` = non-equivalence \
         reported; T.O = over {}s budget\n",
        args.timeout.as_secs()
    );
    if args.table == "2" || args.table == "all" {
        let rows = table2_rows(args.timeout, args.quick);
        println!(
            "{}",
            render_rows("Table II — equivalence checking of bug-free SDK kernels", &rows)
        );
        println!(
            "(paper: Transpose n=8/32 are `*` — non-square blocks are not equivalent; \
             Reduction's generic method blows up on n; param columns finish fast)\n"
        );
    }
    if args.table == "scaling" || args.table == "all" {
        let rows = pug_bench::scaling_rows(args.timeout);
        println!(
            "{}",
            render_rows(
                "Scaling — non-parameterized blow-up in n vs constant parameterized check",
                &rows
            )
        );
        println!();
    }
    if args.table == "3" || args.table == "all" {
        let rows = table3_rows(args.timeout, args.quick);
        println!(
            "{}",
            render_rows("Table III — equivalence checking of buggy kernel versions", &rows)
        );
        println!(
            "(every cell should be `s*`: the seeded bug is found; the parameterized \
             column stays fast while the non-parameterized times grow with n)"
        );
    }
}
