use pug_sat::{Budget, Lit, Solver, Var};
fn main() {
    for holes in 2..=5usize {
        let pigeons = holes + 1;
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> =
            (0..pigeons).map(|_| (0..holes).map(|_| s.new_var()).collect()).collect();
        for row in &p {
            let clause: Vec<Lit> = row.iter().map(|v| v.pos()).collect();
            s.add_clause(&clause);
        }
        #[allow(clippy::needless_range_loop)] // h/i/j symmetry reads better indexed
        for h in 0..holes {
            for i in 0..pigeons {
                for j in (i + 1)..pigeons {
                    s.add_clause(&[p[i][h].neg(), p[j][h].neg()]);
                }
            }
        }
        let r = s.solve(&Budget::unlimited());
        println!("PHP({pigeons},{holes}) = {:?} stats={:?}", r, s.stats());
    }
}
