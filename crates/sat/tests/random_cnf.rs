//! Differential testing of the CDCL solver against exhaustive enumeration on
//! random CNF instances, plus structured hard families.

use pug_sat::{Budget, Cnf, Lit, SolveResult, Solver, Var};
use pug_testutil::TestRng;

/// Exhaustively decide satisfiability of a small CNF.
fn brute_force(cnf: &Cnf) -> bool {
    assert!(cnf.num_vars <= 20);
    (0u32..1 << cnf.num_vars).any(|bits| {
        let assignment: Vec<bool> = (0..cnf.num_vars).map(|i| bits >> i & 1 == 1).collect();
        cnf.eval(&assignment)
    })
}

fn solve(cnf: &Cnf) -> SolveResult {
    let mut s = Solver::new();
    if !cnf.load(&mut s) {
        return SolveResult::Unsat;
    }
    let r = s.solve(&Budget::unlimited());
    if r == SolveResult::Sat {
        // Verify the model actually satisfies the formula.
        let assignment: Vec<bool> =
            (0..cnf.num_vars).map(|i| s.model_value(Var(i as u32))).collect();
        assert!(cnf.eval(&assignment), "solver returned a non-model");
    }
    r
}

fn random_cnf(rng: &mut TestRng, num_vars: usize, num_clauses: usize, width: usize) -> Cnf {
    let clauses = (0..num_clauses)
        .map(|_| {
            let len = rng.gen_range(1..=width);
            (0..len)
                .map(|_| Lit::new(Var(rng.gen_range(0..num_vars) as u32), rng.gen_bool(0.5)))
                .collect()
        })
        .collect();
    Cnf { num_vars, clauses }
}

#[test]
fn differential_random_3sat() {
    let mut rng = TestRng::seed_from_u64(0x5eed);
    for round in 0..500 {
        let nv = rng.gen_range(1..=10);
        let nc = rng.gen_range(1..=45);
        let cnf = random_cnf(&mut rng, nv, nc, 3);
        let expect = brute_force(&cnf);
        let got = solve(&cnf) == SolveResult::Sat;
        assert_eq!(got, expect, "round {round}: mismatch on\n{}", cnf.to_dimacs());
    }
}

#[test]
fn differential_wide_clauses() {
    let mut rng = TestRng::seed_from_u64(0xfeed);
    for round in 0..200 {
        let nv = rng.gen_range(2..=12);
        let nc = rng.gen_range(1..=60);
        let cnf = random_cnf(&mut rng, nv, nc, 6);
        let expect = brute_force(&cnf);
        let got = solve(&cnf) == SolveResult::Sat;
        assert_eq!(got, expect, "round {round}: mismatch on\n{}", cnf.to_dimacs());
    }
}

#[test]
fn incremental_assumptions_match_clause_addition() {
    // Solving F under assumption l must agree with solving F ∧ {l}.
    let mut rng = TestRng::seed_from_u64(0xabcd);
    for _ in 0..200 {
        let nv = rng.gen_range(2..=8);
        let nc = rng.gen_range(1..=30);
        let cnf = random_cnf(&mut rng, nv, nc, 3);
        let a = Lit::new(Var(rng.gen_range(0..nv) as u32), rng.gen_bool(0.5));

        let mut inc = Solver::new();
        let ok = cnf.load(&mut inc);
        let under_assumption = if ok {
            inc.solve_with(&[a], &Budget::unlimited())
        } else {
            SolveResult::Unsat
        };

        let mut mono = Cnf { num_vars: cnf.num_vars, clauses: cnf.clauses.clone() };
        mono.clauses.push(vec![a]);
        let with_clause = solve(&mono);
        assert_eq!(under_assumption, with_clause, "cnf:\n{}\nassumption {a:?}", cnf.to_dimacs());
    }
}

#[test]
fn solver_reuse_across_calls() {
    // The solver stays usable and consistent across many solve calls with
    // interleaved clause additions (the SMT layer relies on this).
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..8).map(|_| s.new_var()).collect();
    assert_eq!(s.solve(&Budget::unlimited()), SolveResult::Sat);
    s.add_clause(&[vars[0].pos(), vars[1].pos()]);
    assert_eq!(s.solve(&Budget::unlimited()), SolveResult::Sat);
    s.add_clause(&[vars[0].neg()]);
    assert_eq!(s.solve(&Budget::unlimited()), SolveResult::Sat);
    assert!(s.model_value(vars[1]));
    s.add_clause(&[vars[1].neg()]);
    assert_eq!(s.solve(&Budget::unlimited()), SolveResult::Unsat);
}

#[test]
fn pigeonhole_family_unsat() {
    for holes in 2..=5usize {
        let pigeons = holes + 1;
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> =
            (0..pigeons).map(|_| (0..holes).map(|_| s.new_var()).collect()).collect();
        for row in &p {
            let clause: Vec<Lit> = row.iter().map(|v| v.pos()).collect();
            s.add_clause(&clause);
        }
        #[allow(clippy::needless_range_loop)] // h/i/j symmetry reads better indexed
        for h in 0..holes {
            for i in 0..pigeons {
                for j in (i + 1)..pigeons {
                    s.add_clause(&[p[i][h].neg(), p[j][h].neg()]);
                }
            }
        }
        assert_eq!(s.solve(&Budget::unlimited()), SolveResult::Unsat, "PHP({pigeons},{holes})");
    }
}

/// The solver agrees with brute force on arbitrary small CNFs
/// (property-style: 64 generated cases, reproducible from the seed).
#[test]
fn prop_matches_brute_force() {
    let mut rng = TestRng::seed_from_u64(0x9e3779b9);
    for case in 0..64u32 {
        let nv = rng.gen_range(1usize..8);
        let nc = rng.gen_range(0usize..25);
        let clauses: Vec<Vec<Lit>> = (0..nc)
            .map(|_| {
                let len = rng.gen_range(1usize..4);
                (0..len)
                    .map(|_| Lit::new(Var(rng.gen_range(0u32..8) % nv as u32), rng.gen_bool(0.5)))
                    .collect()
            })
            .collect();
        let cnf = Cnf { num_vars: nv, clauses };
        assert_eq!(
            solve(&cnf) == SolveResult::Sat,
            brute_force(&cnf),
            "case {case}: mismatch on\n{}",
            cnf.to_dimacs()
        );
    }
}
