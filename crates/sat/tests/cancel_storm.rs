//! Cancel-storm tests for the hierarchical [`CancelToken`].
//!
//! The portfolio runner and the `pug-serve` daemon both lean on the same
//! contract: cancelling one child token never disturbs a sibling, while a
//! parent cancel reaches every descendant — including descendants created
//! *while* the cancel is in flight. These tests hammer that contract from
//! many threads at once; the unit tests in `budget.rs` cover the
//! single-threaded semantics.

use pug_sat::CancelToken;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

/// Many children cancelled concurrently while their siblings keep running:
/// every cancelled child must trip, every survivor must stay untripped,
/// and the parent must never see a cancellation.
#[test]
fn concurrent_child_cancels_leave_running_siblings_alone() {
    const CHILDREN: usize = 64;
    const ROUNDS: usize = 50;
    for _ in 0..ROUNDS {
        let parent = CancelToken::new();
        let children: Vec<CancelToken> = (0..CHILDREN).map(|_| parent.child()).collect();
        // Even-indexed children get cancelled, odd ones keep "running".
        let barrier = Arc::new(Barrier::new(CHILDREN / 2));
        let handles: Vec<_> = children
            .iter()
            .step_by(2)
            .map(|c| {
                let c = c.clone();
                let b = Arc::clone(&barrier);
                thread::spawn(move || {
                    b.wait(); // all cancels fire as simultaneously as possible
                    c.cancel();
                })
            })
            .collect();
        // Meanwhile the odd siblings poll like a solver inner loop would.
        let stop = Arc::new(AtomicBool::new(false));
        let pollers: Vec<_> = children
            .iter()
            .skip(1)
            .step_by(2)
            .map(|c| {
                let c = c.clone();
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut observed_trip = false;
                    while !stop.load(Ordering::Acquire) {
                        observed_trip |= c.is_cancelled();
                        std::hint::spin_loop();
                    }
                    observed_trip
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Release);
        for (i, p) in pollers.into_iter().enumerate() {
            assert!(
                !p.join().unwrap(),
                "running sibling {} observed a cancellation it never received",
                i * 2 + 1
            );
        }
        for (i, c) in children.iter().enumerate() {
            assert_eq!(c.is_cancelled(), i % 2 == 0, "child {i} in the wrong state");
        }
        assert!(!parent.is_cancelled(), "child cancels must never reach the parent");
    }
}

/// A parent cancel racing `child()` creation: no matter how the race
/// lands, a child created around the cancel instant must observe the trip
/// (the creating thread then keeps using the token — a lost cancellation
/// would hang a rung forever).
#[test]
fn parent_cancel_races_child_creation_without_losing_the_trip() {
    const SPAWNERS: usize = 8;
    const ROUNDS: usize = 200;
    for _ in 0..ROUNDS {
        let parent = CancelToken::new();
        let barrier = Arc::new(Barrier::new(SPAWNERS + 1));
        let spawners: Vec<_> = (0..SPAWNERS)
            .map(|_| {
                let parent = parent.clone();
                let b = Arc::clone(&barrier);
                thread::spawn(move || {
                    b.wait();
                    // Create a chain of descendants while the cancel fires.
                    let child = parent.child();
                    let grandchild = child.child();
                    (child, grandchild)
                })
            })
            .collect();
        let canceller = {
            let parent = parent.clone();
            let b = Arc::clone(&barrier);
            thread::spawn(move || {
                b.wait();
                parent.cancel();
            })
        };
        canceller.join().unwrap();
        for s in spawners {
            let (child, grandchild) = s.join().unwrap();
            // The cancel has definitely happened by now; every descendant,
            // whenever it was created relative to the cancel, must see it.
            assert!(child.is_cancelled(), "child created around the cancel lost the trip");
            assert!(grandchild.is_cancelled(), "grandchild lost an ancestor's trip");
        }
    }
}

/// Double (and N-way concurrent) cancel is idempotent: no state corruption,
/// no un-cancelling, and `reset` on a child cannot clear an ancestor trip.
#[test]
fn double_cancel_is_idempotent_under_contention() {
    let parent = CancelToken::new();
    let child = parent.child();
    let cancels = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..32)
        .map(|_| {
            let c = child.clone();
            let n = Arc::clone(&cancels);
            thread::spawn(move || {
                for _ in 0..1_000 {
                    c.cancel();
                    n.fetch_add(1, Ordering::Relaxed);
                    assert!(c.is_cancelled(), "a cancel can never be un-observed");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(cancels.load(Ordering::Relaxed), 32_000);
    assert!(child.is_cancelled());
    assert!(!parent.is_cancelled(), "32k child cancels must not leak upward");

    // Idempotence the other way: cancel the parent, then try to shake the
    // child loose with reset() — the ancestor trip must persist.
    parent.cancel();
    child.reset();
    assert!(child.is_cancelled(), "reset() must not clear an ancestor's cancellation");
    parent.cancel(); // double-cancel of an already-tripped parent: harmless
    assert!(parent.is_cancelled());
}

/// The daemon's shutdown shape: a root with many per-job children, each
/// with per-rung grandchildren, all polling from worker threads while the
/// root cancels once. Everything must stop promptly; nothing may require a
/// second cancel.
#[test]
fn root_cancel_stops_a_deep_running_tree_promptly() {
    const JOBS: usize = 24;
    const RUNGS: usize = 3;
    let root = CancelToken::new();
    let stopped = Arc::new(AtomicUsize::new(0));
    let ready = Arc::new(Barrier::new(JOBS * RUNGS + 1));
    let mut workers = Vec::new();
    for _ in 0..JOBS {
        let job = root.child();
        for _ in 0..RUNGS {
            let rung = job.child();
            let stopped = Arc::clone(&stopped);
            let ready = Arc::clone(&ready);
            workers.push(thread::spawn(move || {
                ready.wait();
                let t0 = Instant::now();
                // Simulated solver loop: poll at bit-blast granularity.
                while !rung.is_cancelled() {
                    if t0.elapsed() > Duration::from_secs(10) {
                        panic!("rung never observed the root cancellation");
                    }
                    std::hint::spin_loop();
                }
                stopped.fetch_add(1, Ordering::Release);
            }));
        }
    }
    ready.wait();
    root.cancel(); // exactly one cancel for the whole tree
    for w in workers {
        w.join().unwrap();
    }
    assert_eq!(stopped.load(Ordering::Acquire), JOBS * RUNGS);
}
