//! Resource-budget and cancellation behavior of the CDCL solver:
//! a tripped cancel token must surface as `Unknown` within a bounded
//! number of propagations, and the clause-database byte cap must stop
//! runs that would otherwise grow the learnt DB without bound.

use pug_sat::{Budget, CancelToken, Cnf, Lit, SolveResult, Solver, Var};
use pug_testutil::TestRng;
use std::time::Duration;

/// The solver polls the token every `CANCEL_POLL_INTERVAL` propagations;
/// tests allow this much slack plus one conflict's worth of work.
const POLL_SLACK: u64 = 64 + 16;

fn random_cnf(rng: &mut TestRng, num_vars: usize, num_clauses: usize) -> Cnf {
    let clauses = (0..num_clauses)
        .map(|_| {
            let len = rng.gen_range(1usize..=3);
            (0..len)
                .map(|_| Lit::new(Var(rng.gen_range(0..num_vars) as u32), rng.gen_bool(0.5)))
                .collect()
        })
        .collect();
    Cnf { num_vars, clauses }
}

/// An unsatisfiable pigeonhole instance: PHP(holes+1, holes). Hard for
/// resolution, so the solver reliably does real work — and grows a real
/// learnt-clause database — before concluding Unsat.
fn pigeonhole(holes: usize) -> Solver {
    let pigeons = holes + 1;
    let mut s = Solver::new();
    let p: Vec<Vec<Var>> =
        (0..pigeons).map(|_| (0..holes).map(|_| s.new_var()).collect()).collect();
    for row in &p {
        let clause: Vec<Lit> = row.iter().map(|v| v.pos()).collect();
        s.add_clause(&clause);
    }
    #[allow(clippy::needless_range_loop)] // h/i/j symmetry reads better indexed
    for h in 0..holes {
        for i in 0..pigeons {
            for j in (i + 1)..pigeons {
                s.add_clause(&[p[i][h].neg(), p[j][h].neg()]);
            }
        }
    }
    s
}

/// Property: whatever the instance, a pre-tripped token yields Unknown
/// after at most one poll interval of propagations.
#[test]
fn prop_tripped_token_bounds_propagations() {
    let mut rng = TestRng::seed_from_u64(0xcace1);
    for case in 0..64u32 {
        let nv = rng.gen_range(4usize..=16);
        let nc = rng.gen_range(4usize..=70);
        let cnf = random_cnf(&mut rng, nv, nc);
        let mut s = Solver::new();
        if !cnf.load(&mut s) {
            continue; // trivially unsat at load time
        }
        let token = CancelToken::new();
        token.cancel();
        let before = s.stats().propagations;
        let r = s.solve(&Budget::unlimited().and_cancel(token.clone()));
        let spent = s.stats().propagations - before;
        assert_eq!(r, SolveResult::Unknown, "case {case}: cancelled solve must be Unknown");
        assert!(
            spent <= POLL_SLACK,
            "case {case}: {spent} propagations after cancellation (poll bound {POLL_SLACK})"
        );

        // The token is cooperative state, not solver damage: clearing it
        // must let the same solver finish the same instance.
        token.reset();
        let r2 = s.solve(&Budget::unlimited());
        assert_ne!(r2, SolveResult::Unknown, "case {case}: solver must recover after reset");
    }
}

/// Tripping the token from another thread interrupts a long-running solve.
#[test]
fn cross_thread_cancellation_interrupts_solve() {
    let mut s = pigeonhole(9); // big enough to run for a while
    let token = CancelToken::new();
    let budget = Budget::unlimited().and_cancel(token.clone());
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        token.cancel();
    });
    let started = std::time::Instant::now();
    let r = s.solve(&budget);
    killer.join().unwrap();
    // Either the instance finished before the trigger (fast machine) or the
    // cancellation cut it short — but it must never run unboundedly.
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "solve did not yield after cross-thread cancel"
    );
    assert!(
        matches!(r, SolveResult::Unknown | SolveResult::Unsat),
        "unexpected result {r:?}"
    );
}

/// The clause-DB byte cap turns an expensive Unsat proof into Unknown.
#[test]
fn clause_byte_cap_stops_learnt_growth() {
    // Unlimited: PHP(7,6) is Unsat and learns a nontrivial DB.
    let mut s = pigeonhole(6);
    assert_eq!(s.solve(&Budget::unlimited()), SolveResult::Unsat);
    let full_db = s.clause_db_bytes();
    assert!(full_db > 0, "solver should retain clauses");

    // Capped below the problem clauses alone: refuse immediately.
    let mut tiny = pigeonhole(6);
    let r = tiny.solve(&Budget::unlimited().and_clause_bytes(16));
    assert_eq!(r, SolveResult::Unknown, "cap below input size must refuse");

    // Capped just above the input DB: the run may finish (the proof can be
    // cheap) but must never hold more than cap + one conflict's clause.
    let mut capped = pigeonhole(6);
    let input_db = capped.clause_db_bytes();
    let cap = input_db + 256;
    let _ = capped.solve(&Budget::unlimited().and_clause_bytes(cap));
    assert!(
        capped.clause_db_bytes() <= cap + 4096,
        "DB {} grew far past cap {}",
        capped.clause_db_bytes(),
        cap
    );
}

/// Adversarial CNF under a byte cap: random hard-ish instances never push
/// the DB far past the cap, whatever verdict they reach.
#[test]
fn prop_clause_byte_cap_is_respected() {
    let mut rng = TestRng::seed_from_u64(0xdbcab);
    for case in 0..32u32 {
        let nv = rng.gen_range(10usize..=18);
        let nc = nv * 5; // near the hard ratio for random 3-SAT
        let cnf = random_cnf(&mut rng, nv, nc);
        let mut s = Solver::new();
        if !cnf.load(&mut s) {
            continue;
        }
        let cap = s.clause_db_bytes() + 512;
        let _ = s.solve(&Budget::with_conflicts(10_000).and_clause_bytes(cap));
        assert!(
            s.clause_db_bytes() <= cap + 4096,
            "case {case}: DB {} far past cap {}",
            s.clause_db_bytes(),
            cap
        );
    }
}

/// A deadline in the past behaves like a tripped token: Unknown, promptly.
#[test]
fn expired_deadline_yields_unknown() {
    let mut s = pigeonhole(8);
    let r = s.solve(&Budget::with_timeout(Duration::from_nanos(1)));
    assert_eq!(r, SolveResult::Unknown);
}
