//! End-to-end learnt-clause exchange between solver replicas sharing a
//! [`LearntRing`]: the first replica's restart boundaries flush eligible
//! lemmas (short, prefix-variable-only) to the ring, a sibling attaches
//! them via its own restart boundaries, and — the soundness property the
//! obligation pool relies on — attaching foreign lemmas never changes any
//! verdict.

use pug_sat::{Budget, Cnf, Exchange, LearntRing, Lit, SolveResult, Solver, Var};
use pug_testutil::TestRng;
use std::sync::Arc;

/// Pigeonhole principle PHP(pigeons, holes): unsatisfiable for
/// pigeons > holes and hard enough for CDCL to restart many times —
/// guaranteeing real exchange traffic.
fn pigeonhole(pigeons: usize, holes: usize) -> Cnf {
    let var = |p: usize, h: usize| Var((p * holes + h) as u32);
    let mut clauses: Vec<Vec<Lit>> = Vec::new();
    for p in 0..pigeons {
        clauses.push((0..holes).map(|h| Lit::new(var(p, h), true)).collect());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                clauses.push(vec![Lit::new(var(p1, h), false), Lit::new(var(p2, h), false)]);
            }
        }
    }
    Cnf { num_vars: pigeons * holes, clauses }
}

fn solve_with_exchange(cnf: &Cnf, ring: &Arc<LearntRing>, member: usize) -> (SolveResult, u64) {
    let mut s = Solver::new();
    assert!(cnf.load(&mut s), "pigeonhole loads");
    s.set_exchange(Exchange::new(Arc::clone(ring), member, cnf.num_vars as u32, 8));
    let r = s.solve(&Budget::unlimited());
    (r, s.stats().learnts_imported)
}

#[test]
fn replicas_exchange_lemmas_through_the_ring() {
    let cnf = pigeonhole(7, 6);
    let ring = Arc::new(LearntRing::new(1024));

    let (r0, imported0) = solve_with_exchange(&cnf, &ring, 0);
    assert_eq!(r0, SolveResult::Unsat);
    assert_eq!(imported0, 0, "nothing to import on an empty ring");
    assert!(ring.exported() > 0, "a restarting UNSAT proof must export short lemmas");

    // The sibling sees member 0's lemmas at its own restart boundaries.
    let (r1, imported1) = solve_with_exchange(&cnf, &ring, 1);
    assert_eq!(r1, SolveResult::Unsat);
    assert!(imported1 > 0, "sibling never attached a foreign lemma");
    assert_eq!(ring.imported(), imported1);
}

#[test]
fn foreign_lemmas_never_change_verdicts() {
    // Random instances around the 3-SAT phase transition, solved bare and
    // with an exchange pre-seeded by a first replica: the verdict must be
    // identical either way (imported lemmas are consequences, so this is
    // the exchange's soundness contract).
    let mut rng = TestRng::seed_from_u64(0xec5a);
    for round in 0..40 {
        let nv = rng.gen_range(8..=14);
        let nc = (nv as f64 * 4.2) as usize;
        let clauses: Vec<Vec<Lit>> = (0..nc)
            .map(|_| {
                (0..3)
                    .map(|_| Lit::new(Var(rng.gen_range(0..nv) as u32), rng.gen_bool(0.5)))
                    .collect()
            })
            .collect();
        let cnf = Cnf { num_vars: nv, clauses };

        let mut bare = Solver::new();
        let bare_result = if cnf.load(&mut bare) {
            bare.solve(&Budget::unlimited())
        } else {
            SolveResult::Unsat
        };

        let ring = Arc::new(LearntRing::new(1024));
        let (seed_result, _) = if cnf.load(&mut Solver::new()) {
            solve_with_exchange(&cnf, &ring, 0)
        } else {
            (SolveResult::Unsat, 0)
        };
        assert_eq!(seed_result, bare_result, "round {round}: exporting replica diverged");
        let (fed_result, _) = if cnf.load(&mut Solver::new()) {
            solve_with_exchange(&cnf, &ring, 1)
        } else {
            (SolveResult::Unsat, 0)
        };
        assert_eq!(fed_result, bare_result, "round {round}: importing replica diverged");
    }
}
