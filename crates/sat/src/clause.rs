//! Clause storage.
//!
//! Clauses live in one arena indexed by [`ClauseRef`]. Learnt clauses carry an
//! activity score used by the clause-database reduction policy.

use crate::types::Lit;

/// Handle to a clause in the arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ClauseRef(pub u32);

impl ClauseRef {
    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// A disjunction of literals plus solver bookkeeping.
#[derive(Clone, Debug)]
pub struct Clause {
    /// The literals. The first two are the watched positions.
    pub lits: Vec<Lit>,
    /// Bump-and-decay activity (learnt clauses only).
    pub activity: f64,
    /// Literal-block distance at learn time; lower is better.
    pub lbd: u32,
    /// Whether the clause was learnt (subject to deletion) or original.
    pub learnt: bool,
    /// Tombstone set by clause-database reduction.
    pub deleted: bool,
}

impl Clause {
    pub(crate) fn new(lits: Vec<Lit>, learnt: bool, lbd: u32) -> Clause {
        Clause { lits, activity: 0.0, lbd, learnt, deleted: false }
    }

    /// Number of literals.
    #[inline]
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// True when the clause has no literals (only possible transiently).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }
}

/// Watch-list entry: the clause plus a *blocker* literal that, when already
/// true, lets propagation skip visiting the clause body.
#[derive(Clone, Copy, Debug)]
pub struct Watcher {
    pub cref: ClauseRef,
    pub blocker: Lit,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Var;

    #[test]
    fn clause_basics() {
        let c = Clause::new(vec![Var(0).pos(), Var(1).neg()], true, 2);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert!(c.learnt);
        assert_eq!(c.lbd, 2);
        assert!(!c.deleted);
    }
}
