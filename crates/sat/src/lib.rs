//! # pug-sat — CDCL SAT solver substrate
//!
//! The PUGpara verifier discharges its verification conditions through an
//! SMT layer ([`pug-smt`](../pug_smt/index.html)) that bit-blasts bit-vector
//! formulas down to propositional CNF. This crate is the propositional
//! engine underneath: a conflict-driven clause-learning (CDCL) solver with
//!
//! * two-watched-literal unit propagation with blocker literals,
//! * first-UIP conflict analysis and basic learnt-clause minimization,
//! * VSIDS variable activities with phase saving,
//! * Luby-sequence restarts,
//! * activity/LBD-driven learnt-clause database reduction,
//! * incremental solving under assumptions with failed-assumption cores, and
//! * resource budgets (conflicts / propagations / wall clock) so the verifier
//!   can report the paper's "T.O" outcome instead of hanging.
//!
//! The paper used Z3; this crate plus `pug-smt` is the from-scratch
//! replacement covering the exact QF_ABV fragment PUGpara emits (see
//! DESIGN.md §2 for the substitution argument).
//!
//! ## Example
//!
//! ```
//! use pug_sat::{Budget, SolveResult, Solver};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[a.pos(), b.pos()]);
//! s.add_clause(&[a.neg()]);
//! assert_eq!(s.solve(&Budget::unlimited()), SolveResult::Sat);
//! assert!(s.model_value(b));
//! ```

pub mod budget;
pub mod clause;
pub mod dimacs;
pub mod exchange;
pub mod failpoints;
mod heap;
pub mod solver;
pub mod types;

pub use budget::{Budget, CancelToken, ResourceBudget};
pub use dimacs::Cnf;
pub use exchange::{Exchange, LearntRing};
pub use solver::simplify::SimplifyConfig;
pub use solver::{SolveResult, Solver, Stats};
pub use types::{LBool, Lit, Var};
